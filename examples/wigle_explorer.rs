//! Explore the attacker's offline data products: the WiGLE-style snapshot
//! and the photo heat map. Prints the Table IV rankings with full context
//! and writes the snapshot to `wigle_snapshot.csv` for inspection in a
//! spreadsheet (the same file can be re-imported to drive experiments —
//! see `ch_geo::csv`).
//!
//! ```text
//! cargo run --release -p city-hunter --example wigle_explorer [seed]
//! ```

use city_hunter::geo::csv::to_csv;
use city_hunter::geo::netdb::SsidCategory;
use city_hunter::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x0C17_F00D);
    let data = CityData::standard(seed);

    println!(
        "snapshot: {} AP records, {} distinct SSIDs",
        data.wigle.len(),
        data.wigle.ssid_count()
    );
    let mut by_category = std::collections::BTreeMap::new();
    for record in data.wigle.records() {
        let label = match record.category {
            SsidCategory::Chain => "chain",
            SsidCategory::Hotspot => "hotspot",
            SsidCategory::Venue => "venue",
            SsidCategory::Residential => "residential",
            SsidCategory::Carrier => "carrier",
        };
        *by_category.entry(label).or_insert(0usize) += 1;
    }
    println!("\nAP records by category:");
    for (label, count) in &by_category {
        println!("  {label:<12} {count}");
    }

    println!("\ntop 10 SSIDs by AP count (open only):");
    for (rank, (ssid, count)) in data.wigle.top_by_ap_count(10, true).iter().enumerate() {
        println!("  {:>2}. {ssid:<28} {count} APs", rank + 1);
    }
    println!("\ntop 10 SSIDs by heat value (the §IV-B ranking):");
    for (rank, (ssid, heat)) in data.wigle.top_by_heat(&data.heat, 10).iter().enumerate() {
        let aps = data.wigle.ap_count(ssid);
        println!("  {:>2}. {ssid:<28} heat {heat:>8.0} ({aps} APs)", rank + 1);
    }

    let path = "wigle_snapshot.csv";
    std::fs::write(path, to_csv(&data.wigle))?;
    println!("\nwrote {path} ({} records)", data.wigle.len());
    Ok(())
}

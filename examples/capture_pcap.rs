//! Capture a whole City-Hunter deployment as a Wireshark-readable pcap.
//!
//! Runs a short canteen experiment with the frame observer attached,
//! writes `city-hunter-capture.pcap`, then re-reads its own capture and
//! prints the frame census — probe requests, 40-lure bursts, join
//! handshakes.
//!
//! ```text
//! cargo run --release -p city-hunter --example capture_pcap [seed]
//! ```

use std::collections::BTreeMap;
use std::fs::File;
use std::io::BufWriter;

use city_hunter::prelude::*;
use city_hunter::scenarios::runner::{run_experiment_observed, PcapObserver};
use city_hunter::sim::SimDuration;
use city_hunter::wifi::pcap::read_capture_lenient;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let data = CityData::standard(seed);
    let config = RunConfig {
        venue: VenueKind::Canteen,
        start_hour: 12,
        duration: SimDuration::from_mins(5),
        attacker: AttackerKind::CityHunter(CityHunterConfig::default()),
        seed,
        lure_budget: None,
        loss: None,
        population: None,
        arrival_multiplier: None,
        fault: None,
        detector: None,
    };

    let path = "city-hunter-capture.pcap";
    let mut observer = PcapObserver::new(BufWriter::new(File::create(path)?))?;
    let metrics = run_experiment_observed(&data, &config, &mut observer);
    let frames = observer.frames_written();
    drop(observer.into_inner());
    println!(
        "captured {frames} frames over 5 simulated minutes -> {path} \
         ({} clients, h_b = {:.1}%)",
        metrics.client_count(),
        100.0 * metrics.summary("x").h_b()
    );

    // Re-read our own capture and print the census, Wireshark-style.
    // The lenient reader is the same decode path `ch-serve` replays
    // captures through: a mangled record is counted and skipped, never
    // allowed to discard the rest of the capture.
    let capture = read_capture_lenient(File::open(path)?)?;
    let mut census: BTreeMap<String, usize> = BTreeMap::new();
    for captured in &capture.frames {
        *census
            .entry(captured.frame.subtype().to_string())
            .or_default() += 1;
    }
    println!("\nframe census:");
    for (kind, count) in &census {
        println!("  {kind:<12} {count}");
    }
    if capture.skipped > 0 || capture.truncated {
        println!(
            "  (skipped {} malformed record(s){})",
            capture.skipped,
            if capture.truncated {
                ", torn tail dropped"
            } else {
                ""
            }
        );
    }
    assert_eq!(capture.frames.len() as u64 + capture.skipped, frames);
    Ok(())
}

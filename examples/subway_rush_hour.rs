//! The high-mobility scenario the §IV design targets: a subway passage,
//! rush hour vs mid-afternoon lull.
//!
//! Shows (a) the per-client SSID-depth histogram that motivates sending
//! the *best* 40 first (Fig. 2(b)), and (b) the rush-hour lift in h_b the
//! paper attributes to companion groups (§V-A).
//!
//! ```text
//! cargo run --release -p city-hunter --example subway_rush_hour [seed]
//! ```

use city_hunter::prelude::*;
use city_hunter::scenarios::report::{pct, render_histogram, render_summary_table};
use city_hunter::sim::SimDuration;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(11);
    let data = CityData::standard(seed);

    let mut rows = Vec::new();
    let mut histograms = Vec::new();
    for (label, hour) in [("rush hour (08:00)", 8), ("lull (14:00)", 14)] {
        let config = RunConfig {
            venue: VenueKind::SubwayPassage,
            start_hour: hour,
            duration: SimDuration::from_hours(1),
            attacker: AttackerKind::CityHunter(CityHunterConfig::default()),
            seed: seed ^ (hour as u64) << 4,
            lure_budget: None,
            loss: None,
            population: None,
            arrival_multiplier: None,
            fault: None,
            detector: None,
        };
        let metrics = run_experiment(&data, &config);
        rows.push(metrics.summary(label));
        let offered: Vec<usize> = metrics
            .offered_counts(false)
            .into_iter()
            .filter(|&c| c > 0)
            .collect();
        histograms.push((label, offered, metrics.lane_breakdown()));
    }

    println!("Subway passage, City-Hunter, one hour per slot:\n");
    println!("{}", render_summary_table(&rows));
    println!(
        "rush-hour h_b {} vs lull h_b {}\n",
        pct(rows[0].h_b()),
        pct(rows[1].h_b())
    );

    for (label, offered, (popularity, freshness)) in &histograms {
        println!("SSIDs tested per broadcast client — {label}:");
        println!("{}", render_histogram(offered, 40));
        println!("hit lanes: {popularity} popularity-side, {freshness} freshness-side\n");
    }
}

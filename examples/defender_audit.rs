//! The defender's view: a client-side evil-twin detector running against
//! City-Hunter's own frames.
//!
//! The paper's conclusion notes that existing evil-twin countermeasures
//! "can still work as effective countermeasures for the City-Hunter". This
//! example demonstrates the two cheapest client-side checks on the actual
//! byte-level frames our attacker emits:
//!
//! 1. **security downgrade** — a probe response advertising a remembered
//!    *protected* SSID as open;
//! 2. **implausible SSID co-location** — one BSSID answering with many
//!    unrelated SSIDs within a second (the signature of KARMA-style
//!    mimicry).
//!
//! ```text
//! cargo run --release -p city-hunter --example defender_audit [seed]
//! ```

use std::collections::HashMap;

use city_hunter::attack::{Attacker, CityHunter, CityHunterConfig};
use city_hunter::prelude::*;
use city_hunter::wifi::codec;
use city_hunter::wifi::mgmt::{MgmtFrame, ProbeRequest, ProbeResponse};
use city_hunter::wifi::Channel;

/// A minimal client-side rogue-AP detector.
#[derive(Default)]
struct TwinDetector {
    /// SSIDs this client remembers as protected.
    protected: Vec<Ssid>,
    /// Distinct SSIDs seen per BSSID.
    ssids_per_bssid: HashMap<MacAddr, Vec<Ssid>>,
    alarms: Vec<String>,
}

impl TwinDetector {
    fn observe(&mut self, response: &ProbeResponse) {
        if self.protected.contains(&response.ssid) && !response.capabilities.privacy {
            self.alarms.push(format!(
                "security downgrade: {} advertised OPEN by {}",
                response.ssid, response.bssid
            ));
        }
        let seen = self.ssids_per_bssid.entry(response.bssid).or_default();
        if !seen.contains(&response.ssid) {
            seen.push(response.ssid.clone());
        }
        if seen.len() == 10 {
            self.alarms.push(format!(
                "implausible co-location: {} advertises {} distinct SSIDs",
                response.bssid,
                seen.len()
            ));
        }
    }
}

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let data = CityData::standard(seed);
    let site = data.site_for(VenueKind::Canteen);
    let mut attacker = CityHunter::new(
        MacAddr::from_index([0x0a, 0xbc, 0xde], 1),
        &data.wigle,
        &data.heat,
        site,
        CityHunterConfig::default(),
    );

    // The auditing client remembers its employer's protected network and
    // one protected chain.
    let mut detector = TwinDetector {
        protected: vec![
            Ssid::new("Corp-00c3").expect("short ssid"),
            Ssid::new("CSL").expect("short ssid"),
        ],
        ..TwinDetector::default()
    };

    // The client scans twice; every lure crosses the real codec, exactly
    // as it would cross the air.
    let client = MacAddr::from_index([0xac, 0x37, 0x43], 77);
    let mut frames_seen = 0usize;
    for round in 0..2u64 {
        let probe = ProbeRequest::broadcast(client);
        let lures = attacker.respond_to_probe(SimTime::from_secs(round * 60), &probe, 40);
        for lure in &lures {
            let frame = MgmtFrame::ProbeResponse(ProbeResponse::open_lure(
                attacker.bssid(),
                client,
                lure.ssid.clone(),
                Channel::default_attack_channel(),
            ));
            let bytes = codec::encode(&frame);
            let parsed = codec::parse(&bytes).expect("attacker frames are well-formed");
            if let MgmtFrame::ProbeResponse(response) = parsed {
                frames_seen += 1;
                detector.observe(&response);
            }
        }
    }

    println!("audited {frames_seen} probe responses from one BSSID\n");
    if detector.alarms.is_empty() {
        println!("no alarms — detector defeated (unexpected!)");
    } else {
        println!("alarms raised:");
        for alarm in &detector.alarms {
            println!("  ! {alarm}");
        }
        println!(
            "\nthe co-location heuristic flags City-Hunter after a single \
             scan round, confirming the paper's closing claim that \
             client-side evil-twin detection still applies."
        );
    }
}

//! The defender's view: the `ch-detect` rogue-AP monitor running against
//! City-Hunter's own frames.
//!
//! The paper's conclusion notes that existing evil-twin countermeasures
//! "can still work as effective countermeasures for the City-Hunter". This
//! example runs the workspace's real detection subsystem — the same
//! signature/behavior [`Detector`] the `arms_race` experiment arms — on
//! the actual byte-level frames our attacker emits. Two of its cheapest
//! signals fire here:
//!
//! 1. **signature tells** — the rogue BSSID's OUI is denylisted and the
//!    lure advertises a remembered network as open;
//! 2. **implausible SSID co-location** — one BSSID answering a broadcast
//!    probe with many unrelated SSIDs within a second (the signature of
//!    KARMA-style mimicry).
//!
//! ```text
//! cargo run --release -p city-hunter --example defender_audit [seed]
//! ```

use city_hunter::attack::{Attacker, CityHunter, CityHunterConfig};
use city_hunter::detect::{Detector, DetectorSpec};
use city_hunter::prelude::*;
use city_hunter::wifi::codec;
use city_hunter::wifi::mgmt::{MgmtFrame, ProbeRequest, ProbeResponse};
use city_hunter::wifi::Channel;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let data = CityData::standard(seed);
    let site = data.site_for(VenueKind::Canteen);
    let mut attacker = CityHunter::new(
        MacAddr::from_index([0x0a, 0xbc, 0xde], 1),
        &data.wigle,
        &data.heat,
        site,
        CityHunterConfig::default(),
    );

    // The auditing client runs the stock monitor at standard strictness —
    // no tuning, no knowledge of the attacker beyond the built-in
    // signature database.
    let mut detector = Detector::new(DetectorSpec::standard());

    // The client scans twice; every lure crosses the real codec, exactly
    // as it would cross the air, and the detector hears both sides.
    let client = MacAddr::from_index([0xac, 0x37, 0x43], 77);
    let mut frames_seen = 0usize;
    for round in 0..2u64 {
        let now = SimTime::from_secs(round * 60);
        let probe = ProbeRequest::broadcast(client);
        detector.observe(now, &MgmtFrame::ProbeRequest(probe.clone()));
        let lures = attacker.respond_to_probe(now, &probe, 40);
        for lure in &lures {
            let frame = MgmtFrame::ProbeResponse(ProbeResponse::open_lure(
                attacker.bssid(),
                client,
                lure.ssid.clone(),
                Channel::default_attack_channel(),
            ));
            let bytes = codec::encode(&frame);
            let parsed = codec::parse(&bytes).expect("attacker frames are well-formed");
            if let MgmtFrame::ProbeResponse(_) = &parsed {
                frames_seen += 1;
            }
            detector.observe(now, &parsed);
        }
    }

    println!("audited {frames_seen} probe responses from one BSSID\n");
    if detector.verdicts().is_empty() {
        println!("no alarms — detector defeated (unexpected!)");
    } else {
        println!("alarms raised:");
        for verdict in detector.verdicts() {
            println!("  ! {verdict}");
        }
        println!(
            "\nthe ch-detect monitor flags City-Hunter within a single \
             scan round, confirming the paper's closing claim that \
             client-side evil-twin detection still applies."
        );
    }
}

//! The §II motivating scenario: all four attacker generations deployed in
//! the same canteen over the same lunch half-hour, side by side.
//!
//! Reproduces the KARMA → MANA → City-Hunter progression of Tables I/II
//! with one command:
//!
//! ```text
//! cargo run --release -p city-hunter --example canteen_campaign [seed]
//! ```

use city_hunter::prelude::*;
use city_hunter::scenarios::report::render_summary_table;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);
    let data = CityData::standard(seed);

    let contenders: Vec<(&str, AttackerKind)> = vec![
        ("KARMA", AttackerKind::Karma),
        ("MANA", AttackerKind::Mana),
        ("City-Hunter (prelim, §III)", AttackerKind::Prelim),
        (
            "City-Hunter (full, §IV)",
            AttackerKind::CityHunter(CityHunterConfig::default()),
        ),
        (
            "City-Hunter + §V-B deauth",
            AttackerKind::CityHunter(CityHunterConfig {
                deauth: true,
                ..CityHunterConfig::default()
            }),
        ),
        (
            "City-Hunter + §V-B carrier",
            AttackerKind::CityHunter(CityHunterConfig {
                carrier_preload: true,
                ..CityHunterConfig::default()
            }),
        ),
    ];

    let mut rows = Vec::new();
    for (label, attacker) in contenders {
        // Each contender gets its own crowd (the paper separated attackers
        // by 40 m; independent runs model non-interference).
        let config = RunConfig::canteen_30min(attacker, seed ^ fxhash(label));
        let metrics = run_experiment(&data, &config);
        rows.push(metrics.summary(label));
    }

    println!("Canteen, 12:00-12:30, one run per attacker:\n");
    println!("{}", render_summary_table(&rows));

    let karma_hb = rows[0].h_b();
    let full_hb = rows[3].h_b();
    let mana_hb = rows[1].h_b().max(1e-9);
    println!("KARMA broadcast hit rate:      {:.1}%", 100.0 * karma_hb);
    println!(
        "City-Hunter vs MANA on broadcast clients: {:.1}x",
        full_hb / mana_hb
    );
}

/// Tiny label hash so each contender's run seed differs deterministically.
fn fxhash(s: &str) -> u64 {
    s.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
    })
}

//! Quickstart: deploy City-Hunter in a canteen for 30 simulated minutes
//! and print the paper-style summary row.
//!
//! ```text
//! cargo run --release -p city-hunter --example quickstart [seed]
//! ```

use city_hunter::prelude::*;
use city_hunter::scenarios::report::render_summary_table;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);

    // 1. Build the synthetic city: districts, POIs, the WiGLE-like AP
    //    snapshot and the photo-derived heat map (§IV-B's offline inputs).
    println!("building the standard city (seed {seed})...");
    let data = CityData::standard(seed);
    println!(
        "  {} AP records, {} distinct SSIDs, heat-map mass {}",
        data.wigle.len(),
        data.wigle.ssid_count(),
        data.heat.total_mass()
    );

    // 2. Deploy the full §IV City-Hunter in the canteen over lunch.
    let config =
        RunConfig::canteen_30min(AttackerKind::CityHunter(CityHunterConfig::default()), seed);
    println!(
        "deploying City-Hunter: {} at 12:00 for 30 min...",
        config.venue.name()
    );
    let metrics = run_experiment(&data, &config);

    // 3. Report.
    let row = metrics.summary("City-Hunter");
    println!("\n{}", render_summary_table(std::slice::from_ref(&row)));
    let (wigle, direct, carrier) = metrics.source_breakdown();
    let (popularity, freshness) = metrics.lane_breakdown();
    println!(
        "broadcast hits by SSID source: {wigle} WiGLE / {direct} direct-probe / {carrier} carrier"
    );
    println!("broadcast hits by buffer:      {popularity} popularity / {freshness} freshness");
    println!(
        "mean SSIDs tried per connected broadcast client: {:.0}",
        metrics.mean_offered_to_connected()
    );
}

#!/usr/bin/env bash
# The full local gate: formatting, clippy (warnings are errors), the
# project's own static-analysis pass, and the test suite. Run before
# pushing; CI runs the same four steps.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> ch-lint (text + JSON artifact + explain smoke)"
cargo run -q -p ch-analysis --bin ch-lint
# The machine-readable run doubles as the CI artifact. On a clean tree the
# findings array must be empty — pin that, not just the exit code.
lint_dir="target/ci-lint"
mkdir -p "$lint_dir"
cargo run -q -p ch-analysis --bin ch-lint -- --format json \
  > "$lint_dir/findings.json"
grep -q '"findings":\[\]' "$lint_dir/findings.json"
# --explain must know every advertised rule.
cargo run -q -p ch-analysis --bin ch-lint -- --explain hot-path-alloc \
  | grep -q 'Escape:'

echo "==> cargo test"
# Invariant checks (ch_invariant!) are active in debug builds, which is
# what `cargo test` uses, so the whole suite runs with them on.
cargo test -q --workspace

echo "==> fleet smoke (tiny fig5 campaign: serial, 2 jobs, cached rerun)"
# End-to-end check of the campaign engine through a real binary: a tiny
# Fig. 5 campaign runs serial (the speedup reference), fresh at 2 jobs
# (must print identical bytes), then again against the same manifest —
# the third run must resume fully from cache and print the same figure.
smoke_dir="target/ci-fleet-smoke"
rm -rf "$smoke_dir"
mkdir -p "$smoke_dir"
smoke_args=(1 --hours 12,18 --minutes 2 --bench "$smoke_dir/BENCH_fleet.json")
cargo run -q --release -p ch-bench --bin fig5 -- "${smoke_args[@]}" --jobs 1 \
  --manifest "$smoke_dir/fleet_fig5_serial.jsonl" \
  > "$smoke_dir/run0.txt" 2> "$smoke_dir/run0.log"
grep -q '8 executed, 0 cached, 0 failed' "$smoke_dir/run0.log"
cargo run -q --release -p ch-bench --bin fig5 -- "${smoke_args[@]}" --jobs 2 \
  --manifest "$smoke_dir/fleet_fig5.jsonl" \
  > "$smoke_dir/run1.txt" 2> "$smoke_dir/run1.log"
grep -q '8 executed, 0 cached, 0 failed' "$smoke_dir/run1.log"
cmp "$smoke_dir/run0.txt" "$smoke_dir/run1.txt"
# The cached rerun skips the bench file so the fresh jobs=2 timing (and
# its speedup annotation) survives as the latest slot.
cargo run -q --release -p ch-bench --bin fig5 -- "${smoke_args[@]}" --jobs 2 \
  --manifest "$smoke_dir/fleet_fig5.jsonl" --no-bench \
  > "$smoke_dir/run2.txt" 2> "$smoke_dir/run2.log"
grep -q '0 executed, 8 cached, 0 failed' "$smoke_dir/run2.log"
cmp "$smoke_dir/run1.txt" "$smoke_dir/run2.txt"
test -s "$smoke_dir/BENCH_fleet.json"
# Scaling gate: with the build-once campaign context and worker-local
# scratch, the parallel leg must never be slower than serial (hard
# floor 1.0x; the ≥0.7×N target stays report-only). The engine clamps
# spawned workers at the machine's parallelism, so on a single-core
# host the --jobs 2 leg runs one worker and there is no scaling to
# gate — assert the clamp itself instead.
par_line=$(grep '"jobs":2' "$smoke_dir/BENCH_fleet.json")
threads=$(echo "$par_line" | grep -o '"threads":[0-9]*' | cut -d: -f2)
speedup=$(echo "$par_line" | grep -o '"speedup_vs_serial":[0-9.eE+-]*' \
  | cut -d: -f2)
test -n "$threads" && test -n "$speedup"
test "$threads" -le "$(nproc)"
if [ "$threads" -ge 2 ]; then
  echo "scaling: fig5 --jobs 2 ran ${speedup}x vs serial ($threads workers; gate: >= 1.0)"
  awk -v s="$speedup" 'BEGIN { exit !(s >= 1.0) }'
  awk -v s="$speedup" -v n="$threads" 'BEGIN { exit !(s >= 0.7 * n) }' \
    || echo "scaling: below the 0.7xN target (report-only)"
else
  echo "scaling: single-core host, --jobs 2 clamped to 1 worker (${speedup}x vs serial, report-only)"
fi
# Archive the fleet bench telemetry alongside the lint CI artifact.
cp "$smoke_dir/BENCH_fleet.json" "$lint_dir/BENCH_fleet.json"

echo "==> registry smoke (experiment --list, torn-manifest resume)"
# The unified driver must list every artifact, and a table-class campaign
# must survive a torn manifest: run table1 fresh, chop the final manifest
# line mid-record (a killed run's torn write), re-run — the engine must
# redo exactly the torn job, reuse the intact one, and print identical
# bytes.
cargo run -q --release -p ch-bench --bin experiment -- --list \
  > "$smoke_dir/list.txt"
for id in table1 table2 table3 table4 fig1 fig2 fig3 fig4 fig5 fig6 arms_race; do
  grep -q "^  $id " "$smoke_dir/list.txt"
done
t1_args=(table1 1 --manifest "$smoke_dir/fleet_table1.jsonl" --no-bench)
cargo run -q --release -p ch-bench --bin experiment -- "${t1_args[@]}" \
  > "$smoke_dir/t1_run1.txt" 2> "$smoke_dir/t1_run1.log"
grep -q '2 executed, 0 cached, 0 failed' "$smoke_dir/t1_run1.log"
manifest="$smoke_dir/fleet_table1.jsonl"
truncate -s $(( $(stat -c%s "$manifest") - 20 )) "$manifest"
cargo run -q --release -p ch-bench --bin experiment -- "${t1_args[@]}" \
  > "$smoke_dir/t1_run2.txt" 2> "$smoke_dir/t1_run2.log"
grep -q '1 executed, 1 cached, 0 failed' "$smoke_dir/t1_run2.log"
cmp "$smoke_dir/t1_run1.txt" "$smoke_dir/t1_run2.txt"

echo "==> perfbench smoke (quick mode, run twice, byte-identical JSON)"
# The hot-path perf gate: alloc medians must be zero (perfbench asserts
# this itself) and the JSON must be bit-identical across two runs — the
# determinism property that lets results/BENCH_hotpath.json live in git.
perf_dir="target/ci-perfbench"
rm -rf "$perf_dir"
mkdir -p "$perf_dir"
cargo run -q --release -p ch-bench --bin perfbench -- --quick \
  --out "$perf_dir/run1.json" > /dev/null
cargo run -q --release -p ch-bench --bin perfbench -- --quick \
  --out "$perf_dir/run2.json" > /dev/null
cmp "$perf_dir/run1.json" "$perf_dir/run2.json"

echo "==> city smoke (sharded day: shard-count byte-identity + events/sec)"
# The city-scale gate: the quick city must render byte-identically at
# shard counts 1, 4 and 16 and across worker widths (shards are an
# execution arrangement, never a semantic one), report wall-clock
# events/sec, and emit BENCH_city.json (archived with the lint artifact).
city_dir="target/ci-city-smoke"
rm -rf "$city_dir"
mkdir -p "$city_dir"
cargo run -q --release -p ch-bench --bin city -- 1 --quick --shards 1 --jobs 1 \
  --bench "$city_dir/BENCH_city.json" \
  > "$city_dir/s1.txt" 2> "$city_dir/s1.log"
for s in 4 16; do
  cargo run -q --release -p ch-bench --bin city -- 1 --quick --shards "$s" \
    --no-bench > "$city_dir/s$s.txt" 2> "$city_dir/s$s.log"
  cmp "$city_dir/s1.txt" "$city_dir/s$s.txt"
done
cargo run -q --release -p ch-bench --bin city -- 1 --quick --shards 4 --jobs 4 \
  --no-bench > "$city_dir/j4.txt" 2> "$city_dir/j4.log"
cmp "$city_dir/s1.txt" "$city_dir/j4.txt"
grep -q 'events/sec (wall-clock)' "$city_dir/s1.log"
grep -q '"schema":"ch-city-bench-v1"' "$city_dir/BENCH_city.json"
cp "$city_dir/BENCH_city.json" "$lint_dir/BENCH_city.json"

echo "==> chaos smoke (faults study, serial vs parallel, byte-identical)"
# The fault-injection gate: every attacker under burst loss, corruption,
# churn and scheduled crashes, with the injected transient panic
# exercising the fleet retry policy. The faulted campaign must stay
# bit-identical at any worker width.
chaos_dir="target/ci-chaos-smoke"
rm -rf "$chaos_dir"
mkdir -p "$chaos_dir"
cargo run -q --release -p ch-bench --bin experiment -- faults 1 --quick --jobs 1 \
  > "$chaos_dir/serial.txt" 2> "$chaos_dir/serial.log"
grep -q '15 executed, 0 cached, 0 failed, 3 retried' "$chaos_dir/serial.log"
cargo run -q --release -p ch-bench --bin experiment -- faults 1 --quick --jobs 4 \
  > "$chaos_dir/parallel.txt" 2> "$chaos_dir/parallel.log"
grep -q '15 executed, 0 cached, 0 failed, 3 retried' "$chaos_dir/parallel.log"
cmp "$chaos_dir/serial.txt" "$chaos_dir/parallel.txt"
grep -q 'graceful degradation' "$chaos_dir/serial.txt"

echo "==> arms-race smoke (detector study, serial vs parallel, byte-identical)"
# The detection gate: every attacker under every evasion posture against
# the ch-detect monitor at three strictness levels. Like the chaos smoke,
# the campaign must stay bit-identical at any worker width — the detector
# observes the frame stream without consuming randomness.
arms_dir="target/ci-arms-smoke"
rm -rf "$arms_dir"
mkdir -p "$arms_dir"
cargo run -q --release -p ch-bench --bin experiment -- arms_race 1 --quick --jobs 1 \
  > "$arms_dir/serial.txt" 2> "$arms_dir/serial.log"
grep -q '36 executed, 0 cached, 0 failed' "$arms_dir/serial.log"
cargo run -q --release -p ch-bench --bin experiment -- arms_race 1 --quick --jobs 4 \
  > "$arms_dir/parallel.txt" 2> "$arms_dir/parallel.log"
grep -q '36 executed, 0 cached, 0 failed' "$arms_dir/parallel.log"
cmp "$arms_dir/serial.txt" "$arms_dir/parallel.txt"
grep -q 'stealth cost' "$arms_dir/serial.txt"

echo "==> serve chaos smoke (kill -9 mid-stream, recover, byte-identical)"
# The crash-safety gate for the ch-serve streaming service: an
# uninterrupted checkpointed run is the ground truth; a throttled twin is
# kill -9'ed mid-stream, restarted with the identical command, and must
# recover warm from its checkpoint, replay the remainder, and produce a
# byte-identical output stream and final report. Shedding stays an
# explicit counted stat (pinned in the report), and the recovery path is
# announced on stderr, never silently taken.
serve_dir="target/ci-serve-smoke"
rm -rf "$serve_dir"
mkdir -p "$serve_dir"
# Run the binary directly (not through `cargo run`) so kill -9 hits the
# service process itself rather than a cargo wrapper.
cargo build -q --release -p ch-serve
serve_bin="target/release/ch-serve"
serve_args=(--attacker cityhunter --evasive --seed 11 --duration-mins 10
  --checkpoint-every 64 --stats-every 128)
"$serve_bin" "${serve_args[@]}" \
  --out "$serve_dir/base.ndjson" --report "$serve_dir/base.json" \
  --checkpoint "$serve_dir/base.ckpt" 2> "$serve_dir/base.log"
chaos_cmd=("$serve_bin" "${serve_args[@]}"
  --out "$serve_dir/chaos.ndjson" --report "$serve_dir/chaos.json"
  --checkpoint "$serve_dir/chaos.ckpt")
"${chaos_cmd[@]}" --throttle-ms 2 2> "$serve_dir/kill.log" &
serve_pid=$!
sleep 1.5
kill -9 "$serve_pid" 2> /dev/null || true
wait "$serve_pid" 2> /dev/null || true
test -s "$serve_dir/chaos.ckpt"   # the kill must land after a checkpoint
"${chaos_cmd[@]}" 2> "$serve_dir/recover.log"
grep -q 'recovered warm from checkpoint' "$serve_dir/recover.log"
cmp "$serve_dir/base.ndjson" "$serve_dir/chaos.ndjson"
cmp "$serve_dir/base.json" "$serve_dir/chaos.json"
grep -q '"shed":' "$serve_dir/base.json"
# The throughput+backpressure bench must produce the versioned artifact
# and survive its own overload assertions (shed > 0, zero lost events).
cargo run -q --release -p ch-bench --bin serve_bench -- --quick \
  --out "$serve_dir/BENCH_serve.json" > /dev/null 2> "$serve_dir/bench.log"
grep -q '"schema": "ch-serve-bench-v1"' "$serve_dir/BENCH_serve.json"
cp "$serve_dir/BENCH_serve.json" "$lint_dir/BENCH_serve.json"

echo "ci.sh: all gates passed"

#!/usr/bin/env bash
# The full local gate: formatting, clippy (warnings are errors), the
# project's own static-analysis pass, and the test suite. Run before
# pushing; CI runs the same four steps.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> ch-lint"
cargo run -q -p ch-analysis --bin ch-lint

echo "==> cargo test"
# Invariant checks (ch_invariant!) are active in debug builds, which is
# what `cargo test` uses, so the whole suite runs with them on.
cargo test -q --workspace

echo "ci.sh: all gates passed"

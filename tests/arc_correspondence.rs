//! Cross-validation of the §IV-C claim: City-Hunter's buffer adaptation is
//! "inspired by ARC". Drive the real ARC cache and the SSID buffers through
//! structurally equivalent feedback and check the adaptation *directions*
//! agree.

use city_hunter::arc::{ArcCache, Cache};
use city_hunter::attack::buffers::{AdaptiveBuffers, MIN_BUFFER};
use city_hunter::attack::LureLane;

#[test]
fn ghost_feedback_moves_both_systems_the_same_way() {
    // ARC: a hit in B1 (the recency ghost) grows the recency target p;
    // City-Hunter: a hit in the freshness ghost grows the freshness
    // buffer f. Recency ↔ freshness, frequency ↔ popularity.
    let mut buffers = AdaptiveBuffers::paper_default();
    let (_, f_before) = buffers.sizes();
    buffers.adapt(LureLane::FreshnessGhost);
    let (_, f_after) = buffers.sizes();
    assert_eq!(f_after, f_before + 1, "freshness ghost hit grows f");

    let mut arc = ArcCache::new(4);
    // Build a B1 ghost: promote one key to T2 so REPLACE has a frequency
    // side, then stream one-shot keys until T1 spills into B1.
    arc.request(&100);
    arc.request(&100);
    for i in 0..6 {
        arc.request(&i);
    }
    let p_before = arc.p();
    // Hit a B1 ghost (one of the early one-shot keys).
    let ghost = (0..6)
        .find(|k| {
            // A key that is neither resident nor fresh enough to have
            // fallen off history: probing via request would mutate, so use
            // contains() to find a non-resident candidate and accept that
            // one of them is in B1.
            !arc.contains(k)
        })
        .expect("some key was evicted");
    arc.request(&ghost);
    assert!(
        arc.p() >= p_before,
        "recency-ghost hit never shrinks ARC's recency target"
    );
}

#[test]
fn opposing_feedback_cancels_in_both_systems() {
    let mut buffers = AdaptiveBuffers::paper_default();
    let before = buffers.sizes();
    buffers.adapt(LureLane::FreshnessGhost);
    buffers.adapt(LureLane::PopularityGhost);
    assert_eq!(buffers.sizes(), before, "one step each way cancels");
}

#[test]
fn sustained_one_sided_feedback_saturates_not_overflows() {
    // Both systems bound their adaptation: ARC clamps p to [0, c]; the
    // buffers clamp each side to MIN_BUFFER.
    let mut buffers = AdaptiveBuffers::paper_default();
    for _ in 0..1_000 {
        buffers.adapt(LureLane::FreshnessGhost);
    }
    let (p, f) = buffers.sizes();
    assert_eq!(p, MIN_BUFFER);
    assert_eq!(p + f, 40);

    let mut arc = ArcCache::new(8);
    // Hammer the recency side: repeated one-shot misses with B1 re-hits.
    arc.request(&1000);
    arc.request(&1000);
    for round in 0..200u32 {
        for i in 0..10 {
            arc.request(&(round * 10 + i));
        }
    }
    assert!(arc.p() <= arc.capacity(), "p stays within [0, c]");
    let (t1, t2, b1, b2) = arc.list_sizes();
    assert!(t1 + t2 <= arc.capacity());
    assert!(t1 + t2 + b1 + b2 <= 2 * arc.capacity());
}

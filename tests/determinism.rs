//! Determinism: the property that makes every table and figure
//! regenerable. Same seed ⇒ bit-identical outcomes, at every layer.

use city_hunter::prelude::*;
use city_hunter::sim::SimDuration;

#[test]
fn city_data_is_seed_deterministic() {
    let a = CityData::standard(404);
    let b = CityData::standard(404);
    assert_eq!(a.city, b.city);
    assert_eq!(a.wigle.records(), b.wigle.records());
    assert_eq!(a.heat, b.heat);
}

#[test]
fn different_city_seeds_differ() {
    let a = CityData::standard(1);
    let b = CityData::standard(2);
    assert_ne!(a.wigle.records(), b.wigle.records());
}

#[test]
fn full_runs_are_reproducible_for_every_attacker() {
    let data = CityData::standard(505);
    for (attacker, seed) in [
        (AttackerKind::Karma, 1u64),
        (AttackerKind::Mana, 2),
        (AttackerKind::Prelim, 3),
        (AttackerKind::CityHunter(CityHunterConfig::default()), 4),
    ] {
        let config = RunConfig {
            venue: VenueKind::RailwayStation,
            start_hour: 9,
            duration: SimDuration::from_mins(8),
            attacker,
            seed,
            lure_budget: None,
            loss: None,
            population: None,
            arrival_multiplier: None,
            fault: None,
            detector: None,
        };
        let a = run_experiment(&data, &config);
        let b = run_experiment(&data, &config);
        assert_eq!(a.summary("x"), b.summary("x"));
        assert_eq!(a.db_series(), b.db_series());
        assert_eq!(a.offered_counts(false), b.offered_counts(false));
        assert_eq!(a.source_breakdown(), b.source_breakdown());
        assert_eq!(a.lane_breakdown(), b.lane_breakdown());
    }
}

#[test]
fn run_seed_isolated_from_city_seed() {
    // Rebuilding the same city must not perturb run results.
    let a = {
        let data = CityData::standard(606);
        let config = RunConfig::canteen_30min(AttackerKind::Prelim, 9);
        run_experiment(&data, &config).summary("x")
    };
    let b = {
        let data = CityData::standard(606);
        let config = RunConfig::canteen_30min(AttackerKind::Prelim, 9);
        run_experiment(&data, &config).summary("x")
    };
    assert_eq!(a, b);
}

#[test]
fn venue_streams_are_independent() {
    // The same run seed in different venues must give different (but
    // individually reproducible) crowds.
    let data = CityData::standard(707);
    let mk = |venue| {
        let config = RunConfig {
            venue,
            start_hour: 10,
            duration: SimDuration::from_mins(8),
            attacker: AttackerKind::Mana,
            seed: 11,
            lure_budget: None,
            loss: None,
            population: None,
            arrival_multiplier: None,
            fault: None,
            detector: None,
        };
        run_experiment(&data, &config).summary("x")
    };
    let canteen = mk(VenueKind::Canteen);
    let mall = mk(VenueKind::ShoppingCenter);
    assert_ne!(canteen, mall);
}

//! Countermeasures against live deployments: the detector bank rides the
//! runner's frame observer through full experiments.

use city_hunter::defense::detectors::{AlarmKind, DetectorBank};
use city_hunter::defense::monitor::NetworkMonitor;
use city_hunter::prelude::*;
use city_hunter::scenarios::runner::{run_experiment_observed, FrameObserver};
use city_hunter::sim::{SimDuration, SimTime};
use city_hunter::wifi::mgmt::MgmtFrame;

struct BankObserver {
    bank: DetectorBank,
}

impl FrameObserver for BankObserver {
    fn enabled(&self) -> bool {
        true
    }

    fn observe(&mut self, at: SimTime, frame: &MgmtFrame) {
        self.bank.observe(at, frame);
    }
}

fn config(deauth: bool, seed: u64) -> RunConfig {
    RunConfig {
        venue: VenueKind::Canteen,
        start_hour: 12,
        duration: SimDuration::from_mins(10),
        attacker: AttackerKind::CityHunter(CityHunterConfig {
            deauth,
            ..CityHunterConfig::default()
        }),
        seed,
        lure_budget: None,
        loss: None,
        population: None,
        arrival_multiplier: None,
        fault: None,
        detector: None,
    }
}

#[test]
fn live_city_hunter_detected_before_first_victim() {
    let data = CityData::standard(0xDEF1);
    let mut observer = BankObserver {
        bank: DetectorBank::client_standard([]),
    };
    let metrics = run_experiment_observed(&data, &config(false, 1), &mut observer);
    let first_alarm = observer
        .bank
        .first_alarm_at()
        .expect("City-Hunter must be detected");
    // Detection precedes the first successful lure.
    let first_hit = metrics
        .clients()
        .filter_map(|(_, rec)| rec.hit.as_ref().map(|h| h.at))
        .min();
    if let Some(hit_at) = first_hit {
        assert!(
            first_alarm <= hit_at,
            "first alarm {first_alarm} after first victim {hit_at}"
        );
    }
    // The operator monitor names exactly one rogue: the attacker.
    let mut monitor = NetworkMonitor::new();
    for (_, alarms) in observer.bank.report() {
        monitor.ingest_all(alarms);
    }
    let rogues: Vec<_> = monitor.rogues().collect();
    assert_eq!(rogues.len(), 1, "{rogues:?}");
}

#[test]
fn deauth_extension_trips_the_flood_detector() {
    let data = CityData::standard(0xDEF2);
    let mut observer = BankObserver {
        bank: DetectorBank::client_standard([]),
    };
    let metrics = run_experiment_observed(&data, &config(true, 2), &mut observer);
    assert!(metrics.deauth_frames >= 5, "{}", metrics.deauth_frames);
    let report = observer.bank.report();
    let flood_alarms = report
        .iter()
        .find(|(name, _)| *name == "deauth-flood")
        .map(|(_, alarms)| alarms.len())
        .unwrap_or(0);
    assert!(
        flood_alarms >= 1,
        "deauth flood must be flagged: {report:?}"
    );
    // The flood verdict points at the spoofed source.
    let (_, alarms) = report
        .iter()
        .find(|(name, _)| *name == "deauth-flood")
        .expect("detector present");
    assert!(alarms
        .iter()
        .all(|a| matches!(a.kind, AlarmKind::DeauthFlood { .. })));
}

#[test]
fn no_deauth_no_flood_alarm() {
    let data = CityData::standard(0xDEF3);
    let mut observer = BankObserver {
        bank: DetectorBank::client_standard([]),
    };
    let _ = run_experiment_observed(&data, &config(false, 3), &mut observer);
    let report = observer.bank.report();
    let flood_alarms = report
        .iter()
        .find(|(name, _)| *name == "deauth-flood")
        .map(|(_, alarms)| alarms.len())
        .unwrap_or(0);
    assert_eq!(flood_alarms, 0, "no deauth, no flood alarm");
}

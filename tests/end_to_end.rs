//! End-to-end integration: every attacker generation deployed through the
//! full stack (city → crowds → phones → radio → codec → metrics).

use city_hunter::prelude::*;
use city_hunter::sim::SimDuration;

fn data() -> CityData {
    CityData::standard(0xE2E)
}

fn run(data: &CityData, venue: VenueKind, attacker: AttackerKind, seed: u64) -> SummaryRow {
    let config = RunConfig {
        venue,
        start_hour: if venue == VenueKind::Canteen { 12 } else { 8 },
        duration: SimDuration::from_mins(15),
        attacker,
        seed,
        lure_budget: None,
        loss: None,
        population: None,
        arrival_multiplier: None,
        fault: None,
        detector: None,
    };
    run_experiment(data, &config).summary("run")
}

#[test]
fn attacker_generations_rank_correctly() {
    let data = data();
    let karma = run(&data, VenueKind::Canteen, AttackerKind::Karma, 1);
    let mana = run(&data, VenueKind::Canteen, AttackerKind::Mana, 1);
    let full = run(
        &data,
        VenueKind::Canteen,
        AttackerKind::CityHunter(CityHunterConfig::default()),
        1,
    );

    // Table I/II ordering: KARMA lures no broadcast clients, MANA lures
    // few, City-Hunter lures many.
    assert_eq!(karma.h_b(), 0.0, "KARMA must never hit broadcast clients");
    assert!(full.h_b() > 0.06, "City-Hunter h_b too low: {}", full.h_b());
    assert!(
        full.h_b() > 2.0 * mana.h_b(),
        "City-Hunter ({}) must clearly beat MANA ({})",
        full.h_b(),
        mana.h_b()
    );
    // Everyone attracts a comparable client population.
    assert!(karma.total_clients > 100);
    assert!(mana.total_clients > 100);
    assert!(full.total_clients > 100);
}

#[test]
fn h_always_at_least_h_b() {
    // §V-A second observation: direct clients are easier, so h >= h_b.
    let data = data();
    for (venue, seed) in [
        (VenueKind::Canteen, 2),
        (VenueKind::SubwayPassage, 3),
        (VenueKind::RailwayStation, 4),
    ] {
        let row = run(
            &data,
            venue,
            AttackerKind::CityHunter(CityHunterConfig::default()),
            seed,
        );
        assert!(
            row.h() >= row.h_b(),
            "{}: h {} < h_b {}",
            venue.name(),
            row.h(),
            row.h_b()
        );
    }
}

#[test]
fn mobility_gradient_canteen_beats_passage() {
    // §III-C / §V-A: low mobility → more SSIDs tried → higher h_b.
    let data = data();
    let mut canteen_total = 0.0;
    let mut passage_total = 0.0;
    for seed in 10..13 {
        canteen_total += run(
            &data,
            VenueKind::Canteen,
            AttackerKind::CityHunter(CityHunterConfig::default()),
            seed,
        )
        .h_b();
        passage_total += run(
            &data,
            VenueKind::SubwayPassage,
            AttackerKind::CityHunter(CityHunterConfig::default()),
            seed,
        )
        .h_b();
    }
    assert!(
        canteen_total > 1.5 * passage_total,
        "canteen {canteen_total} should dominate passage {passage_total}"
    );
}

#[test]
fn wigle_seed_is_load_bearing() {
    // Ablation shape: removing the WiGLE seed collapses the early hit
    // rate towards MANA's.
    let data = data();
    let with = run(
        &data,
        VenueKind::Canteen,
        AttackerKind::CityHunter(CityHunterConfig::default()),
        20,
    );
    let without = run(
        &data,
        VenueKind::Canteen,
        AttackerKind::CityHunter(CityHunterConfig {
            use_wigle: false,
            ..CityHunterConfig::default()
        }),
        20,
    );
    assert!(
        with.h_b() > 1.5 * without.h_b().max(0.001),
        "with {} vs without {}",
        with.h_b(),
        without.h_b()
    );
}

#[test]
fn carrier_preload_extension_adds_hits() {
    // §V-B: carrier SSIDs reach iOS subscribers that nothing else can.
    let data = data();
    let mut base_hits = 0usize;
    let mut carrier_hits = 0usize;
    for seed in 30..33 {
        base_hits += run(
            &data,
            VenueKind::Canteen,
            AttackerKind::CityHunter(CityHunterConfig::default()),
            seed,
        )
        .broadcast_connected;
        carrier_hits += run(
            &data,
            VenueKind::Canteen,
            AttackerKind::CityHunter(CityHunterConfig {
                carrier_preload: true,
                ..CityHunterConfig::default()
            }),
            seed,
        )
        .broadcast_connected;
    }
    assert!(
        carrier_hits > base_hits,
        "carrier preload ({carrier_hits}) must beat baseline ({base_hits})"
    );
}

#[test]
fn empty_city_data_does_not_crash_the_stack() {
    // Failure injection: an attacker with an empty WiGLE snapshot still
    // runs (and degenerates to direct-probe harvesting only).
    use city_hunter::geo::{CityModel, HeatMap, PhotoCollection, WigleSnapshot};
    use city_hunter::sim::SimRng;

    let mut rng = SimRng::seed_from(5);
    let city = CityModel::synthesize(&mut rng);
    let photos = PhotoCollection::synthesize(&city, 100, &mut rng);
    let heat = HeatMap::from_photos(&city, &photos, 200.0);
    let data = CityData {
        city,
        wigle: WigleSnapshot::empty(),
        heat,
    };
    let row = run(
        &data,
        VenueKind::Canteen,
        AttackerKind::CityHunter(CityHunterConfig::default()),
        6,
    );
    assert!(row.total_clients > 0);
    // No WiGLE, no phones with public entries drawn from it — broadcast
    // hits can only come from harvested/shared SSIDs, i.e. nearly none.
    assert!(row.h_b() < 0.05, "h_b {}", row.h_b());
}

#[test]
fn mac_randomizing_population_still_countable() {
    // Failure injection: with fully randomized MACs the attack still runs;
    // client identities are per-MAC, so counts remain well-defined.
    let mut data = data();
    // Rebuild population params via the world hook: easiest is a direct
    // run with modified params through the public API.
    data.wigle = data.wigle.clone();
    let config = RunConfig {
        venue: VenueKind::Canteen,
        start_hour: 12,
        duration: SimDuration::from_mins(10),
        attacker: AttackerKind::CityHunter(CityHunterConfig::default()),
        seed: 77,
        lure_budget: None,
        loss: None,
        population: None,
        arrival_multiplier: None,
        fault: None,
        detector: None,
    };
    let metrics = run_experiment(&data, &config);
    assert!(metrics.client_count() > 0);
}

#[test]
fn mac_randomization_defeats_city_hunter() {
    // Forward-looking failure injection: per-scan MAC randomization (which
    // postdates the paper) collapses the per-client untried tracking —
    // every scan looks like a new client and only the ranking head is
    // ever offered.
    let data = data();
    let mut randomized_population = data.population_params_for(VenueKind::Canteen);
    randomized_population.mac_randomizing = 1.0;
    let config = |population| RunConfig {
        population,
        ..RunConfig::canteen_30min(AttackerKind::CityHunter(CityHunterConfig::default()), 0x3AC)
    };
    let stable = run_experiment(&data, &config(None)).summary("stable");
    let randomized = run_experiment(&data, &config(Some(randomized_population))).summary("rand");
    assert!(
        randomized.h_b() < stable.h_b() / 3.0,
        "randomized {} vs stable {}",
        randomized.h_b(),
        stable.h_b()
    );
    // Identity fragmentation inflates the apparent client count.
    assert!(
        randomized.total_clients > 2 * stable.total_clients,
        "randomized {} vs stable {}",
        randomized.total_clients,
        stable.total_clients
    );
}

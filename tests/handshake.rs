//! Frame-level integration: attacker and phone speak through the byte
//! codec, end to end, without the experiment runner in between.

use city_hunter::attack::{Attacker, CityHunter, CityHunterConfig, KarmaAttacker};
use city_hunter::phone::pnl::{Pnl, PnlEntry, PnlOrigin};
use city_hunter::phone::scanner::ScanConfig;
use city_hunter::phone::OsKind;
use city_hunter::phone::{JoinDecision, Phone};
use city_hunter::prelude::*;
use city_hunter::wifi::codec;
use city_hunter::wifi::mgmt::{
    Authentication, CapabilityInfo, Deauthentication, MgmtFrame, ProbeRequest, ProbeResponse,
    ReasonCode, StatusCode,
};
use city_hunter::wifi::timing;
use city_hunter::wifi::Channel;

fn victim(pnl: Pnl) -> Phone {
    Phone::new(
        1,
        MacAddr::from_index([0xac, 0x37, 0x43], 1),
        OsKind::ModernAndroid,
        pnl,
        ScanConfig::default_2017(),
        0,
        true,
        false,
    )
}

fn hunter(data: &CityData) -> CityHunter {
    CityHunter::new(
        MacAddr::from_index([0x0a, 0xbc, 0xde], 1),
        &data.wigle,
        &data.heat,
        data.site_for(VenueKind::Canteen),
        CityHunterConfig::default(),
    )
}

#[test]
fn broadcast_probe_to_association_over_the_wire() {
    let data = CityData::standard(0x4A4D);
    let mut attacker = hunter(&data);

    // The victim remembers one open city SSID City-Hunter will try first:
    // the top of the heat ranking.
    let top = data.wigle.top_by_heat(&data.heat, 1)[0].0.clone();
    let mut phone = victim(Pnl::from_entries([PnlEntry::open(
        top.clone(),
        PnlOrigin::Public,
    )]));

    // 1. The phone's broadcast probe crosses the wire.
    let probe = phone.probes_for_scan().remove(0);
    let probe_bytes = codec::encode(&MgmtFrame::ProbeRequest(probe.clone()));
    let parsed = codec::parse(&probe_bytes).expect("probe parses");
    let MgmtFrame::ProbeRequest(parsed_probe) = parsed else {
        panic!("wrong frame kind");
    };
    assert!(parsed_probe.is_broadcast());

    // 2. The attacker answers with a lure burst within the scan budget.
    let lures =
        attacker.respond_to_probe(SimTime::ZERO, &parsed_probe, timing::responses_per_scan());
    assert!(lures.len() <= timing::responses_per_scan());
    assert!(
        lures.iter().any(|l| l.ssid == top),
        "top SSID offered first"
    );

    // 3. Each probe response crosses the wire; the phone joins on match.
    let mut joined = None;
    for lure in &lures {
        let frame = MgmtFrame::ProbeResponse(ProbeResponse::open_lure(
            attacker.bssid(),
            phone.mac,
            lure.ssid.clone(),
            Channel::default_attack_channel(),
        ));
        let bytes = codec::encode(&frame);
        let MgmtFrame::ProbeResponse(response) = codec::parse(&bytes).expect("lure parses") else {
            panic!("wrong frame kind");
        };
        if phone.evaluate_offer(&response) == JoinDecision::Join {
            joined = Some(response);
            break;
        }
    }
    let offer = joined.expect("victim must recognize its PNL entry");
    assert_eq!(offer.ssid, top);

    // 4. Open-system authentication + association, over the wire.
    let legs = [
        MgmtFrame::Authentication(Authentication::request(phone.mac, attacker.bssid())),
        MgmtFrame::Authentication(Authentication::response(
            attacker.bssid(),
            phone.mac,
            StatusCode::Success,
        )),
    ];
    for frame in &legs {
        let bytes = codec::encode(frame);
        assert_eq!(&codec::parse(&bytes).expect("auth parses"), frame);
    }
    phone.connect_to(offer.ssid.clone());
    assert!(phone.is_connected());
    assert_eq!(phone.connected_ssid(), Some(&top));

    // 5. A connected victim goes quiet.
    assert!(phone.probes_for_scan().is_empty());
}

#[test]
fn direct_probe_karma_echo_over_the_wire() {
    let mut karma = KarmaAttacker::new(MacAddr::from_index([0x0a, 0xbc, 0xde], 2));
    let secret = Ssid::new("EstateNet-5F").expect("short ssid");
    let mut phone = victim(Pnl::from_entries([PnlEntry::open(
        secret.clone(),
        PnlOrigin::Home,
    )]));
    // A legacy phone would disclose the SSID; craft its direct probe.
    let probe = ProbeRequest::direct(phone.mac, secret.clone());
    let bytes = codec::encode(&MgmtFrame::ProbeRequest(probe.clone()));
    let MgmtFrame::ProbeRequest(parsed) = codec::parse(&bytes).expect("parses") else {
        panic!("wrong kind");
    };
    assert_eq!(parsed.ssid, secret);

    let lures = karma.respond_to_probe(SimTime::ZERO, &parsed, 40);
    assert_eq!(lures.len(), 1);
    let response = ProbeResponse::open_lure(
        karma.bssid(),
        phone.mac,
        lures[0].ssid.clone(),
        Channel::default_attack_channel(),
    );
    assert_eq!(phone.evaluate_offer(&response), JoinDecision::Join);
    phone.connect_to(response.ssid);
    assert!(phone.is_connected());
}

#[test]
fn protected_pnl_entry_rejects_open_twin_over_the_wire() {
    let data = CityData::standard(0x4A4E);
    let mut attacker = hunter(&data);
    let top = data.wigle.top_by_heat(&data.heat, 1)[0].0.clone();
    // Same SSID, but remembered as *protected*: the twin must fail.
    let phone = victim(Pnl::from_entries([PnlEntry::protected(
        top,
        PnlOrigin::Work,
    )]));
    let probe = ProbeRequest::broadcast(phone.mac);
    let lures = attacker.respond_to_probe(SimTime::ZERO, &probe, 40);
    for lure in &lures {
        let response = ProbeResponse::open_lure(
            attacker.bssid(),
            phone.mac,
            lure.ssid.clone(),
            Channel::default_attack_channel(),
        );
        assert_eq!(
            phone.evaluate_offer(&response),
            JoinDecision::Ignore,
            "{} must not be joined",
            lure.ssid
        );
    }
}

#[test]
fn deauth_frame_round_trips_and_reopens_the_victim() {
    let mut phone = Phone::new(
        9,
        MacAddr::from_index([0xac, 0x37, 0x43], 9),
        OsKind::ModernIos,
        Pnl::new(),
        ScanConfig::default_2017(),
        0,
        true,
        true, // camped on legitimate Wi-Fi
    );
    assert!(phone.probes_for_scan().is_empty());

    let frame = MgmtFrame::Deauthentication(Deauthentication {
        source: MacAddr::from_index([0x00, 0x90, 0x4c], 1), // spoofed AP
        destination: phone.mac,
        reason: ReasonCode::PrevAuthExpired,
    });
    let bytes = codec::encode(&frame);
    let parsed = codec::parse(&bytes).expect("deauth parses");
    assert_eq!(parsed, frame);
    phone.handle_deauth();
    assert_eq!(phone.probes_for_scan().len(), 1, "victim scans again");
}

#[test]
fn capability_privacy_bit_is_the_differentiator() {
    // The single bit the §III-B "free APs only" rule hangs on: a protected
    // twin is ignored even for an open PNL entry.
    let open_entry = Ssid::new("Free Public WiFi").expect("short ssid");
    let phone = victim(Pnl::from_entries([PnlEntry::open(
        open_entry.clone(),
        PnlOrigin::Public,
    )]));
    let mut offer = ProbeResponse::open_lure(
        MacAddr::from_index([0x0a, 0xbc, 0xde], 3),
        phone.mac,
        open_entry,
        Channel::default_attack_channel(),
    );
    assert_eq!(phone.evaluate_offer(&offer), JoinDecision::Join);
    offer.capabilities = CapabilityInfo::protected_ap();
    let bytes = codec::encode(&MgmtFrame::ProbeResponse(offer.clone()));
    let MgmtFrame::ProbeResponse(parsed) = codec::parse(&bytes).expect("parses") else {
        panic!("wrong kind");
    };
    assert!(parsed.capabilities.privacy, "privacy bit survives the wire");
    assert_eq!(phone.evaluate_offer(&parsed), JoinDecision::Ignore);
}

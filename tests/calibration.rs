//! Calibration: the paper's *shapes* hold on full-length (30-minute)
//! deployments — who wins, by roughly what factor, where the venue
//! gradient falls. Absolute magnitudes are checked as bands, not points
//! (our substrate is a simulator, not the authors' testbed).

use city_hunter::prelude::*;

fn data() -> CityData {
    CityData::standard(city_hunter::scenarios::experiments::CITY_SEED)
}

#[test]
fn table1_shape_karma_vs_mana() {
    let data = data();
    let karma = run_experiment(&data, &RunConfig::canteen_30min(AttackerKind::Karma, 0xA1))
        .summary("KARMA");
    let mana =
        run_experiment(&data, &RunConfig::canteen_30min(AttackerKind::Mana, 0xA2)).summary("MANA");

    // Paper: KARMA h=3.9% (h_b = 0), MANA h=6.6% (h_b = 3%).
    assert_eq!(karma.broadcast_connected, 0);
    assert!((0.02..0.12).contains(&karma.h()), "KARMA h {}", karma.h());
    assert!((0.0..0.08).contains(&mana.h_b()), "MANA h_b {}", mana.h_b());
    assert!(mana.h_b() > 0.0 || mana.broadcast_clients < 100);
    // ~14% of clients are direct probers.
    let direct_share = karma.direct_clients as f64 / karma.total_clients as f64;
    assert!((0.08..0.22).contains(&direct_share), "{direct_share}");
}

#[test]
fn table2_shape_prelim_in_canteen() {
    let data = data();
    let metrics = run_experiment(&data, &RunConfig::canteen_30min(AttackerKind::Prelim, 0xB2));
    let row = metrics.summary("prelim");

    // Paper: h = 19.1%, h_b = 15.9%.
    assert!((0.10..0.30).contains(&row.h()), "h {}", row.h());
    assert!((0.08..0.25).contains(&row.h_b()), "h_b {}", row.h_b());

    // Paper: mean ~130 SSIDs tried per connected client (range 20-250).
    let mean = metrics.mean_offered_to_connected();
    assert!((80.0..260.0).contains(&mean), "mean offered {mean}");

    // Paper: ~74% of broadcast hits come from WiGLE SSIDs — WiGLE must
    // dominate direct probes as a source.
    let (wigle, direct, _) = metrics.source_breakdown();
    assert!(
        wigle > 2 * direct,
        "WiGLE ({wigle}) must dominate direct probes ({direct})"
    );
}

#[test]
fn table3_shape_prelim_in_passage() {
    let data = data();
    let metrics = run_experiment(&data, &RunConfig::passage_30min(AttackerKind::Prelim, 0xC1));
    let row = metrics.summary("passage");

    // Paper: h = 6.3%, h_b = 4.1% — far below the canteen.
    assert!((0.02..0.13).contains(&row.h()), "h {}", row.h());
    assert!((0.01..0.10).contains(&row.h_b()), "h_b {}", row.h_b());

    // Fig. 2(b): most passage clients see exactly one 40-SSID burst,
    // a meaningful minority see two.
    let offered: Vec<usize> = metrics
        .offered_counts(false)
        .into_iter()
        .filter(|&c| c > 0)
        .collect();
    let one_burst = offered.iter().filter(|&&c| c <= 40).count() as f64;
    let two_bursts = offered.iter().filter(|&&c| c > 40 && c <= 80).count() as f64;
    let n = offered.len() as f64;
    assert!(one_burst / n > 0.5, "one-burst share {}", one_burst / n);
    assert!(two_bursts / n > 0.05, "two-burst share {}", two_bursts / n);
    assert!(
        (one_burst + two_bursts) / n > 0.85,
        "three+ bursts should be rare"
    );
}

#[test]
fn headline_improvement_factor() {
    // Abstract: City-Hunter's h_b is 12-18%, "about 4-8 times improvement
    // compared to MANA" (3%). Require at least 3x here.
    let data = data();
    let mana =
        run_experiment(&data, &RunConfig::canteen_30min(AttackerKind::Mana, 0xE1)).summary("mana");
    let full = run_experiment(
        &data,
        &RunConfig::canteen_30min(AttackerKind::CityHunter(CityHunterConfig::default()), 0xE1),
    )
    .summary("full");
    assert!((0.08..0.25).contains(&full.h_b()), "h_b {}", full.h_b());
    assert!(
        full.h_b() >= 3.0 * mana.h_b().max(0.005),
        "improvement {} vs {}",
        full.h_b(),
        mana.h_b()
    );
}

#[test]
fn client_volumes_match_paper_scale() {
    // Paper: ~614-688 clients per 30-min canteen test; ~1356 per 30-min
    // passage test; 2562 in the 8-9am passage hour.
    let data = data();
    let canteen = run_experiment(&data, &RunConfig::canteen_30min(AttackerKind::Karma, 0xF1))
        .summary("canteen");
    assert!(
        (350..950).contains(&canteen.total_clients),
        "canteen clients {}",
        canteen.total_clients
    );
    let passage = run_experiment(&data, &RunConfig::passage_30min(AttackerKind::Karma, 0xF2))
        .summary("passage");
    assert!(
        (700..2000).contains(&passage.total_clients),
        "passage clients {}",
        passage.total_clients
    );
}

//! Opt-in stress test (`cargo test -- --ignored`): a full-length,
//! full-volume deployment end to end in one process, checking nothing
//! degenerates at scale.

use city_hunter::prelude::*;
use city_hunter::sim::SimDuration;

#[test]
#[ignore = "stress: one full simulated hour at 4x crowd density"]
fn one_hour_quadruple_density_canteen() {
    let data = CityData::standard(0x57E);
    let config = RunConfig {
        venue: VenueKind::Canteen,
        start_hour: 12,
        duration: SimDuration::from_hours(1),
        attacker: AttackerKind::CityHunter(CityHunterConfig::default()),
        seed: 1,
        lure_budget: None,
        loss: None,
        population: None,
        arrival_multiplier: Some(4.0),
        fault: None,
        detector: None,
    };
    let metrics = run_experiment(&data, &config);
    let row = metrics.summary("stress");
    assert!(row.total_clients > 3_000, "{}", row.total_clients);
    assert!(row.h() >= row.h_b());
    assert!((0.02..0.40).contains(&row.h_b()), "h_b {}", row.h_b());
    // Offered counts stay bounded by the (grown) database size.
    let max_offered = metrics.offered_counts(false).into_iter().max().unwrap();
    let final_db = metrics.db_series().last().unwrap().1;
    assert!(max_offered <= final_db, "{max_offered} > {final_db}");
}

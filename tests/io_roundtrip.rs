//! I/O round-trips through the full stack: pcap captures of live runs and
//! WiGLE-CSV snapshots driving experiments.

use city_hunter::geo::csv::{from_csv, to_csv};
use city_hunter::prelude::*;
use city_hunter::scenarios::runner::{run_experiment_observed, PcapObserver};
use city_hunter::sim::SimDuration;
use city_hunter::wifi::frame::MgmtSubtype;
use city_hunter::wifi::pcap::read_capture;

fn short_config(seed: u64) -> RunConfig {
    RunConfig {
        venue: VenueKind::Canteen,
        start_hour: 12,
        duration: SimDuration::from_mins(5),
        attacker: AttackerKind::CityHunter(CityHunterConfig::default()),
        seed,
        lure_budget: None,
        loss: None,
        population: None,
        arrival_multiplier: None,
        fault: None,
        detector: None,
    }
}

#[test]
fn live_run_pcap_roundtrip() {
    let data = CityData::standard(0x10A);
    let mut observer = PcapObserver::new(Vec::new()).expect("header writes");
    let metrics = run_experiment_observed(&data, &short_config(1), &mut observer);
    let frames_written = observer.frames_written();
    let bytes = observer.into_inner();

    let capture = read_capture(&bytes[..]).expect("own capture re-reads");
    assert_eq!(capture.len() as u64, frames_written);
    assert!(
        capture.len() > 1_000,
        "capture too small: {}",
        capture.len()
    );

    // Timestamps are non-decreasing (air order).
    for pair in capture.windows(2) {
        assert!(pair[0].at <= pair[1].at);
    }

    // The frame census is coherent with the metrics: every hit produced
    // one auth request + response + assoc request + response.
    let count = |st: MgmtSubtype| capture.iter().filter(|c| c.frame.subtype() == st).count();
    let hits = metrics
        .clients()
        .filter(|(_, rec)| rec.hit.is_some())
        .count();
    assert_eq!(count(MgmtSubtype::Authentication), 2 * hits);
    assert_eq!(count(MgmtSubtype::AssocRequest), hits);
    assert_eq!(count(MgmtSubtype::AssocResponse), hits);
    assert!(count(MgmtSubtype::ProbeRequest) > 0);
    assert!(count(MgmtSubtype::ProbeResponse) > count(MgmtSubtype::ProbeRequest));
}

#[test]
fn observed_and_unobserved_runs_agree() {
    // Attaching the observer must not perturb the simulation.
    let data = CityData::standard(0x10B);
    let config = short_config(2);
    let mut observer = PcapObserver::new(Vec::new()).expect("header writes");
    let observed = run_experiment_observed(&data, &config, &mut observer);
    let plain = run_experiment(&data, &config);
    assert_eq!(observed.summary("x"), plain.summary("x"));
    assert_eq!(observed.db_series(), plain.db_series());
}

#[test]
fn csv_snapshot_drives_identical_experiments() {
    // Export the synthetic WiGLE snapshot to CSV, re-import it, and run
    // the same deployment on both: identity fields round-trip exactly and
    // locations round-trip to ~0.1 m, so the experiments must agree.
    let original = CityData::standard(0x10C);
    let restored_wigle = from_csv(&to_csv(&original.wigle)).expect("csv parses");
    assert_eq!(original.wigle.len(), restored_wigle.len());
    let restored = CityData {
        city: original.city.clone(),
        wigle: restored_wigle,
        heat: original.heat.clone(),
    };
    let config = short_config(3);
    let a = run_experiment(&original, &config).summary("x");
    let b = run_experiment(&restored, &config).summary("x");
    assert_eq!(a, b, "an imported snapshot must reproduce the experiment");
}

//! Smoke tests for the table/figure drivers: every outcome renders, and
//! the paper's qualitative observations hold on the rendered artifacts.

use city_hunter::scenarios::experiments as exp;

fn data() -> city_hunter::scenarios::CityData {
    exp::standard_city()
}

#[test]
fn fig1_series_are_coherent() {
    let data = data();
    let outcome = exp::fig1_with(&data, 9);
    // 30 one-minute samples (plus the t=0 sample).
    assert!(outcome.db_size.len() >= 30);
    // MANA's database only grows.
    for pair in outcome.db_size.windows(2) {
        assert!(pair[0].1 <= pair[1].1);
    }
    // Cumulative connections are monotone.
    for pair in outcome.connected.windows(2) {
        assert!(pair[0].1 <= pair[1].1);
    }
    // The §III-A point: the *last* windows are not systematically better
    // than the first, despite the database having grown severalfold.
    let rates: Vec<f64> = outcome
        .realtime_hb
        .iter()
        .map(|(_, hit, seen)| {
            if *seen == 0 {
                0.0
            } else {
                *hit as f64 / *seen as f64
            }
        })
        .collect();
    let first_half: f64 = rates[..rates.len() / 2].iter().sum::<f64>() / (rates.len() / 2) as f64;
    let second_half: f64 =
        rates[rates.len() / 2..].iter().sum::<f64>() / (rates.len() - rates.len() / 2) as f64;
    assert!(
        second_half < first_half + 0.08,
        "h_b^r should not climb with DB size: {first_half} -> {second_half}"
    );
    let rendered = outcome.render();
    assert!(rendered.contains("Fig. 1(a)"));
    assert!(rendered.contains("h_b^r"));
}

#[test]
fn fig2_depth_distributions() {
    let data = data();
    let outcome = exp::fig2_with(&data, 9);
    // Canteen panel: deep (mean in the paper's 100-200 ballpark).
    let mean = outcome.canteen_mean();
    assert!((80.0..260.0).contains(&mean), "canteen mean {mean}");
    // Passage panel: shallow — nobody below 40 once observed, most at 40.
    assert!(!outcome.passage_offered_all.is_empty());
    let at_most_one_burst = outcome
        .passage_offered_all
        .iter()
        .filter(|&&c| c <= 40)
        .count() as f64
        / outcome.passage_offered_all.len() as f64;
    assert!(
        at_most_one_burst > 0.5,
        "single-burst share {at_most_one_burst}"
    );
    let rendered = outcome.render();
    assert!(rendered.contains("Fig. 2(a)"));
    assert!(rendered.contains("Fig. 2(b)"));
}

#[test]
fn table4_and_fig4_render() {
    let data = data();
    let t4 = exp::table4_with(&data);
    assert!(t4.render().contains("heat value"));
    // Contrast: heat ranking differs from count ranking.
    let by_count: Vec<_> = t4.by_ap_count.iter().map(|(s, _)| s.clone()).collect();
    let by_heat: Vec<_> = t4.by_heat.iter().map(|(s, _)| s.clone()).collect();
    assert_ne!(by_count, by_heat, "the two rankings must differ");

    let f4 = exp::fig4_with(&data);
    assert_eq!(f4.panels.len(), 2);
    assert!(f4.render().contains("Kowloon"));
}

#[test]
fn mini_campaign_preserves_venue_ordering() {
    // One representative hour per venue (noon) — the cheap version of the
    // Fig. 5 ordering check.
    let data = data();
    let outcome = exp::campaign_with(&data, 5, &[12]);
    assert_eq!(outcome.venues.len(), 4);
    let hb = |venue: city_hunter::mobility::VenueKind| {
        outcome
            .venues
            .iter()
            .find(|v| v.venue == venue)
            .expect("venue present")
            .average_hb()
    };
    use city_hunter::mobility::VenueKind::*;
    assert!(
        hb(Canteen) > hb(SubwayPassage),
        "canteen {} vs passage {}",
        hb(Canteen),
        hb(SubwayPassage)
    );
    // Every hour row renders into both figures.
    assert!(outcome.render_fig5().contains("12:00"));
    assert!(outcome.render_fig6().contains("ratio"));
}

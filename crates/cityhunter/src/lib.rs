//! # city-hunter — SSID-luring evil-twin attacks in simulated urban areas
//!
//! A research reproduction of **"City-Hunter: Hunting Smartphones in Urban
//! Areas"** (Liu, Wen, Tang, Cao, Shen — ICDCS 2017), built as a pure-Rust
//! simulation study. The crate is a facade over the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`wifi`] | `ch-wifi` | 802.11 management frames, SSIDs, MACs, codec, scan timing |
//! | [`sim`] | `ch-sim` | deterministic discrete-event kernel, RNG, radio medium |
//! | [`geo`] | `ch-geo` | synthetic city, WiGLE-like AP snapshot, photo heat map |
//! | [`mobility`] | `ch-mobility` | venues, arrival processes, trajectories |
//! | [`phone`] | `ch-phone` | PNL generation, probing policies, auto-join logic |
//! | [`arc`] | `ch-arc` | the ARC cache (the §IV-C design inspiration) + baselines |
//! | [`attack`] | `ch-attack` | KARMA, MANA, preliminary & full City-Hunter |
//! | [`defense`] | `ch-defense` | client/operator-side evil-twin detection |
//! | [`detect`] | `ch-detect` | signature/behavior rogue-AP monitor + arms-race scoring |
//! | [`scenarios`] | `ch-scenarios` | experiment runner, metrics, table/figure drivers |
//!
//! ## Quickstart
//!
//! Deploy the full City-Hunter in a canteen for 30 simulated minutes:
//!
//! ```
//! use city_hunter::prelude::*;
//!
//! let data = CityData::standard(7);
//! let config = RunConfig::canteen_30min(
//!     AttackerKind::CityHunter(CityHunterConfig::default()),
//!     42,
//! );
//! let metrics = run_experiment(&data, &config);
//! let row = metrics.summary("City-Hunter");
//! assert!(row.h() >= row.h_b());
//! println!("h = {:.1}%, h_b = {:.1}%", 100.0 * row.h(), 100.0 * row.h_b());
//! ```
//!
//! Regenerate any of the paper's tables/figures with the drivers in
//! [`scenarios::experiments`], or from the command line:
//!
//! ```text
//! cargo run --release -p ch-bench --bin table1   # … table2 table3 table4
//! cargo run --release -p ch-bench --bin fig1     # … fig2 fig4 fig5 fig6
//! cargo run --release -p ch-bench --bin ablation
//! ```

pub use ch_arc as arc;
pub use ch_attack as attack;
pub use ch_defense as defense;
pub use ch_detect as detect;
pub use ch_geo as geo;
pub use ch_mobility as mobility;
pub use ch_phone as phone;
pub use ch_scenarios as scenarios;
pub use ch_sim as sim;
pub use ch_wifi as wifi;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use ch_attack::{
        Attacker, CityHunter, CityHunterConfig, KarmaAttacker, Lure, LureLane, LureSource,
        ManaAttacker, PrelimCityHunter,
    };
    pub use ch_geo::{CityModel, HeatMap, PhotoCollection, WigleSnapshot};
    pub use ch_mobility::{VenueKind, VenueTemplate};
    pub use ch_phone::{Phone, Pnl, PnlEntry, PopulationBuilder, PopulationParams};
    pub use ch_scenarios::{
        run_experiment, AttackerKind, CityData, ExperimentMetrics, RunConfig, SummaryRow,
    };
    pub use ch_sim::{SimDuration, SimRng, SimTime};
    pub use ch_wifi::{MacAddr, Ssid};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        use crate::prelude::*;
        let ssid = Ssid::new("CSL").unwrap();
        assert_eq!(ssid.as_str(), "CSL");
        let _ = SimDuration::from_mins(30);
        let _ = VenueKind::ALL;
    }
}

//! A minimal JSON value — parser and serializer — for the fleet's
//! manifest and telemetry artifacts.
//!
//! The workspace builds offline (no serde), so the subset the fleet needs
//! is implemented here: finite numbers, strings, bools, null, arrays, and
//! objects with **insertion-ordered** keys. Key order is preserved on
//! both ends so that artifacts render byte-identically run after run.
//!
//! Numbers round-trip exactly: integers up to 2^53 are rendered without a
//! fraction, and everything else uses Rust's shortest-round-trip float
//! formatting, which `str::parse::<f64>` inverts losslessly.

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An integer value (exact for `u64` up to 2^53).
    pub fn from_u64(n: u64) -> Json {
        Json::Num(n as f64)
    }

    /// An integer value for `usize` counts.
    pub fn from_usize(n: usize) -> Json {
        Json::Num(n as f64)
    }

    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer (rejects fractions).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n.fract() == 0.0 && (0.0..=9.007_199_254_740_992e15).contains(&n) {
            Some(n as u64)
        } else {
            None
        }
    }

    /// [`Json::as_u64`] narrowed to `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        usize::try_from(self.as_u64()?).ok()
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value as compact JSON (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => render_number(*n, out),
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(key, out);
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON value from `text` (whole-input; trailing garbage is
    /// an error).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing input at byte {pos}"));
        }
        Ok(value)
    }
}

/// Largest integer exactly representable in an `f64`.
const MAX_EXACT_INT: f64 = 9.007_199_254_740_992e15;

fn render_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // The fleet never produces these; stay valid JSON regardless.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() <= MAX_EXACT_INT {
        out.push_str(&format!("{}", n as i64));
    } else {
        // Rust's shortest round-trip formatting: parses back bit-exact.
        out.push_str(&format!("{n}"));
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while bytes
        .get(*pos)
        .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
    {
        *pos += 1;
    }
}

fn expect_byte(bytes: &[u8], pos: &mut usize, want: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&want) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", want as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        Some(other) => Err(format!("unexpected `{}` at byte {}", *other as char, *pos)),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Json,
) -> Result<Json, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("expected `{literal}` at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while bytes
        .get(*pos)
        .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    let n: f64 = text
        .parse()
        .map_err(|_| format!("bad number `{text}` at byte {start}"))?;
    if !n.is_finite() {
        return Err(format!("non-finite number `{text}` at byte {start}"));
    }
    Ok(Json::Num(n))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect_byte(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let unit = parse_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        let c = if (0xD800..0xDC00).contains(&unit) {
                            // High surrogate: a `\uXXXX` low half must follow.
                            if bytes.get(*pos + 1) != Some(&b'\\')
                                || bytes.get(*pos + 2) != Some(&b'u')
                            {
                                return Err("lone high surrogate".to_string());
                            }
                            let low = parse_hex4(bytes, *pos + 3)?;
                            *pos += 6;
                            let combined =
                                0x10000 + ((unit - 0xD800) << 10) + (low.wrapping_sub(0xDC00));
                            char::from_u32(combined).ok_or("bad surrogate pair")?
                        } else {
                            char::from_u32(unit).ok_or("bad \\u escape")?
                        };
                        out.push(c);
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so any
                // multi-byte sequence is well-formed).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], at: usize) -> Result<u32, String> {
    let chunk = bytes
        .get(at..at + 4)
        .ok_or_else(|| format!("truncated \\u escape at byte {at}"))?;
    let text = std::str::from_utf8(chunk).map_err(|e| e.to_string())?;
    u32::from_str_radix(text, 16).map_err(|_| format!("bad \\u escape `{text}`"))
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect_byte(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect_byte(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect_byte(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-17", "1.5", "\"hi\""] {
            let value = Json::parse(text).unwrap();
            assert_eq!(value.render(), text, "round-trip of {text}");
        }
    }

    #[test]
    fn floats_round_trip_bit_exact() {
        for x in [0.1, 1.0 / 3.0, 1e-300, 123456.789012345, f64::MAX] {
            let rendered = Json::Num(x).render();
            let back = Json::parse(&rendered).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {rendered}");
        }
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::from_u64(48).render(), "48");
        assert_eq!(Json::from_usize(0).render(), "0");
        assert_eq!(Json::Num(-3.0).render(), "-3");
        assert_eq!(Json::parse("42").unwrap().as_usize(), Some(42));
        assert_eq!(Json::parse("1.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
    }

    #[test]
    fn nested_structures_round_trip() {
        let text =
            r#"{"key":"fig5/canteen/h12","n":3,"ok":true,"xs":[1,2.5,"s"],"sub":{"a":null}}"#;
        let value = Json::parse(text).unwrap();
        assert_eq!(value.render(), text);
        assert_eq!(
            value.get("key").and_then(Json::as_str),
            Some("fig5/canteen/h12")
        );
        assert_eq!(value.get("n").and_then(Json::as_usize), Some(3));
        assert_eq!(value.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            value.get("xs").and_then(Json::as_arr).map(<[Json]>::len),
            Some(3)
        );
        assert_eq!(value.get("missing"), None);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let original = "line\nbreak \"quoted\" back\\slash tab\t漢字 \u{1}";
        let rendered = Json::str(original).render();
        assert_eq!(Json::parse(&rendered).unwrap().as_str(), Some(original));
        // Escapes parse too, including surrogate pairs.
        let escaped = "\"\\u0041\\u00e9\\ud83d\\ude00\"";
        assert_eq!(Json::parse(escaped).unwrap().as_str(), Some("Aé😀"));
        assert_eq!(Json::parse(r#""Aé😀""#).unwrap().as_str(), Some("Aé😀"));
    }

    #[test]
    fn whitespace_tolerated_garbage_rejected() {
        assert!(Json::parse("  { \"a\" : [ 1 , 2 ] }\n").is_ok());
        assert!(Json::parse("{\"a\":1} trailing").is_err());
        assert!(Json::parse("{\"a\"").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("1e999").is_err(), "non-finite rejected");
        assert!(Json::parse("\"\\ud800 lone\"").is_err());
    }
}

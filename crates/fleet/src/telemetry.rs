//! Wall-clock timing and the `BENCH_fleet.json` emitter.
//!
//! This is the **only** module in the determinism-critical crates that
//! may read the wall clock. The allowance is scoped to exactly this file
//! in `ch-lint.toml` (`[scoped-allow] nondeterminism = ...`) and pinned
//! by `crates/analysis/tests/workspace_clean.rs` — timing code added
//! anywhere else in `ch-fleet` fails the lint gate. Timing is telemetry
//! only: no simulation result may depend on a [`Stopwatch`] reading.
//!
//! [`record_bench`] maintains two artifacts side by side:
//!
//! * `BENCH_fleet.jsonl` — an append-only log, one line per campaign run
//!   (the source of truth, safe to append from any run);
//! * `BENCH_fleet.json` — regenerated from the log on every call: the
//!   latest run per `(campaign, jobs)` pair, so serial (`--jobs 1`) and
//!   parallel (`--jobs N`) timings sit next to each other for speedup
//!   comparisons.

use std::fs;
use std::io::Write;
use std::path::Path;
use std::time::Instant;

use crate::json::Json;

/// A started wall-clock timer.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    #[must_use]
    pub fn start() -> Stopwatch {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Milliseconds elapsed since [`Stopwatch::start`].
    #[must_use]
    pub fn elapsed_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e3
    }
}

/// One campaign run's timing record.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRun {
    /// Campaign name (`fig5`, `ablation`, …).
    pub campaign: String,
    /// Requested worker width (`--jobs N`): the slot key, so serial and
    /// parallel legs of the same campaign sit side by side.
    pub jobs: usize,
    /// Worker threads actually spawned — [`jobs`](Self::jobs) capped at
    /// the machine's parallelism (`worker_cap`). On a single-core host a
    /// `--jobs 8` leg records `threads: 1`.
    pub threads: usize,
    /// End-to-end campaign wall-clock, in milliseconds.
    pub total_ms: f64,
    /// Jobs actually executed this run.
    pub executed: usize,
    /// Jobs skipped because the manifest already recorded them.
    pub cached: usize,
    /// Jobs that panicked.
    pub failed: usize,
    /// Per-job wall-clock `(key, ms)`, in campaign order. Cached jobs
    /// report the time recorded when they originally ran. Summarised to
    /// `job_ms_p50`/`p95`/`max` in the emitted entry; the full per-key
    /// map is dumped only when [`full`](Self::full) is set.
    pub job_ms: Vec<(String, f64)>,
    /// Emit the unbounded per-job map alongside the percentile summary
    /// (the `--bench-full` flag).
    pub full: bool,
}

impl BenchRun {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("campaign".into(), Json::str(&self.campaign)),
            ("jobs".into(), Json::from_usize(self.jobs)),
            ("threads".into(), Json::from_usize(self.threads)),
            ("total_ms".into(), Json::Num(self.total_ms)),
            ("executed".into(), Json::from_usize(self.executed)),
            ("cached".into(), Json::from_usize(self.cached)),
            ("failed".into(), Json::from_usize(self.failed)),
        ];
        if !self.job_ms.is_empty() {
            let mut sorted: Vec<f64> = self.job_ms.iter().map(|(_, ms)| *ms).collect();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            // Nearest-rank percentiles: index ceil(q·n) - 1 on the sorted
            // sample, so p50/p95 are actual observed job times.
            let rank = |q: f64| {
                let n = sorted.len();
                let idx = (q * n as f64).ceil() as usize;
                sorted[idx.clamp(1, n) - 1]
            };
            fields.push(("job_ms_p50".into(), Json::Num(rank(0.50))));
            fields.push(("job_ms_p95".into(), Json::Num(rank(0.95))));
            fields.push(("job_ms_max".into(), Json::Num(sorted[sorted.len() - 1])));
        }
        if self.full {
            fields.push((
                "job_ms".into(),
                Json::Obj(
                    self.job_ms
                        .iter()
                        .map(|(key, ms)| (key.clone(), Json::Num(*ms)))
                        .collect(),
                ),
            ));
        }
        Json::Obj(fields)
    }
}

/// Appends `run` to the sibling `.jsonl` log and regenerates `json_path`
/// with the latest run per `(campaign, jobs)` pair.
pub fn record_bench(json_path: &Path, run: &BenchRun) -> Result<(), String> {
    if let Some(parent) = json_path.parent().filter(|p| !p.as_os_str().is_empty()) {
        fs::create_dir_all(parent)
            .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
    }
    let log_path = json_path.with_extension("jsonl");
    {
        let mut log = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&log_path)
            .map_err(|e| format!("cannot open {}: {e}", log_path.display()))?;
        writeln!(log, "{}", run.to_json().render())
            .map_err(|e| format!("cannot append {}: {e}", log_path.display()))?;
    }

    // Latest entry per (campaign, jobs), in first-seen order.
    let text = fs::read_to_string(&log_path)
        .map_err(|e| format!("cannot read {}: {e}", log_path.display()))?;
    let mut entries: Vec<(String, Json)> = Vec::new();
    for line in text.lines() {
        let Ok(entry) = Json::parse(line) else {
            continue; // torn line from a killed run
        };
        let (Some(campaign), Some(jobs)) = (
            entry.get("campaign").and_then(Json::as_str),
            entry.get("jobs").and_then(Json::as_u64),
        ) else {
            continue;
        };
        let slot_key = format!("{campaign}@jobs={jobs}");
        match entries.iter_mut().find(|(k, _)| *k == slot_key) {
            Some((_, slot)) => *slot = entry,
            None => entries.push((slot_key, entry)),
        }
    }

    // Report-only speedup annotation: when a campaign has both a serial
    // (`jobs=1`) slot and wider ones, each wider slot gains the serial
    // reference and its wall-clock speedup. The append-only `.jsonl` log
    // stays raw; only the regenerated summary carries derived fields.
    let serial_ms: Vec<(String, f64)> = entries
        .iter()
        .filter(|(key, _)| key.ends_with("@jobs=1"))
        .filter_map(|(key, entry)| {
            let campaign = key.trim_end_matches("@jobs=1").to_string();
            entry
                .get("total_ms")
                .and_then(Json::as_f64)
                .map(|ms| (campaign, ms))
        })
        .collect();
    for (key, entry) in &mut entries {
        if key.ends_with("@jobs=1") {
            continue;
        }
        let Some((campaign, _)) = key.rsplit_once("@jobs=") else {
            continue;
        };
        let Some(&(_, serial)) = serial_ms.iter().find(|(c, _)| c == campaign) else {
            continue;
        };
        let Some(total) = entry.get("total_ms").and_then(Json::as_f64) else {
            continue;
        };
        if let Json::Obj(fields) = entry {
            fields.retain(|(name, _)| name != "serial_total_ms" && name != "speedup_vs_serial");
            fields.push(("serial_total_ms".into(), Json::Num(serial)));
            if total > 0.0 {
                fields.push(("speedup_vs_serial".into(), Json::Num(serial / total)));
            }
        }
    }

    let mut out = String::from("{\n  \"entries\": [");
    for (i, (_, entry)) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        out.push_str(&entry.render());
    }
    out.push_str("\n  ]\n}\n");
    fs::write(json_path, out).map_err(|e| format!("cannot write {}: {e}", json_path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_json(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ch-fleet-bench-{}-{tag}.json", std::process::id()))
    }

    fn run(campaign: &str, jobs: usize, total_ms: f64) -> BenchRun {
        BenchRun {
            campaign: campaign.into(),
            jobs,
            threads: jobs,
            total_ms,
            executed: 2,
            cached: 0,
            failed: 0,
            job_ms: vec![("a".into(), 1.0), ("b".into(), 2.0)],
            full: false,
        }
    }

    #[test]
    fn bench_file_keeps_latest_per_campaign_and_width() {
        let path = temp_json("merge");
        let _ = fs::remove_file(&path);
        let _ = fs::remove_file(path.with_extension("jsonl"));

        record_bench(&path, &run("fig5", 1, 100.0)).unwrap();
        record_bench(&path, &run("fig5", 4, 30.0)).unwrap();
        record_bench(&path, &run("fig5", 1, 90.0)).unwrap(); // supersedes
        record_bench(&path, &run("ablation", 4, 50.0)).unwrap();

        let text = fs::read_to_string(&path).unwrap();
        let doc = Json::parse(&text).unwrap();
        let entries = doc.get("entries").and_then(Json::as_arr).unwrap();
        assert_eq!(entries.len(), 3, "{text}");
        let fig5_serial = entries
            .iter()
            .find(|e| {
                e.get("campaign").and_then(Json::as_str) == Some("fig5")
                    && e.get("jobs").and_then(Json::as_u64) == Some(1)
            })
            .unwrap();
        assert_eq!(
            fig5_serial.get("total_ms").and_then(Json::as_f64),
            Some(90.0),
            "latest run wins"
        );
        assert_eq!(
            fig5_serial.get("job_ms_p50").and_then(Json::as_f64),
            Some(1.0),
            "compact percentile summary recorded"
        );
        assert_eq!(
            fig5_serial.get("job_ms_max").and_then(Json::as_f64),
            Some(2.0)
        );
        assert!(
            fig5_serial.get("job_ms").is_none(),
            "full per-job map stays off without --bench-full"
        );

        let _ = fs::remove_file(&path);
        let _ = fs::remove_file(path.with_extension("jsonl"));
    }

    #[test]
    fn full_mode_dumps_the_per_job_map() {
        let path = temp_json("full");
        let _ = fs::remove_file(&path);
        let _ = fs::remove_file(path.with_extension("jsonl"));

        let mut full = run("fig5", 8, 40.0);
        full.full = true;
        record_bench(&path, &full).unwrap();

        let doc = Json::parse(&fs::read_to_string(&path).unwrap()).unwrap();
        let entry = &doc.get("entries").and_then(Json::as_arr).unwrap()[0];
        assert_eq!(
            entry
                .get("job_ms")
                .and_then(|m| m.get("a"))
                .and_then(Json::as_f64),
            Some(1.0),
            "full map present under --bench-full"
        );
        assert_eq!(entry.get("job_ms_p95").and_then(Json::as_f64), Some(2.0));

        let _ = fs::remove_file(&path);
        let _ = fs::remove_file(path.with_extension("jsonl"));
    }

    #[test]
    fn parallel_slots_report_speedup_vs_serial() {
        let path = temp_json("speedup");
        let _ = fs::remove_file(&path);
        let _ = fs::remove_file(path.with_extension("jsonl"));

        record_bench(&path, &run("fig5", 1, 90.0)).unwrap();
        record_bench(&path, &run("fig5", 4, 30.0)).unwrap();
        record_bench(&path, &run("lonely", 4, 25.0)).unwrap(); // no serial slot

        let doc = Json::parse(&fs::read_to_string(&path).unwrap()).unwrap();
        let entries = doc.get("entries").and_then(Json::as_arr).unwrap();
        let slot = |campaign: &str, jobs: u64| {
            entries
                .iter()
                .find(|e| {
                    e.get("campaign").and_then(Json::as_str) == Some(campaign)
                        && e.get("jobs").and_then(Json::as_u64) == Some(jobs)
                })
                .unwrap()
        };
        let parallel = slot("fig5", 4);
        assert_eq!(
            parallel.get("serial_total_ms").and_then(Json::as_f64),
            Some(90.0)
        );
        assert_eq!(
            parallel.get("speedup_vs_serial").and_then(Json::as_f64),
            Some(3.0)
        );
        // The serial slot itself and campaigns with no serial reference
        // stay unannotated.
        assert!(slot("fig5", 1).get("speedup_vs_serial").is_none());
        assert!(slot("lonely", 4).get("speedup_vs_serial").is_none());

        let _ = fs::remove_file(&path);
        let _ = fs::remove_file(path.with_extension("jsonl"));
    }

    #[test]
    fn stopwatch_monotone() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_ms();
        let b = sw.elapsed_ms();
        assert!(a >= 0.0 && b >= a);
    }
}

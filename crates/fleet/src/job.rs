//! The job model: stable keys and deterministic per-job seeds.
//!
//! A campaign is a list of jobs (venue × hour × seed × attacker-config,
//! or whatever axes a study sweeps). Two properties make campaigns
//! reproducible and resumable:
//!
//! 1. every job has a **stable key** — a human-readable path-like string
//!    (`fig5/canteen/h12`) that identifies the job across runs and is the
//!    unit of manifest-based resume;
//! 2. per-job seeds are **derived, never drawn**: [`derive_seed`] hashes
//!    `(campaign seed, key)` through the same SplitMix/FNV construction
//!    as [`ch_sim::SimRng::fork`], so a job's seed depends only on its
//!    identity — not on scheduling order, thread count, or which other
//!    jobs exist.

use ch_sim::SimRng;

/// Something the engine can schedule: a job with a stable key.
///
/// Keys must be unique within a campaign and should be path-like
/// (`study/axis-value/axis-value`) so manifests stay greppable.
pub trait JobSpec {
    /// The job's stable key.
    fn key(&self) -> String;
}

/// Derives the seed for one job from the campaign seed and the job key.
///
/// Equivalent to `SimRng::seed_from(campaign_seed).fork(key).seed()`:
/// label-keyed forking, so the derived stream is independent of every
/// other job's and of the campaign-level stream itself.
pub fn derive_seed(campaign_seed: u64, key: &str) -> u64 {
    SimRng::seed_from(campaign_seed).fork(key).seed()
}

/// A stable 64-bit fingerprint of a campaign's configuration.
///
/// Used as the manifest validity check: a manifest written under one
/// `(campaign, fingerprint)` pair is discarded — not wrongly reused —
/// when any configuration axis changes. FNV-1a over the parts with a
/// separator byte, so `["ab", "c"]` and `["a", "bc"]` differ.
pub fn fingerprint(parts: &[&str]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut absorb = |byte: u8| {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for part in parts {
        for &byte in part.as_bytes() {
            absorb(byte);
        }
        absorb(0xFF);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_seed_matches_simrng_fork() {
        assert_eq!(
            derive_seed(7, "fig5/canteen/h12"),
            SimRng::seed_from(7).fork("fig5/canteen/h12").seed()
        );
    }

    #[test]
    fn derive_seed_separates_jobs_and_campaigns() {
        let a = derive_seed(1, "fig5/canteen/h12");
        assert_ne!(a, derive_seed(1, "fig5/canteen/h13"));
        assert_ne!(a, derive_seed(2, "fig5/canteen/h12"));
        // Stable across calls (and, by construction, across processes).
        assert_eq!(a, derive_seed(1, "fig5/canteen/h12"));
    }

    #[test]
    fn fingerprint_is_order_and_boundary_sensitive() {
        assert_ne!(fingerprint(&["ab", "c"]), fingerprint(&["a", "bc"]));
        assert_ne!(fingerprint(&["a", "b"]), fingerprint(&["b", "a"]));
        assert_eq!(fingerprint(&[]), fingerprint(&[]));
        assert_ne!(fingerprint(&[""]), fingerprint(&[]));
    }
}

//! The campaign orchestrator: pool + manifest + telemetry + panic walls.
//!
//! [`run_campaign`] executes a list of [`JobSpec`]s through the worker
//! pool with three guarantees:
//!
//! 1. **determinism** — outcomes are aggregated in *input order*, so a
//!    `--jobs 8` run is bit-identical to a `--jobs 1` run;
//! 2. **resumability** — with a manifest configured, finished jobs stream
//!    to disk as they complete and are skipped (status
//!    [`JobStatus::Cached`]) when the campaign re-runs;
//! 3. **isolation** — a panicking job becomes a structured
//!    [`JobStatus::Failed`] entry instead of tearing down the campaign.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use ch_sim::det_hash_set;

use crate::job::JobSpec;
use crate::manifest::{Manifest, ManifestCodec};
use crate::pool::{effective_jobs, scoped_parallel_map_with_state, worker_cap};
use crate::telemetry::{record_bench, BenchRun, Stopwatch};

/// How a campaign runs: worker width, manifest, telemetry sinks.
#[derive(Debug, Clone)]
pub struct FleetOptions {
    /// Campaign name — manifest header and bench entry key.
    pub campaign: String,
    /// Configuration fingerprint (see [`crate::job::fingerprint`]); a
    /// manifest written under a different fingerprint is discarded.
    pub fingerprint: u64,
    /// Worker threads; `None` defers to `CH_JOBS` then
    /// `available_parallelism` (see [`effective_jobs`]).
    pub jobs: Option<usize>,
    /// JSONL manifest path; `None` disables resume entirely.
    pub manifest: Option<PathBuf>,
    /// `BENCH_fleet.json` path; `None` disables timing emission.
    pub bench: Option<PathBuf>,
    /// Emit the full per-job `job_ms` map in bench entries (the
    /// `--bench-full` flag); compact percentile summaries are always on.
    pub bench_full: bool,
}

impl FleetOptions {
    /// Options with no on-disk artifacts: no manifest, no bench file.
    pub fn in_memory(campaign: &str, fingerprint: u64) -> FleetOptions {
        FleetOptions {
            campaign: campaign.to_string(),
            fingerprint,
            jobs: None,
            manifest: None,
            bench: None,
            bench_full: false,
        }
    }

    /// Sets the worker width (`None` keeps the default resolution).
    #[must_use]
    pub fn with_jobs(mut self, jobs: Option<usize>) -> FleetOptions {
        self.jobs = jobs;
        self
    }

    /// Enables manifest-based resume at `path`.
    #[must_use]
    pub fn with_manifest(mut self, path: impl Into<PathBuf>) -> FleetOptions {
        self.manifest = Some(path.into());
        self
    }

    /// Enables bench telemetry at `path`.
    #[must_use]
    pub fn with_bench(mut self, path: impl Into<PathBuf>) -> FleetOptions {
        self.bench = Some(path.into());
        self
    }

    /// Toggles the full per-job `job_ms` dump in bench entries.
    #[must_use]
    pub fn with_bench_full(mut self, full: bool) -> FleetOptions {
        self.bench_full = full;
        self
    }
}

/// Panic-message prefix that marks a failure as *transient*: injected or
/// environmental, worth re-running under a [`RetryPolicy`]. Anything else
/// is treated as a permanent defect and fails immediately — retrying a
/// deterministic panic would burn the whole attempt budget for nothing.
pub const TRANSIENT_PREFIX: &str = "transient:";

/// Whether a panic message opts into retry under a [`RetryPolicy`].
pub fn is_transient(message: &str) -> bool {
    message.starts_with(TRANSIENT_PREFIX)
}

/// Bounded, deterministic retry for jobs that panic with a
/// [`TRANSIENT_PREFIX`] message.
///
/// Determinism is preserved because a retried job re-derives everything
/// from its stable key (see [`crate::job::derive_seed`]); the attempt
/// index is handed to the job closure purely so *injected* transients can
/// decide to clear. A campaign that retries is bit-identical to one that
/// never failed.
///
/// With [`RetryPolicy::with_backoff`] the engine additionally waits
/// between attempts on an exponential schedule. The wait for retry `k`
/// is drawn from the upper half of `min(cap, base · 2^(k-1))`
/// milliseconds, jittered by a [`derive_seed`]-keyed hash of the job key
/// — computed, never measured, so the schedule for a given
/// `(seed, key)` pair is reproducible across runs and machines. Backoff
/// only ever changes wall-clock, never results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    max_attempts: usize,
    backoff_base_ms: u64,
    backoff_cap_ms: u64,
}

impl RetryPolicy {
    /// No retry: every panic is final (the [`run_campaign`] default).
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            backoff_base_ms: 0,
            backoff_cap_ms: 0,
        }
    }

    /// Up to `n` retries after the first attempt (so `n + 1` attempts
    /// total) for transient failures, with no backoff between them.
    pub fn retries(n: usize) -> RetryPolicy {
        RetryPolicy {
            max_attempts: n.saturating_add(1),
            backoff_base_ms: 0,
            backoff_cap_ms: 0,
        }
    }

    /// Enables exponential backoff between attempts: the first retry
    /// waits on the order of `base_ms`, each further retry doubles the
    /// window, and no wait ever exceeds `cap_ms` (raised to `base_ms`
    /// if passed smaller).
    #[must_use]
    pub fn with_backoff(mut self, base_ms: u64, cap_ms: u64) -> RetryPolicy {
        self.backoff_base_ms = base_ms;
        self.backoff_cap_ms = cap_ms.max(base_ms);
        self
    }

    /// Total attempts allowed per job, first run included (always ≥ 1).
    pub fn max_attempts(&self) -> usize {
        self.max_attempts.max(1)
    }

    /// The wait before retry `attempt` (1-based) of the job with `key`,
    /// in milliseconds. Zero when backoff is not configured or `attempt`
    /// is zero. Deterministic: jitter comes from
    /// [`derive_seed`]`(seed, key#backoff{attempt})`, not a clock, and
    /// lands in `[window/2, window]` where
    /// `window = min(cap, base · 2^(attempt-1))`.
    pub fn backoff_ms(&self, seed: u64, key: &str, attempt: usize) -> u64 {
        if self.backoff_base_ms == 0 || attempt == 0 {
            return 0;
        }
        let shift = u32::try_from(attempt - 1).unwrap_or(u32::MAX);
        // A doubling past the value's headroom saturates instead of
        // wrapping, so deep attempt counts pin to the cap.
        let doubled = if shift > self.backoff_base_ms.leading_zeros() {
            u64::MAX
        } else {
            self.backoff_base_ms << shift
        };
        let window = doubled.min(self.backoff_cap_ms);
        let half = window / 2;
        let jitter = crate::job::derive_seed(seed, &format!("{key}#backoff{attempt}"));
        half + jitter % (window - half + 1)
    }
}

/// How one job ended.
#[derive(Debug, Clone, PartialEq)]
pub enum JobStatus<R> {
    /// Executed this run.
    Done(R),
    /// Skipped: the manifest already recorded this key.
    Cached(R),
    /// The job panicked; the campaign carried on.
    Failed(String),
}

/// One job's outcome, in campaign (input) order.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome<R> {
    /// The job's stable key.
    pub key: String,
    /// How it ended.
    pub status: JobStatus<R>,
    /// Wall-clock milliseconds (recorded run time for cached jobs).
    pub ms: f64,
}

impl<R> JobOutcome<R> {
    /// The result, if the job completed (fresh or cached).
    pub fn result(&self) -> Option<&R> {
        match &self.status {
            JobStatus::Done(r) | JobStatus::Cached(r) => Some(r),
            JobStatus::Failed(_) => None,
        }
    }
}

/// Campaign-level execution counters and timing.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetStats {
    /// Campaign name.
    pub campaign: String,
    /// Worker threads used.
    pub threads: usize,
    /// End-to-end wall-clock, in milliseconds.
    pub total_ms: f64,
    /// Jobs in the campaign.
    pub total: usize,
    /// Jobs executed this run.
    pub executed: usize,
    /// Jobs skipped via the manifest.
    pub cached: usize,
    /// Jobs that panicked.
    pub failed: usize,
    /// Transient-failure re-runs performed under the [`RetryPolicy`]
    /// (attempts beyond each job's first; zero without a policy).
    pub retried: usize,
}

impl FleetStats {
    /// One status line for a bin's stderr.
    pub fn render_line(&self) -> String {
        let retried = if self.retried > 0 {
            format!(", {} retried", self.retried)
        } else {
            String::new()
        };
        format!(
            "fleet: campaign `{}`: {} job(s) ({} executed, {} cached, {} failed{retried}) \
             on {} thread(s) in {:.0} ms",
            self.campaign,
            self.total,
            self.executed,
            self.cached,
            self.failed,
            self.threads,
            self.total_ms,
        )
    }
}

/// Everything a campaign run produced.
#[derive(Debug, Clone)]
pub struct CampaignReport<R> {
    /// Per-job outcomes, in input order.
    pub outcomes: Vec<JobOutcome<R>>,
    /// Execution counters and timing.
    pub stats: FleetStats,
}

impl<R> CampaignReport<R> {
    /// `(key, result)` pairs in input order; `None` marks a failed job.
    pub fn results(&self) -> impl Iterator<Item = (&str, Option<&R>)> {
        self.outcomes.iter().map(|o| (o.key.as_str(), o.result()))
    }
}

/// Runs a campaign: every job through the pool, outcomes in input order.
///
/// # Errors
///
/// Fails on duplicate job keys (resume would be ambiguous) and on
/// manifest/bench I/O errors. Job *panics* are not errors — they surface
/// as [`JobStatus::Failed`] outcomes.
pub fn run_campaign<J, R>(
    jobs: &[J],
    opts: &FleetOptions,
    run: impl Fn(&J) -> R + Sync,
) -> Result<CampaignReport<R>, String>
where
    J: JobSpec + Sync,
    R: ManifestCodec + Send,
{
    run_campaign_with_retry(jobs, opts, RetryPolicy::none(), |job, _attempt| run(job))
}

/// [`run_campaign`] with a [`RetryPolicy`]: a job that panics with a
/// [`TRANSIENT_PREFIX`] message is re-run (up to the policy's attempt
/// budget) before it counts as [`JobStatus::Failed`]. The closure
/// receives the zero-based attempt index so injected transients can
/// clear on retry; real jobs should ignore it and stay key-derived.
///
/// # Errors
///
/// Same contract as [`run_campaign`]: duplicate keys and manifest/bench
/// I/O fail the campaign; job panics do not.
pub fn run_campaign_with_retry<J, R>(
    jobs: &[J],
    opts: &FleetOptions,
    policy: RetryPolicy,
    run: impl Fn(&J, usize) -> R + Sync,
) -> Result<CampaignReport<R>, String>
where
    J: JobSpec + Sync,
    R: ManifestCodec + Send,
{
    run_campaign_scoped_with_retry(
        jobs,
        opts,
        policy,
        || (),
        |job, (), attempt| run(job, attempt),
    )
}

/// [`run_campaign`] with **worker-local scratch**: every pool worker
/// calls `init` once when it starts and hands the same `&mut S` to each
/// job it executes, so per-job arenas (event queues, agent vectors,
/// frame buffers) are allocated once per worker instead of once per job.
///
/// The scratch is an allocation cache, never a value channel: `run` must
/// clear any state it reads before use, and results must not depend on
/// which jobs previously used the scratch — that is what keeps a
/// `--jobs 8` campaign bit-identical to `--jobs 1`.
///
/// # Errors
///
/// Same contract as [`run_campaign`].
pub fn run_campaign_scoped<J, R, S>(
    jobs: &[J],
    opts: &FleetOptions,
    init: impl Fn() -> S + Sync,
    run: impl Fn(&J, &mut S) -> R + Sync,
) -> Result<CampaignReport<R>, String>
where
    J: JobSpec + Sync,
    R: ManifestCodec + Send,
{
    run_campaign_scoped_with_retry(jobs, opts, RetryPolicy::none(), init, |job, scratch, _| {
        run(job, scratch)
    })
}

/// [`run_campaign_scoped`] with a [`RetryPolicy`]. A job panic leaves the
/// worker's scratch in an unknown state, so the engine **rebuilds it via
/// `init()`** before any retry and before the worker moves on — a
/// poisoned scratch can never leak into a later job's execution.
///
/// # Errors
///
/// Same contract as [`run_campaign`].
pub fn run_campaign_scoped_with_retry<J, R, S>(
    jobs: &[J],
    opts: &FleetOptions,
    policy: RetryPolicy,
    init: impl Fn() -> S + Sync,
    run: impl Fn(&J, &mut S, usize) -> R + Sync,
) -> Result<CampaignReport<R>, String>
where
    J: JobSpec + Sync,
    R: ManifestCodec + Send,
{
    let campaign_timer = Stopwatch::start();
    let keys: Vec<String> = jobs.iter().map(JobSpec::key).collect();
    {
        let mut seen = det_hash_set();
        for key in &keys {
            if !seen.insert(key.as_str()) {
                return Err(format!(
                    "campaign `{}`: duplicate job key `{key}`",
                    opts.campaign
                ));
            }
        }
    }

    let manifest = match &opts.manifest {
        Some(path) => Some(Manifest::open(path, &opts.campaign, opts.fingerprint)?),
        None => None,
    };

    // Partition into manifest hits and pending work.
    let mut slots: Vec<Option<JobOutcome<R>>> = Vec::with_capacity(jobs.len());
    let mut pending: Vec<usize> = Vec::new();
    for (i, key) in keys.iter().enumerate() {
        let cached = manifest
            .as_ref()
            .and_then(|m| m.cached(key))
            .and_then(|hit| Some((R::from_json(&hit.result)?, hit.ms)));
        match cached {
            Some((result, ms)) => slots.push(Some(JobOutcome {
                key: key.clone(),
                status: JobStatus::Cached(result),
                ms,
            })),
            None => {
                slots.push(None);
                pending.push(i);
            }
        }
    }

    let requested = effective_jobs(opts.jobs);
    // Spawned width is capped at the machine's parallelism: the workers
    // are CPU-bound, so running wider than the core count is pure
    // scheduling overhead (the pre-context fig5 regression: `--jobs 8`
    // on one core ran 0.88x serial). Results are width-independent by
    // construction, so the clamp only ever changes wall-clock.
    let threads = requested.min(worker_cap());
    let write_error: Mutex<Option<String>> = Mutex::new(None);
    let stash_error = |result: Result<(), String>| {
        if let Err(e) = result {
            let mut slot = write_error
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            slot.get_or_insert(e);
        }
    };
    let retried = AtomicUsize::new(0);
    let fresh: Vec<JobOutcome<R>> =
        scoped_parallel_map_with_state(&pending, threads, &init, |&i, scratch| {
            let key = keys[i].clone();
            let job_timer = Stopwatch::start();
            let mut attempt = 0;
            let settled = loop {
                match catch_unwind(AssertUnwindSafe(|| run(&jobs[i], scratch, attempt))) {
                    Ok(result) => break Ok(result),
                    Err(payload) => {
                        let message = panic_message(payload.as_ref());
                        // The panic may have left the scratch half-mutated;
                        // rebuild it before this worker touches another job
                        // (or retries this one).
                        *scratch = init();
                        if is_transient(&message) && attempt + 1 < policy.max_attempts() {
                            attempt += 1;
                            retried.fetch_add(1, Ordering::Relaxed);
                            // Deterministically-scheduled wait; a plain
                            // sleep, so it shifts wall-clock only.
                            let wait = policy.backoff_ms(opts.fingerprint, &key, attempt);
                            if wait > 0 {
                                std::thread::sleep(std::time::Duration::from_millis(wait));
                            }
                            continue;
                        }
                        break Err(message);
                    }
                }
            };
            let ms = job_timer.elapsed_ms();
            match settled {
                Ok(result) => {
                    if let Some(m) = &manifest {
                        stash_error(m.record_done(&key, &result.to_json(), ms));
                    }
                    JobOutcome {
                        key,
                        status: JobStatus::Done(result),
                        ms,
                    }
                }
                Err(message) => {
                    if let Some(m) = &manifest {
                        stash_error(m.record_failed(&key, &message, ms));
                    }
                    JobOutcome {
                        key,
                        status: JobStatus::Failed(message),
                        ms,
                    }
                }
            }
        });
    for (&slot, outcome) in pending.iter().zip(fresh) {
        slots[slot] = Some(outcome);
    }
    let outcomes: Vec<JobOutcome<R>> = slots
        .into_iter()
        .map(|slot| {
            slot.unwrap_or_else(|| {
                ch_sim::invariant::violation(file!(), line!(), "campaign slot left unfilled")
            })
        })
        .collect();

    if let Some(error) = write_error
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
    {
        return Err(error);
    }

    let count =
        |want: fn(&JobStatus<R>) -> bool| outcomes.iter().filter(|o| want(&o.status)).count();
    let stats = FleetStats {
        campaign: opts.campaign.clone(),
        threads,
        total_ms: campaign_timer.elapsed_ms(),
        total: outcomes.len(),
        executed: count(|s| matches!(s, JobStatus::Done(_))),
        cached: count(|s| matches!(s, JobStatus::Cached(_))),
        failed: count(|s| matches!(s, JobStatus::Failed(_))),
        retried: retried.load(Ordering::Relaxed),
    };

    if let Some(bench_path) = &opts.bench {
        record_bench(
            bench_path,
            &BenchRun {
                campaign: stats.campaign.clone(),
                jobs: requested,
                threads: stats.threads,
                total_ms: stats.total_ms,
                executed: stats.executed,
                cached: stats.cached,
                failed: stats.failed,
                job_ms: outcomes.iter().map(|o| (o.key.clone(), o.ms)).collect(),
                full: opts.bench_full,
            },
        )?;
    }

    Ok(CampaignReport { outcomes, stats })
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(text) = payload.downcast_ref::<&str>() {
        (*text).to_string()
    } else if let Some(text) = payload.downcast_ref::<String>() {
        text.clone()
    } else {
        "job panicked".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_disabled_by_default() {
        for policy in [RetryPolicy::none(), RetryPolicy::retries(5)] {
            for attempt in 0..8 {
                assert_eq!(policy.backoff_ms(42, "job-a", attempt), 0);
            }
        }
    }

    #[test]
    fn backoff_schedule_is_reproducible() {
        let policy = RetryPolicy::retries(6).with_backoff(10, 2_000);
        let schedule = |seed: u64, key: &str| -> Vec<u64> {
            (1..=6).map(|a| policy.backoff_ms(seed, key, a)).collect()
        };
        assert_eq!(schedule(7, "job-a"), schedule(7, "job-a"));
        // Jitter is keyed: a different seed or key yields a different
        // (but equally reproducible) schedule.
        assert_ne!(schedule(7, "job-a"), schedule(8, "job-a"));
        assert_ne!(schedule(7, "job-a"), schedule(7, "job-b"));
    }

    #[test]
    fn backoff_grows_within_window_and_caps() {
        let (base, cap) = (10u64, 160u64);
        let policy = RetryPolicy::retries(20).with_backoff(base, cap);
        for attempt in 1..=20usize {
            let shift = u32::try_from(attempt - 1).unwrap();
            let window = if shift > base.leading_zeros() {
                cap
            } else {
                (base << shift).min(cap)
            };
            let wait = policy.backoff_ms(99, "job", attempt);
            assert!(
                wait >= window / 2 && wait <= window,
                "attempt {attempt}: wait {wait} outside [{}, {window}]",
                window / 2
            );
            assert!(wait <= cap, "attempt {attempt}: wait {wait} above cap");
        }
        // Deep attempt counts saturate instead of wrapping.
        let deep = policy.backoff_ms(99, "job", 1_000);
        assert!(deep >= cap / 2 && deep <= cap);
    }

    #[test]
    fn backoff_cap_raised_to_base() {
        let policy = RetryPolicy::retries(3).with_backoff(100, 1);
        let wait = policy.backoff_ms(1, "job", 4);
        assert!((50..=100).contains(&wait));
    }
}

//! The worker pool: a scoped-thread parallel map with ordered results.
//!
//! Workers pull indices from a shared atomic cursor (a work queue with no
//! allocation) and write each result into its *input-order* slot, so the
//! output of a parallel run is identical to a serial run — completion
//! order never leaks into results. This map started life inside
//! `ch-scenarios::replicate` and moved here so the workspace has exactly
//! one parallel-map implementation.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Resolves the worker count for a pool.
///
/// Precedence: the explicit `requested` value (a bin's `--jobs N` flag),
/// then the `CH_JOBS` environment variable, then
/// [`std::thread::available_parallelism`]. Zero and unparsable values are
/// ignored. The worker count never affects results — only wall-clock.
pub fn effective_jobs(requested: Option<usize>) -> usize {
    requested
        .or_else(|| std::env::var("CH_JOBS").ok().and_then(|v| v.parse().ok()))
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4)
        })
}

/// A scoped-thread parallel map over a slice (ordered results), using
/// [`effective_jobs`]`(None)` workers. Falls back to sequential execution
/// for tiny inputs.
pub fn scoped_parallel_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    scoped_parallel_map_with(items, effective_jobs(None), f)
}

/// [`scoped_parallel_map`] with an explicit worker count.
pub fn scoped_parallel_map_with<T: Sync, R: Send>(
    items: &[T],
    threads: usize,
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    let threads = threads.clamp(1, items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let results: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let result = f(&items[i]);
                match results[i].lock() {
                    Ok(mut slot) => *slot = Some(result),
                    // A worker panicking while holding this per-slot lock is
                    // impossible (the store is the only critical section),
                    // but stay well-defined anyway.
                    Err(poisoned) => *poisoned.into_inner() = Some(result),
                }
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .unwrap_or_else(|| {
                    ch_sim::invariant::violation(file!(), line!(), "pool slot left unfilled")
                })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order_at_any_width() {
        let items: Vec<usize> = (0..64).collect();
        let serial = scoped_parallel_map_with(&items, 1, |&x| x * 3);
        for threads in [2, 4, 9, 64, 1000] {
            let parallel = scoped_parallel_map_with(&items, threads, |&x| x * 3);
            assert_eq!(parallel, serial, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let none: Vec<u8> = Vec::new();
        assert!(scoped_parallel_map(&none, |&x| x).is_empty());
        assert_eq!(scoped_parallel_map(&[5u8], |&x| x + 1), vec![6]);
    }

    #[test]
    fn default_width_resolves_positive() {
        assert!(effective_jobs(None) >= 1);
        assert_eq!(effective_jobs(Some(3)), 3);
        assert!(effective_jobs(Some(0)) >= 1, "zero request falls through");
    }
}

//! The worker pool: a scoped-thread parallel map with ordered results.
//!
//! Workers pull indices from a shared atomic cursor (a work queue with no
//! allocation) and write each result into its *input-order* slot, so the
//! output of a parallel run is identical to a serial run — completion
//! order never leaks into results. This map started life inside
//! `ch-scenarios::replicate` and moved here so the workspace has exactly
//! one parallel-map implementation.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Resolves the worker count for a pool.
///
/// Precedence: the explicit `requested` value (a bin's `--jobs N` flag),
/// then the `CH_JOBS` environment variable, then
/// [`std::thread::available_parallelism`]. Zero and unparsable values are
/// ignored. The worker count never affects results — only wall-clock.
pub fn effective_jobs(requested: Option<usize>) -> usize {
    requested
        .or_else(|| std::env::var("CH_JOBS").ok().and_then(|v| v.parse().ok()))
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4)
        })
}

/// The machine's usable worker ceiling:
/// [`std::thread::available_parallelism`] (fallback 4, matching
/// [`effective_jobs`]), optionally lowered by the `CH_WORKER_CAP`
/// environment variable. CPU-bound workers gain nothing from running
/// wider than this — oversubscription is pure scheduling overhead — so
/// the campaign engine caps its spawned width here regardless of the
/// requested `--jobs`.
///
/// `CH_WORKER_CAP` lets CI hosts and benchmark runs pin the width
/// reproducibly; it is clamped to the hardware ceiling (a cap wider than
/// the machine is meaningless), and zero or unparsable values are
/// ignored. The cap never affects results — only wall-clock.
pub fn worker_cap() -> usize {
    let available = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4);
    let requested = std::env::var("CH_WORKER_CAP")
        .ok()
        .and_then(|v| v.parse().ok());
    worker_cap_from(requested, available)
}

/// The pure clamp behind [`worker_cap`]: an env-requested cap is honoured
/// only up to the hardware ceiling, and nonsense (zero, absent) falls back
/// to the ceiling itself.
fn worker_cap_from(requested: Option<usize>, available: usize) -> usize {
    match requested.filter(|&n| n > 0) {
        Some(cap) => cap.min(available),
        None => available,
    }
}

/// A scoped-thread parallel map over a slice (ordered results), using
/// [`effective_jobs`]`(None)` workers. Falls back to sequential execution
/// for tiny inputs.
pub fn scoped_parallel_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    scoped_parallel_map_with(items, effective_jobs(None), f)
}

/// [`scoped_parallel_map`] with an explicit worker count.
pub fn scoped_parallel_map_with<T: Sync, R: Send>(
    items: &[T],
    threads: usize,
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    scoped_parallel_map_with_state(items, threads, || (), |item, ()| f(item))
}

/// [`scoped_parallel_map_with`] plus **worker-local state**: every worker
/// calls `init` exactly once when it starts and threads the resulting
/// scratch value `&mut S` through each item it pulls, so allocations made
/// for one job (buffers, arenas, queues) are reused by the next instead
/// of being rebuilt per item.
///
/// Determinism contract: `f` must produce the same `R` for a given item
/// regardless of which scratch it runs on — scratch is an *allocation*
/// cache, never a *value* channel between jobs. The serial fallback uses
/// a single scratch for every item, which is exactly the reuse pattern a
/// one-worker parallel run would see, so results stay width-independent.
pub fn scoped_parallel_map_with_state<T: Sync, R: Send, S>(
    items: &[T],
    threads: usize,
    init: impl Fn() -> S + Sync,
    f: impl Fn(&T, &mut S) -> R + Sync,
) -> Vec<R> {
    let threads = threads.clamp(1, items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        let mut scratch = init();
        return items.iter().map(|item| f(item, &mut scratch)).collect();
    }
    let results: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut scratch = init();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let result = f(&items[i], &mut scratch);
                    match results[i].lock() {
                        Ok(mut slot) => *slot = Some(result),
                        // A worker panicking while holding this per-slot lock
                        // is impossible (the store is the only critical
                        // section), but stay well-defined anyway.
                        Err(poisoned) => *poisoned.into_inner() = Some(result),
                    }
                }
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .unwrap_or_else(|| {
                    ch_sim::invariant::violation(file!(), line!(), "pool slot left unfilled")
                })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order_at_any_width() {
        let items: Vec<usize> = (0..64).collect();
        let serial = scoped_parallel_map_with(&items, 1, |&x| x * 3);
        for threads in [2, 4, 9, 64, 1000] {
            let parallel = scoped_parallel_map_with(&items, threads, |&x| x * 3);
            assert_eq!(parallel, serial, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let none: Vec<u8> = Vec::new();
        assert!(scoped_parallel_map(&none, |&x| x).is_empty());
        assert_eq!(scoped_parallel_map(&[5u8], |&x| x + 1), vec![6]);
    }

    #[test]
    fn worker_local_state_is_reused_not_shared_between_items() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let items: Vec<usize> = (0..40).collect();
        let inits = AtomicUsize::new(0);
        // Scratch is a Vec that each item must find cleared-by-discipline:
        // the result only depends on the item when the worker clears the
        // scratch before use, which is the contract the engine enforces.
        let results = scoped_parallel_map_with_state(
            &items,
            4,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                Vec::<usize>::new()
            },
            |&x, scratch| {
                scratch.clear();
                scratch.extend(0..x % 5);
                x * 10 + scratch.len()
            },
        );
        let expected: Vec<usize> = items.iter().map(|&x| x * 10 + x % 5).collect();
        assert_eq!(results, expected);
        // One init per worker, not per item.
        let calls = inits.load(Ordering::Relaxed);
        assert!(calls <= 4, "init ran {calls} times for 4 workers");
    }

    #[test]
    fn serial_path_reuses_one_scratch() {
        let items = [3usize, 4, 5];
        // Without a clear, the scratch accumulates — proving the serial
        // fallback genuinely reuses a single scratch across items (the
        // same reuse a one-worker pool performs).
        let results =
            scoped_parallel_map_with_state(&items, 1, Vec::<usize>::new, |&x, scratch| {
                scratch.push(x);
                scratch.len()
            });
        assert_eq!(results, vec![1, 2, 3]);
    }

    #[test]
    fn default_width_resolves_positive() {
        assert!(effective_jobs(None) >= 1);
        assert_eq!(effective_jobs(Some(3)), 3);
        assert!(effective_jobs(Some(0)) >= 1, "zero request falls through");
    }

    #[test]
    fn worker_cap_env_lowers_below_available() {
        // A cap narrower than the machine is honoured verbatim.
        assert_eq!(worker_cap_from(Some(2), 16), 2);
        assert_eq!(worker_cap_from(Some(1), 8), 1);
    }

    #[test]
    fn worker_cap_env_clamps_to_available() {
        // A cap wider than the machine clamps down to the hardware
        // ceiling — CH_WORKER_CAP can never oversubscribe.
        assert_eq!(worker_cap_from(Some(64), 8), 8);
        assert_eq!(worker_cap_from(Some(9), 8), 8);
    }

    #[test]
    fn worker_cap_ignores_nonsense() {
        assert_eq!(worker_cap_from(Some(0), 8), 8);
        assert_eq!(worker_cap_from(None, 8), 8);
        assert!(worker_cap() >= 1);
    }
}

//! The resumable run manifest: results stream to a JSONL artifact.
//!
//! The first line is a header binding the file to one `(campaign,
//! fingerprint)` pair; every further line records one finished job. On
//! open, a manifest whose header matches yields its completed jobs as a
//! cache — the engine skips those keys entirely — while a mismatched or
//! corrupt manifest is discarded and rewritten, never wrongly reused.
//! A torn final line (the run was killed mid-write) is skipped on load,
//! so that job simply re-runs.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use ch_sim::{det_hash_map, DetHashMap};

use crate::json::Json;

/// Manifest file-format version.
const VERSION: u64 = 1;

/// A result type that can round-trip through the manifest.
///
/// Decoded values must equal the originals exactly — resume correctness
/// depends on a cached result being indistinguishable from a recomputed
/// one. Prefer integer counts over derived floats where possible; when
/// floats are unavoidable, [`Json`]'s shortest-round-trip rendering keeps
/// them bit-exact.
pub trait ManifestCodec: Sized {
    /// Encodes the result as a JSON value.
    fn to_json(&self) -> Json;
    /// Decodes a result; `None` marks the record stale (the job re-runs).
    fn from_json(json: &Json) -> Option<Self>;
}

// Full-range u64s do not fit a JSON number (an f64 is exact only up to
// 2^53), so the integer codecs fall back to a decimal string above that.
impl ManifestCodec for u64 {
    fn to_json(&self) -> Json {
        if *self <= (1 << 53) {
            Json::from_u64(*self)
        } else {
            Json::str(self.to_string())
        }
    }
    fn from_json(json: &Json) -> Option<Self> {
        json.as_u64()
            .or_else(|| json.as_str().and_then(|s| s.parse().ok()))
    }
}

impl ManifestCodec for usize {
    fn to_json(&self) -> Json {
        (*self as u64).to_json()
    }
    fn from_json(json: &Json) -> Option<Self> {
        usize::try_from(u64::from_json(json)?).ok()
    }
}

impl ManifestCodec for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
    fn from_json(json: &Json) -> Option<Self> {
        json.as_f64()
    }
}

impl ManifestCodec for String {
    fn to_json(&self) -> Json {
        Json::str(self)
    }
    fn from_json(json: &Json) -> Option<Self> {
        json.as_str().map(str::to_string)
    }
}

/// One completed job as recorded in the manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedJob {
    /// The recorded result.
    pub result: Json,
    /// Wall-clock the job took when it originally ran, in milliseconds.
    pub ms: f64,
}

/// An append-only JSONL manifest for one campaign run.
#[derive(Debug)]
pub struct Manifest {
    path: PathBuf,
    cached: DetHashMap<String, CachedJob>,
    file: Mutex<fs::File>,
}

impl Manifest {
    /// Opens (or creates) the manifest at `path` for the given campaign.
    ///
    /// An existing file with a matching header has its completed jobs
    /// loaded for resume; anything else is truncated and re-headed.
    pub fn open(path: &Path, campaign: &str, fingerprint: u64) -> Result<Manifest, String> {
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
        }
        let existing = fs::read_to_string(path).unwrap_or_default();
        let mut lines = existing.lines();
        let header_matches = lines.next().is_some_and(|line| {
            Json::parse(line).is_ok_and(|header| {
                header.get("campaign").and_then(Json::as_str) == Some(campaign)
                    // Through the u64 codec, not `as_u64`: fingerprints are
                    // full-range hashes, far beyond f64's exact integers.
                    && header.get("fingerprint").and_then(u64::from_json) == Some(fingerprint)
                    && header.get("version").and_then(Json::as_u64) == Some(VERSION)
            })
        });

        // Classify every record line: intact ones are kept (and the
        // `done` ones cached for resume); torn or bit-flipped ones are
        // dropped so the affected job simply re-runs. A line is corrupt
        // whether it fails to parse *or* parses to something that is not
        // a job record — a flipped byte inside a string stays valid JSON.
        let mut cached = det_hash_map();
        let mut kept: Vec<&str> = Vec::new();
        let mut skipped = 0usize;
        if header_matches {
            for line in lines {
                let record = Json::parse(line).ok().and_then(|entry| {
                    let key = entry.get("key").and_then(Json::as_str)?.to_string();
                    let status = entry.get("status").and_then(Json::as_str)?;
                    match status {
                        "done" => {
                            let result = entry.get("result")?.clone();
                            let ms = entry.get("ms").and_then(Json::as_f64).unwrap_or(0.0);
                            Some(Some((key, CachedJob { result, ms })))
                        }
                        // Failed jobs re-run on resume, but their records
                        // survive rewrites for post-mortems.
                        "failed" => Some(None),
                        _ => None,
                    }
                });
                match record {
                    Some(hit) => {
                        kept.push(line);
                        if let Some((key, job)) = hit {
                            cached.insert(key, job);
                        }
                    }
                    None => skipped += 1,
                }
            }
        }

        // A header mismatch or any corrupt line triggers a full rewrite —
        // staged in a sibling tmp file and renamed into place, so a crash
        // mid-rewrite leaves either the old manifest or the new one,
        // never a half-written hybrid.
        if !header_matches || skipped > 0 {
            if skipped > 0 {
                eprintln!(
                    "fleet: manifest {}: skipped {skipped} corrupt line(s); \
                     the affected job(s) will re-run",
                    path.display()
                );
            }
            let header = Json::Obj(vec![
                ("campaign".into(), Json::str(campaign)),
                ("fingerprint".into(), fingerprint.to_json()),
                ("version".into(), Json::from_u64(VERSION)),
            ]);
            let mut staged = header.render();
            staged.push('\n');
            for line in &kept {
                staged.push_str(line);
                staged.push('\n');
            }
            let mut tmp_name = path.as_os_str().to_os_string();
            tmp_name.push(".tmp");
            let tmp = PathBuf::from(tmp_name);
            fs::write(&tmp, staged).map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
            fs::rename(&tmp, path).map_err(|e| {
                format!("cannot rename {} -> {}: {e}", tmp.display(), path.display())
            })?;
        }

        let file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| format!("cannot open {}: {e}", path.display()))?;

        Ok(Manifest {
            path: path.to_path_buf(),
            cached,
            file: Mutex::new(file),
        })
    }

    /// The manifest's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The completed job recorded for `key`, if any.
    pub fn cached(&self, key: &str) -> Option<&CachedJob> {
        self.cached.get(key)
    }

    /// How many completed jobs the manifest already held on open.
    pub fn cached_len(&self) -> usize {
        self.cached.len()
    }

    /// Appends a completed job. Called from worker threads; line writes
    /// are serialized through an internal lock.
    pub fn record_done(&self, key: &str, result: &Json, ms: f64) -> Result<(), String> {
        self.append(Json::Obj(vec![
            ("key".into(), Json::str(key)),
            ("status".into(), Json::str("done")),
            ("ms".into(), Json::Num(ms)),
            ("result".into(), result.clone()),
        ]))
    }

    /// Appends a failed job (recorded for post-mortems; re-runs on resume).
    pub fn record_failed(&self, key: &str, error: &str, ms: f64) -> Result<(), String> {
        self.append(Json::Obj(vec![
            ("key".into(), Json::str(key)),
            ("status".into(), Json::str("failed")),
            ("ms".into(), Json::Num(ms)),
            ("error".into(), Json::str(error)),
        ]))
    }

    fn append(&self, entry: Json) -> Result<(), String> {
        let line = entry.render();
        let mut file = self
            .file
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        writeln!(file, "{line}").map_err(|e| format!("cannot append {}: {e}", self.path.display()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "ch-fleet-manifest-{}-{tag}.jsonl",
            std::process::id()
        ))
    }

    #[test]
    fn fresh_manifest_then_resume() {
        let path = temp_path("fresh");
        let _ = fs::remove_file(&path);

        let manifest = Manifest::open(&path, "test", 42).unwrap();
        assert_eq!(manifest.cached_len(), 0);
        manifest.record_done("a", &Json::from_u64(1), 5.0).unwrap();
        manifest.record_failed("b", "boom", 2.0).unwrap();
        drop(manifest);

        let resumed = Manifest::open(&path, "test", 42).unwrap();
        assert_eq!(resumed.cached_len(), 1, "failed entries must re-run");
        let hit = resumed.cached("a").unwrap();
        assert_eq!(hit.result, Json::from_u64(1));
        assert_eq!(hit.ms, 5.0);
        assert!(resumed.cached("b").is_none());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn fingerprint_mismatch_discards() {
        let path = temp_path("fp");
        let _ = fs::remove_file(&path);
        {
            let manifest = Manifest::open(&path, "test", 1).unwrap();
            manifest.record_done("a", &Json::from_u64(1), 1.0).unwrap();
        }
        let other = Manifest::open(&path, "test", 2).unwrap();
        assert_eq!(other.cached_len(), 0, "stale config must not be reused");
        drop(other);
        // And the file was re-headed: reopening under the new pair works.
        let again = Manifest::open(&path, "test", 2).unwrap();
        assert_eq!(again.cached_len(), 0);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn full_range_fingerprints_survive_the_header_round_trip() {
        // Real fingerprints are FNV hashes well above 2^53; a lossy f64
        // header encoding would silently invalidate every resume.
        let path = temp_path("bigfp");
        let _ = fs::remove_file(&path);
        let fp = 0xDEAD_BEEF_CAFE_F00Du64;
        {
            let manifest = Manifest::open(&path, "test", fp).unwrap();
            manifest.record_done("a", &Json::from_u64(1), 1.0).unwrap();
        }
        let resumed = Manifest::open(&path, "test", fp).unwrap();
        assert_eq!(resumed.cached_len(), 1, "header fingerprint must match");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn corrupt_mid_file_line_is_skipped_and_repaired() {
        let path = temp_path("midline");
        let _ = fs::remove_file(&path);
        {
            let manifest = Manifest::open(&path, "test", 11).unwrap();
            manifest.record_done("a", &Json::from_u64(1), 1.0).unwrap();
            manifest.record_done("b", &Json::from_u64(2), 1.0).unwrap();
            manifest.record_done("c", &Json::from_u64(3), 1.0).unwrap();
        }
        // Flip bytes inside the *middle* record (not the tail): a disk
        // hiccup on a committed-style manifest, not a mid-write kill.
        let mut bytes = fs::read(&path).unwrap();
        let line_starts: Vec<usize> = std::iter::once(0)
            .chain(
                bytes
                    .iter()
                    .enumerate()
                    .filter(|(_, &b)| b == b'\n')
                    .map(|(i, _)| i + 1),
            )
            .collect();
        let (b_start, b_end) = (line_starts[2], line_starts[3] - 1);
        for byte in &mut bytes[b_start..b_end] {
            *byte ^= 0b0101_0101;
        }
        fs::write(&path, &bytes).unwrap();

        let resumed = Manifest::open(&path, "test", 11).unwrap();
        assert!(
            resumed.cached("a").is_some(),
            "records before the bad line survive"
        );
        assert!(
            resumed.cached("b").is_none(),
            "the corrupted job must re-run"
        );
        assert!(
            resumed.cached("c").is_some(),
            "records after the bad line survive"
        );
        drop(resumed);

        // The open repaired the file in place: a second open sees a clean
        // manifest (header + the two intact records) and no tmp residue.
        let text = fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 3, "{text}");
        let mut tmp_name = path.as_os_str().to_os_string();
        tmp_name.push(".tmp");
        assert!(
            !PathBuf::from(tmp_name).exists(),
            "tmp file must be renamed away"
        );
        let again = Manifest::open(&path, "test", 11).unwrap();
        assert_eq!(again.cached_len(), 2);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn flipped_bytes_inside_valid_json_still_invalidate_the_record() {
        let path = temp_path("jsonflip");
        let _ = fs::remove_file(&path);
        {
            let manifest = Manifest::open(&path, "test", 13).unwrap();
            manifest.record_done("a", &Json::from_u64(1), 1.0).unwrap();
        }
        // Corrupt the status string: the line still parses as JSON but is
        // no longer a recognisable job record.
        let text = fs::read_to_string(&path).unwrap();
        let mangled = text.replace("\"status\":\"done\"", "\"status\":\"dXne\"");
        assert_ne!(text, mangled);
        fs::write(&path, mangled).unwrap();

        let resumed = Manifest::open(&path, "test", 13).unwrap();
        assert_eq!(resumed.cached_len(), 0, "unknown status must not be cached");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_line_is_skipped() {
        let path = temp_path("torn");
        let _ = fs::remove_file(&path);
        {
            let manifest = Manifest::open(&path, "test", 7).unwrap();
            manifest.record_done("a", &Json::from_u64(1), 1.0).unwrap();
            manifest.record_done("b", &Json::from_u64(2), 1.0).unwrap();
        }
        // Simulate a kill mid-write: chop the file inside the last line.
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, &text[..text.len() - 9]).unwrap();

        let resumed = Manifest::open(&path, "test", 7).unwrap();
        assert!(resumed.cached("a").is_some());
        assert!(resumed.cached("b").is_none(), "torn record must re-run");
        let _ = fs::remove_file(&path);
    }
}

//! # ch-fleet — the campaign-execution engine
//!
//! The paper's headline evidence is a *campaign*: 4 venues × 12 hourly
//! deployments, and the beyond-the-paper studies multiply that by seeds
//! and config axes. This crate is the substrate that runs such campaigns
//! at hardware speed without giving up the workspace's core guarantee —
//! bit-for-bit reproducible results:
//!
//! * [`job`] — the [`JobSpec`](job::JobSpec) model: every job has a
//!   stable, human-readable key, and per-job seeds are derived from
//!   `(campaign seed, key)` via the same SplitMix/FNV construction as
//!   [`ch_sim::SimRng::fork`] — no ambient randomness, no dependence on
//!   scheduling order;
//! * [`pool`] — a scoped-thread worker pool ([`scoped_parallel_map`])
//!   with a shared work queue and *ordered* aggregation, so parallel
//!   output is identical to serial output;
//! * [`manifest`] — a resumable run manifest: results stream to a JSONL
//!   artifact as each job completes, and re-running a campaign skips
//!   jobs whose keys are already recorded;
//! * [`telemetry`] — per-job and campaign wall-clock timing plus the
//!   `BENCH_fleet.json` emitter. This is the **only** module in the
//!   determinism-critical crates allowed to read the wall clock (the
//!   allowance is scoped in `ch-lint.toml` and pinned by a test);
//! * [`engine`] — [`run_campaign`](engine::run_campaign) ties the above
//!   together and isolates per-job panics: a poisoned job reports
//!   [`Failed`](engine::JobStatus::Failed) instead of killing the run;
//! * [`json`] — the minimal JSON value the manifest and telemetry
//!   artifacts are written in (the workspace builds offline; no serde).
//!
//! ```
//! use ch_fleet::{run_campaign, FleetOptions, JobSpec};
//!
//! struct Square(u64);
//! impl JobSpec for Square {
//!     fn key(&self) -> String {
//!         format!("square/{}", self.0)
//!     }
//! }
//!
//! let jobs: Vec<Square> = (0..8).map(Square).collect();
//! let opts = FleetOptions::in_memory("squares", 0);
//! let report = run_campaign(&jobs, &opts, |job| job.0 * job.0).unwrap();
//! let total: u64 = report.results().filter_map(|(_, r)| r.copied()).sum();
//! assert_eq!(total, 140);
//! ```

pub mod engine;
pub mod job;
pub mod json;
pub mod manifest;
pub mod pool;
pub mod telemetry;

pub use engine::{
    is_transient, run_campaign, run_campaign_scoped, run_campaign_scoped_with_retry,
    run_campaign_with_retry, CampaignReport, FleetOptions, FleetStats, JobOutcome, JobStatus,
    RetryPolicy, TRANSIENT_PREFIX,
};
pub use job::{derive_seed, fingerprint, JobSpec};
pub use json::Json;
pub use manifest::{Manifest, ManifestCodec};
pub use pool::{
    effective_jobs, scoped_parallel_map, scoped_parallel_map_with, scoped_parallel_map_with_state,
    worker_cap,
};
pub use telemetry::{record_bench, BenchRun, Stopwatch};

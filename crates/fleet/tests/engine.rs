//! Engine acceptance tests: serial/parallel equivalence, resume from a
//! (possibly truncated) manifest, and per-job panic isolation.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use ch_fleet::{
    derive_seed, run_campaign, run_campaign_scoped, run_campaign_scoped_with_retry,
    run_campaign_with_retry, FleetOptions, JobOutcome, JobSpec, JobStatus, RetryPolicy,
    TRANSIENT_PREFIX,
};

/// A synthetic job: derive the seed, burn a little deterministic CPU.
struct HashJob {
    name: &'static str,
    index: u64,
}

impl JobSpec for HashJob {
    fn key(&self) -> String {
        format!("{}/{}", self.name, self.index)
    }
}

fn jobs(n: u64) -> Vec<HashJob> {
    (0..n)
        .map(|index| HashJob {
            name: "hash",
            index,
        })
        .collect()
}

/// Deterministic per-job work: a short multiply-xor chain off the
/// derived seed.
fn work(job: &HashJob) -> u64 {
    let mut x = derive_seed(0xF1EE7, &job.key());
    for _ in 0..10_000 {
        x = x.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(17) ^ job.index;
    }
    x
}

fn temp_manifest(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "ch-fleet-engine-{}-{tag}.jsonl",
        std::process::id()
    ))
}

fn values(outcomes: &[JobOutcome<u64>]) -> Vec<Option<u64>> {
    outcomes.iter().map(|o| o.result().copied()).collect()
}

#[test]
fn parallel_campaign_is_bit_identical_to_serial() {
    let jobs = jobs(16);
    let serial = run_campaign(
        &jobs,
        &FleetOptions::in_memory("eq", 0).with_jobs(Some(1)),
        work,
    )
    .unwrap();
    assert_eq!(serial.stats.threads, 1);
    for threads in [4, 16] {
        let parallel = run_campaign(
            &jobs,
            &FleetOptions::in_memory("eq", 0).with_jobs(Some(threads)),
            work,
        )
        .unwrap();
        // Spawned width is the request capped at the machine's
        // parallelism — oversubscription is never spawned.
        assert_eq!(parallel.stats.threads, threads.min(ch_fleet::worker_cap()));
        assert_eq!(
            values(&parallel.outcomes),
            values(&serial.outcomes),
            "threads={threads}"
        );
        // Keys come back in input order, not completion order.
        let keys: Vec<&str> = parallel.results().map(|(k, _)| k).collect();
        let expected: Vec<String> = jobs.iter().map(JobSpec::key).collect();
        assert_eq!(keys, expected);
    }
}

#[test]
fn one_poisoned_job_does_not_kill_the_campaign() {
    let jobs = jobs(8);
    let report = run_campaign(
        &jobs,
        &FleetOptions::in_memory("poison", 0).with_jobs(Some(4)),
        |job| {
            assert!(job.index != 5, "poisoned job {}", job.index);
            work(job)
        },
    )
    .unwrap();
    assert_eq!(report.stats.failed, 1);
    assert_eq!(report.stats.executed, 7);
    match &report.outcomes[5].status {
        JobStatus::Failed(message) => {
            assert!(message.contains("poisoned job 5"), "{message}")
        }
        other => panic!("expected Failed, got {other:?}"),
    }
    // Every other job still completed with the right value.
    for (i, outcome) in report.outcomes.iter().enumerate() {
        if i != 5 {
            assert_eq!(outcome.result(), Some(&work(&jobs[i])), "job {i}");
        }
    }
}

#[test]
fn resume_runs_only_missing_jobs_and_matches_fresh_results() {
    let path = temp_manifest("resume");
    let _ = fs::remove_file(&path);
    let executed = AtomicUsize::new(0);
    let counted = |job: &HashJob| {
        executed.fetch_add(1, Ordering::Relaxed);
        work(job)
    };
    let jobs = jobs(6);
    let opts = FleetOptions::in_memory("resume", 9)
        .with_jobs(Some(2))
        .with_manifest(&path);

    let fresh = run_campaign(&jobs, &opts, counted).unwrap();
    assert_eq!(executed.load(Ordering::Relaxed), 6);
    assert_eq!((fresh.stats.executed, fresh.stats.cached), (6, 0));

    // Simulate a mid-run kill: drop the last two completed records.
    let text = fs::read_to_string(&path).unwrap();
    let kept: Vec<&str> = text.lines().collect();
    fs::write(&path, format!("{}\n", kept[..kept.len() - 2].join("\n"))).unwrap();

    executed.store(0, Ordering::Relaxed);
    let resumed = run_campaign(&jobs, &opts, counted).unwrap();
    assert_eq!(
        executed.load(Ordering::Relaxed),
        2,
        "only the missing jobs may execute"
    );
    assert_eq!((resumed.stats.executed, resumed.stats.cached), (2, 4));
    assert_eq!(values(&resumed.outcomes), values(&fresh.outcomes));

    // Third run: everything cached, nothing executes.
    executed.store(0, Ordering::Relaxed);
    let warm = run_campaign(&jobs, &opts, counted).unwrap();
    assert_eq!(executed.load(Ordering::Relaxed), 0);
    assert_eq!((warm.stats.executed, warm.stats.cached), (0, 6));
    assert_eq!(values(&warm.outcomes), values(&fresh.outcomes));

    let _ = fs::remove_file(&path);
}

#[test]
fn changed_fingerprint_invalidates_the_manifest() {
    let path = temp_manifest("fingerprint");
    let _ = fs::remove_file(&path);
    let jobs = jobs(3);
    let base = FleetOptions::in_memory("fp", 1).with_manifest(&path);
    run_campaign(&jobs, &base, work).unwrap();

    let changed = FleetOptions {
        fingerprint: 2,
        ..base
    };
    let report = run_campaign(&jobs, &changed, work).unwrap();
    assert_eq!(
        (report.stats.executed, report.stats.cached),
        (3, 0),
        "a different configuration must not reuse recorded results"
    );
    let _ = fs::remove_file(&path);
}

#[test]
fn failed_jobs_are_recorded_but_retried_on_resume() {
    let path = temp_manifest("retry");
    let _ = fs::remove_file(&path);
    let jobs = jobs(3);
    let opts = FleetOptions::in_memory("retry", 3).with_manifest(&path);

    let first = run_campaign(&jobs, &opts, |job| {
        assert!(job.index != 1, "flaky");
        work(job)
    })
    .unwrap();
    assert_eq!(first.stats.failed, 1);

    // The failure is on disk for post-mortems...
    let text = fs::read_to_string(&path).unwrap();
    assert!(text.contains("\"status\":\"failed\""), "{text}");

    // ...but the job re-runs (and succeeds) on resume.
    let second = run_campaign(&jobs, &opts, work).unwrap();
    assert_eq!((second.stats.executed, second.stats.cached), (1, 2));
    assert_eq!(second.stats.failed, 0);
    assert_eq!(second.outcomes[1].result(), Some(&work(&jobs[1])));
    let _ = fs::remove_file(&path);
}

#[test]
fn transient_panics_retry_to_bit_identical_results() {
    let jobs = jobs(8);
    let clean = run_campaign(&jobs, &FleetOptions::in_memory("clean", 0), work).unwrap();

    // Every odd job dies with an injected transient on its first attempt.
    let flaky = |job: &HashJob, attempt: usize| {
        assert!(
            job.index.is_multiple_of(2) || attempt > 0,
            "{TRANSIENT_PREFIX} injected fault in {}",
            job.key()
        );
        work(job)
    };
    for threads in [1, 4] {
        let retried = run_campaign_with_retry(
            &jobs,
            &FleetOptions::in_memory("flaky", 0).with_jobs(Some(threads)),
            RetryPolicy::retries(2),
            flaky,
        )
        .unwrap();
        assert_eq!(retried.stats.failed, 0, "threads={threads}");
        assert_eq!(retried.stats.executed, 8);
        assert_eq!(retried.stats.retried, 4);
        assert_eq!(values(&retried.outcomes), values(&clean.outcomes));
        assert!(
            retried.stats.render_line().contains("0 failed, 4 retried"),
            "{}",
            retried.stats.render_line()
        );
    }
}

#[test]
fn permanent_panics_are_not_retried() {
    let jobs = jobs(4);
    let attempts = AtomicUsize::new(0);
    let report = run_campaign_with_retry(
        &jobs,
        &FleetOptions::in_memory("perm", 0).with_jobs(Some(1)),
        RetryPolicy::retries(3),
        |job: &HashJob, _attempt| {
            if job.index == 2 {
                attempts.fetch_add(1, Ordering::Relaxed);
                panic!("deterministic defect in {}", job.key());
            }
            work(job)
        },
    )
    .unwrap();
    assert_eq!(report.stats.failed, 1);
    assert_eq!(
        report.stats.retried, 0,
        "a permanent panic burns no retries"
    );
    assert_eq!(
        attempts.load(Ordering::Relaxed),
        1,
        "the job ran exactly once"
    );
    assert!(
        !report.stats.render_line().contains("retried"),
        "{}",
        report.stats.render_line()
    );
}

#[test]
fn transient_budget_is_bounded() {
    // A job that never clears fails after exhausting its attempt budget.
    let jobs = jobs(1);
    let attempts = AtomicUsize::new(0);
    let report = run_campaign_with_retry(
        &jobs,
        &FleetOptions::in_memory("exhaust", 0),
        RetryPolicy::retries(2),
        |_job: &HashJob, _attempt| -> u64 {
            attempts.fetch_add(1, Ordering::Relaxed);
            panic!("{TRANSIENT_PREFIX} never clears");
        },
    )
    .unwrap();
    assert_eq!(attempts.load(Ordering::Relaxed), 3, "1 run + 2 retries");
    assert_eq!(report.stats.failed, 1);
    assert_eq!(report.stats.retried, 2);
    match &report.outcomes[0].status {
        JobStatus::Failed(message) => assert!(message.contains("never clears"), "{message}"),
        other => panic!("expected Failed, got {other:?}"),
    }
}

#[test]
fn scoped_campaign_with_stateful_scratch_is_width_independent() {
    let jobs = jobs(16);
    // The scratch accumulates whatever each job leaves in it; correct
    // jobs clear it before use. A missing reset, or a scratch shared
    // between workers, would skew the `+ len` term differently at
    // different widths (at 16 workers each scratch sees one job; at 1
    // worker it sees all sixteen) and break serial/parallel equality.
    let run = |job: &HashJob, scratch: &mut Vec<u64>| {
        scratch.clear();
        scratch.extend(0..(job.index % 4));
        work(job) + scratch.len() as u64
    };
    let serial = run_campaign_scoped(
        &jobs,
        &FleetOptions::in_memory("scoped-eq", 0).with_jobs(Some(1)),
        Vec::new,
        run,
    )
    .unwrap();
    let expected: Vec<Option<u64>> = jobs.iter().map(|j| Some(work(j) + j.index % 4)).collect();
    assert_eq!(values(&serial.outcomes), expected);
    for threads in [4, 16] {
        let parallel = run_campaign_scoped(
            &jobs,
            &FleetOptions::in_memory("scoped-eq", 0).with_jobs(Some(threads)),
            Vec::new,
            run,
        )
        .unwrap();
        assert_eq!(
            values(&parallel.outcomes),
            values(&serial.outcomes),
            "threads={threads}"
        );
    }
}

#[test]
fn poisoned_worker_scratch_is_rebuilt_before_the_next_job() {
    let jobs = jobs(6);
    // Honest jobs read the scratch length *without* clearing it, so any
    // value a panicking predecessor left behind would corrupt their
    // result. Job 2 poisons the scratch and dies mid-job on its first
    // attempt; the engine must hand both its retry and every later job
    // on that worker a freshly built scratch.
    let run = |job: &HashJob, scratch: &mut Vec<u64>, attempt: usize| {
        if job.index == 2 && attempt == 0 {
            scratch.push(999);
            panic!("{TRANSIENT_PREFIX} mid-job fault in {}", job.key());
        }
        work(job) + scratch.len() as u64
    };
    for threads in [1, 4] {
        let report = run_campaign_scoped_with_retry(
            &jobs,
            &FleetOptions::in_memory("scratch-poison", 0).with_jobs(Some(threads)),
            RetryPolicy::retries(1),
            Vec::<u64>::new,
            run,
        )
        .unwrap();
        assert_eq!(report.stats.failed, 0, "threads={threads}");
        assert_eq!(report.stats.retried, 1);
        for (i, outcome) in report.outcomes.iter().enumerate() {
            assert_eq!(
                outcome.result(),
                Some(&work(&jobs[i])),
                "threads={threads} job {i}: scratch state leaked"
            );
        }
    }
}

#[test]
fn duplicate_keys_are_rejected() {
    let dup = vec![
        HashJob {
            name: "dup",
            index: 1,
        },
        HashJob {
            name: "dup",
            index: 1,
        },
    ];
    let err = run_campaign(&dup, &FleetOptions::in_memory("dup", 0), work).unwrap_err();
    assert!(err.contains("duplicate job key"), "{err}");
}

//! Criterion bench: ARC vs LRU vs LFU on representative traces.
//!
//! Validates that the §IV-C design inspiration behaves like the published
//! algorithm: competitive on recency traces, clearly better on scan-mixed
//! traces. Also reports raw request throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use ch_arc::{traits::hits_on_trace, ArcCache, Cache, LfuCache, LruCache, TwoQCache};
use ch_sim::rng::Zipf;
use ch_sim::SimRng;

/// A Zipf-popularity trace — the SSID-like workload.
fn zipf_trace(n: usize) -> Vec<u32> {
    let zipf = Zipf::new(1_000, 1.0).expect("nonzero ranks");
    let mut rng = SimRng::seed_from(3);
    (0..n).map(|_| zipf.sample(&mut rng) as u32).collect()
}

/// A hot-set + scan trace — ARC's home turf.
fn scan_trace(rounds: usize) -> Vec<u32> {
    let mut trace = Vec::new();
    for round in 0..rounds as u32 {
        for _ in 0..2 {
            for k in 0..12 {
                trace.push(k);
            }
        }
        for s in 0..8 {
            trace.push(10_000 + round * 8 + s);
        }
    }
    trace
}

fn bench_policies(c: &mut Criterion) {
    let zipf = zipf_trace(50_000);
    let scan = scan_trace(1_500);
    let mut group = c.benchmark_group("cache/hits_on_trace");
    group.bench_function("arc_zipf", |b| {
        b.iter(|| {
            let mut cache = ArcCache::new(128);
            black_box(hits_on_trace(&mut cache, zipf.iter().copied()))
        })
    });
    group.bench_function("lru_zipf", |b| {
        b.iter(|| {
            let mut cache = LruCache::new(128);
            black_box(hits_on_trace(&mut cache, zipf.iter().copied()))
        })
    });
    group.bench_function("lfu_zipf", |b| {
        b.iter(|| {
            let mut cache = LfuCache::new(128);
            black_box(hits_on_trace(&mut cache, zipf.iter().copied()))
        })
    });
    group.bench_function("twoq_zipf", |b| {
        b.iter(|| {
            let mut cache = TwoQCache::new(128);
            black_box(hits_on_trace(&mut cache, zipf.iter().copied()))
        })
    });
    group.bench_function("arc_scan", |b| {
        b.iter(|| {
            let mut cache = ArcCache::new(16);
            black_box(hits_on_trace(&mut cache, scan.iter().copied()))
        })
    });
    group.bench_function("lru_scan", |b| {
        b.iter(|| {
            let mut cache = LruCache::new(16);
            black_box(hits_on_trace(&mut cache, scan.iter().copied()))
        })
    });
    group.bench_function("twoq_scan", |b| {
        b.iter(|| {
            let mut cache = TwoQCache::new(16);
            black_box(hits_on_trace(&mut cache, scan.iter().copied()))
        })
    });
    group.finish();

    // Print the hit-rate comparison once so bench logs double as evidence.
    let mut arc = ArcCache::new(16);
    let mut lru = LruCache::new(16);
    let mut twoq = TwoQCache::new(16);
    let arc_hits = hits_on_trace(&mut arc, scan.iter().copied());
    let lru_hits = hits_on_trace(&mut lru, scan.iter().copied());
    let twoq_hits = hits_on_trace(&mut twoq, scan.iter().copied());
    println!(
        "scan-trace hit counts: ARC {arc_hits} vs 2Q {twoq_hits} vs LRU \
         {lru_hits} ({} accesses)",
        scan.len()
    );
}

fn bench_single_request(c: &mut Criterion) {
    let trace = zipf_trace(4_096);
    let mut cache = ArcCache::new(256);
    for k in &trace {
        cache.request(k);
    }
    let mut i = 0usize;
    c.bench_function("cache/arc_request_steady", |b| {
        b.iter(|| {
            i = (i + 1) % trace.len();
            black_box(cache.request(&trace[i]))
        })
    });
}

criterion_group!(benches, bench_policies, bench_single_request);
criterion_main!(benches);

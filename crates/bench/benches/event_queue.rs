//! Criterion bench: simulation-kernel primitives.
//!
//! The event queue carries every scan instant of every phone; the Zipf
//! sampler generates every public PNL entry. Both are exercised millions
//! of times per campaign.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use ch_sim::rng::Zipf;
use ch_sim::{EventQueue, SimRng, SimTime};

fn bench_queue_push_pop(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    for &n in &[1_000usize, 10_000, 100_000] {
        // Pre-generate pseudo-random times so the bench measures the queue,
        // not the RNG.
        let mut rng = SimRng::seed_from(7);
        let times: Vec<SimTime> = (0..n)
            .map(|_| SimTime::from_micros(rng.range_u64(0, 3_600_000_000)))
            .collect();
        group.bench_function(format!("push_pop_{n}"), |b| {
            b.iter(|| {
                let mut q = EventQueue::with_capacity(n);
                for (i, &t) in times.iter().enumerate() {
                    q.push(t, i);
                }
                let mut acc = 0usize;
                while let Some((_, i)) = q.pop() {
                    acc = acc.wrapping_add(i);
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

fn bench_interleaved(c: &mut Criterion) {
    // The runner's actual pattern: pop one, sometimes push a follow-up.
    c.bench_function("event_queue/interleaved_steady_state", |b| {
        b.iter(|| {
            let mut rng = SimRng::seed_from(9);
            let mut q = EventQueue::new();
            for i in 0..1_000 {
                q.push(SimTime::from_micros(rng.range_u64(0, 1_000_000)), i);
            }
            let mut processed = 0u64;
            while let Some((t, i)) = q.pop() {
                processed += 1;
                if processed < 5_000 && rng.chance(0.8) {
                    q.push(
                        t + ch_sim::SimDuration::from_millis(rng.range_u64(1, 60_000)),
                        i,
                    );
                }
            }
            black_box(processed)
        })
    });
}

fn bench_zipf(c: &mut Criterion) {
    let zipf = Zipf::new(2_000, 1.0).expect("nonzero ranks");
    let mut rng = SimRng::seed_from(11);
    c.bench_function("rng/zipf_sample_2000", |b| {
        b.iter(|| black_box(zipf.sample(&mut rng)))
    });
}

fn bench_weighted_index(c: &mut Criterion) {
    let mut rng = SimRng::seed_from(13);
    let weights: Vec<f64> = (0..700).map(|i| 1.0 / (1.0 + i as f64)).collect();
    c.bench_function("rng/weighted_index_700", |b| {
        b.iter(|| black_box(rng.weighted_index(black_box(&weights))))
    });
}

criterion_group!(
    benches,
    bench_queue_push_pop,
    bench_interleaved,
    bench_zipf,
    bench_weighted_index
);
criterion_main!(benches);

//! Criterion bench: the attackers' probe-handling hot paths.
//!
//! `respond_to_probe` runs once per received probe — thousands of times per
//! simulated hour — so its cost bounds how large a campaign the harness can
//! regenerate.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use ch_attack::{
    Attacker, CityHunter, CityHunterConfig, ClientTracker, ManaAttacker, PrelimCityHunter,
};
use ch_scenarios::experiments::CITY_SEED;
use ch_scenarios::CityData;
use ch_wifi::mgmt::ProbeRequest;
use ch_wifi::{MacAddr, Ssid};

fn mac(i: u32) -> MacAddr {
    MacAddr::from_index([2, 0, 0], i)
}

fn bench_respond(c: &mut Criterion) {
    let data = CityData::standard(CITY_SEED);
    let site = data.site_for(ch_mobility::VenueKind::Canteen);
    let bssid = mac(9_999);

    let mut group = c.benchmark_group("attacker/respond_broadcast");

    let mut mana = ManaAttacker::new(bssid);
    for i in 0..300u32 {
        let probe = ProbeRequest::direct(mac(i), Ssid::new_lossy(format!("S{i}")));
        mana.respond_to_probe(ch_sim::SimTime::ZERO, &probe, 40);
    }
    let mut i = 0u32;
    group.bench_function("mana_db300", |b| {
        b.iter(|| {
            i += 1;
            let probe = ProbeRequest::broadcast(mac(i % 10_000));
            black_box(mana.respond_to_probe(ch_sim::SimTime::from_secs(1), &probe, 40))
        })
    });

    let mut prelim = PrelimCityHunter::new(bssid, &data.wigle, &data.heat, site);
    let mut j = 0u32;
    group.bench_function("prelim_fresh_client", |b| {
        b.iter(|| {
            j += 1;
            let probe = ProbeRequest::broadcast(mac(j % 100_000));
            black_box(prelim.respond_to_probe(ch_sim::SimTime::from_secs(1), &probe, 40))
        })
    });

    let mut hunter = CityHunter::new(
        bssid,
        &data.wigle,
        &data.heat,
        site,
        CityHunterConfig::default(),
    );
    let mut k = 0u32;
    group.bench_function("cityhunter_fresh_client", |b| {
        b.iter(|| {
            k += 1;
            let probe = ProbeRequest::broadcast(mac(k % 100_000));
            black_box(hunter.respond_to_probe(ch_sim::SimTime::from_secs(1), &probe, 40))
        })
    });

    // The §III-A pathologically deep case: the same static client probing
    // again and again, walking ever deeper into the untried list.
    let mut hunter2 = CityHunter::new(
        bssid,
        &data.wigle,
        &data.heat,
        site,
        CityHunterConfig::default(),
    );
    let static_client = ProbeRequest::broadcast(mac(42));
    group.bench_function("cityhunter_static_client_deepening", |b| {
        b.iter(|| {
            black_box(hunter2.respond_to_probe(ch_sim::SimTime::from_secs(1), &static_client, 40))
        })
    });
    group.finish();
}

fn bench_clienttrack(c: &mut Criterion) {
    let mut interner = ch_wifi::SsidInterner::new();
    let pool: Vec<ch_wifi::SsidId> = (0..500)
        .map(|i| interner.intern(&Ssid::new_lossy(format!("Pool-{i:03}"))))
        .collect();
    let mut tracker = ClientTracker::new();
    let client = mac(7);
    for &id in pool.iter().take(200) {
        tracker.mark_sent(client, id);
    }
    c.bench_function("attacker/select_untried_500pool_200sent", |b| {
        b.iter(|| black_box(tracker.select_untried(client, &pool, 40)))
    });

    // The scratch-buffer form the runner actually uses: zero allocations
    // once the scratch is warm.
    let mut seen = ch_arc::EpochSet::new();
    let mut out = Vec::new();
    c.bench_function("attacker/select_untried_into_500pool_200sent", |b| {
        b.iter(|| {
            tracker.select_untried_into(client, &pool, 40, &mut seen, &mut out);
            black_box(out.len())
        })
    });
}

criterion_group!(benches, bench_respond, bench_clienttrack);
criterion_main!(benches);

//! Criterion bench: 802.11 management-frame encode/parse throughput.
//!
//! The attacker emits up to 40 probe responses per broadcast probe; at
//! passage scale (thousands of scans per hour) the codec sits on the
//! simulation's hot path.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use ch_wifi::codec;
use ch_wifi::mgmt::{Authentication, Beacon, MgmtFrame, ProbeRequest, ProbeResponse};
use ch_wifi::{Channel, MacAddr, Ssid};

fn mac(i: u8) -> MacAddr {
    MacAddr::new([2, 0, 0, 0, 0, i])
}

fn frames() -> Vec<(&'static str, MgmtFrame)> {
    vec![
        (
            "probe_req_broadcast",
            MgmtFrame::ProbeRequest(ProbeRequest::broadcast(mac(1))),
        ),
        (
            "probe_resp_lure",
            MgmtFrame::ProbeResponse(ProbeResponse::open_lure(
                mac(9),
                mac(1),
                Ssid::new("#HKAirport Free WiFi").unwrap(),
                Channel::new(6).unwrap(),
            )),
        ),
        (
            "beacon",
            MgmtFrame::Beacon(Beacon::open(
                mac(9),
                Ssid::new("Free Public WiFi").unwrap(),
                Channel::new(1).unwrap(),
            )),
        ),
        (
            "auth_request",
            MgmtFrame::Authentication(Authentication::request(mac(1), mac(9))),
        ),
    ]
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec/encode");
    for (name, frame) in frames() {
        group.bench_function(name, |b| b.iter(|| codec::encode(black_box(&frame))));
    }
    group.finish();
}

fn bench_parse(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec/parse");
    for (name, frame) in frames() {
        let bytes = codec::encode(&frame);
        group.bench_function(name, |b| {
            b.iter(|| codec::parse(black_box(&bytes)).expect("valid frame"))
        });
    }
    group.finish();
}

fn bench_roundtrip_burst(c: &mut Criterion) {
    // A full 40-response lure burst, as one scan produces.
    let burst: Vec<MgmtFrame> = (0..40)
        .map(|i| {
            MgmtFrame::ProbeResponse(ProbeResponse::open_lure(
                mac(9),
                mac(1),
                Ssid::new_lossy(format!("Lure-{i:02}")),
                Channel::new(1).unwrap(),
            ))
        })
        .collect();
    c.bench_function("codec/roundtrip_40_burst", |b| {
        b.iter(|| {
            for frame in &burst {
                let bytes = codec::encode(black_box(frame));
                let _ = codec::parse(&bytes).expect("valid frame");
            }
        })
    });
}

criterion_group!(benches, bench_encode, bench_parse, bench_roundtrip_burst);
criterion_main!(benches);

//! Shared plumbing for the figure/table regeneration binaries.

/// Parses the optional seed argument (first CLI arg, default 1).
pub fn seed_arg() -> u64 {
    std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

/// `true` if `--json` was passed (machine-readable output).
pub fn json_flag() -> bool {
    std::env::args().any(|a| a == "--json")
}

/// Parses an optional `--hours a,b,c` style restriction for the campaign
/// binaries (default: the paper's 8..=19).
pub fn hours_arg() -> Vec<usize> {
    let args: Vec<String> = std::env::args().collect();
    for window in args.windows(2) {
        if window[0] == "--hours" {
            return window[1]
                .split(',')
                .filter_map(|h| h.parse().ok())
                .collect();
        }
    }
    (8..20).collect()
}

#[cfg(test)]
mod tests {
    #[test]
    fn default_hours_cover_the_paper_window() {
        // Cannot override argv in-process; validate the default path shape.
        let hours = super::hours_arg();
        assert_eq!(hours.first(), Some(&8));
        assert_eq!(hours.last(), Some(&19));
        assert_eq!(hours.len(), 12);
    }
}

//! Shared plumbing for the figure/table regeneration binaries.

use std::path::PathBuf;

use ch_fleet::{fingerprint, FleetOptions};

/// Parses the optional seed argument (first CLI arg, default 1).
pub fn seed_arg() -> u64 {
    std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

/// `true` if the bare flag `name` was passed.
pub fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// The value following `name` (e.g. `--jobs 4`), if present.
pub fn value_of(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2).find(|w| w[0] == name).map(|w| w[1].clone())
}

/// `true` if `--json` was passed (machine-readable output).
pub fn json_flag() -> bool {
    flag("--json")
}

/// Parses an optional `--hours a,b,c` style restriction for the campaign
/// binaries (default: the paper's 8..=19).
pub fn hours_arg() -> Vec<usize> {
    match value_of("--hours") {
        Some(spec) => spec.split(',').filter_map(|h| h.parse().ok()).collect(),
        None => (8..20).collect(),
    }
}

/// Parses `--minutes N` — the per-test simulated length for campaign
/// binaries (default: the paper's hour-long tests). Smoke runs shrink it.
pub fn minutes_arg(default: u64) -> u64 {
    value_of("--minutes")
        .and_then(|m| m.parse().ok())
        .filter(|&m| m > 0)
        .unwrap_or(default)
}

/// Parses `--jobs N` — the fleet worker width. `None` falls through to
/// the `CH_JOBS` environment variable, then `available_parallelism` (see
/// `ch_fleet::effective_jobs`).
pub fn jobs_arg() -> Option<usize> {
    value_of("--jobs")
        .and_then(|j| j.parse().ok())
        .filter(|&j| j > 0)
}

/// Exports `--jobs N` as `CH_JOBS` so binaries built on the implicit pool
/// (`scoped_parallel_map` inside `replicate`) honour the flag too.
pub fn apply_jobs_env() {
    if let Some(jobs) = jobs_arg() {
        std::env::set_var("CH_JOBS", jobs.to_string());
    }
}

/// Parses `--manifest PATH` with a per-campaign default under `results/`.
/// `--fresh` deletes the manifest first, forcing a from-scratch run.
pub fn manifest_arg(default: &str) -> PathBuf {
    let path = value_of("--manifest")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(default));
    if flag("--fresh") {
        let _ = std::fs::remove_file(&path);
    }
    path
}

/// Parses `--bench PATH` (the fleet timing artifact; default
/// `results/BENCH_fleet.json`). `--no-bench` disables emission.
pub fn bench_arg() -> Option<PathBuf> {
    if flag("--no-bench") {
        return None;
    }
    Some(
        value_of("--bench")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("results/BENCH_fleet.json")),
    )
}

/// Assembles the fleet options a campaign binary runs under: worker
/// width from `--jobs`, a resumable manifest (default under `results/`,
/// `--fresh` discards it), bench telemetry, and a fingerprint over
/// `config_parts` so a manifest written under different settings is
/// never wrongly reused.
pub fn fleet_options(
    campaign: &str,
    default_manifest: &str,
    config_parts: &[String],
) -> FleetOptions {
    let parts: Vec<&str> = config_parts.iter().map(String::as_str).collect();
    let mut opts = FleetOptions::in_memory(campaign, fingerprint(&parts)).with_jobs(jobs_arg());
    opts.manifest = Some(manifest_arg(default_manifest));
    opts.bench = bench_arg();
    opts
}

/// The fingerprint parts of a Fig. 5/6-style campaign configuration.
pub fn campaign_config(seed: u64, hours: &[usize], minutes: u64) -> Vec<String> {
    let hour_list: Vec<String> = hours.iter().map(ToString::to_string).collect();
    vec![
        format!("seed={seed}"),
        format!("minutes={minutes}"),
        format!("hours={}", hour_list.join(",")),
    ]
}

#[cfg(test)]
mod tests {
    #[test]
    fn default_hours_cover_the_paper_window() {
        // Cannot override argv in-process; validate the default path shape.
        let hours = super::hours_arg();
        assert_eq!(hours.first(), Some(&8));
        assert_eq!(hours.last(), Some(&19));
        assert_eq!(hours.len(), 12);
    }

    #[test]
    fn defaults_without_flags() {
        assert_eq!(super::minutes_arg(60), 60);
        assert_eq!(super::jobs_arg(), None);
        assert_eq!(
            super::manifest_arg("results/fleet_x.jsonl"),
            std::path::PathBuf::from("results/fleet_x.jsonl")
        );
        assert_eq!(
            super::bench_arg(),
            Some(std::path::PathBuf::from("results/BENCH_fleet.json"))
        );
    }
}

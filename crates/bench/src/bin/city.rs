//! City-scale sharded simulation: a whole synthetic city day across
//! districted event queues, reporting wall-clock events/sec into
//! `results/BENCH_city.json`.
//!
//! Thin shim over the registry driver: `experiment city` is equivalent.

fn main() -> Result<(), String> {
    ch_bench::driver::main_for("city")
}

//! Multi-seed replication study: the Tables I/II comparison with
//! confidence intervals instead of single field runs.
//!
//! ```text
//! cargo run --release -p ch-bench --bin replication [base_seed] [--replicas N]
//! ```

use ch_scenarios::experiments::standard_city;
use ch_scenarios::replicate::standard_study;

fn main() {
    let base_seed = ch_bench::common::seed_arg();
    let replicas = {
        let args: Vec<String> = std::env::args().collect();
        args.windows(2)
            .find(|w| w[0] == "--replicas")
            .and_then(|w| w[1].parse().ok())
            .unwrap_or(8)
    };
    let data = standard_city();
    println!("replication study: {replicas} seeds per condition\n");
    for replication in standard_study(&data, base_seed, replicas) {
        println!("{}", replication.render_line());
    }
}

//! Multi-seed replication study: the Tables I/II comparison with confidence intervals instead of single field runs.
//!
//! Thin shim over the registry driver: `experiment replication` is equivalent.

fn main() -> Result<(), String> {
    ch_bench::driver::main_for("replication")
}

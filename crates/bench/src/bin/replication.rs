//! Multi-seed replication study: the Tables I/II comparison with
//! confidence intervals instead of single field runs.
//!
//! ```text
//! cargo run --release -p ch-bench --bin replication [base_seed] \
//!     [--replicas N] [--jobs N]
//! ```

use ch_scenarios::experiments::standard_city;
use ch_scenarios::replicate::standard_study;

fn main() {
    ch_bench::common::apply_jobs_env();
    let base_seed = ch_bench::common::seed_arg();
    let replicas = ch_bench::common::value_of("--replicas")
        .and_then(|r| r.parse().ok())
        .unwrap_or(8);
    let data = standard_city();
    println!("replication study: {replicas} seeds per condition\n");
    for replication in standard_study(&data, base_seed, replicas) {
        println!("{}", replication.render_line());
    }
}

//! Renders Fig. 3 (the City-Hunter logic-flow diagram) with the live
//! parameters of this implementation.

fn main() {
    println!("{}", ch_scenarios::experiments::fig3());
}

//! Renders Fig. 3 (the City-Hunter logic-flow diagram) with the live parameters of this implementation.
//!
//! Thin shim over the registry driver: `experiment fig3` is equivalent.

fn main() -> Result<(), String> {
    ch_bench::driver::main_for("fig3")
}

//! Regenerates Table I of the paper.
//!
//! Thin shim over the registry driver: `experiment table1` is equivalent.

fn main() -> Result<(), String> {
    ch_bench::driver::main_for("table1")
}

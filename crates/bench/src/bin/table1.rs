//! Regenerates Table I of the paper.

fn main() {
    let outcome = ch_scenarios::experiments::table1(ch_bench::common::seed_arg());
    if ch_bench::common::json_flag() {
        let rows = vec![outcome.karma.clone(), outcome.mana.clone()];
        println!("{}", ch_scenarios::report::summary_rows_to_json(&rows));
    } else {
        println!("{}", outcome.render());
    }
}

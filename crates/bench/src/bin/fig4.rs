//! Regenerates Fig. 4: the photo-density heat map for two districts.
//!
//! Thin shim over the registry driver: `experiment fig4` is equivalent.

fn main() -> Result<(), String> {
    ch_bench::driver::main_for("fig4")
}

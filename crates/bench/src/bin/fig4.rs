//! Regenerates Fig. 4: the photo-density heat map for two districts.

fn main() {
    println!("{}", ch_scenarios::experiments::fig4().render());
}

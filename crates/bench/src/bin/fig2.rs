//! Regenerates Fig. 2: per-client SSID-depth distributions.

fn main() {
    let outcome = ch_scenarios::experiments::fig2(ch_bench::common::seed_arg());
    println!("{}", outcome.render());
}

//! Regenerates Fig. 2: per-client SSID-depth distributions.
//!
//! Thin shim over the registry driver: `experiment fig2` is equivalent.

fn main() -> Result<(), String> {
    ch_bench::driver::main_for("fig2")
}

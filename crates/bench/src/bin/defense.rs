//! Countermeasure evaluation: how many frames each attacker generation
//! gets away with before the standard client-side detector bank fires.
//!
//! Quantifies the paper's closing claim that existing evil-twin detection
//! still works against City-Hunter.

use ch_attack::{
    Attacker, CityHunter, CityHunterConfig, KarmaAttacker, ManaAttacker, PrelimCityHunter,
};
use ch_defense::detectors::DetectorBank;
use ch_defense::eval::evaluate_attacker;
use ch_scenarios::experiments::standard_city;
use ch_wifi::mgmt::ProbeRequest;
use ch_wifi::{MacAddr, Ssid};

fn main() {
    let data = standard_city();
    let site = data.site_for(ch_mobility::VenueKind::Canteen);
    let bssid = MacAddr::from_index([0x0a, 0xbc, 0xde], 1);
    let corp = Ssid::new("Corp-WPA2").expect("short ssid");

    println!(
        "Detector bank: co-location(8) + silent-ap(20) + \
         downgrade([Corp-WPA2]) + deauth-flood(5/60s)\n"
    );
    println!(
        "{:<28} {:>10} {:>10} {:>8}",
        "attacker", "frames", "rounds", "alarms"
    );

    let mut contenders: Vec<Box<dyn Attacker>> = vec![
        Box::new(KarmaAttacker::new(bssid)),
        Box::new({
            let mut mana = ManaAttacker::new(bssid);
            // Pre-harvested database from earlier victims.
            for i in 0..30u32 {
                let probe = ProbeRequest::direct(
                    MacAddr::from_index([2, 0, 0], i + 100),
                    Ssid::new_lossy(format!("Disclosed-{i}")),
                );
                mana.respond_to_probe(ch_sim::SimTime::ZERO, &probe, 40);
            }
            mana
        }),
        Box::new(PrelimCityHunter::new(bssid, &data.wigle, &data.heat, site)),
        Box::new(CityHunter::new(
            bssid,
            &data.wigle,
            &data.heat,
            site,
            CityHunterConfig::default(),
        )),
    ];

    for attacker in &mut contenders {
        let mut bank = DetectorBank::client_standard([corp.clone()]);
        let outcome = evaluate_attacker(attacker.as_mut(), &mut bank, 10, Some(corp.clone()));
        println!(
            "{:<28} {:>10} {:>10} {:>8}",
            outcome.attacker,
            outcome
                .frames_to_detection
                .map(|f| f.to_string())
                .unwrap_or_else(|| "never".into()),
            outcome
                .rounds_to_detection
                .map(|r| (r + 1).to_string())
                .unwrap_or_else(|| "-".into()),
            outcome.total_alarms,
        );
    }
    println!(
        "\nreading: the richer the lure database, the faster the co-location \
         heuristic fires — City-Hunter is the *least* stealthy generation."
    );
}

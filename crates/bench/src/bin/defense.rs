//! Countermeasure evaluation: how many frames each attacker generation gets away with before the standard client-side detector bank fires.
//!
//! Thin shim over the registry driver: `experiment defense` is equivalent.

fn main() -> Result<(), String> {
    ch_bench::driver::main_for("defense")
}

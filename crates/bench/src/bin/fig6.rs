//! Regenerates Fig. 6: hit-SSID breakdowns by source and buffer.
//!
//! Same campaign (and same manifest) as `fig5` — running either binary
//! leaves the jobs cached for the other, so regenerating both figures
//! costs one campaign. Flags as for `fig5`.

use ch_bench::common;
use ch_scenarios::experiments::{campaign_fleet, standard_city};
use ch_sim::SimDuration;

fn main() -> Result<(), String> {
    let seed = common::seed_arg();
    let hours = common::hours_arg();
    let minutes = common::minutes_arg(60);
    let opts = common::fleet_options(
        "fig5",
        "results/fleet_fig5.jsonl",
        &common::campaign_config(seed, &hours, minutes),
    );
    let data = standard_city();
    let (outcome, stats) =
        campaign_fleet(&data, seed, &hours, SimDuration::from_mins(minutes), &opts)?;
    eprintln!("{}", stats.render_line());
    if common::json_flag() || common::flag("--csv") {
        println!("{}", outcome.to_csv());
    } else {
        println!("{}", outcome.render_fig6());
    }
    Ok(())
}

//! Regenerates Fig. 6: hit-SSID breakdowns by source and buffer.
//!
//! Same campaign as fig5; restrict with `--hours 8,12,18`.

use ch_scenarios::experiments::{campaign_with, standard_city};

fn main() {
    let seed = ch_bench::common::seed_arg();
    let hours = ch_bench::common::hours_arg();
    let data = standard_city();
    let outcome = campaign_with(&data, seed, &hours);
    if ch_bench::common::json_flag() || std::env::args().any(|a| a == "--csv") {
        println!("{}", outcome.to_csv());
    } else {
        println!("{}", outcome.render_fig6());
    }
}

//! Regenerates Fig. 6: hit-SSID breakdowns by source and buffer (same campaign and manifest as fig5).
//!
//! Thin shim over the registry driver: `experiment fig6` is equivalent.

fn main() -> Result<(), String> {
    ch_bench::driver::main_for("fig6")
}

//! Live countermeasure evaluation: a detector bank listens to an *actual*
//! City-Hunter canteen deployment (via the runner's frame observer) and we
//! measure how long the attack survives and how many victims it claims
//! before the first alarm.

use ch_defense::detectors::DetectorBank;
use ch_defense::monitor::NetworkMonitor;
use ch_scenarios::experiments::standard_city;
use ch_scenarios::runner::{run_experiment_observed, FrameObserver, RunConfig};
use ch_scenarios::AttackerKind;
use ch_sim::{SimDuration, SimTime};
use ch_wifi::mgmt::MgmtFrame;
use ch_wifi::Ssid;

struct BankObserver {
    bank: DetectorBank,
    frames: u64,
}

impl FrameObserver for BankObserver {
    fn enabled(&self) -> bool {
        true
    }

    fn observe(&mut self, at: SimTime, frame: &MgmtFrame) {
        self.frames += 1;
        self.bank.observe(at, frame);
    }
}

fn main() {
    let seed = ch_bench::common::seed_arg();
    let data = standard_city();
    let config = RunConfig::canteen_30min(AttackerKind::CityHunter(Default::default()), seed);
    let mut observer = BankObserver {
        bank: DetectorBank::client_standard([Ssid::new("Corp-WPA2").unwrap()]),
        frames: 0,
    };
    let metrics = run_experiment_observed(&data, &config, &mut observer);

    let first_alarm = observer.bank.first_alarm_at();
    let victims_total =
        metrics.summary("x").broadcast_connected + metrics.summary("x").direct_connected;
    let victims_before = first_alarm
        .map(|t| {
            metrics
                .clients()
                .filter(|(_, rec)| rec.hit.as_ref().is_some_and(|h| h.at <= t))
                .count()
        })
        .unwrap_or(victims_total);

    println!("live detection against a 30-minute City-Hunter canteen run:");
    println!("  frames on air:            {}", observer.frames);
    println!("  total victims:            {victims_total}");
    match first_alarm {
        Some(t) => {
            println!("  first alarm at:           {t} (simulation clock)");
            println!("  victims before detection: {victims_before}");
            println!(
                "  exposure window:          {}",
                SimDuration::from_micros(t.as_micros())
            );
        }
        None => println!("  never detected (unexpected)"),
    }
    println!(
        "  total alarms:             {}",
        observer.bank.alarm_count()
    );

    // Operator fusion: name the rogue.
    let mut monitor = NetworkMonitor::new();
    for (_, alarms) in observer.bank.report() {
        monitor.ingest_all(alarms);
    }
    for (bssid, at) in monitor.rogues() {
        println!("  rogue verdict:            {bssid} (flagged at {at})");
    }
}

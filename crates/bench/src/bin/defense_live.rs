//! Live countermeasure evaluation: a detector bank listens to an actual City-Hunter canteen deployment and we measure how long the attack survives.
//!
//! Thin shim over the registry driver: `experiment defense_live` is equivalent.

fn main() -> Result<(), String> {
    ch_bench::driver::main_for("defense_live")
}

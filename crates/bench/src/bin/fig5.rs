//! Regenerates Fig. 5: the 4-venue × 12-hour City-Hunter campaign, run
//! on the fleet engine.
//!
//! ```text
//! cargo run --release -p ch-bench --bin fig5 -- [seed] \
//!     [--hours 8,12,18] [--minutes N] [--jobs N] \
//!     [--manifest PATH] [--fresh] [--bench PATH | --no-bench] [--csv]
//! ```
//!
//! Parallel runs are bit-identical to `--jobs 1`; a killed run resumes
//! from the manifest (default `results/fleet_fig5.jsonl`, shared with
//! `fig6` — the two figures are views of the same campaign).

use ch_bench::common;
use ch_scenarios::experiments::{campaign_fleet, standard_city};
use ch_sim::SimDuration;

fn main() -> Result<(), String> {
    let seed = common::seed_arg();
    let hours = common::hours_arg();
    let minutes = common::minutes_arg(60);
    let opts = common::fleet_options(
        "fig5",
        "results/fleet_fig5.jsonl",
        &common::campaign_config(seed, &hours, minutes),
    );
    let data = standard_city();
    let (outcome, stats) =
        campaign_fleet(&data, seed, &hours, SimDuration::from_mins(minutes), &opts)?;
    eprintln!("{}", stats.render_line());
    if common::json_flag() || common::flag("--csv") {
        println!("{}", outcome.to_csv());
    } else {
        println!("{}", outcome.render_fig5());
    }
    Ok(())
}

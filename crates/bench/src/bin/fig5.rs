//! Regenerates Fig. 5: the 4-venue × 12-hour City-Hunter campaign, run on the fleet engine.
//!
//! Thin shim over the registry driver: `experiment fig5` is equivalent.

fn main() -> Result<(), String> {
    ch_bench::driver::main_for("fig5")
}

//! Regenerates Fig. 1: MANA's database growth vs its real-time hit rate.
//!
//! Thin shim over the registry driver: `experiment fig1` is equivalent.

fn main() -> Result<(), String> {
    ch_bench::driver::main_for("fig1")
}

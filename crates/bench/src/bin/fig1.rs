//! Regenerates Fig. 1: MANA's database growth vs its real-time hit rate.

fn main() {
    let outcome = ch_scenarios::experiments::fig1(ch_bench::common::seed_arg());
    println!("{}", outcome.render());
}

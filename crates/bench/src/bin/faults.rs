//! Fault-injection study: attacker generations under burst loss, frame
//! corruption, client churn and scheduled crashes.
//!
//! Thin shim over the registry driver: `experiment faults` is equivalent.

fn main() -> Result<(), String> {
    ch_bench::driver::main_for("faults")
}

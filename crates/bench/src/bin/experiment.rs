//! The unified experiment driver: run any registry artifact by id.
//!
//! ```text
//! cargo run --release -p ch-bench --bin experiment -- --list
//! cargo run --release -p ch-bench --bin experiment -- table1 [seed] [--json]
//! cargo run --release -p ch-bench --bin experiment -- fig5 [seed] \
//!     [--hours 8,12,18] [--minutes N] [--jobs N] \
//!     [--manifest PATH] [--fresh] [--bench PATH | --no-bench] [--csv]
//! ```
//!
//! Every experiment gains the same fleet controls: `--jobs` (or the
//! `CH_JOBS` environment variable) caps the workers, `--manifest` makes
//! the run resumable, `--bench` emits `BENCH_fleet.json` telemetry.
//! Parallel runs are bit-identical to `--jobs 1`.

fn main() -> Result<(), String> {
    ch_bench::driver::main_experiment()
}

//! perfbench — the deterministic hot-path performance gate.
//!
//! Unlike the criterion benches (wall-clock, noisy, advisory), this binary
//! measures only quantities that are *bit-identical across runs*:
//!
//! * **allocation medians** — with [`ch_sim::alloc::CountingAlloc`]
//!   installed as the global allocator, it counts heap allocations per
//!   probe on warm attacker state. The tentpole claim of the zero-alloc
//!   refactor is checked here: steady-state probe handling must report a
//!   median of **0** allocations.
//! * **event throughput** — probes handled per *simulated* minute in a
//!   fixed-seed canteen run, counted by wrapping the attacker. Sim-clock
//!   based, so no wall-clock enters the output.
//!
//! The JSON it writes (`results/BENCH_hotpath.json` by default) has a fixed
//! key order and integer-only metrics; `ci.sh` runs it twice in `--quick`
//! mode and requires the two outputs to be byte-identical.
//!
//! Usage: `perfbench [--quick] [--out PATH]`

use std::io::Write as _;

use ch_attack::buffers::{AdaptiveBuffers, SelectScratch};
use ch_attack::{Attacker, CityHunter, CityHunterConfig, Lure};
use ch_scenarios::experiments::CITY_SEED;
use ch_scenarios::runner::{run_experiment_with_attacker, RunConfig};
use ch_scenarios::{AttackerKind, CityData};
use ch_sim::alloc::count_allocations;
use ch_sim::{SimDuration, SimRng, SimTime};
use ch_wifi::mgmt::{MgmtFrame, ProbeRequest, ProbeResponse};
use ch_wifi::{codec, Channel, MacAddr, Ssid, SsidInterner};

#[global_allocator]
static ALLOC: ch_sim::alloc::CountingAlloc = ch_sim::alloc::CountingAlloc;

/// Probes measured per alloc metric (after warmup).
const FULL_ITERS: usize = 512;
const QUICK_ITERS: usize = 64;

/// Warm pool of broadcast clients, round-robined so per-client untried
/// lists never exhaust inside the measurement window.
const CLIENT_POOL: usize = 64;

/// Direct-probe SSIDs harvested before measuring, so the database is deep
/// enough to serve every measured scan (pool × scans × 40 lures).
const HARVEST: usize = 1_700;

fn mac(i: u32) -> MacAddr {
    MacAddr::from_index([2, 0, 0], i)
}

fn median(samples: &mut [u64]) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Measures allocations per broadcast probe on a warm City-Hunter.
fn respond_broadcast_median(data: &CityData, iters: usize, tracking: bool) -> u64 {
    let site = data.site_for(ch_mobility::VenueKind::Canteen);
    let config = CityHunterConfig {
        untried_tracking: tracking,
        ..CityHunterConfig::default()
    };
    let mut hunter = CityHunter::new(mac(9_999), &data.wigle, &data.heat, site, config);

    // Deepen the database past what the measurement can drain.
    for i in 0..HARVEST as u32 {
        let probe = ProbeRequest::direct(mac(100_000 + i), Ssid::new_lossy(format!("D{i:04}")));
        hunter.respond_to_probe(SimTime::ZERO, &probe, 40);
    }

    // Pre-built probes: probe construction is not the code under test.
    let probes: Vec<ProbeRequest> = (0..CLIENT_POOL as u32)
        .map(|i| ProbeRequest::broadcast(mac(i)))
        .collect();
    let mut out: Vec<Lure> = Vec::new();
    // Warmup: three scans per client, so every per-client sent-set sits at
    // 120 ids inside a 256-slot table — the measured scans stay clear of
    // hashtable resize thresholds and all scratch reaches capacity.
    for (w, probe) in probes.iter().cycle().take(3 * CLIENT_POOL).enumerate() {
        hunter.respond_to_probe_into(SimTime::from_secs(w as u64), probe, 40, &mut out);
    }

    let mut samples = Vec::with_capacity(iters);
    for (w, probe) in probes.iter().cycle().take(iters).enumerate() {
        let now = SimTime::from_secs(1_000 + w as u64);
        let (allocs, ()) =
            count_allocations(|| hunter.respond_to_probe_into(now, probe, 40, &mut out));
        samples.push(allocs);
    }
    median(&mut samples)
}

/// Measures allocations per *direct* probe for already-known SSIDs.
fn respond_direct_median(data: &CityData, iters: usize) -> u64 {
    let site = data.site_for(ch_mobility::VenueKind::Canteen);
    let mut hunter = CityHunter::new(
        mac(9_999),
        &data.wigle,
        &data.heat,
        site,
        CityHunterConfig::default(),
    );
    let probes: Vec<ProbeRequest> = (0..32u32)
        .map(|i| ProbeRequest::direct(mac(i), Ssid::new_lossy(format!("K{i:02}"))))
        .collect();
    let mut out: Vec<Lure> = Vec::new();
    // First pass harvests the SSIDs; afterwards every probe is a known hit.
    for probe in &probes {
        hunter.respond_to_probe_into(SimTime::ZERO, probe, 40, &mut out);
    }
    let mut samples = Vec::with_capacity(iters);
    for (w, probe) in probes.iter().cycle().take(iters).enumerate() {
        let now = SimTime::from_secs(1 + w as u64);
        let (allocs, ()) =
            count_allocations(|| hunter.respond_to_probe_into(now, probe, 40, &mut out));
        samples.push(allocs);
    }
    median(&mut samples)
}

/// Measures allocations per warm-scratch buffer selection.
fn select_into_median(iters: usize) -> u64 {
    let buffers = AdaptiveBuffers::paper_default();
    let mut interner = SsidInterner::new();
    let by_weight: Vec<_> = (0..300)
        .map(|i| interner.intern(&Ssid::new_lossy(format!("w{i:03}"))))
        .collect();
    let by_fresh: Vec<_> = (0..60)
        .map(|i| interner.intern(&Ssid::new_lossy(format!("f{i:02}"))))
        .collect();
    let mut rng = SimRng::seed_from(7);
    let mut scratch = SelectScratch::new();
    let mut out = Vec::new();
    buffers.select_into(&by_weight, &by_fresh, 40, &mut rng, &mut scratch, &mut out);

    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let (allocs, ()) = count_allocations(|| {
            buffers.select_into(&by_weight, &by_fresh, 40, &mut rng, &mut scratch, &mut out);
        });
        samples.push(allocs);
    }
    median(&mut samples)
}

/// Measures allocations per frame encode into a warm buffer.
fn encode_into_median(iters: usize) -> u64 {
    let frame = MgmtFrame::ProbeResponse(ProbeResponse::open_lure(
        mac(9),
        mac(1),
        Ssid::new_lossy("#HKAirport Free WiFi"),
        Channel::default_attack_channel(),
    ));
    let mut buf = Vec::new();
    codec::encode_into(&frame, &mut buf);
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let (allocs, ()) = count_allocations(|| codec::encode_into(&frame, &mut buf));
        samples.push(allocs);
    }
    median(&mut samples)
}

/// Wraps an attacker and counts how many probes it answers.
struct CountingAttacker<A> {
    inner: A,
    probes: u64,
}

impl<A: Attacker + 'static> Attacker for CountingAttacker<A> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn bssid(&self) -> MacAddr {
        self.inner.bssid()
    }

    fn respond_to_probe_into(
        &mut self,
        now: SimTime,
        probe: &ProbeRequest,
        budget: usize,
        out: &mut Vec<Lure>,
    ) {
        self.probes += 1;
        self.inner.respond_to_probe_into(now, probe, budget, out);
    }

    fn on_hit(&mut self, now: SimTime, client: MacAddr, lure: &Lure) {
        self.inner.on_hit(now, client, lure);
    }

    fn database_len(&self) -> usize {
        self.inner.database_len()
    }

    fn deauth_enabled(&self) -> bool {
        self.inner.deauth_enabled()
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// One fixed-seed canteen run; throughput in probes per simulated minute.
fn throughput(data: &CityData, minutes: u64) -> (u64, u64, u64) {
    let config = RunConfig {
        duration: SimDuration::from_mins(minutes),
        ..RunConfig::canteen_30min(AttackerKind::CityHunter(CityHunterConfig::default()), 1)
    };
    let site = data.site_for(config.venue);
    let mut attacker = CountingAttacker {
        inner: CityHunter::new(
            mac(9_999),
            &data.wigle,
            &data.heat,
            site,
            CityHunterConfig::default(),
        ),
        probes: 0,
    };
    let metrics = run_experiment_with_attacker(data, &config, &mut attacker);
    let sim_seconds = config.duration.as_secs();
    let per_minute = attacker.probes * 60 / sim_seconds.max(1);
    // Keep the run honest: a throughput figure over an empty room would be
    // meaningless.
    assert!(metrics.client_count() > 0, "throughput run saw no clients");
    (sim_seconds, attacker.probes, per_minute)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("results/BENCH_hotpath.json", String::as_str);
    let iters = if quick { QUICK_ITERS } else { FULL_ITERS };
    let minutes = if quick { 5 } else { 30 };

    eprintln!("perfbench: building the standard city (seed {CITY_SEED:#x})...");
    let data = CityData::standard(CITY_SEED);

    eprintln!("perfbench: alloc medians over {iters} probes each...");
    let broadcast_tracking = respond_broadcast_median(&data, iters, true);
    let broadcast_no_tracking = respond_broadcast_median(&data, iters, false);
    let direct_known = respond_direct_median(&data, iters);
    let select_warm = select_into_median(iters);
    let encode_warm = encode_into_median(iters);

    eprintln!("perfbench: {minutes}-simulated-minute canteen throughput run...");
    let (sim_seconds, probes, per_minute) = throughput(&data, minutes);

    // Hand-rolled JSON with a fixed key order and integer-only values, so
    // two runs of the same build produce byte-identical files.
    let mode = if quick { "quick" } else { "full" };
    let json = format!(
        "{{\n  \"bench\": \"hotpath\",\n  \"mode\": \"{mode}\",\n  \"alloc_iters\": {iters},\n  \
         \"alloc_median_per_call\": {{\n    \
         \"respond_broadcast_tracking\": {broadcast_tracking},\n    \
         \"respond_broadcast_no_tracking\": {broadcast_no_tracking},\n    \
         \"respond_direct_known\": {direct_known},\n    \
         \"select_into_warm\": {select_warm},\n    \
         \"encode_into_warm\": {encode_warm}\n  }},\n  \
         \"throughput\": {{\n    \
         \"seed\": 1,\n    \
         \"sim_seconds\": {sim_seconds},\n    \
         \"probes_handled\": {probes},\n    \
         \"probes_per_sim_minute\": {per_minute}\n  }}\n}}\n"
    );

    if let Some(parent) = std::path::Path::new(out_path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create output directory");
        }
    }
    let mut file = std::fs::File::create(out_path).expect("create output file");
    file.write_all(json.as_bytes()).expect("write bench json");
    print!("{json}");
    eprintln!("perfbench: wrote {out_path}");

    // The gate itself: steady-state probe handling must not allocate.
    for (name, value) in [
        ("respond_broadcast_tracking", broadcast_tracking),
        ("respond_broadcast_no_tracking", broadcast_no_tracking),
        ("respond_direct_known", direct_known),
        ("select_into_warm", select_warm),
        ("encode_into_warm", encode_warm),
    ] {
        assert_eq!(value, 0, "hot path `{name}` allocates at steady state");
    }
}

//! Sensitivity sweeps: lure budget, radio range, MAC randomization, crowd density and scan interval, with replicated confidence intervals.
//!
//! Thin shim over the registry driver: `experiment sweep` is equivalent.

fn main() -> Result<(), String> {
    ch_bench::driver::main_for("sweep")
}

//! Sensitivity sweeps: the §III-A lure-budget cap and the attacker's radio
//! range, with replicated confidence intervals.
//!
//! ```text
//! cargo run --release -p ch-bench --bin sweep [base_seed] \
//!     [--replicas N] [--jobs N]
//! ```

use ch_scenarios::experiments::{
    standard_city, sweep_crowd_density, sweep_lure_budget, sweep_mac_randomization,
    sweep_radio_range, sweep_scan_interval,
};

fn main() {
    ch_bench::common::apply_jobs_env();
    let base_seed = ch_bench::common::seed_arg();
    let replicas = ch_bench::common::value_of("--replicas")
        .and_then(|r| r.parse().ok())
        .unwrap_or(5);
    let data = standard_city();
    println!("{}", sweep_lure_budget(&data, base_seed, replicas).render());
    println!("{}", sweep_radio_range(&data, base_seed, replicas).render());
    println!(
        "{}",
        sweep_mac_randomization(&data, base_seed, replicas).render()
    );
    println!(
        "{}",
        sweep_crowd_density(&data, base_seed, replicas).render()
    );
    println!(
        "{}",
        sweep_scan_interval(&data, base_seed, replicas).render()
    );
}

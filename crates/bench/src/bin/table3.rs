//! Regenerates Table III of the paper.
//!
//! Thin shim over the registry driver: `experiment table3` is equivalent.

fn main() -> Result<(), String> {
    ch_bench::driver::main_for("table3")
}

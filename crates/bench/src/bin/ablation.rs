//! Ablation matrix: each City-Hunter design choice disabled in isolation,
//! plus the §V-B extensions enabled.

fn main() {
    let outcome = ch_scenarios::experiments::ablation(ch_bench::common::seed_arg());
    println!("{}", outcome.render());
}

//! Ablation matrix: each City-Hunter design choice disabled in isolation, plus the §V-B extensions enabled.
//!
//! Thin shim over the registry driver: `experiment ablation` is equivalent.

fn main() -> Result<(), String> {
    ch_bench::driver::main_for("ablation")
}

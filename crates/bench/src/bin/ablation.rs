//! Ablation matrix: each City-Hunter design choice disabled in isolation,
//! plus the §V-B extensions enabled. Runs on the fleet engine:
//!
//! ```text
//! cargo run --release -p ch-bench --bin ablation -- [seed] \
//!     [--jobs N] [--manifest PATH] [--fresh] [--bench PATH | --no-bench]
//! ```

use ch_bench::common;
use ch_scenarios::experiments::{ablation_fleet, standard_city};

fn main() -> Result<(), String> {
    let seed = common::seed_arg();
    let opts = common::fleet_options(
        "ablation",
        "results/fleet_ablation.jsonl",
        &[format!("seed={seed}")],
    );
    let data = standard_city();
    let (outcome, stats) = ablation_fleet(&data, seed, &opts)?;
    eprintln!("{}", stats.render_line());
    println!("{}", outcome.render());
    Ok(())
}

//! Warm-start study: what re-initializing the database per test (§V-A)
//! leaves on the table.

fn main() {
    let outcome = ch_scenarios::experiments::warm_start(ch_bench::common::seed_arg());
    println!("{}", outcome.render());
}

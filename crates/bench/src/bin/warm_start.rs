//! Warm-start study: what re-initializing the database per test (§V-A) leaves on the table.
//!
//! Thin shim over the registry driver: `experiment warm_start` is equivalent.

fn main() -> Result<(), String> {
    ch_bench::driver::main_for("warm_start")
}

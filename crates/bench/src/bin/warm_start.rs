//! Warm-start study: what re-initializing the database per test (§V-A)
//! leaves on the table. The cold controls run as fleet jobs; the warm
//! attacker's chain is inherently serial.
//!
//! ```text
//! cargo run --release -p ch-bench --bin warm_start -- [seed] \
//!     [--slots N] [--jobs N] [--manifest PATH] [--fresh] \
//!     [--bench PATH | --no-bench]
//! ```

use ch_bench::common;
use ch_scenarios::experiments::{standard_city, warm_start_fleet};

fn main() -> Result<(), String> {
    let seed = common::seed_arg();
    let slots = common::value_of("--slots")
        .and_then(|s| s.parse().ok())
        .filter(|&s| s > 0)
        .unwrap_or(4);
    let opts = common::fleet_options(
        "warm-start",
        "results/fleet_warm_start.jsonl",
        &[format!("seed={seed}"), format!("slots={slots}")],
    );
    let data = standard_city();
    let (outcome, stats) = warm_start_fleet(&data, seed, slots, &opts)?;
    eprintln!("{}", stats.render_line());
    println!("{}", outcome.render());
    Ok(())
}

//! Regenerates Table IV: top-5 SSIDs by AP count vs by heat value.
//!
//! Thin shim over the registry driver: `experiment table4` is equivalent.

fn main() -> Result<(), String> {
    ch_bench::driver::main_for("table4")
}

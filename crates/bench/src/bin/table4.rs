//! Regenerates Table IV: top-5 SSIDs by AP count vs by heat value.

fn main() {
    println!("{}", ch_scenarios::experiments::table4().render());
}

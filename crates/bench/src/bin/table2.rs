//! Regenerates Table II of the paper.
//!
//! Thin shim over the registry driver: `experiment table2` is equivalent.

fn main() -> Result<(), String> {
    ch_bench::driver::main_for("table2")
}

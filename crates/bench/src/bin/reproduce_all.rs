//! One-shot reproduction: regenerates every table and figure of the paper
//! (plus the ablation) into a single consolidated report on stdout.
//!
//! ```text
//! cargo run --release -p ch-bench --bin reproduce_all [seed] [--jobs N] > report.txt
//! ```
//!
//! Iterates the experiment registry, building the city once; the campaign
//! and ablation sections run in parallel on the fleet engine.

fn main() -> Result<(), String> {
    ch_bench::driver::main_reproduce_all()
}

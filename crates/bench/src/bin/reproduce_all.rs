//! One-shot reproduction: regenerates every table and figure of the paper
//! (plus the ablation) into a single consolidated report on stdout.
//!
//! ```text
//! cargo run --release -p ch-bench --bin reproduce_all [seed] > report.txt
//! ```
//!
//! Builds the city once and reuses it, so the whole paper reproduces in
//! about a minute of wall-clock time.

use ch_scenarios::experiments as exp;

fn main() {
    let seed = ch_bench::common::seed_arg();
    let hours: Vec<usize> = (8..20).collect();
    eprintln!("building the standard city...");
    let data = exp::standard_city();

    let mut sections: Vec<(&str, String)> = Vec::new();
    eprintln!("Table I...");
    sections.push(("Table I", exp::table1_with(&data, seed).render()));
    eprintln!("Fig. 1...");
    sections.push(("Fig. 1", exp::fig1_with(&data, seed).render()));
    eprintln!("Table II...");
    sections.push(("Table II", exp::table2_with(&data, seed).render()));
    eprintln!("Table III...");
    sections.push(("Table III", exp::table3_with(&data, seed).render()));
    eprintln!("Fig. 2...");
    sections.push(("Fig. 2", exp::fig2_with(&data, seed).render()));
    eprintln!("Table IV...");
    sections.push(("Table IV", exp::table4_with(&data).render()));
    eprintln!("Fig. 4...");
    sections.push(("Fig. 4", exp::fig4_with(&data).render()));
    eprintln!("Fig. 5 + Fig. 6 campaign (48 hour-long runs)...");
    let campaign = exp::campaign_with(&data, seed, &hours);
    sections.push(("Fig. 5", campaign.render_fig5()));
    sections.push(("Fig. 6", campaign.render_fig6()));
    eprintln!("ablation...");
    sections.push(("Ablation", exp::ablation_with(&data, seed).render()));

    println!("# City-Hunter reproduction report (seed {seed})\n");
    for (title, body) in sections {
        println!("================================================================");
        println!("== {title}");
        println!("================================================================\n");
        println!("{body}");
    }
}

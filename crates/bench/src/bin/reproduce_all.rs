//! One-shot reproduction: regenerates every table and figure of the paper
//! (plus the ablation) into a single consolidated report on stdout.
//!
//! ```text
//! cargo run --release -p ch-bench --bin reproduce_all [seed] [--jobs N] > report.txt
//! ```
//!
//! Builds the city once and reuses it; the campaign and ablation sections
//! run in parallel on the fleet engine (`--jobs` caps the workers), so
//! the whole paper reproduces in about a minute of wall-clock time.

use ch_fleet::FleetOptions;
use ch_scenarios::experiments as exp;
use ch_sim::SimDuration;

fn main() -> Result<(), String> {
    ch_bench::common::apply_jobs_env();
    let seed = ch_bench::common::seed_arg();
    let jobs = ch_bench::common::jobs_arg();
    let hours: Vec<usize> = (8..20).collect();
    eprintln!("building the standard city...");
    let data = exp::standard_city();

    let mut sections: Vec<(&str, String)> = Vec::new();
    eprintln!("Table I...");
    sections.push(("Table I", exp::table1_with(&data, seed).render()));
    eprintln!("Fig. 1...");
    sections.push(("Fig. 1", exp::fig1_with(&data, seed).render()));
    eprintln!("Table II...");
    sections.push(("Table II", exp::table2_with(&data, seed).render()));
    eprintln!("Table III...");
    sections.push(("Table III", exp::table3_with(&data, seed).render()));
    eprintln!("Fig. 2...");
    sections.push(("Fig. 2", exp::fig2_with(&data, seed).render()));
    eprintln!("Table IV...");
    sections.push(("Table IV", exp::table4_with(&data).render()));
    eprintln!("Fig. 4...");
    sections.push(("Fig. 4", exp::fig4_with(&data).render()));
    eprintln!("Fig. 5 + Fig. 6 campaign (48 hour-long runs)...");
    let (campaign, stats) = exp::campaign_fleet(
        &data,
        seed,
        &hours,
        SimDuration::from_hours(1),
        &FleetOptions::in_memory("fig5", 0).with_jobs(jobs),
    )?;
    eprintln!("{}", stats.render_line());
    sections.push(("Fig. 5", campaign.render_fig5()));
    sections.push(("Fig. 6", campaign.render_fig6()));
    eprintln!("ablation...");
    let (ablation, stats) = exp::ablation_fleet(
        &data,
        seed,
        &FleetOptions::in_memory("ablation", 0).with_jobs(jobs),
    )?;
    eprintln!("{}", stats.render_line());
    sections.push(("Ablation", ablation.render()));

    println!("# City-Hunter reproduction report (seed {seed})\n");
    for (title, body) in sections {
        println!("================================================================");
        println!("== {title}");
        println!("================================================================\n");
        println!("{body}");
    }
    Ok(())
}

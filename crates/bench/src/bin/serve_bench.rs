//! `serve_bench` — sustained-throughput harness for the `ch-serve`
//! streaming service.
//!
//! Three measurements over a deterministic sim-generated stream:
//!
//! 1. **wall throughput** — events (and probes) per wall-clock second
//!    through [`ch_serve::Service::process`], in memory, no file I/O;
//! 2. **virtual latency** — p50/p99 of per-event virtual latency
//!    (queueing + deterministic service cost) from the service's log₂
//!    histogram;
//! 3. **overload shedding** — the same stream time-compressed to ~10×
//!    the service's sustainable rate: the bounded ingest ring must shed
//!    (counted, not silently, and without panicking) while the service
//!    keeps running.
//!
//! Writes `results/BENCH_serve.json` (override with `--out`); `--quick`
//! shortens the stream for CI.

use std::io::Write;

use ch_attack::{AttackerSpec, CityHunterConfig};
use ch_scenarios::{CityData, RunConfig};
use ch_serve::service::{ASSOC_COST_US, BASE_PROBE_COST_US, PER_LURE_COST_US};
use ch_serve::{EventSource, ServeConfig, Service};
use ch_sim::SimDuration;

const CITY_SEED: u64 = 0xC17E;
/// Wall-clock measurement repetitions (median reported).
const REPS: usize = 5;

fn build_service(data: &CityData) -> Service {
    let spec = AttackerSpec::CityHunter(CityHunterConfig::default());
    Service::new(data, ServeConfig::new(spec, CITY_SEED))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("results/BENCH_serve.json", String::as_str);
    let minutes = if quick { 5 } else { 30 };

    eprintln!("serve_bench: building the standard city (seed {CITY_SEED:#x})...");
    let data = CityData::standard(CITY_SEED);

    eprintln!("serve_bench: generating a {minutes}-minute sim stream...");
    let spec = AttackerSpec::CityHunter(CityHunterConfig::default());
    let mut run = RunConfig::canteen_30min(spec, CITY_SEED);
    run.duration = SimDuration::from_mins(minutes);
    let source = EventSource::from_sim(&data, &run);
    let events = source.len();

    // Wall throughput: median of REPS full consumptions, fresh service
    // each time (the attacker's database warms within a run).
    eprintln!("serve_bench: measuring wall throughput ({REPS} reps over {events} events)...");
    let mut rates: Vec<f64> = Vec::with_capacity(REPS);
    let mut last_stats = None;
    let mut p50 = 0u64;
    let mut p99 = 0u64;
    for _ in 0..REPS {
        let mut service = build_service(&data);
        let start = std::time::Instant::now();
        service.consume_all(&source, 0);
        let secs = start.elapsed().as_secs_f64().max(1e-9);
        rates.push(events as f64 / secs);
        p50 = service.latency_percentile_us(50.0);
        p99 = service.latency_percentile_us(99.0);
        last_stats = Some(*service.stats());
    }
    rates.sort_by(|a, b| a.total_cmp(b));
    let events_per_sec = rates[REPS / 2];
    let stats = last_stats.expect("at least one rep ran");
    let probe_share = stats.probes as f64 / stats.events.max(1) as f64;
    let probes_per_sec = events_per_sec * probe_share;

    // Overload: compress arrivals until offered load is ~10x the virtual
    // service capacity. Busy time comes from the measured run's own
    // cost model, so the factor adapts to the stream's actual mix.
    let busy_us = stats.probes * BASE_PROBE_COST_US
        + stats.lures * PER_LURE_COST_US
        + stats.assocs * ASSOC_COST_US;
    let duration_us = source
        .events()
        .last()
        .map_or(0, ch_serve::InputEvent::t_us)
        .max(1);
    let factor = (10 * duration_us / busy_us.max(1)).max(1);
    eprintln!("serve_bench: overload run at {factor}x time compression (10x capacity)...");
    let mut overload = build_service(&data);
    overload.consume_all(&source.clone().with_time_compressed(factor), 0);
    let shed = overload.stats().shed;
    assert!(shed > 0, "10x overload must shed (counted backpressure)");
    assert_eq!(
        overload.stats().events,
        events as u64,
        "every event must be consumed (processed or counted-shed)"
    );

    let mode = if quick { "quick" } else { "full" };
    let json = format!(
        "{{\n  \"schema\": \"ch-serve-bench-v1\",\n  \"mode\": \"{mode}\",\n  \
         \"stream\": {{\n    \"seed\": {CITY_SEED},\n    \"sim_minutes\": {minutes},\n    \
         \"events\": {events},\n    \"probes\": {probes},\n    \"lures\": {lures}\n  }},\n  \
         \"throughput\": {{\n    \"events_per_sec\": {eps},\n    \
         \"probes_per_sec\": {pps},\n    \"p50_us\": {p50},\n    \"p99_us\": {p99}\n  }},\n  \
         \"overload\": {{\n    \"compression_factor\": {factor},\n    \
         \"offered_over_capacity\": 10,\n    \"shed\": {shed},\n    \
         \"shed_fraction\": {shed_frac:.4}\n  }}\n}}\n",
        probes = stats.probes,
        lures = stats.lures,
        eps = events_per_sec as u64,
        pps = probes_per_sec as u64,
        shed_frac = shed as f64 / events.max(1) as f64,
    );

    if let Some(parent) = std::path::Path::new(out_path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create output directory");
        }
    }
    let mut file = std::fs::File::create(out_path).expect("create output file");
    file.write_all(json.as_bytes()).expect("write bench json");
    print!("{json}");
    eprintln!("serve_bench: wrote {out_path}");
}

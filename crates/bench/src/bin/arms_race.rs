//! Detection arms race: attacker generations under evasion postures
//! against the `ch-detect` rogue-AP monitor at three strictness levels.
//!
//! Thin shim over the registry driver: `experiment arms_race` is
//! equivalent.

fn main() -> Result<(), String> {
    ch_bench::driver::main_for("arms_race")
}

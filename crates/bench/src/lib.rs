//! Figure/table regeneration harness for the City-Hunter reproduction.
//!
//! All regeneration logic lives in [`driver`], a thin CLI over the
//! `ch-scenarios` experiment registry; every binary in `src/bin/` is a
//! one-line shim into it.

pub mod driver;

//! Figure/table regeneration harness for the City-Hunter reproduction.

pub mod common;

//! The unified experiment driver: one CLI over the `ch-scenarios`
//! registry.
//!
//! Every `ch-bench` binary is a one-line shim into this module:
//! the per-artifact bins call [`main_for`] with their registry id,
//! `experiment` is [`main_experiment`] (any id, `--list`, `--json`), and
//! `reproduce_all` is [`main_reproduce_all`]. All of them share one flag
//! grammar ([`Cli`]), one [`FleetOptions`] assembly (worker width,
//! resumable manifest, bench telemetry) and one output contract: fleet
//! stats on stderr, the artifact bytes on stdout.
//!
//! The two countermeasure studies ([`registry`] entries marked
//! `external`) execute here rather than in `ch-scenarios` because they
//! need the `ch-defense` detector stack; they run as ordinary fleet
//! campaigns whose job records are the rendered report lines.

use std::path::PathBuf;

use ch_attack::AttackerSpec;
use ch_defense::detectors::DetectorBank;
use ch_defense::eval::{evaluate_spec, EvalSpecOptions};
use ch_defense::monitor::NetworkMonitor;
use ch_fleet::{fingerprint, run_campaign, FleetOptions, JobSpec, JobStatus, Json, Stopwatch};
use ch_scenarios::experiments as exp;
use ch_scenarios::registry::{self, Artifact, ExperimentSpec, RunParams, REGISTRY};
use ch_scenarios::runner::{run_experiment_observed, FrameObserver, RunConfig};
use ch_scenarios::{run_city, AttackerKind, CampaignCtx, CityConfig, CityData};
use ch_sim::{SimDuration, SimTime};
use ch_wifi::mgmt::MgmtFrame;
use ch_wifi::Ssid;

/// Flags that take a value.
const VALUE_FLAGS: &[&str] = &[
    "--hours",
    "--minutes",
    "--jobs",
    "--manifest",
    "--bench",
    "--replicas",
    "--slots",
    "--id",
    "--districts",
    "--shards",
];

/// Bare flags.
const BARE_FLAGS: &[&str] = &[
    "--fresh",
    "--no-bench",
    "--bench-full",
    "--json",
    "--csv",
    "--list",
    "--quick",
];

/// The parsed command line, shared by every binary.
#[derive(Debug, Clone, Default)]
pub struct Cli {
    /// Non-flag arguments, in order (experiment id and/or seed).
    pub positionals: Vec<String>,
    flags: Vec<String>,
    values: Vec<(String, String)>,
}

impl Cli {
    /// Parses `args` (without the program name).
    ///
    /// # Errors
    ///
    /// Fails on an unknown `--flag` or a value flag without its value.
    pub fn parse(args: &[String]) -> Result<Cli, String> {
        let mut cli = Cli::default();
        let mut iter = args.iter().peekable();
        while let Some(arg) = iter.next() {
            if VALUE_FLAGS.contains(&arg.as_str()) {
                let value = iter
                    .next()
                    .ok_or_else(|| format!("flag `{arg}` needs a value"))?;
                cli.values.push((arg.clone(), value.clone()));
            } else if BARE_FLAGS.contains(&arg.as_str()) {
                cli.flags.push(arg.clone());
            } else if arg.starts_with("--") {
                return Err(format!("unknown flag `{arg}` (see `experiment --list`)"));
            } else {
                cli.positionals.push(arg.clone());
            }
        }
        Ok(cli)
    }

    /// Parses the process arguments.
    ///
    /// # Errors
    ///
    /// As for [`Cli::parse`].
    pub fn from_env() -> Result<Cli, String> {
        let args: Vec<String> = std::env::args().skip(1).collect();
        Cli::parse(&args)
    }

    /// `true` if the bare flag was passed.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// The value of a value flag, if present.
    pub fn value_of(&self, name: &str) -> Option<&str> {
        self.values
            .iter()
            .find(|(flag, _)| flag == name)
            .map(|(_, value)| value.as_str())
    }

    /// A parsed positive number flag (`--jobs 4`); unparsable or zero
    /// values fall back to the default, as the legacy binaries did.
    fn positive(&self, name: &str) -> Option<usize> {
        self.value_of(name)
            .and_then(|v| v.parse().ok())
            .filter(|&v| v > 0)
    }

    /// The seed: first positional after the id offset, default 1.
    fn seed_at(&self, index: usize) -> u64 {
        self.positionals
            .get(index)
            .and_then(|s| s.parse().ok())
            .unwrap_or(1)
    }
}

/// Builds the [`RunParams`] for one run from the shared flag grammar.
fn run_params(cli: &Cli, seed: u64) -> RunParams {
    let mut params = RunParams::new(seed);
    if let Some(spec) = cli.value_of("--hours") {
        params.hours = spec.split(',').filter_map(|h| h.parse().ok()).collect();
    }
    if let Some(minutes) = cli.positive("--minutes") {
        params.minutes = minutes as u64;
    }
    params.replicas = cli.positive("--replicas");
    if let Some(slots) = cli.positive("--slots") {
        params.slots = slots;
    }
    params.machine = cli.flag("--json") || cli.flag("--csv");
    params.quick = cli.flag("--quick");
    params
}

/// Assembles the fleet options for one experiment: worker width from
/// `--jobs` (then `CH_JOBS`, then `available_parallelism`), the spec's
/// default manifest/bench policy with CLI overrides, and a fingerprint
/// over everything that changes job identity.
fn fleet_options(spec: &ExperimentSpec, params: &RunParams, cli: &Cli) -> FleetOptions {
    let parts = spec.fingerprint_parts(params);
    let part_refs: Vec<&str> = parts.iter().map(String::as_str).collect();
    let campaign = spec.campaign.unwrap_or(spec.id);
    let mut opts = FleetOptions::in_memory(campaign, fingerprint(&part_refs))
        .with_jobs(cli.positive("--jobs"))
        .with_bench_full(cli.flag("--bench-full"));
    let manifest = cli
        .value_of("--manifest")
        .map(PathBuf::from)
        .or_else(|| spec.default_manifest.map(PathBuf::from));
    if let Some(path) = manifest {
        if cli.flag("--fresh") {
            let _ = std::fs::remove_file(&path);
        }
        opts.manifest = Some(path);
    }
    if !cli.flag("--no-bench") {
        match cli.value_of("--bench") {
            Some(path) => opts.bench = Some(PathBuf::from(path)),
            None if spec.default_bench => {
                opts.bench = Some(PathBuf::from("results/BENCH_fleet.json"));
            }
            None => {}
        }
    }
    opts
}

/// Runs one registry entry end to end: fleet stats to stderr, the
/// artifact bytes to stdout.
fn run_spec(spec: &'static ExperimentSpec, cli: &Cli, seed: u64) -> Result<(), String> {
    let params = run_params(cli, seed);
    let opts = fleet_options(spec, &params, cli);
    // Build the campaign context once: every per-venue WiGLE scan and the
    // population pool are shared by all of this run's jobs.
    let ctx = CampaignCtx::build(&exp::standard_city());
    let artifact = if spec.external {
        run_external(spec, &ctx, &params, &opts, cli)?
    } else {
        spec.run(&ctx, &params, &opts)?
    };
    if let Some(stats) = &artifact.stats {
        eprintln!("{}", stats.render_line());
    }
    print!("{}", artifact.text);
    Ok(())
}

/// Entry point for the legacy per-artifact shims (`table1`, `fig5`, …):
/// optional seed positional plus the shared flags.
///
/// # Errors
///
/// Propagates flag-grammar and campaign errors.
pub fn main_for(id: &str) -> Result<(), String> {
    let cli = Cli::from_env()?;
    let spec = registry::find(id).ok_or_else(|| format!("unknown experiment `{id}`"))?;
    let seed = cli.seed_at(0);
    run_spec(spec, &cli, seed)
}

/// Entry point for the unified `experiment` binary:
/// `experiment <id> [seed] [flags]`, `experiment --id <id> [seed]`, or
/// `experiment --list`.
///
/// # Errors
///
/// Fails on a missing/unknown id and propagates campaign errors.
pub fn main_experiment() -> Result<(), String> {
    let cli = Cli::from_env()?;
    if cli.flag("--list") {
        print!("{}", list_text());
        return Ok(());
    }
    let (id, seed) = match cli.value_of("--id") {
        Some(id) => (id.to_string(), cli.seed_at(0)),
        None => {
            let id = cli.positionals.first().cloned().ok_or_else(|| {
                "usage: experiment <id> [seed] [flags] — `experiment --list` shows the ids"
                    .to_string()
            })?;
            (id, cli.seed_at(1))
        }
    };
    let spec =
        registry::find(&id).ok_or_else(|| format!("unknown experiment `{id}`; try --list"))?;
    run_spec(spec, &cli, seed)
}

/// The `--list` table: one line per registry entry.
pub fn list_text() -> String {
    let mut out = String::from("experiments (run as: experiment <id> [seed] [flags]):\n\n");
    for spec in REGISTRY {
        out.push_str(&format!(
            "  {:<13} {:<7} {:<7} {}\n",
            spec.id,
            spec.output.label(),
            spec.paper_ref,
            spec.summary
        ));
    }
    out.push_str(
        "\nflags: --jobs N --manifest PATH --fresh --bench PATH --no-bench --bench-full\n       \
         --hours a,b,c --minutes N --replicas N --slots N --json / --csv --quick\n       \
         --districts N --shards N (city)\n",
    );
    out
}

/// Entry point for `reproduce_all`: every `in_reproduce_all` registry
/// entry into one consolidated report, building the city once and
/// rendering Fig. 5 and Fig. 6 from a single campaign.
///
/// # Errors
///
/// Propagates flag-grammar and campaign errors.
pub fn main_reproduce_all() -> Result<(), String> {
    let cli = Cli::from_env()?;
    let seed = cli.seed_at(0);
    let jobs = cli.positive("--jobs");
    let params = run_params(&cli, seed);
    eprintln!("building the standard city...");
    let ctx = CampaignCtx::build(&exp::standard_city());

    let mut sections: Vec<(&str, String)> = Vec::new();
    for spec in REGISTRY.iter().filter(|s| s.in_reproduce_all) {
        if spec.shares_campaign_with.is_some() {
            continue; // Fig. 6 rides along with Fig. 5's campaign below.
        }
        if spec.id == "fig5" {
            eprintln!("Fig. 5 + Fig. 6 campaign (48 hour-long runs)...");
            let opts = FleetOptions::in_memory("fig5", 0).with_jobs(jobs);
            let (campaign, stats) = exp::campaign_fleet(
                &ctx,
                seed,
                &params.hours,
                SimDuration::from_mins(params.minutes),
                &opts,
            )?;
            eprintln!("{}", stats.render_line());
            sections.push(("Fig. 5", format!("{}\n", campaign.render_fig5())));
            sections.push(("Fig. 6", format!("{}\n", campaign.render_fig6())));
            continue;
        }
        if spec.id == "ablation" {
            eprintln!("ablation...");
        } else {
            eprintln!("{}...", spec.title);
        }
        let campaign = spec.campaign.unwrap_or(spec.id);
        let opts = FleetOptions::in_memory(campaign, 0).with_jobs(jobs);
        let artifact = spec.run(&ctx, &params, &opts)?;
        if spec.id == "ablation" {
            if let Some(stats) = &artifact.stats {
                eprintln!("{}", stats.render_line());
            }
        }
        sections.push((spec.title, artifact.text));
    }

    println!("# City-Hunter reproduction report (seed {seed})\n");
    for (title, body) in sections {
        println!("================================================================");
        println!("== {title}");
        println!("================================================================\n");
        print!("{body}");
    }
    Ok(())
}

/// One attacker-generation job of the `defense` study.
struct DefenseJob {
    slug: &'static str,
    spec: AttackerSpec,
    /// Direct probes pre-harvested before the evaluation (MANA's head
    /// start from earlier victims).
    preharvest: usize,
}

impl JobSpec for DefenseJob {
    fn key(&self) -> String {
        format!("defense/{}", self.slug)
    }
}

/// Runs the registry's external entries: the detector-stack studies as
/// fleet campaigns whose records are the rendered report lines, and the
/// city benchmark (which must wrap a wall clock around the run).
fn run_external(
    spec: &'static ExperimentSpec,
    ctx: &CampaignCtx,
    params: &RunParams,
    opts: &FleetOptions,
    cli: &Cli,
) -> Result<Artifact, String> {
    match spec.id {
        "defense" => run_defense(ctx.data(), opts),
        "defense_live" => run_defense_live(ctx.data(), params.seed, opts),
        "city" => run_city_experiment(ctx, params, cli),
        other => Err(format!("experiment `{other}` is not an external study")),
    }
}

/// The `city` experiment: a whole sharded synthetic city day, with
/// wall-clock throughput (events/sec, not just sim-clock) reported on
/// stderr and into `results/BENCH_city.json`.
///
/// `--quick` runs the CI-sized slice; the full mode is the ~1M-device
/// 12-hour day. `--districts`, `--shards`, `--minutes` and `--jobs`
/// override the mode's defaults; none of them change the artifact bytes
/// except `--districts`/`--minutes` (which change the city itself).
fn run_city_experiment(
    ctx: &CampaignCtx,
    params: &RunParams,
    cli: &Cli,
) -> Result<Artifact, String> {
    let mut config = if params.quick {
        CityConfig::quick(params.seed)
    } else {
        CityConfig::full(params.seed)
    };
    if let Some(districts) = cli.positive("--districts") {
        config.districts = districts;
    }
    if let Some(shards) = cli.positive("--shards") {
        config.shards = shards;
    }
    if cli.value_of("--minutes").is_some() {
        config.epochs = params.minutes;
    }
    config.jobs = cli.positive("--jobs");

    let clock = Stopwatch::start();
    let outcome = run_city(ctx, &config);
    let elapsed_ms = clock.elapsed_ms();
    let events = outcome.events();
    let (handoffs_out, handoffs_in) = outcome.handoffs();
    let events_per_sec = events as f64 / (elapsed_ms / 1e3).max(1e-9);
    let jobs = ch_fleet::effective_jobs(config.jobs).min(ch_fleet::worker_cap());
    eprintln!(
        "city: {} districts x {} sim-min | {} devices, {} events, {} hits, {}/{} handoffs | \
         {:.0} ms wall ({} shards, {} jobs) — {:.0} events/sec (wall-clock)",
        config.districts,
        config.epochs,
        outcome.devices(),
        events,
        outcome.hits(),
        handoffs_out,
        handoffs_in,
        elapsed_ms,
        config.shards.min(config.districts),
        jobs,
        events_per_sec,
    );

    if !cli.flag("--no-bench") {
        let path = cli
            .value_of("--bench")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("results/BENCH_city.json"));
        let entry = Json::Obj(vec![
            ("schema".into(), Json::str("ch-city-bench-v1")),
            (
                "mode".into(),
                Json::str(if params.quick { "quick" } else { "full" }),
            ),
            ("seed".into(), Json::from_u64(config.seed)),
            ("districts".into(), Json::from_usize(config.districts)),
            (
                "shards".into(),
                Json::from_usize(config.shards.min(config.districts)),
            ),
            ("jobs".into(), Json::from_usize(jobs)),
            ("sim_minutes".into(), Json::from_u64(config.epochs)),
            ("devices".into(), Json::from_u64(outcome.devices())),
            ("events".into(), Json::from_u64(events)),
            ("hits".into(), Json::from_u64(outcome.hits())),
            ("handoffs_out".into(), Json::from_u64(handoffs_out)),
            ("handoffs_in".into(), Json::from_u64(handoffs_in)),
            ("elapsed_ms".into(), Json::Num(elapsed_ms.round())),
            ("events_per_sec".into(), Json::Num(events_per_sec.round())),
        ]);
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| format!("creating {}: {e}", parent.display()))?;
            }
        }
        std::fs::write(&path, format!("{}\n", entry.render()))
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        eprintln!("city: bench entry -> {}", path.display());
    }

    Ok(Artifact {
        id: "city",
        text: outcome.render(),
        stats: None,
    })
}

/// The `defense` study: frames-to-detection per attacker generation,
/// one fleet job per [`AttackerSpec`].
fn run_defense(data: &CityData, opts: &FleetOptions) -> Result<Artifact, String> {
    let site = data.site_for(ch_mobility::VenueKind::Canteen);
    let corp = Ssid::new("Corp-WPA2").expect("short ssid");
    let jobs = [
        DefenseJob {
            slug: "karma",
            spec: AttackerSpec::Karma,
            preharvest: 0,
        },
        DefenseJob {
            slug: "mana",
            spec: AttackerSpec::Mana,
            preharvest: 30,
        },
        DefenseJob {
            slug: "prelim",
            spec: AttackerSpec::Prelim,
            preharvest: 0,
        },
        DefenseJob {
            slug: "city-hunter",
            spec: AttackerSpec::CityHunter(Default::default()),
            preharvest: 0,
        },
    ];
    let report = run_campaign(&jobs, opts, |job: &DefenseJob| {
        let mut bank = DetectorBank::client_standard([corp.clone()]);
        let outcome = evaluate_spec(
            &job.spec,
            &data.wigle,
            &data.heat,
            site,
            &mut bank,
            &EvalSpecOptions {
                preharvest_direct: job.preharvest,
                rounds: 10,
                direct_ssid: Some(corp.clone()),
            },
        );
        format!(
            "{:<28} {:>10} {:>10} {:>8}",
            outcome.attacker,
            outcome
                .frames_to_detection
                .map(|f| f.to_string())
                .unwrap_or_else(|| "never".into()),
            outcome
                .rounds_to_detection
                .map(|r| (r + 1).to_string())
                .unwrap_or_else(|| "-".into()),
            outcome.total_alarms,
        )
    })?;

    let mut text = String::from(
        "Detector bank: co-location(8) + silent-ap(20) + \
         downgrade([Corp-WPA2]) + deauth-flood(5/60s)\n\n",
    );
    text.push_str(&format!(
        "{:<28} {:>10} {:>10} {:>8}\n",
        "attacker", "frames", "rounds", "alarms"
    ));
    for outcome in &report.outcomes {
        match &outcome.status {
            JobStatus::Done(row) | JobStatus::Cached(row) => {
                text.push_str(row);
                text.push('\n');
            }
            JobStatus::Failed(error) => {
                return Err(format!("defense job `{}` failed: {error}", outcome.key));
            }
        }
    }
    text.push_str(
        "\nreading: the richer the lure database, the faster the co-location \
         heuristic fires — City-Hunter is the *least* stealthy generation.\n",
    );
    Ok(Artifact {
        id: "defense",
        text,
        stats: Some(report.stats),
    })
}

/// One live-deployment job of the `defense_live` study.
struct LiveJob {
    seed: u64,
}

impl JobSpec for LiveJob {
    fn key(&self) -> String {
        format!("defense-live/canteen/s{}", self.seed)
    }
}

/// The `defense_live` study: a detector bank listening to an actual
/// City-Hunter canteen run through the runner's frame observer. The
/// whole rendered report is the job record, so a manifest caches it.
fn run_defense_live(data: &CityData, seed: u64, opts: &FleetOptions) -> Result<Artifact, String> {
    struct BankObserver {
        bank: DetectorBank,
        frames: u64,
    }

    impl FrameObserver for BankObserver {
        fn enabled(&self) -> bool {
            true
        }

        fn observe(&mut self, at: SimTime, frame: &MgmtFrame) {
            self.frames += 1;
            self.bank.observe(at, frame);
        }
    }

    let jobs = [LiveJob { seed }];
    let report = run_campaign(&jobs, opts, |job: &LiveJob| {
        let config =
            RunConfig::canteen_30min(AttackerKind::CityHunter(Default::default()), job.seed);
        let mut observer = BankObserver {
            bank: DetectorBank::client_standard([Ssid::new("Corp-WPA2").expect("short ssid")]),
            frames: 0,
        };
        let metrics = run_experiment_observed(data, &config, &mut observer);

        let first_alarm = observer.bank.first_alarm_at();
        let victims_total =
            metrics.summary("x").broadcast_connected + metrics.summary("x").direct_connected;
        let victims_before = first_alarm
            .map(|t| {
                metrics
                    .clients()
                    .filter(|(_, rec)| rec.hit.as_ref().is_some_and(|h| h.at <= t))
                    .count()
            })
            .unwrap_or(victims_total);

        let mut text =
            String::from("live detection against a 30-minute City-Hunter canteen run:\n");
        text.push_str(&format!(
            "  frames on air:            {}\n",
            observer.frames
        ));
        text.push_str(&format!("  total victims:            {victims_total}\n"));
        match first_alarm {
            Some(t) => {
                text.push_str(&format!(
                    "  first alarm at:           {t} (simulation clock)\n"
                ));
                text.push_str(&format!("  victims before detection: {victims_before}\n"));
                text.push_str(&format!(
                    "  exposure window:          {}\n",
                    SimDuration::from_micros(t.as_micros())
                ));
            }
            None => text.push_str("  never detected (unexpected)\n"),
        }
        text.push_str(&format!(
            "  total alarms:             {}\n",
            observer.bank.alarm_count()
        ));

        // Operator fusion: name the rogue.
        let mut monitor = NetworkMonitor::new();
        for (_, alarms) in observer.bank.report() {
            monitor.ingest_all(alarms);
        }
        for (bssid, at) in monitor.rogues() {
            text.push_str(&format!(
                "  rogue verdict:            {bssid} (flagged at {at})\n"
            ));
        }
        text
    })?;

    let text = match &report.outcomes[0].status {
        JobStatus::Done(body) | JobStatus::Cached(body) => body.clone(),
        JobStatus::Failed(error) => {
            return Err(format!("defense_live job failed: {error}"));
        }
    };
    Ok(Artifact {
        id: "defense_live",
        text,
        stats: Some(report.stats),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cli(args: &[&str]) -> Cli {
        let owned: Vec<String> = args.iter().map(|s| (*s).to_string()).collect();
        Cli::parse(&owned).expect("valid args")
    }

    #[test]
    fn defaults_without_flags() {
        let cli = cli(&[]);
        assert_eq!(cli.seed_at(0), 1);
        let params = run_params(&cli, cli.seed_at(0));
        assert_eq!(params.hours, (8..20).collect::<Vec<_>>());
        assert_eq!(params.minutes, 60);
        assert_eq!(params.slots, 4);
        assert_eq!(params.replicas, None);
        assert!(!params.machine);
    }

    #[test]
    fn flags_and_positionals_parse() {
        let cli = cli(&["7", "--jobs", "4", "--fresh", "--hours", "12,18"]);
        assert_eq!(cli.seed_at(0), 7);
        assert_eq!(cli.positive("--jobs"), Some(4));
        assert!(cli.flag("--fresh"));
        let params = run_params(&cli, 7);
        assert_eq!(params.hours, vec![12, 18]);
    }

    #[test]
    fn unknown_flags_are_rejected() {
        let err = Cli::parse(&["--frobnicate".to_string()]).unwrap_err();
        assert!(err.contains("--frobnicate"));
        let err = Cli::parse(&["--jobs".to_string()]).unwrap_err();
        assert!(err.contains("needs a value"));
    }

    #[test]
    fn list_covers_every_registry_entry() {
        let listing = list_text();
        for spec in REGISTRY {
            assert!(
                listing.contains(spec.id),
                "`--list` must mention `{}`",
                spec.id
            );
        }
    }

    #[test]
    fn fleet_options_respect_spec_defaults() {
        let fig5 = registry::find("fig5").unwrap();
        let params = RunParams::new(1);
        let opts = fleet_options(fig5, &params, &cli(&[]));
        assert_eq!(
            opts.manifest,
            Some(PathBuf::from("results/fleet_fig5.jsonl"))
        );
        assert_eq!(opts.bench, Some(PathBuf::from("results/BENCH_fleet.json")));

        let table1 = registry::find("table1").unwrap();
        let opts = fleet_options(table1, &params, &cli(&[]));
        assert_eq!(opts.manifest, None);
        assert_eq!(opts.bench, None);
        assert_eq!(opts.campaign, "table1");

        // CLI overrides win, `--no-bench` beats the spec default.
        let opts = fleet_options(
            fig5,
            &params,
            &cli(&["--manifest", "m.jsonl", "--no-bench"]),
        );
        assert_eq!(opts.manifest, Some(PathBuf::from("m.jsonl")));
        assert_eq!(opts.bench, None);
    }
}

//! Regression gate: steady-state probe handling performs **zero** heap
//! allocations.
//!
//! This is the perfbench claim as a plain `cargo test`, so the property is
//! checked on every test run, not only when the bench is regenerated. The
//! whole test binary runs under [`ch_sim::alloc::CountingAlloc`]; each case
//! warms the attacker (and its hashtables past their next resize
//! threshold), then asserts a median of zero allocations per call.

use ch_attack::buffers::{AdaptiveBuffers, SelectScratch};
use ch_attack::{Attacker, CityHunter, CityHunterConfig, Lure};
use ch_scenarios::experiments::CITY_SEED;
use ch_scenarios::CityData;
use ch_sim::alloc::count_allocations;
use ch_sim::{SimRng, SimTime};
use ch_wifi::mgmt::{MgmtFrame, ProbeRequest, ProbeResponse};
use ch_wifi::{codec, Channel, MacAddr, Ssid, SsidInterner};

#[global_allocator]
static ALLOC: ch_sim::alloc::CountingAlloc = ch_sim::alloc::CountingAlloc;

const ITERS: usize = 48;
const CLIENT_POOL: usize = 64;

fn mac(i: u32) -> MacAddr {
    MacAddr::from_index([2, 0, 0], i)
}

fn median(samples: &mut [u64]) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn warm_hunter(data: &CityData, tracking: bool) -> CityHunter {
    let site = data.site_for(ch_mobility::VenueKind::Canteen);
    let config = CityHunterConfig {
        untried_tracking: tracking,
        ..CityHunterConfig::default()
    };
    let mut hunter = CityHunter::new(mac(9_999), &data.wigle, &data.heat, site, config);
    // Deep database: the measured scans must never drain the untried list.
    for i in 0..1_700u32 {
        let probe = ProbeRequest::direct(mac(100_000 + i), Ssid::new_lossy(format!("D{i:04}")));
        hunter.respond_to_probe(SimTime::ZERO, &probe, 40);
    }
    hunter
}

fn broadcast_median(data: &CityData, tracking: bool) -> u64 {
    let mut hunter = warm_hunter(data, tracking);
    let probes: Vec<ProbeRequest> = (0..CLIENT_POOL as u32)
        .map(|i| ProbeRequest::broadcast(mac(i)))
        .collect();
    let mut out: Vec<Lure> = Vec::new();
    // Three warm scans per client parks every per-client sent-set clear of
    // its next hashtable resize threshold (same geometry as perfbench).
    for (w, probe) in probes.iter().cycle().take(3 * CLIENT_POOL).enumerate() {
        hunter.respond_to_probe_into(SimTime::from_secs(w as u64), probe, 40, &mut out);
    }
    let mut samples = Vec::with_capacity(ITERS);
    for (w, probe) in probes.iter().cycle().take(ITERS).enumerate() {
        let now = SimTime::from_secs(1_000 + w as u64);
        let (allocs, ()) =
            count_allocations(|| hunter.respond_to_probe_into(now, probe, 40, &mut out));
        samples.push(allocs);
    }
    median(&mut samples)
}

#[test]
fn broadcast_probe_handling_is_zero_alloc() {
    let data = CityData::standard(CITY_SEED);
    assert_eq!(broadcast_median(&data, true), 0, "tracking path allocates");
    assert_eq!(broadcast_median(&data, false), 0, "plain path allocates");
}

#[test]
fn known_direct_probe_handling_is_zero_alloc() {
    let data = CityData::standard(CITY_SEED);
    let mut hunter = warm_hunter(&data, true);
    let probes: Vec<ProbeRequest> = (0..32u32)
        .map(|i| ProbeRequest::direct(mac(i), Ssid::new_lossy(format!("K{i:02}"))))
        .collect();
    let mut out: Vec<Lure> = Vec::new();
    for probe in &probes {
        hunter.respond_to_probe_into(SimTime::ZERO, probe, 40, &mut out);
    }
    let mut samples = Vec::with_capacity(ITERS);
    for (w, probe) in probes.iter().cycle().take(ITERS).enumerate() {
        let now = SimTime::from_secs(1 + w as u64);
        let (allocs, ()) =
            count_allocations(|| hunter.respond_to_probe_into(now, probe, 40, &mut out));
        samples.push(allocs);
    }
    assert_eq!(median(&mut samples), 0, "direct-probe path allocates");
}

#[test]
fn warm_select_into_is_zero_alloc() {
    let buffers = AdaptiveBuffers::paper_default();
    let mut interner = SsidInterner::new();
    let by_weight: Vec<_> = (0..300)
        .map(|i| interner.intern(&Ssid::new_lossy(format!("w{i:03}"))))
        .collect();
    let by_fresh: Vec<_> = (0..60)
        .map(|i| interner.intern(&Ssid::new_lossy(format!("f{i:02}"))))
        .collect();
    let mut rng = SimRng::seed_from(7);
    let mut scratch = SelectScratch::new();
    let mut out = Vec::new();
    buffers.select_into(&by_weight, &by_fresh, 40, &mut rng, &mut scratch, &mut out);
    let mut samples = Vec::with_capacity(ITERS);
    for _ in 0..ITERS {
        let (allocs, ()) = count_allocations(|| {
            buffers.select_into(&by_weight, &by_fresh, 40, &mut rng, &mut scratch, &mut out);
        });
        samples.push(allocs);
    }
    assert_eq!(median(&mut samples), 0, "warm select_into allocates");
}

#[test]
fn warm_encode_into_is_zero_alloc() {
    let frame = MgmtFrame::ProbeResponse(ProbeResponse::open_lure(
        mac(9),
        mac(1),
        Ssid::new_lossy("#HKAirport Free WiFi"),
        Channel::default_attack_channel(),
    ));
    let mut buf = Vec::new();
    codec::encode_into(&frame, &mut buf);
    let mut samples = Vec::with_capacity(ITERS);
    for _ in 0..ITERS {
        let (allocs, ()) = count_allocations(|| codec::encode_into(&frame, &mut buf));
        samples.push(allocs);
    }
    assert_eq!(median(&mut samples), 0, "warm encode_into allocates");
}

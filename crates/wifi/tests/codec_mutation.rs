//! Seeded mutation fuzzing of the management-frame codec.
//!
//! The fault-injection subsystem (`ch_sim::fault`) mutates encoded
//! frames on the wire — bit flips and truncations — and the decode side
//! must survive anything it produces: reject with a `CodecError`, never
//! panic, never accept bytes that aren't a faithful frame. This test
//! drives every valid frame shape through thousands of seeded mutations
//! mirroring `FaultPlan::mutate` (plus a pure-garbage sweep) and pins
//! those properties.

use ch_sim::SimRng;
use ch_wifi::channel::Channel;
use ch_wifi::codec::{encode, parse};
use ch_wifi::mgmt::{
    AssocRequest, AssocResponse, Authentication, Beacon, CapabilityInfo, Deauthentication,
    ProbeRequest, ProbeResponse, ReasonCode, StatusCode,
};
use ch_wifi::{MacAddr, MgmtFrame, Ssid};

fn mac(i: u8) -> MacAddr {
    MacAddr::new([2, 0, 0, 0, 0, i])
}

/// One instance of every frame shape the codec can carry.
fn sample_frames() -> Vec<MgmtFrame> {
    vec![
        MgmtFrame::ProbeRequest(ProbeRequest::broadcast(mac(1))),
        MgmtFrame::ProbeRequest(ProbeRequest::direct(
            mac(1),
            Ssid::new("7-Eleven Free WiFi").unwrap(),
        )),
        MgmtFrame::ProbeResponse(ProbeResponse::open_lure(
            mac(9),
            mac(1),
            Ssid::new("#HKAirport Free WiFi").unwrap(),
            Channel::new(6).unwrap(),
        )),
        MgmtFrame::Beacon(Beacon::open(
            mac(9),
            Ssid::new("Free Public WiFi").unwrap(),
            Channel::new(11).unwrap(),
        )),
        MgmtFrame::Authentication(Authentication::request(mac(1), mac(9))),
        MgmtFrame::Authentication(Authentication::response(
            mac(9),
            mac(1),
            StatusCode::Success,
        )),
        MgmtFrame::AssocRequest(AssocRequest {
            source: mac(1),
            bssid: mac(9),
            ssid: Ssid::new("CSL").unwrap(),
            capabilities: CapabilityInfo::open_ap(),
        }),
        MgmtFrame::AssocResponse(AssocResponse {
            bssid: mac(9),
            destination: mac(1),
            status: StatusCode::Success,
            association_id: 1,
        }),
        MgmtFrame::Deauthentication(Deauthentication {
            source: mac(9),
            destination: mac(1),
            reason: ReasonCode::PrevAuthExpired,
        }),
    ]
}

/// The same mutation kinds `ch_sim::fault::FaultPlan::mutate` injects:
/// ~30% truncations, otherwise 1–4 bit flips.
fn mutate(bytes: &mut Vec<u8>, rng: &mut SimRng) {
    if bytes.is_empty() {
        return;
    }
    if rng.chance(0.3) {
        let keep = rng.range_usize(0, bytes.len());
        bytes.truncate(keep);
    } else {
        let flips = rng.range_usize(1, 5);
        for _ in 0..flips {
            let idx = rng.range_usize(0, bytes.len());
            let bit = rng.range_usize(0, 8);
            bytes[idx] ^= 1 << bit;
        }
    }
}

#[test]
fn unmutated_frames_round_trip() {
    for frame in sample_frames() {
        let bytes = encode(&frame);
        let parsed = parse(&bytes).unwrap_or_else(|e| panic!("{frame}: {e}"));
        assert_eq!(parsed, frame, "round trip failed for {frame}");
    }
}

#[test]
fn mutated_frames_never_panic_and_never_impersonate() {
    let mut rng = SimRng::seed_from(0xC0DE_CFA1_7000);
    for frame in sample_frames() {
        let original = encode(&frame);
        for case in 0..2_000 {
            let mut bytes = original.clone();
            mutate(&mut bytes, &mut rng);
            // Any result is fine except a panic. A mutant may still
            // parse — flips in don't-care bytes (duration, sequence
            // number, optional IEs) are semantically invisible — but
            // whatever parses must re-encode to a frame that parses
            // back to itself: corruption can never wedge the codec into
            // a non-canonical state.
            if let Ok(parsed) = parse(&bytes) {
                let reencoded = encode(&parsed);
                assert_eq!(
                    parse(&reencoded).as_ref(),
                    Ok(&parsed),
                    "{frame}: mutation case {case} produced a frame that no longer round-trips"
                );
            }
        }
    }
}

#[test]
fn every_strict_prefix_parses_cleanly_or_errs() {
    // Truncation is the single most common wire fault. Every strict
    // prefix of every valid frame must come back as a clean CodecError
    // or a well-formed frame — never a panic — and anything shorter
    // than the fixed header is always rejected.
    for frame in sample_frames() {
        let bytes = encode(&frame);
        for len in 0..bytes.len() {
            match parse(&bytes[..len]) {
                Err(_) => {}
                Ok(parsed) => {
                    // A prefix can drop only optional trailing IEs; the
                    // mandatory fields must still round-trip.
                    let reencoded = encode(&parsed);
                    assert_eq!(parse(&reencoded).as_ref(), Ok(&parsed));
                }
            }
            if len < 24 {
                assert!(
                    parse(&bytes[..len]).is_err(),
                    "{frame}: sub-header prefix of {len} bytes parsed"
                );
            }
        }
    }
}

#[test]
fn random_garbage_never_panics() {
    // Beyond mutants of valid frames: fully random buffers, including
    // ones starting with a plausible management frame-control word.
    let mut rng = SimRng::seed_from(0xBAD_BEEF);
    for _ in 0..5_000 {
        let len = rng.range_usize(0, 160);
        let mut bytes: Vec<u8> = (0..len).map(|_| rng.range_u64(0, 256) as u8).collect();
        let _ = parse(&bytes);
        if bytes.len() >= 2 {
            // Force the management type bits so the parser gets past the
            // frame-control gate and exercises the body paths too.
            bytes[0] &= 0b1111_0011;
            bytes[1] = 0;
            let _ = parse(&bytes);
        }
    }
}

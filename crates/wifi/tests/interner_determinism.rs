//! Interned [`SsidId`]s must be a pure function of the intern *order*.
//!
//! Campaign artifacts (fleet shards, resumed runs, golden results) compare
//! id-keyed state across processes, so the same corpus fed to a fresh
//! interner must yield the same dense id assignment every time — in this
//! process, in a re-run, and on any number of parallel workers.

use std::thread;

use ch_wifi::{Ssid, SsidId, SsidInterner};

/// A corpus with repeats, unicode, the wildcard, and near-duplicates.
fn corpus() -> Vec<Ssid> {
    let mut names: Vec<Ssid> = (0..500)
        .map(|i| Ssid::new_lossy(format!("Net-{:03}", i % 350)))
        .collect();
    names.push(Ssid::wildcard());
    names.push(Ssid::new_lossy("#HKAirport Free WiFi"));
    names.push(Ssid::new_lossy("caf\u{e9}-hotspot"));
    names.push(Ssid::new_lossy("Net-000 "));
    names
}

fn intern_all(names: &[Ssid]) -> (Vec<SsidId>, SsidInterner) {
    let mut interner = SsidInterner::new();
    let ids = names.iter().map(|s| interner.intern(s)).collect();
    (ids, interner)
}

#[test]
fn same_corpus_same_ids_across_runs() {
    let names = corpus();
    let (ids_a, interner_a) = intern_all(&names);
    let (ids_b, interner_b) = intern_all(&names);
    assert_eq!(ids_a, ids_b);
    assert_eq!(interner_a.len(), interner_b.len());
    // Ids are dense and first-occurrence ordered: resolving them walks the
    // corpus's distinct names in order of first appearance.
    assert_eq!(interner_a.names(), interner_b.names());
    for (name, &id) in names.iter().zip(&ids_a) {
        assert_eq!(interner_a.resolve(id), name);
        assert_eq!(interner_a.get(name), Some(id));
    }
}

#[test]
fn same_corpus_same_ids_across_worker_counts() {
    // Fleet-style: each worker builds its own interner from the same
    // shared corpus. Whatever the parallelism, every worker must arrive at
    // the identical id assignment.
    let names = corpus();
    let (baseline, _) = intern_all(&names);
    for workers in [1usize, 2, 4, 8] {
        let results: Vec<Vec<SsidId>> = thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| scope.spawn(|| intern_all(&names).0))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for ids in results {
            assert_eq!(ids, baseline, "worker diverged at {workers} threads");
        }
    }
}

#[test]
fn unknown_id_resolves_to_wildcard() {
    // An id minted by a *bigger* interner is out of range for this one —
    // the stale-id case the non-panicking `resolve` contract covers.
    let mut small = SsidInterner::new();
    small.intern(&Ssid::new_lossy("only"));
    let (ids, _) = intern_all(&corpus());
    let foreign = *ids.iter().max().unwrap();
    assert!(foreign.index() >= small.len());
    assert!(small.try_resolve(foreign).is_none());
    assert!(small.resolve(foreign).is_wildcard());
}

//! Pcap capture export.
//!
//! Writes simulated frame exchanges as standard libpcap files with
//! `LINKTYPE_IEEE802_11` (105), so a City-Hunter run can be opened in
//! Wireshark/tcpdump and inspected frame by frame — probe requests, the
//! 40-lure response bursts, the open-system join, spoofed deauths.
//!
//! A matching reader is provided for round-trip tests and for re-analyzing
//! previously exported captures.

use std::io::{self, Read, Write};

use ch_sim::SimTime;

use crate::codec;
use crate::mgmt::MgmtFrame;

/// Classic pcap magic (microsecond timestamps, native byte order).
const MAGIC: u32 = 0xa1b2_c3d4;
/// `LINKTYPE_IEEE802_11`: 802.11 frames without radiotap.
const LINKTYPE_802_11: u32 = 105;
/// Snapshot length: management frames are tiny; 4 KiB is generous.
const SNAPLEN: u32 = 4096;

/// One captured frame: capture instant plus the frame itself.
#[derive(Debug, Clone, PartialEq)]
pub struct CapturedFrame {
    /// Capture timestamp (simulation time doubles as epoch offset).
    pub at: SimTime,
    /// The frame.
    pub frame: MgmtFrame,
}

/// Streaming pcap writer over any [`Write`] sink (a `&mut Vec<u8>` works).
#[derive(Debug)]
pub struct PcapWriter<W> {
    sink: W,
    frames_written: u64,
}

impl<W: Write> PcapWriter<W> {
    /// Creates the writer and emits the pcap global header.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn new(mut sink: W) -> io::Result<Self> {
        sink.write_all(&MAGIC.to_le_bytes())?;
        sink.write_all(&2u16.to_le_bytes())?; // version major
        sink.write_all(&4u16.to_le_bytes())?; // version minor
        sink.write_all(&0i32.to_le_bytes())?; // thiszone
        sink.write_all(&0u32.to_le_bytes())?; // sigfigs
        sink.write_all(&SNAPLEN.to_le_bytes())?;
        sink.write_all(&LINKTYPE_802_11.to_le_bytes())?;
        Ok(PcapWriter {
            sink,
            frames_written: 0,
        })
    }

    /// Appends one frame at simulation time `at`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn write_frame(&mut self, at: SimTime, frame: &MgmtFrame) -> io::Result<()> {
        let bytes = codec::encode(frame);
        let ts_sec = at.as_secs() as u32;
        let ts_usec = (at.as_micros() % 1_000_000) as u32;
        self.sink.write_all(&ts_sec.to_le_bytes())?;
        self.sink.write_all(&ts_usec.to_le_bytes())?;
        self.sink.write_all(&(bytes.len() as u32).to_le_bytes())?;
        self.sink.write_all(&(bytes.len() as u32).to_le_bytes())?;
        self.sink.write_all(&bytes)?;
        self.frames_written += 1;
        Ok(())
    }

    /// Number of frames written so far.
    pub fn frames_written(&self) -> u64 {
        self.frames_written
    }

    /// Finishes the capture and returns the sink.
    pub fn into_inner(self) -> W {
        self.sink
    }
}

/// Error reading a pcap capture.
#[derive(Debug)]
pub enum PcapReadError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file does not start with the expected magic/linktype.
    BadHeader {
        /// What was wrong.
        reason: &'static str,
    },
    /// A frame failed to parse as an 802.11 management frame.
    BadFrame(codec::CodecError),
}

impl std::fmt::Display for PcapReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PcapReadError::Io(e) => write!(f, "i/o error reading capture: {e}"),
            PcapReadError::BadHeader { reason } => {
                write!(f, "not a city-hunter pcap capture: {reason}")
            }
            PcapReadError::BadFrame(e) => write!(f, "bad frame in capture: {e}"),
        }
    }
}

impl std::error::Error for PcapReadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PcapReadError::Io(e) => Some(e),
            PcapReadError::BadFrame(e) => Some(e),
            PcapReadError::BadHeader { .. } => None,
        }
    }
}

impl From<io::Error> for PcapReadError {
    fn from(e: io::Error) -> Self {
        PcapReadError::Io(e)
    }
}

/// Reads an entire capture produced by [`PcapWriter`].
///
/// # Errors
///
/// Any [`PcapReadError`] on malformed input.
pub fn read_capture<R: Read>(mut source: R) -> Result<Vec<CapturedFrame>, PcapReadError> {
    let mut header = [0u8; 24];
    source.read_exact(&mut header)?;
    if le_u32_at(&header, 0) != MAGIC {
        return Err(PcapReadError::BadHeader {
            reason: "wrong magic",
        });
    }
    if le_u32_at(&header, 20) != LINKTYPE_802_11 {
        return Err(PcapReadError::BadHeader {
            reason: "wrong linktype",
        });
    }
    let mut frames = Vec::new();
    loop {
        let mut record = [0u8; 16];
        match source.read_exact(&mut record) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e.into()),
        }
        let ts_sec = le_u32_at(&record, 0);
        let ts_usec = le_u32_at(&record, 4);
        let incl_len = le_u32_at(&record, 8) as usize;
        let mut bytes = vec![0u8; incl_len];
        source.read_exact(&mut bytes)?;
        let frame = codec::parse(&bytes).map_err(PcapReadError::BadFrame)?;
        frames.push(CapturedFrame {
            at: SimTime::from_micros(ts_sec as u64 * 1_000_000 + ts_usec as u64),
            frame,
        });
    }
    Ok(frames)
}

/// A capture read with per-record fault tolerance: the frames that
/// parsed, plus counts of what did not.
#[derive(Debug, Clone, PartialEq)]
pub struct LenientCapture {
    /// Frames whose bytes parsed as 802.11 management frames, in file
    /// order.
    pub frames: Vec<CapturedFrame>,
    /// Records whose payload failed to parse — counted and skipped.
    pub skipped: u64,
    /// `true` if the file ended mid-record (a capture torn by a crash);
    /// the partial record is dropped and the read still succeeds.
    pub truncated: bool,
}

/// Reads a capture like [`read_capture`], but **count-and-skip**: a
/// record whose payload fails to parse is tallied in
/// [`LenientCapture::skipped`] instead of failing the whole read, and a
/// torn trailing record (crash mid-write) is treated as end-of-stream.
///
/// This is the decode path live tooling should use — `ch-serve`'s pcap
/// replay source and the `capture_pcap` example both route through it —
/// because a single mangled frame in a real capture must not discard the
/// thousands of good frames around it. The global header must still be
/// valid: a wrong magic or linktype means the file is not an 802.11
/// capture at all, which no amount of skipping repairs.
///
/// # Errors
///
/// [`PcapReadError::Io`] on read failures other than a torn tail and
/// [`PcapReadError::BadHeader`] on a foreign global header.
pub fn read_capture_lenient<R: Read>(mut source: R) -> Result<LenientCapture, PcapReadError> {
    let mut header = [0u8; 24];
    source.read_exact(&mut header)?;
    if le_u32_at(&header, 0) != MAGIC {
        return Err(PcapReadError::BadHeader {
            reason: "wrong magic",
        });
    }
    if le_u32_at(&header, 20) != LINKTYPE_802_11 {
        return Err(PcapReadError::BadHeader {
            reason: "wrong linktype",
        });
    }
    let mut capture = LenientCapture {
        frames: Vec::new(),
        skipped: 0,
        truncated: false,
    };
    loop {
        let mut record = [0u8; 16];
        match source.read_exact(&mut record) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e.into()),
        }
        let ts_sec = le_u32_at(&record, 0);
        let ts_usec = le_u32_at(&record, 4);
        let incl_len = le_u32_at(&record, 8) as usize;
        if incl_len > SNAPLEN as usize {
            // A length beyond the writer's snaplen means the record
            // header itself is garbage; resynchronizing is hopeless.
            capture.truncated = true;
            break;
        }
        let mut bytes = vec![0u8; incl_len];
        match source.read_exact(&mut bytes) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                capture.truncated = true;
                break;
            }
            Err(e) => return Err(e.into()),
        }
        match codec::parse(&bytes) {
            Ok(frame) => capture.frames.push(CapturedFrame {
                at: SimTime::from_micros(ts_sec as u64 * 1_000_000 + ts_usec as u64),
                frame,
            }),
            Err(_) => capture.skipped += 1,
        }
    }
    Ok(capture)
}

/// Little-endian u32 at `offset` of a buffer whose callers size it
/// statically; short reads yield zero-padded words instead of a panic.
fn le_u32_at(buf: &[u8], offset: usize) -> u32 {
    let mut word = [0u8; 4];
    for (dst, src) in word.iter_mut().zip(buf.iter().skip(offset)) {
        *dst = *src;
    }
    u32::from_le_bytes(word)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mgmt::{ProbeRequest, ProbeResponse};
    use crate::{Channel, MacAddr, Ssid};

    fn mac(i: u8) -> MacAddr {
        MacAddr::new([2, 0, 0, 0, 0, i])
    }

    fn sample_exchange() -> Vec<CapturedFrame> {
        vec![
            CapturedFrame {
                at: SimTime::from_millis(1_500),
                frame: MgmtFrame::ProbeRequest(ProbeRequest::broadcast(mac(1))),
            },
            CapturedFrame {
                at: SimTime::from_millis(1_510),
                frame: MgmtFrame::ProbeResponse(ProbeResponse::open_lure(
                    mac(9),
                    mac(1),
                    Ssid::new("Free Public WiFi").unwrap(),
                    Channel::new(1).unwrap(),
                )),
            },
        ]
    }

    #[test]
    fn roundtrip() {
        let mut writer = PcapWriter::new(Vec::new()).unwrap();
        for cf in sample_exchange() {
            writer.write_frame(cf.at, &cf.frame).unwrap();
        }
        assert_eq!(writer.frames_written(), 2);
        let bytes = writer.into_inner();
        let read = read_capture(&bytes[..]).unwrap();
        assert_eq!(read, sample_exchange());
    }

    #[test]
    fn header_is_standard_pcap() {
        let writer = PcapWriter::new(Vec::new()).unwrap();
        let bytes = writer.into_inner();
        assert_eq!(bytes.len(), 24);
        assert_eq!(&bytes[0..4], &MAGIC.to_le_bytes());
        assert_eq!(&bytes[20..24], &105u32.to_le_bytes());
    }

    #[test]
    fn empty_capture_reads_empty() {
        let writer = PcapWriter::new(Vec::new()).unwrap();
        let bytes = writer.into_inner();
        assert!(read_capture(&bytes[..]).unwrap().is_empty());
    }

    #[test]
    fn wrong_magic_rejected() {
        let mut bytes = PcapWriter::new(Vec::new()).unwrap().into_inner();
        bytes[0] ^= 0xff;
        match read_capture(&bytes[..]) {
            Err(PcapReadError::BadHeader { reason }) => {
                assert_eq!(reason, "wrong magic")
            }
            other => panic!("expected BadHeader, got {other:?}"),
        }
    }

    #[test]
    fn wrong_linktype_rejected() {
        let mut bytes = PcapWriter::new(Vec::new()).unwrap().into_inner();
        bytes[20] = 1; // LINKTYPE_ETHERNET
        assert!(matches!(
            read_capture(&bytes[..]),
            Err(PcapReadError::BadHeader {
                reason: "wrong linktype"
            })
        ));
    }

    #[test]
    fn truncated_record_is_io_error() {
        let mut writer = PcapWriter::new(Vec::new()).unwrap();
        writer
            .write_frame(
                SimTime::ZERO,
                &MgmtFrame::ProbeRequest(ProbeRequest::broadcast(mac(1))),
            )
            .unwrap();
        let bytes = writer.into_inner();
        let truncated = &bytes[..bytes.len() - 3];
        assert!(matches!(read_capture(truncated), Err(PcapReadError::Io(_))));
    }

    #[test]
    fn corrupted_frame_is_bad_frame() {
        let mut writer = PcapWriter::new(Vec::new()).unwrap();
        writer
            .write_frame(
                SimTime::ZERO,
                &MgmtFrame::ProbeRequest(ProbeRequest::broadcast(mac(1))),
            )
            .unwrap();
        let mut bytes = writer.into_inner();
        // Flip the frame-control type bits to data.
        bytes[24 + 16] = 0b0000_1000;
        assert!(matches!(
            read_capture(&bytes[..]),
            Err(PcapReadError::BadFrame(_))
        ));
    }

    #[test]
    fn lenient_matches_strict_on_clean_capture() {
        let mut writer = PcapWriter::new(Vec::new()).unwrap();
        for cf in sample_exchange() {
            writer.write_frame(cf.at, &cf.frame).unwrap();
        }
        let bytes = writer.into_inner();
        let lenient = read_capture_lenient(&bytes[..]).unwrap();
        assert_eq!(lenient.frames, read_capture(&bytes[..]).unwrap());
        assert_eq!(lenient.skipped, 0);
        assert!(!lenient.truncated);
    }

    #[test]
    fn lenient_counts_and_skips_corrupt_frame() {
        let mut writer = PcapWriter::new(Vec::new()).unwrap();
        for cf in sample_exchange() {
            writer.write_frame(cf.at, &cf.frame).unwrap();
        }
        let mut bytes = writer.into_inner();
        // Flip the first record's frame-control type bits to data.
        bytes[24 + 16] = 0b0000_1000;
        let lenient = read_capture_lenient(&bytes[..]).unwrap();
        assert_eq!(lenient.skipped, 1);
        assert_eq!(lenient.frames.len(), 1);
        assert_eq!(lenient.frames[0], sample_exchange()[1]);
        assert!(!lenient.truncated);
    }

    #[test]
    fn lenient_tolerates_torn_tail() {
        let mut writer = PcapWriter::new(Vec::new()).unwrap();
        for cf in sample_exchange() {
            writer.write_frame(cf.at, &cf.frame).unwrap();
        }
        let bytes = writer.into_inner();
        let torn = &bytes[..bytes.len() - 3];
        let lenient = read_capture_lenient(torn).unwrap();
        assert_eq!(lenient.frames.len(), 1);
        assert!(lenient.truncated);
        // The strict reader fails on the same input.
        assert!(matches!(read_capture(torn), Err(PcapReadError::Io(_))));
    }

    #[test]
    fn lenient_still_rejects_foreign_header() {
        let mut bytes = PcapWriter::new(Vec::new()).unwrap().into_inner();
        bytes[0] ^= 0xff;
        assert!(matches!(
            read_capture_lenient(&bytes[..]),
            Err(PcapReadError::BadHeader { .. })
        ));
    }

    #[test]
    fn timestamps_preserved_to_the_microsecond() {
        let at = SimTime::from_micros(3_661_000_042);
        let mut writer = PcapWriter::new(Vec::new()).unwrap();
        writer
            .write_frame(
                at,
                &MgmtFrame::ProbeRequest(ProbeRequest::broadcast(mac(1))),
            )
            .unwrap();
        let read = read_capture(&writer.into_inner()[..]).unwrap();
        assert_eq!(read[0].at, at);
    }
}

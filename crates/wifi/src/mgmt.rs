//! Typed management frames.
//!
//! These are the frames the attack trades in:
//!
//! * a phone scanning for networks sends a [`ProbeRequest`] — *broadcast*
//!   (wildcard SSID) on modern OSes, *directed* (named SSID) on the legacy
//!   devices MANA harvests from;
//! * the attacker answers with [`ProbeResponse`]s, one per lure SSID;
//! * a phone that recognizes an offered SSID as an *open* member of its PNL
//!   runs the open-system [`Authentication`] exchange and then
//!   [`AssocRequest`]/[`AssocResponse`] — a successful *hit*;
//! * [`Deauthentication`] implements the §V-B forced-rescan extension.

use std::fmt;

use crate::channel::Channel;
use crate::frame::{MgmtHeader, MgmtSubtype};
use crate::ie::{InformationElement, RsnInfo, DEFAULT_RATES};
use crate::mac::MacAddr;
use crate::ssid::Ssid;

/// The 16-bit capability-information field, reduced to the two bits the
/// simulation interprets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CapabilityInfo {
    /// ESS bit — set by infrastructure APs.
    pub ess: bool,
    /// Privacy bit — set by protected networks. An evil twin luring an
    /// *open* PNL entry leaves this clear so the victim auto-joins without
    /// credentials.
    pub privacy: bool,
}

impl CapabilityInfo {
    /// Capabilities of an open infrastructure AP (the attacker's pose).
    pub fn open_ap() -> Self {
        CapabilityInfo {
            ess: true,
            privacy: false,
        }
    }

    /// Capabilities of a WPA2-protected infrastructure AP.
    pub fn protected_ap() -> Self {
        CapabilityInfo {
            ess: true,
            privacy: true,
        }
    }

    /// Wire encoding.
    pub fn to_word(self) -> u16 {
        u16::from(self.ess) | (u16::from(self.privacy) << 4)
    }

    /// Wire decoding (ignores bits the model does not track).
    pub fn from_word(word: u16) -> Self {
        CapabilityInfo {
            ess: word & 1 != 0,
            privacy: word & (1 << 4) != 0,
        }
    }
}

/// Status codes in authentication / association responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum StatusCode {
    /// Success.
    Success = 0,
    /// Unspecified failure.
    Unspecified = 1,
    /// The AP cannot support all requested capabilities.
    CapabilitiesMismatch = 10,
    /// Association denied for other reasons.
    AssocDenied = 17,
}

impl StatusCode {
    /// Decodes a wire status code (unknown codes map to `Unspecified`).
    pub fn from_word(word: u16) -> StatusCode {
        match word {
            0 => StatusCode::Success,
            10 => StatusCode::CapabilitiesMismatch,
            17 => StatusCode::AssocDenied,
            _ => StatusCode::Unspecified,
        }
    }
}

/// Reason codes in deauthentication frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum ReasonCode {
    /// Unspecified reason.
    Unspecified = 1,
    /// Previous authentication no longer valid — the classic spoofed-deauth
    /// payload (Bellardo & Savage 2003), used by the §V-B extension.
    PrevAuthExpired = 2,
    /// Deauthenticated because the sending station is leaving.
    Leaving = 3,
}

impl ReasonCode {
    /// Decodes a wire reason code (unknown codes map to `Unspecified`).
    pub fn from_word(word: u16) -> ReasonCode {
        match word {
            2 => ReasonCode::PrevAuthExpired,
            3 => ReasonCode::Leaving,
            _ => ReasonCode::Unspecified,
        }
    }
}

/// A probe request from a client.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ProbeRequest {
    /// Source (client) MAC.
    pub source: MacAddr,
    /// Requested SSID; wildcard for a broadcast probe.
    pub ssid: Ssid,
}

impl ProbeRequest {
    /// A modern broadcast probe: wildcard SSID, addressed to everyone.
    pub fn broadcast(source: MacAddr) -> Self {
        ProbeRequest {
            source,
            ssid: Ssid::wildcard(),
        }
    }

    /// A legacy *direct* probe disclosing one PNL entry.
    pub fn direct(source: MacAddr, ssid: Ssid) -> Self {
        ProbeRequest { source, ssid }
    }

    /// `true` if this probe discloses no SSID.
    pub fn is_broadcast(&self) -> bool {
        self.ssid.is_wildcard()
    }
}

/// A probe response from an AP (or an attacker posing as one).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ProbeResponse {
    /// BSSID of the responding AP.
    pub bssid: MacAddr,
    /// Destination client.
    pub destination: MacAddr,
    /// Advertised SSID.
    pub ssid: Ssid,
    /// Capability bits; `privacy == false` advertises an open network.
    pub capabilities: CapabilityInfo,
    /// Operating channel.
    pub channel: Channel,
}

impl ProbeResponse {
    /// The attacker's canonical lure: an open AP advertising `ssid`.
    pub fn open_lure(bssid: MacAddr, destination: MacAddr, ssid: Ssid, channel: Channel) -> Self {
        ProbeResponse {
            bssid,
            destination,
            ssid,
            capabilities: CapabilityInfo::open_ap(),
            channel,
        }
    }

    /// The information elements this response carries on the wire.
    pub fn elements(&self) -> Vec<InformationElement> {
        let mut elements = vec![
            InformationElement::Ssid(self.ssid.clone()),
            InformationElement::SupportedRates(DEFAULT_RATES.to_vec()),
            InformationElement::DsParameter(self.channel),
        ];
        if self.capabilities.privacy {
            elements.push(InformationElement::Rsn(RsnInfo {
                ccmp: true,
                psk: true,
            }));
        }
        elements
    }

    /// The IE-set fingerprint of this response (see
    /// [`crate::ie::fingerprint`]), computed without materializing the
    /// element list. An open response carries exactly the karma-style
    /// minimal set `FP_SSID | FP_RATES | FP_DS`.
    pub fn ie_fingerprint(&self) -> u8 {
        let mut mask = crate::ie::FP_SSID | crate::ie::FP_RATES | crate::ie::FP_DS;
        if self.capabilities.privacy {
            mask |= crate::ie::FP_RSN;
        }
        mask
    }
}

/// A beacon frame — functionally a broadcast probe response.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Beacon {
    /// BSSID of the AP.
    pub bssid: MacAddr,
    /// Advertised SSID.
    pub ssid: Ssid,
    /// Capability bits.
    pub capabilities: CapabilityInfo,
    /// Operating channel.
    pub channel: Channel,
    /// Beacon interval in time units (TU = 1024 µs); 100 by default.
    pub interval_tu: u16,
}

impl Beacon {
    /// The standard beacon interval stock firmware uses, in time units.
    pub const STANDARD_INTERVAL_TU: u16 = 100;

    /// A beacon for an open AP with the standard 100 TU interval.
    pub fn open(bssid: MacAddr, ssid: Ssid, channel: Channel) -> Self {
        Beacon {
            bssid,
            ssid,
            capabilities: CapabilityInfo::open_ap(),
            channel,
            interval_tu: Beacon::STANDARD_INTERVAL_TU,
        }
    }

    /// The information elements this beacon carries on the wire (mirrors
    /// [`ProbeResponse::elements`] — a beacon is functionally a broadcast
    /// probe response).
    pub fn elements(&self) -> Vec<InformationElement> {
        let mut elements = vec![
            InformationElement::Ssid(self.ssid.clone()),
            InformationElement::SupportedRates(DEFAULT_RATES.to_vec()),
            InformationElement::DsParameter(self.channel),
        ];
        if self.capabilities.privacy {
            elements.push(InformationElement::Rsn(RsnInfo {
                ccmp: true,
                psk: true,
            }));
        }
        elements
    }

    /// The IE-set fingerprint of this beacon (see
    /// [`crate::ie::fingerprint`]), computed without materializing the
    /// element list.
    pub fn ie_fingerprint(&self) -> u8 {
        let mut mask = crate::ie::FP_SSID | crate::ie::FP_RATES | crate::ie::FP_DS;
        if self.capabilities.privacy {
            mask |= crate::ie::FP_RSN;
        }
        mask
    }
}

/// One leg of the open-system authentication exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Authentication {
    /// Sender.
    pub source: MacAddr,
    /// Receiver.
    pub destination: MacAddr,
    /// Transaction sequence: 1 = request, 2 = response.
    pub transaction: u16,
    /// Status (meaningful in the response leg).
    pub status: StatusCode,
}

impl Authentication {
    /// The client's opening leg.
    pub fn request(client: MacAddr, bssid: MacAddr) -> Self {
        Authentication {
            source: client,
            destination: bssid,
            transaction: 1,
            status: StatusCode::Success,
        }
    }

    /// The AP's answering leg.
    pub fn response(bssid: MacAddr, client: MacAddr, status: StatusCode) -> Self {
        Authentication {
            source: bssid,
            destination: client,
            transaction: 2,
            status,
        }
    }
}

/// An association request (client → AP).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AssocRequest {
    /// Client MAC.
    pub source: MacAddr,
    /// Target BSSID.
    pub bssid: MacAddr,
    /// SSID being joined.
    pub ssid: Ssid,
    /// Client capability bits.
    pub capabilities: CapabilityInfo,
}

/// An association response (AP → client).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AssocResponse {
    /// BSSID.
    pub bssid: MacAddr,
    /// Client MAC.
    pub destination: MacAddr,
    /// Grant or refusal.
    pub status: StatusCode,
    /// Association ID handed out on success.
    pub association_id: u16,
}

/// A deauthentication frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Deauthentication {
    /// Sender (spoofed as the victim's AP in the §V-B attack).
    pub source: MacAddr,
    /// Receiver (the victim, or broadcast).
    pub destination: MacAddr,
    /// Stated reason.
    pub reason: ReasonCode,
}

/// Any management frame the simulation exchanges.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum MgmtFrame {
    /// Probe request.
    ProbeRequest(ProbeRequest),
    /// Probe response.
    ProbeResponse(ProbeResponse),
    /// Beacon.
    Beacon(Beacon),
    /// Authentication leg.
    Authentication(Authentication),
    /// Association request.
    AssocRequest(AssocRequest),
    /// Association response.
    AssocResponse(AssocResponse),
    /// Deauthentication.
    Deauthentication(Deauthentication),
}

impl MgmtFrame {
    /// The frame's management subtype.
    pub fn subtype(&self) -> MgmtSubtype {
        match self {
            MgmtFrame::ProbeRequest(_) => MgmtSubtype::ProbeRequest,
            MgmtFrame::ProbeResponse(_) => MgmtSubtype::ProbeResponse,
            MgmtFrame::Beacon(_) => MgmtSubtype::Beacon,
            MgmtFrame::Authentication(_) => MgmtSubtype::Authentication,
            MgmtFrame::AssocRequest(_) => MgmtSubtype::AssocRequest,
            MgmtFrame::AssocResponse(_) => MgmtSubtype::AssocResponse,
            MgmtFrame::Deauthentication(_) => MgmtSubtype::Deauthentication,
        }
    }

    /// The MAC header this frame travels under (sequence filled by the
    /// sender's counter; zero here).
    pub fn header(&self) -> MgmtHeader {
        match self {
            MgmtFrame::ProbeRequest(p) => MgmtHeader::client_broadcast(p.source, 0),
            MgmtFrame::ProbeResponse(p) => MgmtHeader::from_ap(p.bssid, p.destination, 0),
            MgmtFrame::Beacon(b) => MgmtHeader::from_ap(b.bssid, MacAddr::BROADCAST, 0),
            MgmtFrame::Authentication(a) => {
                MgmtHeader::new(a.destination, a.source, a.destination, 0)
            }
            MgmtFrame::AssocRequest(a) => MgmtHeader::to_ap(a.source, a.bssid, 0),
            MgmtFrame::AssocResponse(a) => MgmtHeader::from_ap(a.bssid, a.destination, 0),
            MgmtFrame::Deauthentication(d) => MgmtHeader::new(d.destination, d.source, d.source, 0),
        }
    }

    /// Source (transmitter) address.
    pub fn source(&self) -> MacAddr {
        self.header().addr2
    }
}

impl fmt::Display for MgmtFrame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MgmtFrame::ProbeRequest(p) if p.is_broadcast() => {
                write!(f, "probe-req[broadcast] from {}", p.source)
            }
            MgmtFrame::ProbeRequest(p) => {
                write!(f, "probe-req[{}] from {}", p.ssid, p.source)
            }
            MgmtFrame::ProbeResponse(p) => {
                write!(f, "probe-resp[{}] {} -> {}", p.ssid, p.bssid, p.destination)
            }
            MgmtFrame::Beacon(b) => write!(f, "beacon[{}] from {}", b.ssid, b.bssid),
            MgmtFrame::Authentication(a) => {
                write!(
                    f,
                    "auth#{} {} -> {}",
                    a.transaction, a.source, a.destination
                )
            }
            MgmtFrame::AssocRequest(a) => {
                write!(f, "assoc-req[{}] {} -> {}", a.ssid, a.source, a.bssid)
            }
            MgmtFrame::AssocResponse(a) => {
                write!(
                    f,
                    "assoc-resp({:?}) {} -> {}",
                    a.status, a.bssid, a.destination
                )
            }
            MgmtFrame::Deauthentication(d) => {
                write!(
                    f,
                    "deauth({:?}) {} -> {}",
                    d.reason, d.source, d.destination
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac(i: u8) -> MacAddr {
        MacAddr::new([2, 0, 0, 0, 0, i])
    }

    #[test]
    fn capability_word_roundtrip() {
        for caps in [
            CapabilityInfo::open_ap(),
            CapabilityInfo::protected_ap(),
            CapabilityInfo::default(),
        ] {
            assert_eq!(CapabilityInfo::from_word(caps.to_word()), caps);
        }
        assert!(!CapabilityInfo::open_ap().privacy);
        assert!(CapabilityInfo::protected_ap().privacy);
    }

    #[test]
    fn status_and_reason_decode() {
        assert_eq!(StatusCode::from_word(0), StatusCode::Success);
        assert_eq!(StatusCode::from_word(10), StatusCode::CapabilitiesMismatch);
        assert_eq!(StatusCode::from_word(999), StatusCode::Unspecified);
        assert_eq!(ReasonCode::from_word(2), ReasonCode::PrevAuthExpired);
        assert_eq!(ReasonCode::from_word(999), ReasonCode::Unspecified);
    }

    #[test]
    fn broadcast_probe_has_wildcard_ssid() {
        let p = ProbeRequest::broadcast(mac(1));
        assert!(p.is_broadcast());
        let d = ProbeRequest::direct(mac(1), Ssid::new("CSL").unwrap());
        assert!(!d.is_broadcast());
    }

    #[test]
    fn open_lure_advertises_no_privacy() {
        let lure = ProbeResponse::open_lure(
            mac(9),
            mac(1),
            Ssid::new("Free Public WiFi").unwrap(),
            Channel::default(),
        );
        assert!(!lure.capabilities.privacy);
        let elements = lure.elements();
        assert!(InformationElement::find_ssid(&elements).is_some());
        assert!(!InformationElement::has_rsn(&elements));
    }

    #[test]
    fn protected_response_carries_rsn() {
        let mut resp = ProbeResponse::open_lure(
            mac(9),
            mac(1),
            Ssid::new("Home-AP").unwrap(),
            Channel::default(),
        );
        resp.capabilities = CapabilityInfo::protected_ap();
        assert!(InformationElement::has_rsn(&resp.elements()));
    }

    #[test]
    fn ie_fingerprints_match_materialized_elements() {
        let open = ProbeResponse::open_lure(
            mac(9),
            mac(1),
            Ssid::new("Free Public WiFi").unwrap(),
            Channel::default(),
        );
        assert_eq!(
            open.ie_fingerprint(),
            crate::ie::fingerprint(&open.elements())
        );
        let mut protected = open.clone();
        protected.capabilities = CapabilityInfo::protected_ap();
        assert_eq!(
            protected.ie_fingerprint(),
            crate::ie::fingerprint(&protected.elements())
        );
        assert_ne!(open.ie_fingerprint(), protected.ie_fingerprint());

        let beacon = Beacon::open(mac(9), Ssid::new("CSL").unwrap(), Channel::default());
        assert_eq!(beacon.interval_tu, Beacon::STANDARD_INTERVAL_TU);
        assert_eq!(
            beacon.ie_fingerprint(),
            crate::ie::fingerprint(&beacon.elements())
        );
    }

    #[test]
    fn auth_legs() {
        let req = Authentication::request(mac(1), mac(9));
        assert_eq!(req.transaction, 1);
        let resp = Authentication::response(mac(9), mac(1), StatusCode::Success);
        assert_eq!(resp.transaction, 2);
        assert_eq!(resp.source, mac(9));
    }

    #[test]
    fn headers_orient_by_frame_kind() {
        let probe = MgmtFrame::ProbeRequest(ProbeRequest::broadcast(mac(1)));
        assert!(probe.header().addr1.is_broadcast());
        assert_eq!(probe.source(), mac(1));

        let resp = MgmtFrame::ProbeResponse(ProbeResponse::open_lure(
            mac(9),
            mac(1),
            Ssid::new("X").unwrap(),
            Channel::default(),
        ));
        assert_eq!(resp.header().addr1, mac(1));
        assert_eq!(resp.source(), mac(9));

        let deauth = MgmtFrame::Deauthentication(Deauthentication {
            source: mac(7),
            destination: MacAddr::BROADCAST,
            reason: ReasonCode::PrevAuthExpired,
        });
        assert!(deauth.header().addr1.is_broadcast());
        assert_eq!(deauth.source(), mac(7));
    }

    #[test]
    fn display_is_informative() {
        let probe = MgmtFrame::ProbeRequest(ProbeRequest::broadcast(mac(1)));
        assert!(probe.to_string().contains("broadcast"));
        let direct =
            MgmtFrame::ProbeRequest(ProbeRequest::direct(mac(1), Ssid::new("CSL").unwrap()));
        assert!(direct.to_string().contains("CSL"));
    }
}

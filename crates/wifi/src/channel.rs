//! 2.4 GHz channels.

use std::fmt;

/// A 2.4 GHz 802.11 channel (1–14).
///
/// The paper's attacker is a single-radio Raspberry Pi parked on one
/// channel; clients visit it during their scan sweep. The channel number
/// travels in the DS Parameter Set information element of beacons and probe
/// responses.
///
/// ```
/// use ch_wifi::Channel;
/// let ch = Channel::new(6)?;
/// assert_eq!(ch.center_mhz(), 2437);
/// # Ok::<(), ch_wifi::channel::ChannelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Channel(u8);

/// Error constructing a [`Channel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelError {
    number: u8,
}

impl fmt::Display for ChannelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid 2.4 GHz channel number {}", self.number)
    }
}

impl std::error::Error for ChannelError {}

impl Channel {
    /// Creates channel `number`.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError`] unless `1 <= number <= 14`.
    pub fn new(number: u8) -> Result<Self, ChannelError> {
        if (1..=14).contains(&number) {
            Ok(Channel(number))
        } else {
            Err(ChannelError { number })
        }
    }

    /// Channel 1 — the attacker's default perch.
    pub const fn default_attack_channel() -> Self {
        Channel(1)
    }

    /// The channel number.
    pub const fn number(self) -> u8 {
        self.0
    }

    /// Center frequency in MHz (channel 14 has its special offset).
    pub fn center_mhz(self) -> u32 {
        if self.0 == 14 {
            2484
        } else {
            2407 + 5 * self.0 as u32
        }
    }

    /// `true` if the two channels' 22 MHz masks overlap (closer than five
    /// channel numbers apart) — why the paper placed the KARMA and MANA
    /// attackers 40 m apart rather than sharing a spot.
    pub fn overlaps(self, other: Channel) -> bool {
        self.0.abs_diff(other.0) < 5
    }

    /// Iterator over all 2.4 GHz channels in scan order.
    pub fn all() -> impl Iterator<Item = Channel> {
        (1..=14).map(Channel)
    }
}

impl Default for Channel {
    fn default() -> Self {
        Channel::default_attack_channel()
    }
}

impl fmt::Display for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

impl TryFrom<u8> for Channel {
    type Error = ChannelError;

    fn try_from(number: u8) -> Result<Self, Self::Error> {
        Channel::new(number)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validity_bounds() {
        assert!(Channel::new(0).is_err());
        assert!(Channel::new(1).is_ok());
        assert!(Channel::new(14).is_ok());
        assert!(Channel::new(15).is_err());
        assert!(Channel::new(0).unwrap_err().to_string().contains('0'));
    }

    #[test]
    fn frequencies() {
        assert_eq!(Channel::new(1).unwrap().center_mhz(), 2412);
        assert_eq!(Channel::new(6).unwrap().center_mhz(), 2437);
        assert_eq!(Channel::new(11).unwrap().center_mhz(), 2462);
        assert_eq!(Channel::new(14).unwrap().center_mhz(), 2484);
    }

    #[test]
    fn overlap_rule() {
        let c1 = Channel::new(1).unwrap();
        let c6 = Channel::new(6).unwrap();
        let c4 = Channel::new(4).unwrap();
        assert!(!c1.overlaps(c6));
        assert!(c1.overlaps(c4));
        assert!(c1.overlaps(c1));
    }

    #[test]
    fn all_covers_band() {
        let channels: Vec<_> = Channel::all().collect();
        assert_eq!(channels.len(), 14);
        assert_eq!(channels[0].number(), 1);
        assert_eq!(channels[13].number(), 14);
    }
}

//! Frame control and the management-frame MAC header.

use std::fmt;

use crate::mac::MacAddr;

/// Management-frame subtypes used by the attack and its substrate.
///
/// Values are the 4-bit subtype field of the 802.11 frame-control word
/// (type = management = 0b00).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum MgmtSubtype {
    /// Association request (client → AP).
    AssocRequest = 0b0000,
    /// Association response (AP → client).
    AssocResponse = 0b0001,
    /// Probe request (client → broadcast or directed).
    ProbeRequest = 0b0100,
    /// Probe response (AP → client).
    ProbeResponse = 0b0101,
    /// Beacon (AP, periodic).
    Beacon = 0b1000,
    /// Disassociation notification.
    Disassoc = 0b1010,
    /// Open-system authentication exchange.
    Authentication = 0b1011,
    /// Deauthentication — the frame behind the §V-B forced-rescan attack.
    Deauthentication = 0b1100,
}

impl MgmtSubtype {
    /// Decodes a 4-bit subtype value.
    pub fn from_bits(bits: u8) -> Option<MgmtSubtype> {
        Some(match bits {
            0b0000 => MgmtSubtype::AssocRequest,
            0b0001 => MgmtSubtype::AssocResponse,
            0b0100 => MgmtSubtype::ProbeRequest,
            0b0101 => MgmtSubtype::ProbeResponse,
            0b1000 => MgmtSubtype::Beacon,
            0b1010 => MgmtSubtype::Disassoc,
            0b1011 => MgmtSubtype::Authentication,
            0b1100 => MgmtSubtype::Deauthentication,
            _ => return None,
        })
    }

    /// The 4-bit wire value.
    pub fn bits(self) -> u8 {
        self as u8
    }
}

impl fmt::Display for MgmtSubtype {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            MgmtSubtype::AssocRequest => "assoc-req",
            MgmtSubtype::AssocResponse => "assoc-resp",
            MgmtSubtype::ProbeRequest => "probe-req",
            MgmtSubtype::ProbeResponse => "probe-resp",
            MgmtSubtype::Beacon => "beacon",
            MgmtSubtype::Disassoc => "disassoc",
            MgmtSubtype::Authentication => "auth",
            MgmtSubtype::Deauthentication => "deauth",
        };
        f.write_str(name)
    }
}

/// The 16-bit frame-control word, restricted to the management plane.
///
/// ```
/// use ch_wifi::{FrameControl, MgmtSubtype};
/// let fc = FrameControl::mgmt(MgmtSubtype::ProbeRequest);
/// assert_eq!(FrameControl::from_word(fc.to_word()), Some(fc));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FrameControl {
    /// Protocol version; always 0 in deployed 802.11.
    pub version: u8,
    /// Management subtype.
    pub subtype: MgmtSubtype,
    /// Retransmission flag.
    pub retry: bool,
}

impl FrameControl {
    /// A version-0, non-retry management frame of the given subtype.
    pub fn mgmt(subtype: MgmtSubtype) -> Self {
        FrameControl {
            version: 0,
            subtype,
            retry: false,
        }
    }

    /// Encodes to the little-endian wire word.
    pub fn to_word(self) -> u16 {
        let mut word = (self.version as u16) & 0b11;
        // type bits (2..4) are 00 for management.
        word |= (self.subtype.bits() as u16) << 4;
        if self.retry {
            word |= 1 << 11;
        }
        word
    }

    /// Decodes from the wire word; `None` if the word is not a management
    /// frame this model understands.
    pub fn from_word(word: u16) -> Option<Self> {
        let version = (word & 0b11) as u8;
        let frame_type = ((word >> 2) & 0b11) as u8;
        if frame_type != 0 {
            return None; // not management
        }
        let subtype = MgmtSubtype::from_bits(((word >> 4) & 0b1111) as u8)?;
        Some(FrameControl {
            version,
            subtype,
            retry: word & (1 << 11) != 0,
        })
    }
}

/// The management-frame MAC header: addresses and sequence control.
///
/// * `addr1` — receiver (DA)
/// * `addr2` — transmitter (SA)
/// * `addr3` — BSSID
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MgmtHeader {
    /// Receiver address.
    pub addr1: MacAddr,
    /// Transmitter address.
    pub addr2: MacAddr,
    /// BSSID.
    pub addr3: MacAddr,
    /// 12-bit sequence number (fragment number is always 0 here).
    pub sequence: u16,
}

impl MgmtHeader {
    /// Builds a header with the sequence number masked to 12 bits.
    pub fn new(addr1: MacAddr, addr2: MacAddr, addr3: MacAddr, sequence: u16) -> Self {
        MgmtHeader {
            addr1,
            addr2,
            addr3,
            sequence: sequence & 0x0fff,
        }
    }

    /// Header for a client frame sent to an AP (`addr1 = addr3 = bssid`).
    pub fn to_ap(client: MacAddr, bssid: MacAddr, sequence: u16) -> Self {
        MgmtHeader::new(bssid, client, bssid, sequence)
    }

    /// Header for an AP frame sent to a client (`addr2 = addr3 = bssid`).
    pub fn from_ap(bssid: MacAddr, client: MacAddr, sequence: u16) -> Self {
        MgmtHeader::new(client, bssid, bssid, sequence)
    }

    /// Header for a broadcast frame from a client (probe request).
    pub fn client_broadcast(client: MacAddr, sequence: u16) -> Self {
        MgmtHeader::new(MacAddr::BROADCAST, client, MacAddr::BROADCAST, sequence)
    }
}

/// Monotonic 12-bit sequence-number generator, one per transmitting station.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SequenceCounter(u16);

impl SequenceCounter {
    /// Starts at zero.
    pub fn new() -> Self {
        SequenceCounter(0)
    }

    /// Returns the next sequence number, wrapping at 4096 like hardware.
    #[allow(clippy::should_implement_trait)] // not an iterator: infinite, u16
    pub fn next(&mut self) -> u16 {
        let seq = self.0;
        self.0 = (self.0 + 1) & 0x0fff;
        seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn subtype_bits_roundtrip() {
        for st in [
            MgmtSubtype::AssocRequest,
            MgmtSubtype::AssocResponse,
            MgmtSubtype::ProbeRequest,
            MgmtSubtype::ProbeResponse,
            MgmtSubtype::Beacon,
            MgmtSubtype::Disassoc,
            MgmtSubtype::Authentication,
            MgmtSubtype::Deauthentication,
        ] {
            assert_eq!(MgmtSubtype::from_bits(st.bits()), Some(st));
        }
        assert_eq!(MgmtSubtype::from_bits(0b0010), None);
        assert_eq!(MgmtSubtype::from_bits(0b1111), None);
    }

    #[test]
    fn frame_control_rejects_data_frames() {
        // type bits = 10 (data)
        let word = 0b0000_0000_0000_1000u16;
        assert_eq!(FrameControl::from_word(word), None);
    }

    #[test]
    fn retry_bit_roundtrips() {
        let mut fc = FrameControl::mgmt(MgmtSubtype::ProbeResponse);
        fc.retry = true;
        let decoded = FrameControl::from_word(fc.to_word()).unwrap();
        assert!(decoded.retry);
    }

    #[test]
    fn header_constructors_orient_addresses() {
        let client = MacAddr::new([2, 0, 0, 0, 0, 1]);
        let bssid = MacAddr::new([2, 0, 0, 0, 0, 2]);
        let up = MgmtHeader::to_ap(client, bssid, 7);
        assert_eq!((up.addr1, up.addr2, up.addr3), (bssid, client, bssid));
        let down = MgmtHeader::from_ap(bssid, client, 8);
        assert_eq!((down.addr1, down.addr2, down.addr3), (client, bssid, bssid));
        let bcast = MgmtHeader::client_broadcast(client, 9);
        assert!(bcast.addr1.is_broadcast());
        assert!(bcast.addr3.is_broadcast());
    }

    #[test]
    fn sequence_masked_and_wrapping() {
        let h = MgmtHeader::new(
            MacAddr::BROADCAST,
            MacAddr::BROADCAST,
            MacAddr::BROADCAST,
            0xffff,
        );
        assert_eq!(h.sequence, 0x0fff);

        let mut ctr = SequenceCounter::new();
        for expect in 0..4096u16 {
            assert_eq!(ctr.next(), expect);
        }
        assert_eq!(ctr.next(), 0, "wraps at 4096");
    }

    proptest! {
        #[test]
        fn prop_frame_control_word_roundtrip(
            subtype_bits in prop::sample::select(vec![0u8, 1, 4, 5, 8, 10, 11, 12]),
            retry in any::<bool>(),
        ) {
            let fc = FrameControl {
                version: 0,
                subtype: MgmtSubtype::from_bits(subtype_bits).unwrap(),
                retry,
            };
            prop_assert_eq!(FrameControl::from_word(fc.to_word()), Some(fc));
        }
    }
}

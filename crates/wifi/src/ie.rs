//! 802.11 information elements (IEs).
//!
//! Management-frame bodies are mostly a sequence of tagged elements:
//! `| id (1) | len (1) | payload (len) |`. This module models the elements
//! the City-Hunter ecosystem touches: the SSID element (the payload of the
//! whole attack), supported rates, the DS parameter set (channel), the RSN
//! element (whose *presence* marks a protected network — a lure SSID only
//! works if the victim's PNL entry is open), and the vendor escape hatch.

use std::fmt;

use crate::channel::Channel;
use crate::ssid::{Ssid, MAX_SSID_LEN};

/// Element IDs used on the wire.
pub mod element_id {
    /// SSID element.
    pub const SSID: u8 = 0;
    /// Supported rates element.
    pub const SUPPORTED_RATES: u8 = 1;
    /// DS parameter set (current channel).
    pub const DS_PARAMETER: u8 = 3;
    /// RSN (WPA2) element.
    pub const RSN: u8 = 48;
    /// Vendor-specific element.
    pub const VENDOR: u8 = 221;
}

/// The basic-rate set every 2.4 GHz AP advertises (values in 500 kb/s
/// units; high bit marks a basic rate). 1, 2, 5.5 and 11 Mb/s.
pub const DEFAULT_RATES: [u8; 4] = [0x82, 0x84, 0x8b, 0x96];

/// Fingerprint bit: an SSID element is present.
pub const FP_SSID: u8 = 1 << 0;
/// Fingerprint bit: a supported-rates element is present.
pub const FP_RATES: u8 = 1 << 1;
/// Fingerprint bit: a DS parameter element is present.
pub const FP_DS: u8 = 1 << 2;
/// Fingerprint bit: an RSN element is present.
pub const FP_RSN: u8 = 1 << 3;
/// Fingerprint bit: a vendor element is present.
pub const FP_VENDOR: u8 = 1 << 4;
/// Fingerprint bit: an uninterpreted element is present.
pub const FP_UNKNOWN: u8 = 1 << 5;

/// Compact IE-set fingerprint of an element list — which element classes
/// are present, as a bitmask of the `FP_*` bits. Rogue-AP detectors use
/// this as a cheap firmware fingerprint: karma-style responders emit
/// exactly `FP_SSID | FP_RATES | FP_DS`, while stock APs add vendor
/// elements and (when protected) RSN.
pub fn fingerprint(elements: &[InformationElement]) -> u8 {
    let mut mask = 0;
    for element in elements {
        mask |= match element {
            InformationElement::Ssid(_) => FP_SSID,
            InformationElement::SupportedRates(_) => FP_RATES,
            InformationElement::DsParameter(_) => FP_DS,
            InformationElement::Rsn(_) => FP_RSN,
            InformationElement::Vendor { .. } => FP_VENDOR,
            InformationElement::Unknown { .. } => FP_UNKNOWN,
        };
    }
    mask
}

/// Simplified RSN (WPA2-Personal) parameters.
///
/// Only the cipher/AKM identities matter to the simulation: a protected
/// network in a PNL cannot be auto-joined by offering an open twin, which
/// is why the attacker pre-filters WiGLE SSIDs down to *free* APs (§III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct RsnInfo {
    /// Pairwise cipher is CCMP (vs TKIP).
    pub ccmp: bool,
    /// AKM is PSK (vs 802.1X).
    pub psk: bool,
}

/// One parsed information element.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum InformationElement {
    /// SSID element; wildcard (empty) in broadcast probe requests.
    Ssid(Ssid),
    /// Supported-rates element (1–8 rate bytes).
    SupportedRates(Vec<u8>),
    /// DS parameter set: the current channel.
    DsParameter(Channel),
    /// RSN element — present iff the network is WPA2-protected.
    Rsn(RsnInfo),
    /// Vendor-specific element (OUI + opaque body).
    Vendor {
        /// Organizationally unique identifier of the vendor.
        oui: [u8; 3],
        /// Opaque vendor payload.
        data: Vec<u8>,
    },
    /// Any element this model does not interpret; preserved verbatim so
    /// parse/encode round-trips.
    Unknown {
        /// Raw element ID.
        id: u8,
        /// Raw payload.
        data: Vec<u8>,
    },
}

/// Error parsing an information element stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IeError {
    /// Element length field runs past the end of the buffer.
    Truncated {
        /// Element ID whose payload was cut short.
        id: u8,
        /// Length the element claimed.
        claimed: usize,
        /// Bytes actually remaining.
        available: usize,
    },
    /// An SSID element longer than 32 bytes.
    OversizedSsid {
        /// Claimed SSID length.
        len: usize,
    },
    /// An SSID element that is not valid UTF-8 (a model restriction; real
    /// 802.11 allows arbitrary octets, but every SSID in this study is
    /// textual).
    NonUtf8Ssid,
    /// A DS parameter element with a bad channel number.
    BadChannel {
        /// The invalid channel number.
        number: u8,
    },
    /// A vendor element too short to carry its OUI.
    ShortVendor,
}

impl fmt::Display for IeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IeError::Truncated {
                id,
                claimed,
                available,
            } => write!(
                f,
                "element {id} claims {claimed} bytes but only {available} remain"
            ),
            IeError::OversizedSsid { len } => {
                write!(f, "ssid element of {len} bytes exceeds {MAX_SSID_LEN}")
            }
            IeError::NonUtf8Ssid => write!(f, "ssid element is not valid utf-8"),
            IeError::BadChannel { number } => {
                write!(f, "ds parameter carries invalid channel {number}")
            }
            IeError::ShortVendor => write!(f, "vendor element shorter than its oui"),
        }
    }
}

impl std::error::Error for IeError {}

impl InformationElement {
    /// The wire element ID.
    pub fn id(&self) -> u8 {
        match self {
            InformationElement::Ssid(_) => element_id::SSID,
            InformationElement::SupportedRates(_) => element_id::SUPPORTED_RATES,
            InformationElement::DsParameter(_) => element_id::DS_PARAMETER,
            InformationElement::Rsn(_) => element_id::RSN,
            InformationElement::Vendor { .. } => element_id::VENDOR,
            InformationElement::Unknown { id, .. } => *id,
        }
    }

    /// Appends `| id | len | payload |` to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(self.id());
        match self {
            InformationElement::Ssid(ssid) => {
                out.push(ssid.len() as u8);
                out.extend_from_slice(ssid.as_bytes());
            }
            InformationElement::SupportedRates(rates) => {
                out.push(rates.len() as u8);
                out.extend_from_slice(rates);
            }
            InformationElement::DsParameter(channel) => {
                out.push(1);
                out.push(channel.number());
            }
            InformationElement::Rsn(rsn) => {
                // Compact model encoding: version (2) + flags (1).
                out.push(3);
                out.extend_from_slice(&1u16.to_le_bytes());
                out.push(u8::from(rsn.ccmp) | (u8::from(rsn.psk) << 1));
            }
            InformationElement::Vendor { oui, data } => {
                out.push((3 + data.len()) as u8);
                out.extend_from_slice(oui);
                out.extend_from_slice(data);
            }
            InformationElement::Unknown { data, .. } => {
                out.push(data.len() as u8);
                out.extend_from_slice(data);
            }
        }
    }

    /// Parses every element in `bytes`.
    ///
    /// # Errors
    ///
    /// Any [`IeError`] on malformed input.
    pub fn parse_all(mut bytes: &[u8]) -> Result<Vec<InformationElement>, IeError> {
        let mut elements = Vec::new();
        while !bytes.is_empty() {
            if bytes.len() < 2 {
                return Err(IeError::Truncated {
                    id: bytes[0],
                    claimed: 1,
                    available: 0,
                });
            }
            let id = bytes[0];
            let len = bytes[1] as usize;
            if bytes.len() < 2 + len {
                return Err(IeError::Truncated {
                    id,
                    claimed: len,
                    available: bytes.len() - 2,
                });
            }
            let payload = &bytes[2..2 + len];
            elements.push(Self::parse_one(id, payload)?);
            bytes = &bytes[2 + len..];
        }
        Ok(elements)
    }

    fn parse_one(id: u8, payload: &[u8]) -> Result<InformationElement, IeError> {
        Ok(match id {
            element_id::SSID => {
                if payload.len() > MAX_SSID_LEN {
                    return Err(IeError::OversizedSsid { len: payload.len() });
                }
                let text = std::str::from_utf8(payload).map_err(|_| IeError::NonUtf8Ssid)?;
                InformationElement::Ssid(
                    Ssid::new(text).map_err(|_| IeError::OversizedSsid { len: payload.len() })?,
                )
            }
            element_id::SUPPORTED_RATES => InformationElement::SupportedRates(payload.to_vec()),
            element_id::DS_PARAMETER => {
                let number = *payload.first().ok_or(IeError::BadChannel { number: 0 })?;
                InformationElement::DsParameter(
                    Channel::new(number).map_err(|_| IeError::BadChannel { number })?,
                )
            }
            element_id::RSN => {
                let flags = payload.get(2).copied().unwrap_or(0);
                InformationElement::Rsn(RsnInfo {
                    ccmp: flags & 1 != 0,
                    psk: flags & 2 != 0,
                })
            }
            element_id::VENDOR => {
                if payload.len() < 3 {
                    return Err(IeError::ShortVendor);
                }
                InformationElement::Vendor {
                    oui: [payload[0], payload[1], payload[2]],
                    data: payload[3..].to_vec(),
                }
            }
            other => InformationElement::Unknown {
                id: other,
                data: payload.to_vec(),
            },
        })
    }

    /// Finds the first SSID element in a parsed list.
    pub fn find_ssid(elements: &[InformationElement]) -> Option<&Ssid> {
        elements.iter().find_map(|e| match e {
            InformationElement::Ssid(ssid) => Some(ssid),
            _ => None,
        })
    }

    /// `true` if the list carries an RSN element (protected network).
    pub fn has_rsn(elements: &[InformationElement]) -> bool {
        elements
            .iter()
            .any(|e| matches!(e, InformationElement::Rsn(_)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(elements: &[InformationElement]) -> Vec<InformationElement> {
        let mut buf = Vec::new();
        for e in elements {
            e.encode_into(&mut buf);
        }
        InformationElement::parse_all(&buf).unwrap()
    }

    #[test]
    fn ssid_element_roundtrip() {
        let e = vec![InformationElement::Ssid(
            Ssid::new("#HKAirport Free WiFi").unwrap(),
        )];
        assert_eq!(roundtrip(&e), e);
    }

    #[test]
    fn wildcard_ssid_is_zero_length() {
        let mut buf = Vec::new();
        InformationElement::Ssid(Ssid::wildcard()).encode_into(&mut buf);
        assert_eq!(buf, vec![element_id::SSID, 0]);
    }

    #[test]
    fn mixed_elements_roundtrip() {
        let e = vec![
            InformationElement::Ssid(Ssid::new("CSL").unwrap()),
            InformationElement::SupportedRates(DEFAULT_RATES.to_vec()),
            InformationElement::DsParameter(Channel::new(6).unwrap()),
            InformationElement::Rsn(RsnInfo {
                ccmp: true,
                psk: true,
            }),
            InformationElement::Vendor {
                oui: [0x00, 0x50, 0xf2],
                data: vec![1, 2, 3],
            },
            InformationElement::Unknown {
                id: 7,
                data: vec![b'H', b'K'],
            },
        ];
        assert_eq!(roundtrip(&e), e);
    }

    #[test]
    fn truncated_stream_rejected() {
        let buf = vec![element_id::SSID, 5, b'a', b'b'];
        let err = InformationElement::parse_all(&buf).unwrap_err();
        assert_eq!(
            err,
            IeError::Truncated {
                id: 0,
                claimed: 5,
                available: 2
            }
        );
        assert!(InformationElement::parse_all(&[element_id::SSID]).is_err());
    }

    #[test]
    fn oversized_ssid_rejected() {
        let mut buf = vec![element_id::SSID, 33];
        buf.extend(std::iter::repeat_n(b'x', 33));
        assert_eq!(
            InformationElement::parse_all(&buf).unwrap_err(),
            IeError::OversizedSsid { len: 33 }
        );
    }

    #[test]
    fn non_utf8_ssid_rejected() {
        let buf = vec![element_id::SSID, 2, 0xff, 0xfe];
        assert_eq!(
            InformationElement::parse_all(&buf).unwrap_err(),
            IeError::NonUtf8Ssid
        );
    }

    #[test]
    fn bad_channel_rejected() {
        let buf = vec![element_id::DS_PARAMETER, 1, 0];
        assert_eq!(
            InformationElement::parse_all(&buf).unwrap_err(),
            IeError::BadChannel { number: 0 }
        );
        let empty = vec![element_id::DS_PARAMETER, 0];
        assert!(InformationElement::parse_all(&empty).is_err());
    }

    #[test]
    fn short_vendor_rejected() {
        let buf = vec![element_id::VENDOR, 2, 0x00, 0x50];
        assert_eq!(
            InformationElement::parse_all(&buf).unwrap_err(),
            IeError::ShortVendor
        );
    }

    #[test]
    fn fingerprint_reflects_element_classes() {
        assert_eq!(fingerprint(&[]), 0);
        let minimal = vec![
            InformationElement::Ssid(Ssid::new("X").unwrap()),
            InformationElement::SupportedRates(DEFAULT_RATES.to_vec()),
            InformationElement::DsParameter(Channel::new(6).unwrap()),
        ];
        assert_eq!(fingerprint(&minimal), FP_SSID | FP_RATES | FP_DS);
        let rich = vec![
            InformationElement::Rsn(RsnInfo::default()),
            InformationElement::Vendor {
                oui: [0, 0x50, 0xf2],
                data: vec![],
            },
            InformationElement::Unknown {
                id: 7,
                data: vec![],
            },
        ];
        assert_eq!(fingerprint(&rich), FP_RSN | FP_VENDOR | FP_UNKNOWN);
    }

    #[test]
    fn helpers_find_things() {
        let elements = vec![
            InformationElement::SupportedRates(DEFAULT_RATES.to_vec()),
            InformationElement::Ssid(Ssid::new("Free Public WiFi").unwrap()),
        ];
        assert_eq!(
            InformationElement::find_ssid(&elements).unwrap().as_str(),
            "Free Public WiFi"
        );
        assert!(!InformationElement::has_rsn(&elements));
    }

    #[test]
    fn error_messages_nonempty() {
        for err in [
            IeError::Truncated {
                id: 1,
                claimed: 9,
                available: 2,
            },
            IeError::OversizedSsid { len: 40 },
            IeError::NonUtf8Ssid,
            IeError::BadChannel { number: 77 },
            IeError::ShortVendor,
        ] {
            assert!(!err.to_string().is_empty());
        }
    }

    proptest! {
        #[test]
        fn prop_unknown_elements_roundtrip(
            id in 4u8..47,
            data in proptest::collection::vec(any::<u8>(), 0..64),
        ) {
            let e = vec![InformationElement::Unknown { id, data }];
            prop_assert_eq!(roundtrip(&e), e);
        }

        #[test]
        fn prop_ascii_ssid_roundtrip(name in "[ -~]{0,32}") {
            let e = vec![InformationElement::Ssid(Ssid::new(name).unwrap())];
            prop_assert_eq!(roundtrip(&e), e);
        }

        #[test]
        fn prop_parse_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = InformationElement::parse_all(&bytes);
        }
    }
}

//! Service Set Identifiers.

use std::borrow::Borrow;
use std::fmt;
use std::str::FromStr;

/// Maximum SSID length in bytes, per IEEE 802.11.
pub const MAX_SSID_LEN: usize = 32;

/// A validated SSID: 0–32 bytes.
///
/// SSIDs are the currency of the whole attack — the paper's SSID database,
/// buffers and probe responses all traffic in them — so the type enforces
/// the 802.11 length bound once, at the boundary, and everything downstream
/// can rely on it.
///
/// The empty SSID (the *wildcard*) is what a broadcast probe request
/// carries; [`Ssid::is_wildcard`] tests for it.
///
/// ```
/// use ch_wifi::Ssid;
/// let ssid: Ssid = "7-Eleven Free WiFi".parse()?;
/// assert_eq!(ssid.as_str(), "7-Eleven Free WiFi");
/// assert!(!ssid.is_wildcard());
/// # Ok::<(), ch_wifi::SsidError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ssid(String);

/// Error constructing an [`Ssid`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SsidError {
    /// The SSID exceeds [`MAX_SSID_LEN`] bytes.
    TooLong {
        /// Actual byte length supplied.
        len: usize,
    },
}

impl fmt::Display for SsidError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SsidError::TooLong { len } => {
                write!(f, "ssid is {len} bytes, maximum is {MAX_SSID_LEN}")
            }
        }
    }
}

impl std::error::Error for SsidError {}

impl Ssid {
    /// The wildcard (zero-length) SSID carried by broadcast probe requests.
    pub fn wildcard() -> Self {
        Ssid(String::new())
    }

    /// Creates an SSID, validating the length bound.
    ///
    /// # Errors
    ///
    /// Returns [`SsidError::TooLong`] if `name` exceeds 32 bytes.
    pub fn new(name: impl Into<String>) -> Result<Self, SsidError> {
        let name = name.into();
        if name.len() > MAX_SSID_LEN {
            return Err(SsidError::TooLong { len: name.len() });
        }
        Ok(Ssid(name))
    }

    /// Creates an SSID, truncating to the 32-byte bound on a UTF-8
    /// character boundary instead of failing. Handy for generated names.
    pub fn new_lossy(name: impl Into<String>) -> Self {
        let mut name = name.into();
        while name.len() > MAX_SSID_LEN {
            name.pop();
        }
        Ssid(name)
    }

    /// The SSID as text.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The SSID bytes as they appear in the SSID information element.
    pub fn as_bytes(&self) -> &[u8] {
        self.0.as_bytes()
    }

    /// Byte length (what the IE length field carries).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` for the zero-length wildcard SSID.
    pub fn is_wildcard(&self) -> bool {
        self.0.is_empty()
    }

    /// Alias for [`Ssid::is_wildcard`], for collection-like call sites.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Display for Ssid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_wildcard() {
            write!(f, "<wildcard>")
        } else {
            f.write_str(&self.0)
        }
    }
}

impl FromStr for Ssid {
    type Err = SsidError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ssid::new(s)
    }
}

impl TryFrom<&str> for Ssid {
    type Error = SsidError;

    fn try_from(s: &str) -> Result<Self, Self::Error> {
        Ssid::new(s)
    }
}

impl AsRef<str> for Ssid {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl Borrow<str> for Ssid {
    fn borrow(&self) -> &str {
        self.as_str()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn wildcard_is_empty() {
        let w = Ssid::wildcard();
        assert!(w.is_wildcard());
        assert!(w.is_empty());
        assert_eq!(w.len(), 0);
        assert_eq!(w.to_string(), "<wildcard>");
    }

    #[test]
    fn length_bound_enforced() {
        assert!(Ssid::new("x".repeat(32)).is_ok());
        let err = Ssid::new("x".repeat(33)).unwrap_err();
        assert_eq!(err, SsidError::TooLong { len: 33 });
        assert!(err.to_string().contains("33"));
    }

    #[test]
    fn lossy_truncates_on_char_boundary() {
        // 17 × '日' = 51 bytes; truncation must not split a code point.
        let s = Ssid::new_lossy("日".repeat(17));
        assert!(s.len() <= 32);
        assert_eq!(s.as_str().chars().count(), 10);
    }

    #[test]
    fn borrow_enables_str_lookup() {
        let mut set: HashSet<Ssid> = HashSet::new();
        set.insert(Ssid::new("CSL").unwrap());
        assert!(set.contains("CSL"));
        assert!(!set.contains("CMCC-WEB"));
    }

    #[test]
    fn parse_paper_ssids() {
        for name in [
            "7-Eleven Free WiFi",
            "#HKAirport Free WiFi",
            "-Free HKBN Wi-Fi-",
            "Free Public WiFi",
            "CMCC-WEB",
            "PCCW1x",
        ] {
            let ssid: Ssid = name.parse().unwrap();
            assert_eq!(ssid.as_str(), name);
        }
    }

    proptest! {
        #[test]
        fn prop_new_lossy_always_valid(name in ".{0,64}") {
            let ssid = Ssid::new_lossy(name);
            prop_assert!(ssid.len() <= MAX_SSID_LEN);
        }

        #[test]
        fn prop_roundtrip_via_str(name in "[ -~]{0,32}") {
            let ssid = Ssid::new(name.clone()).unwrap();
            prop_assert_eq!(ssid.as_str(), name.as_str());
        }
    }
}

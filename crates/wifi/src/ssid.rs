//! Service Set Identifiers: the validated boundary type ([`Ssid`]) and the
//! interned hot-path representation ([`SsidId`] / [`SsidInterner`]).

use ch_sim::DetHashMap;
use std::borrow::Borrow;
use std::fmt;
use std::str::FromStr;
use std::sync::{Arc, OnceLock};

/// Maximum SSID length in bytes, per IEEE 802.11.
pub const MAX_SSID_LEN: usize = 32;

/// A validated SSID: 0–32 bytes.
///
/// SSIDs are the currency of the whole attack — the paper's SSID database,
/// buffers and probe responses all traffic in them — so the type enforces
/// the 802.11 length bound once, at the boundary, and everything downstream
/// can rely on it.
///
/// The empty SSID (the *wildcard*) is what a broadcast probe request
/// carries; [`Ssid::is_wildcard`] tests for it.
///
/// The name is stored behind an `Arc<str>`, so `Ssid::clone` is a
/// reference-count bump, not a heap copy — the per-probe hot path can hand
/// SSIDs around by value without allocating. For the places that compare or
/// dedup SSIDs in bulk (the attacker database and lure buffers), use
/// [`SsidInterner`] and compare [`SsidId`]s instead.
///
/// ```
/// use ch_wifi::Ssid;
/// let ssid: Ssid = "7-Eleven Free WiFi".parse()?;
/// assert_eq!(ssid.as_str(), "7-Eleven Free WiFi");
/// assert!(!ssid.is_wildcard());
/// # Ok::<(), ch_wifi::SsidError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ssid(Arc<str>);

/// Error constructing an [`Ssid`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SsidError {
    /// The SSID exceeds [`MAX_SSID_LEN`] bytes.
    TooLong {
        /// Actual byte length supplied.
        len: usize,
    },
}

impl fmt::Display for SsidError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SsidError::TooLong { len } => {
                write!(f, "ssid is {len} bytes, maximum is {MAX_SSID_LEN}")
            }
        }
    }
}

impl std::error::Error for SsidError {}

impl Ssid {
    /// The wildcard (zero-length) SSID carried by broadcast probe requests.
    ///
    /// The backing allocation is shared process-wide, so constructing
    /// wildcards in the probe loop is allocation-free.
    pub fn wildcard() -> Self {
        static WILDCARD: OnceLock<Arc<str>> = OnceLock::new();
        Ssid(Arc::clone(WILDCARD.get_or_init(|| Arc::from(""))))
    }

    /// Creates an SSID, validating the length bound.
    ///
    /// # Errors
    ///
    /// Returns [`SsidError::TooLong`] if `name` exceeds 32 bytes.
    pub fn new(name: impl Into<String>) -> Result<Self, SsidError> {
        let name = name.into();
        if name.len() > MAX_SSID_LEN {
            return Err(SsidError::TooLong { len: name.len() });
        }
        Ok(Ssid(Arc::from(name)))
    }

    /// Creates an SSID, truncating to the 32-byte bound on a UTF-8
    /// character boundary instead of failing. Handy for generated names.
    pub fn new_lossy(name: impl Into<String>) -> Self {
        let mut name = name.into();
        while name.len() > MAX_SSID_LEN {
            name.pop();
        }
        Ssid(Arc::from(name))
    }

    /// The SSID as text.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The SSID bytes as they appear in the SSID information element.
    pub fn as_bytes(&self) -> &[u8] {
        self.0.as_bytes()
    }

    /// Byte length (what the IE length field carries).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` for the zero-length wildcard SSID.
    pub fn is_wildcard(&self) -> bool {
        self.0.is_empty()
    }

    /// Alias for [`Ssid::is_wildcard`], for collection-like call sites.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Display for Ssid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_wildcard() {
            write!(f, "<wildcard>")
        } else {
            f.write_str(&self.0)
        }
    }
}

impl FromStr for Ssid {
    type Err = SsidError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ssid::new(s)
    }
}

impl TryFrom<&str> for Ssid {
    type Error = SsidError;

    fn try_from(s: &str) -> Result<Self, Self::Error> {
        Ssid::new(s)
    }
}

impl AsRef<str> for Ssid {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl Borrow<str> for Ssid {
    fn borrow(&self) -> &str {
        self.as_str()
    }
}

/// A dense handle for an interned [`Ssid`].
///
/// Ids are assigned by first-intern order in a [`SsidInterner`], starting at
/// zero, so they double as indices into per-interner side tables (weights,
/// seen-sets, scratch buffers). Two ids from the *same* interner compare
/// equal iff their SSIDs do; ids from different interners are meaningless to
/// compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SsidId(u32);

impl SsidId {
    /// The id as a dense index (for side tables sized by interner length).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw u32 value.
    pub fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for SsidId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s#{}", self.0)
    }
}

/// A deterministic SSID interner: maps each distinct [`Ssid`] to a dense
/// [`SsidId`] assigned in first-intern order.
///
/// Built on [`DetHashMap`], so the id assignment depends only on the
/// *sequence* of interned SSIDs — the same corpus interned in the same order
/// yields the same ids on every run, every machine, and every worker count.
/// That property is what lets the attacker database key its entries and
/// caches by id while keeping golden artifacts byte-identical.
///
/// ```
/// use ch_wifi::{Ssid, SsidInterner};
/// let mut interner = SsidInterner::new();
/// let a = interner.intern(&Ssid::new("CSL").unwrap());
/// let b = interner.intern(&Ssid::new("PCCW1x").unwrap());
/// assert_eq!(interner.intern(&Ssid::new("CSL").unwrap()), a);
/// assert_ne!(a, b);
/// assert_eq!(interner.resolve(a).as_str(), "CSL");
/// ```
#[derive(Debug, Clone, Default)]
pub struct SsidInterner {
    ids: DetHashMap<Ssid, SsidId>,
    names: Vec<Ssid>,
}

impl SsidInterner {
    /// An empty interner.
    pub fn new() -> Self {
        SsidInterner::default()
    }

    /// Number of distinct SSIDs interned.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` if nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Interns `ssid`, returning its id. The first intern of a given SSID
    /// clones it (a reference-count bump) and assigns the next dense id;
    /// repeat interns are a single hash lookup.
    pub fn intern(&mut self, ssid: &Ssid) -> SsidId {
        if let Some(&id) = self.ids.get(ssid) {
            return id;
        }
        let id = SsidId(self.names.len() as u32);
        // Both clones are `Arc<str>` refcount bumps, and first-intern is
        // the sanctioned once-per-SSID slow path (map/vec growth included).
        self.ids.insert(ssid.clone(), id); // ch-lint: allow(hot-path-alloc)
        self.names.push(ssid.clone()); // ch-lint: allow(hot-path-alloc)
        id
    }

    /// The id of an already-interned SSID, if any. Never allocates.
    pub fn get(&self, ssid: &Ssid) -> Option<SsidId> {
        self.ids.get(ssid).copied()
    }

    /// Resolves an id back to its SSID, if the id came from this interner.
    pub fn try_resolve(&self, id: SsidId) -> Option<&Ssid> {
        self.names.get(id.index())
    }

    /// Resolves an id back to its SSID. Unknown ids (from another interner)
    /// resolve to the wildcard SSID rather than panicking — `ch-wifi` is a
    /// panic-free crate and a stale id is a caller bug, not a crash.
    pub fn resolve(&self, id: SsidId) -> &Ssid {
        static FALLBACK: OnceLock<Ssid> = OnceLock::new();
        self.names
            .get(id.index())
            .unwrap_or_else(|| FALLBACK.get_or_init(Ssid::wildcard))
    }

    /// All interned SSIDs, in id order (`names[id.index()]`).
    pub fn names(&self) -> &[Ssid] {
        &self.names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn wildcard_is_empty() {
        let w = Ssid::wildcard();
        assert!(w.is_wildcard());
        assert!(w.is_empty());
        assert_eq!(w.len(), 0);
        assert_eq!(w.to_string(), "<wildcard>");
    }

    #[test]
    fn length_bound_enforced() {
        assert!(Ssid::new("x".repeat(32)).is_ok());
        let err = Ssid::new("x".repeat(33)).unwrap_err();
        assert_eq!(err, SsidError::TooLong { len: 33 });
        assert!(err.to_string().contains("33"));
    }

    #[test]
    fn lossy_truncates_on_char_boundary() {
        // 17 × '日' = 51 bytes; truncation must not split a code point.
        let s = Ssid::new_lossy("日".repeat(17));
        assert!(s.len() <= 32);
        assert_eq!(s.as_str().chars().count(), 10);
    }

    #[test]
    fn borrow_enables_str_lookup() {
        let mut set: HashSet<Ssid> = HashSet::new();
        set.insert(Ssid::new("CSL").unwrap());
        assert!(set.contains("CSL"));
        assert!(!set.contains("CMCC-WEB"));
    }

    #[test]
    fn parse_paper_ssids() {
        for name in [
            "7-Eleven Free WiFi",
            "#HKAirport Free WiFi",
            "-Free HKBN Wi-Fi-",
            "Free Public WiFi",
            "CMCC-WEB",
            "PCCW1x",
        ] {
            let ssid: Ssid = name.parse().unwrap();
            assert_eq!(ssid.as_str(), name);
        }
    }

    #[test]
    fn clone_shares_the_allocation() {
        let a = Ssid::new("7-Eleven Free WiFi").unwrap();
        let b = a.clone();
        assert!(std::sync::Arc::ptr_eq(&a.0, &b.0));
    }

    #[test]
    fn interner_assigns_dense_first_seen_ids() {
        let mut interner = SsidInterner::new();
        let csl = Ssid::new("CSL").unwrap();
        let pccw = Ssid::new("PCCW1x").unwrap();
        let a = interner.intern(&csl);
        let b = interner.intern(&pccw);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(interner.intern(&csl), a);
        assert_eq!(interner.len(), 2);
        assert_eq!(interner.get(&pccw), Some(b));
        assert_eq!(interner.get(&Ssid::new("CMCC-WEB").unwrap()), None);
        assert_eq!(interner.resolve(a), &csl);
        assert_eq!(interner.names(), &[csl, pccw]);
    }

    #[test]
    fn unknown_id_resolves_to_wildcard_not_panic() {
        let mut a = SsidInterner::new();
        let mut b = SsidInterner::new();
        a.intern(&Ssid::new("CSL").unwrap());
        let stale = a.intern(&Ssid::new("PCCW1x").unwrap());
        b.intern(&Ssid::new("CSL").unwrap());
        assert_eq!(b.try_resolve(stale), None);
        assert!(b.resolve(stale).is_wildcard());
    }

    proptest! {
        #[test]
        fn prop_new_lossy_always_valid(name in ".{0,64}") {
            let ssid = Ssid::new_lossy(name);
            prop_assert!(ssid.len() <= MAX_SSID_LEN);
        }

        #[test]
        fn prop_roundtrip_via_str(name in "[ -~]{0,32}") {
            let ssid = Ssid::new(name.clone()).unwrap();
            prop_assert_eq!(ssid.as_str(), name.as_str());
        }
    }
}

// Panic-freedom gate (clippy side of ch-lint rule R3): library code must
// surface malformed input as Result, not crash mid-campaign. Tests are
// exempt; a justified escape hatch is a scoped #[allow] plus a
// `// ch-lint: allow(panic-path)` comment.
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

//! # ch-wifi — 802.11 management-frame substrate
//!
//! City-Hunter, KARMA and MANA are all built out of 802.11 *management
//! frames*: probe requests and responses, beacons, the open-system
//! authentication exchange, association, and deauthentication. This crate
//! models those frames faithfully enough that the attackers in `ch-attack`
//! and the phones in `ch-phone` speak to each other through real frame
//! structures with a byte-level wire codec, rather than through ad-hoc
//! structs.
//!
//! Contents:
//!
//! * [`MacAddr`] — 48-bit MAC addresses with OUI / locally-administered
//!   semantics (and the randomized-MAC failure-injection mode uses the
//!   locally-administered bit exactly as real phones do).
//! * [`Ssid`] — a validated 0–32 byte SSID.
//! * [`Channel`] — 2.4 GHz channels 1–14.
//! * [`frame`] — frame control, management subtypes, the common header.
//! * [`ie`] — information elements (SSID, rates, DS parameter, RSN, vendor).
//! * [`mgmt`] — the typed management frame bodies and [`mgmt::MgmtFrame`].
//! * [`codec`] — encode/parse between [`mgmt::MgmtFrame`] and bytes.
//! * [`pcap`] — export frame exchanges as Wireshark-readable captures.
//! * [`timing`] — airtime arithmetic: why one scan can only carry ~40 probe
//!   responses (§III-A of the paper).
//!
//! ```
//! use ch_wifi::{codec, mgmt::{MgmtFrame, ProbeRequest}, MacAddr};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let probe = MgmtFrame::ProbeRequest(ProbeRequest::broadcast(
//!     MacAddr::new([0x02, 0, 0, 0, 0, 1]),
//! ));
//! let bytes = codec::encode(&probe);
//! let parsed = codec::parse(&bytes)?;
//! assert_eq!(parsed, probe);
//! # Ok(())
//! # }
//! ```

pub mod channel;
pub mod codec;
pub mod frame;
pub mod ie;
pub mod mac;
pub mod mgmt;
pub mod pcap;
pub mod ssid;
pub mod timing;

pub use channel::Channel;
pub use codec::CodecError;
pub use frame::{FrameControl, MgmtHeader, MgmtSubtype};
pub use mac::MacAddr;
pub use mgmt::MgmtFrame;
pub use ssid::{Ssid, SsidError, SsidId, SsidInterner};

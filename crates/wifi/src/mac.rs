//! 48-bit IEEE 802 MAC addresses.

use std::fmt;
use std::str::FromStr;

/// A 48-bit MAC address.
///
/// The simulation uses MAC addresses the same way the paper's attacker does:
/// as the client identity key for the per-client "untried SSID" bookkeeping
/// (§III-A) and for the connected-client counts in every table.
///
/// ```
/// use ch_wifi::MacAddr;
/// let mac: MacAddr = "02:00:5e:10:00:01".parse()?;
/// assert!(mac.is_locally_administered());
/// assert!(!mac.is_broadcast());
/// # Ok::<(), ch_wifi::mac::ParseMacError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MacAddr([u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// Creates an address from raw octets.
    pub const fn new(octets: [u8; 6]) -> Self {
        MacAddr(octets)
    }

    /// The raw octets.
    pub const fn octets(self) -> [u8; 6] {
        self.0
    }

    /// Deterministically derives a *globally unique* (OUI-style) address
    /// from an index; used to mint stable phone and AP identities.
    pub fn from_index(oui: [u8; 3], index: u32) -> Self {
        let [_, b1, b2, b3] = index.to_be_bytes();
        // Clear the multicast and locally-administered bits so the result
        // reads as a vendor-assigned address.
        MacAddr([oui[0] & 0b1111_1100, oui[1], oui[2], b1, b2, b3])
    }

    /// Derives a *locally administered* randomized address from an index,
    /// mimicking MAC-randomizing clients (set bit 1 of the first octet,
    /// clear the multicast bit).
    pub fn randomized_from(seed: u64) -> Self {
        let bytes = seed.to_be_bytes();
        let mut o = [bytes[2], bytes[3], bytes[4], bytes[5], bytes[6], bytes[7]];
        o[0] = (o[0] | 0b0000_0010) & !0b0000_0001;
        MacAddr(o)
    }

    /// `true` for the broadcast address.
    pub fn is_broadcast(self) -> bool {
        self == MacAddr::BROADCAST
    }

    /// `true` if the multicast (group) bit is set.
    pub fn is_multicast(self) -> bool {
        self.0[0] & 0b0000_0001 != 0
    }

    /// `true` if the locally-administered bit is set — the signature of a
    /// randomized client MAC.
    pub fn is_locally_administered(self) -> bool {
        self.0[0] & 0b0000_0010 != 0
    }

    /// The first three octets (organizationally unique identifier).
    pub fn oui(self) -> [u8; 3] {
        [self.0[0], self.0[1], self.0[2]]
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

/// Error parsing a textual MAC address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseMacError {
    input: String,
}

impl fmt::Display for ParseMacError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid MAC address syntax: {:?}", self.input)
    }
}

impl std::error::Error for ParseMacError {}

impl FromStr for MacAddr {
    type Err = ParseMacError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseMacError {
            input: s.to_owned(),
        };
        let mut octets = [0u8; 6];
        let mut parts = s.split(':');
        for slot in &mut octets {
            let part = parts.next().ok_or_else(err)?;
            if part.len() != 2 {
                return Err(err());
            }
            *slot = u8::from_str_radix(part, 16).map_err(|_| err())?;
        }
        if parts.next().is_some() {
            return Err(err());
        }
        Ok(MacAddr(octets))
    }
}

impl From<[u8; 6]> for MacAddr {
    fn from(octets: [u8; 6]) -> Self {
        MacAddr(octets)
    }
}

impl From<MacAddr> for [u8; 6] {
    fn from(mac: MacAddr) -> Self {
        mac.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn display_and_parse_roundtrip() {
        let mac = MacAddr::new([0xde, 0xad, 0xbe, 0xef, 0x00, 0x42]);
        let text = mac.to_string();
        assert_eq!(text, "de:ad:be:ef:00:42");
        assert_eq!(text.parse::<MacAddr>().unwrap(), mac);
    }

    #[test]
    fn parse_rejects_bad_inputs() {
        for bad in [
            "",
            "de:ad:be:ef:00",
            "de:ad:be:ef:00:42:11",
            "de:ad:be:ef:00:4",
            "zz:ad:be:ef:00:42",
            "dead:beef:0042",
        ] {
            assert!(bad.parse::<MacAddr>().is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn broadcast_properties() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(!MacAddr::new([0; 6]).is_broadcast());
    }

    #[test]
    fn from_index_is_unicast_global_and_distinct() {
        let oui = [0xa4, 0x77, 0x33];
        let a = MacAddr::from_index(oui, 1);
        let b = MacAddr::from_index(oui, 2);
        assert_ne!(a, b);
        assert!(!a.is_multicast());
        assert!(!a.is_locally_administered());
        assert_eq!(a.oui()[1..], oui[1..]);
    }

    #[test]
    fn randomized_flags_set() {
        let mac = MacAddr::randomized_from(0xdead_beef_cafe);
        assert!(mac.is_locally_administered());
        assert!(!mac.is_multicast());
        assert_ne!(MacAddr::randomized_from(1), MacAddr::randomized_from(2));
    }

    proptest! {
        #[test]
        fn prop_display_parse_roundtrip(octets in proptest::array::uniform6(0u8..)) {
            let mac = MacAddr::new(octets);
            prop_assert_eq!(mac.to_string().parse::<MacAddr>().unwrap(), mac);
        }

        #[test]
        fn prop_from_index_injective(a in 0u32..1_000_000, b in 0u32..1_000_000) {
            prop_assume!(a != b);
            let oui = [0x00, 0x11, 0x22];
            prop_assert_ne!(MacAddr::from_index(oui, a), MacAddr::from_index(oui, b));
        }
    }
}

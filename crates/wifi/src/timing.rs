//! Scan-timing arithmetic — the quantitative heart of §III-A.
//!
//! After sending a probe request, a client listens ~10 ms for the first
//! probe response and then at most another ~10 ms; transmitting one probe
//! response takes ~0.25 ms at management rates. An AP on one channel can
//! therefore land only about **40** probe responses per scan — which is why
//! MANA's strategy of replaying its whole database achieves nothing beyond
//! the first 40 SSIDs, and why City-Hunter invests so much in *choosing*
//! those 40.

use ch_sim::{SimDuration, SimTime};

/// How long a client waits for the *first* probe response.
pub const INITIAL_WAIT: SimDuration = SimDuration::from_millis(10);

/// How long the client keeps listening once responses are flowing.
pub const EXTENDED_WAIT: SimDuration = SimDuration::from_millis(10);

/// Airtime of one probe response at management (1 Mb/s) rates, per the
/// measurement cited by the paper (Castignani et al.): ~0.25 ms.
pub const PROBE_RESPONSE_AIRTIME: SimDuration = SimDuration::from_micros(250);

/// Airtime of a (short) probe request.
pub const PROBE_REQUEST_AIRTIME: SimDuration = SimDuration::from_micros(120);

/// Airtime of one authentication or association frame.
pub const HANDSHAKE_FRAME_AIRTIME: SimDuration = SimDuration::from_micros(150);

/// The per-scan response budget: how many probe responses fit in the
/// client's listen window.
pub fn responses_per_scan() -> usize {
    (EXTENDED_WAIT / PROBE_RESPONSE_AIRTIME) as usize
}

/// The instant a client that probed at `probe_at` stops listening, assuming
/// the first probe response starts immediately: the first response occupies
/// its own airtime, then the client waits [`EXTENDED_WAIT`] more — "a
/// client can only wait at most 10 ms after receiving a first probe
/// response" (§III-A), which is what caps reception near 40 frames.
pub fn listen_deadline(probe_at: SimTime) -> SimTime {
    probe_at + PROBE_RESPONSE_AIRTIME + EXTENDED_WAIT
}

/// Airtime for an encoded frame of `len` bytes at `rate_mbps`, including a
/// fixed preamble/IFS overhead of 100 µs. This is a long-preamble DSSS
/// approximation, adequate for management traffic at 1–2 Mb/s.
pub fn airtime_for_len(len: usize, rate_mbps: f64) -> SimDuration {
    assert!(rate_mbps > 0.0, "rate must be positive");
    let payload_us = (len as f64 * 8.0) / rate_mbps;
    SimDuration::from_micros(100 + payload_us.ceil() as u64)
}

/// Full duration of the open-system join once the client decides to
/// connect: auth request/response + assoc request/response with SIFS gaps.
pub fn join_handshake_duration() -> SimDuration {
    // 4 frames + 3 × 10 µs SIFS.
    HANDSHAKE_FRAME_AIRTIME * 4 + SimDuration::from_micros(30)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_is_forty() {
        // The paper's headline constant.
        assert_eq!(responses_per_scan(), 40);
    }

    #[test]
    fn listen_deadline_caps_reception_near_forty() {
        let t0 = SimTime::from_secs(5);
        let deadline = listen_deadline(t0);
        assert_eq!(deadline, t0 + SimDuration::from_micros(10_250));
        // Frames that fit back-to-back inside the window:
        let frames = deadline.since(t0) / PROBE_RESPONSE_AIRTIME;
        assert_eq!(frames, 41, "one in-flight + the 40-frame budget");
    }

    #[test]
    fn airtime_scales_with_length_and_rate() {
        let short = airtime_for_len(50, 1.0);
        let long = airtime_for_len(100, 1.0);
        assert!(long > short);
        let fast = airtime_for_len(100, 2.0);
        assert!(fast < long);
        // 100-byte frame at 1 Mb/s: 800 µs payload + 100 µs overhead.
        assert_eq!(airtime_for_len(100, 1.0), SimDuration::from_micros(900));
    }

    #[test]
    fn probe_response_airtime_consistent_with_typical_frame() {
        // A typical lure probe response is ~60–80 bytes on our codec;
        // at 2 Mb/s that lands in the ~0.25–0.45 ms ballpark the constant
        // summarizes.
        let t = airtime_for_len(75, 2.0);
        assert!(
            t >= SimDuration::from_micros(200) && t <= SimDuration::from_micros(500),
            "{t}"
        );
    }

    #[test]
    fn handshake_is_sub_millisecond() {
        assert!(join_handshake_duration() < SimDuration::from_millis(1));
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_panics() {
        let _ = airtime_for_len(10, 0.0);
    }
}

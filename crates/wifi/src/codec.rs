//! Byte-level encoding and parsing of management frames.
//!
//! The wire format follows IEEE 802.11: a little-endian frame-control word,
//! duration, three addresses, sequence control, then the subtype-specific
//! fixed fields and information elements. The attacker and phone state
//! machines exchange encoded frames through this codec in the integration
//! tests, so frame-construction bugs would surface as handshake failures —
//! the same place they would surface against real hardware.

use crate::channel::Channel;
use crate::frame::{FrameControl, MgmtHeader, MgmtSubtype};
use crate::ie::{element_id, IeError, InformationElement, DEFAULT_RATES};
use crate::mac::MacAddr;
use crate::mgmt::{
    AssocRequest, AssocResponse, Authentication, Beacon, CapabilityInfo, Deauthentication,
    MgmtFrame, ProbeRequest, ProbeResponse, ReasonCode, StatusCode,
};
use crate::ssid::Ssid;

/// Error parsing a byte buffer into a [`MgmtFrame`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Fewer bytes than the 24-byte management header plus the subtype's
    /// fixed fields.
    Truncated {
        /// Bytes required by the point of failure.
        needed: usize,
        /// Bytes available.
        available: usize,
    },
    /// The frame-control word is not a recognized management frame.
    NotManagement {
        /// Raw frame-control word.
        word: u16,
    },
    /// A malformed information element.
    Ie(IeError),
    /// The body lacks a required element (e.g. a probe response without an
    /// SSID).
    MissingSsid,
    /// Authentication algorithm other than open-system.
    UnsupportedAuthAlgorithm {
        /// The offending algorithm number.
        algorithm: u16,
    },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated { needed, available } => {
                write!(f, "frame truncated: needed {needed} bytes, had {available}")
            }
            CodecError::NotManagement { word } => {
                write!(f, "frame control word {word:#06x} is not management")
            }
            CodecError::Ie(e) => write!(f, "bad information element: {e}"),
            CodecError::MissingSsid => write!(f, "frame body lacks an ssid element"),
            CodecError::UnsupportedAuthAlgorithm { algorithm } => {
                write!(f, "unsupported authentication algorithm {algorithm}")
            }
        }
    }
}

impl std::error::Error for CodecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CodecError::Ie(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IeError> for CodecError {
    fn from(e: IeError) -> Self {
        CodecError::Ie(e)
    }
}

const HEADER_LEN: usize = 24;

/// Little-endian writer helpers (the `bytes::BufMut` subset the codec used
/// before the workspace went dependency-free). Implemented by `Vec<u8>` for
/// real encoding and by [`LenSink`] for allocation-free length computation —
/// both run the same `encode_frame`, so lengths can never drift from bytes.
trait ByteSink {
    fn put_u8(&mut self, value: u8);
    fn put_u16_le(&mut self, value: u16);
    fn put_u64_le(&mut self, value: u64);
    fn put_slice(&mut self, src: &[u8]);
}

impl ByteSink for Vec<u8> {
    fn put_u8(&mut self, value: u8) {
        self.push(value);
    }

    fn put_u16_le(&mut self, value: u16) {
        self.extend_from_slice(&value.to_le_bytes());
    }

    fn put_u64_le(&mut self, value: u64) {
        self.extend_from_slice(&value.to_le_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Counts bytes instead of storing them (backs [`encoded_len`]).
struct LenSink(usize);

impl ByteSink for LenSink {
    fn put_u8(&mut self, _value: u8) {
        self.0 += 1;
    }

    fn put_u16_le(&mut self, _value: u16) {
        self.0 += 2;
    }

    fn put_u64_le(&mut self, _value: u64) {
        self.0 += 8;
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.0 += src.len();
    }
}

/// Little-endian reader helpers that advance a `&[u8]` cursor. Reads past
/// the end zero-fill instead of panicking; every call site bounds-checks
/// first (`HEADER_LEN` guard or [`need`]), so zero-filling is never
/// observable — it only keeps the library free of panic paths (ch-lint R3).
trait ByteSource {
    fn get_u16_le(&mut self) -> u16;
    fn get_u64_le(&mut self) -> u64;
    fn copy_to_slice(&mut self, dst: &mut [u8]);
}

impl ByteSource for &[u8] {
    fn get_u16_le(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        self.copy_to_slice(&mut raw);
        u16::from_le_bytes(raw)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_le_bytes(raw)
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        let take = dst.len().min(self.len());
        dst[..take].copy_from_slice(&self[..take]);
        dst[take..].fill(0);
        *self = &self[take..];
    }
}

/// Encodes a frame to wire bytes.
///
/// ```
/// use ch_wifi::{codec, mgmt::{MgmtFrame, ProbeRequest}, MacAddr};
/// let frame = MgmtFrame::ProbeRequest(ProbeRequest::broadcast(
///     MacAddr::new([2, 0, 0, 0, 0, 7]),
/// ));
/// let bytes = codec::encode(&frame);
/// assert!(bytes.len() >= 24);
/// ```
pub fn encode(frame: &MgmtFrame) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    encode_into(frame, &mut out);
    out
}

/// [`encode`] into a caller-owned buffer (cleared first).
///
/// The hot loops reuse one frame buffer per runner step: once the buffer has
/// grown to the largest frame it ever carries, encoding stops touching the
/// heap entirely — every write lands in already-reserved capacity.
///
/// ```
/// use ch_wifi::{codec, mgmt::{MgmtFrame, ProbeRequest}, MacAddr};
/// let frame = MgmtFrame::ProbeRequest(ProbeRequest::broadcast(
///     MacAddr::new([2, 0, 0, 0, 0, 7]),
/// ));
/// let mut buf = Vec::new();
/// codec::encode_into(&frame, &mut buf);
/// assert_eq!(buf, codec::encode(&frame));
/// ```
pub fn encode_into(frame: &MgmtFrame, out: &mut Vec<u8>) {
    out.clear();
    encode_frame(frame, out);
}

fn encode_frame<S: ByteSink>(frame: &MgmtFrame, out: &mut S) {
    let fc = FrameControl::mgmt(frame.subtype());
    out.put_u16_le(fc.to_word());
    out.put_u16_le(0); // duration
    let header = frame.header();
    out.put_slice(&header.addr1.octets());
    out.put_slice(&header.addr2.octets());
    out.put_slice(&header.addr3.octets());
    out.put_u16_le(header.sequence << 4);
    encode_body(frame, out);
}

/// `| id | len | ssid bytes |` — [`InformationElement::Ssid`] on the wire.
fn put_ssid_ie<S: ByteSink>(out: &mut S, ssid: &Ssid) {
    out.put_u8(element_id::SSID);
    out.put_u8(ssid.len() as u8);
    out.put_slice(ssid.as_bytes());
}

/// The canonical [`DEFAULT_RATES`] supported-rates element.
fn put_rates_ie<S: ByteSink>(out: &mut S) {
    out.put_u8(element_id::SUPPORTED_RATES);
    out.put_u8(DEFAULT_RATES.len() as u8);
    out.put_slice(&DEFAULT_RATES);
}

/// DS parameter set: the current channel.
fn put_ds_ie<S: ByteSink>(out: &mut S, channel: Channel) {
    out.put_u8(element_id::DS_PARAMETER);
    out.put_u8(1);
    out.put_u8(channel.number());
}

/// Compact RSN element, CCMP+PSK (matches `ProbeResponse::elements`).
fn put_rsn_ie<S: ByteSink>(out: &mut S) {
    out.put_u8(element_id::RSN);
    out.put_u8(3);
    out.put_u16_le(1); // version
    out.put_u8(0b11); // ccmp | psk << 1
}

fn encode_body<S: ByteSink>(frame: &MgmtFrame, out: &mut S) {
    match frame {
        MgmtFrame::ProbeRequest(p) => {
            put_ssid_ie(out, &p.ssid);
            put_rates_ie(out);
        }
        MgmtFrame::ProbeResponse(p) => {
            out.put_u64_le(0); // timestamp (filled by hardware in reality)
            out.put_u16_le(100); // beacon interval
            out.put_u16_le(p.capabilities.to_word());
            // Byte-for-byte what `p.elements()` would encode, minus the
            // per-frame element allocations.
            put_ssid_ie(out, &p.ssid);
            put_rates_ie(out);
            put_ds_ie(out, p.channel);
            if p.capabilities.privacy {
                put_rsn_ie(out);
            }
        }
        MgmtFrame::Beacon(b) => {
            out.put_u64_le(0);
            out.put_u16_le(b.interval_tu);
            out.put_u16_le(b.capabilities.to_word());
            put_ssid_ie(out, &b.ssid);
            put_rates_ie(out);
            put_ds_ie(out, b.channel);
        }
        MgmtFrame::Authentication(a) => {
            out.put_u16_le(0); // open system
            out.put_u16_le(a.transaction);
            out.put_u16_le(a.status as u16);
        }
        MgmtFrame::AssocRequest(a) => {
            out.put_u16_le(a.capabilities.to_word());
            out.put_u16_le(10); // listen interval
            put_ssid_ie(out, &a.ssid);
            put_rates_ie(out);
        }
        MgmtFrame::AssocResponse(a) => {
            out.put_u16_le(CapabilityInfo::open_ap().to_word());
            out.put_u16_le(a.status as u16);
            out.put_u16_le(a.association_id | 0xc000);
        }
        MgmtFrame::Deauthentication(d) => {
            out.put_u16_le(d.reason as u16);
        }
    }
}

/// Parses wire bytes into a frame.
///
/// # Errors
///
/// Any [`CodecError`] on truncated or malformed input.
pub fn parse(bytes: &[u8]) -> Result<MgmtFrame, CodecError> {
    if bytes.len() < HEADER_LEN {
        return Err(CodecError::Truncated {
            needed: HEADER_LEN,
            available: bytes.len(),
        });
    }
    let mut buf = bytes;
    let fc_word = buf.get_u16_le();
    let fc = FrameControl::from_word(fc_word).ok_or(CodecError::NotManagement { word: fc_word })?;
    let _duration = buf.get_u16_le();
    let addr1 = read_mac(&mut buf);
    let addr2 = read_mac(&mut buf);
    let addr3 = read_mac(&mut buf);
    let seq_ctl = buf.get_u16_le();
    let header = MgmtHeader::new(addr1, addr2, addr3, seq_ctl >> 4);
    parse_body(fc.subtype, header, buf)
}

fn read_mac(buf: &mut &[u8]) -> MacAddr {
    let mut octets = [0u8; 6];
    buf.copy_to_slice(&mut octets);
    MacAddr::new(octets)
}

fn need(buf: &[u8], needed: usize) -> Result<(), CodecError> {
    if buf.len() < needed {
        Err(CodecError::Truncated {
            needed: HEADER_LEN + needed,
            available: HEADER_LEN + buf.len(),
        })
    } else {
        Ok(())
    }
}

fn parse_body(
    subtype: MgmtSubtype,
    header: MgmtHeader,
    mut buf: &[u8],
) -> Result<MgmtFrame, CodecError> {
    match subtype {
        MgmtSubtype::ProbeRequest => {
            let elements = InformationElement::parse_all(buf)?;
            let ssid = InformationElement::find_ssid(&elements)
                .cloned()
                .unwrap_or_else(Ssid::wildcard);
            Ok(MgmtFrame::ProbeRequest(ProbeRequest {
                source: header.addr2,
                ssid,
            }))
        }
        MgmtSubtype::ProbeResponse => {
            need(buf, 12)?;
            let _timestamp = buf.get_u64_le();
            let _interval = buf.get_u16_le();
            let capabilities = CapabilityInfo::from_word(buf.get_u16_le());
            let elements = InformationElement::parse_all(buf)?;
            let ssid = InformationElement::find_ssid(&elements)
                .cloned()
                .ok_or(CodecError::MissingSsid)?;
            let channel = elements
                .iter()
                .find_map(|e| match e {
                    InformationElement::DsParameter(c) => Some(*c),
                    _ => None,
                })
                .unwrap_or_default();
            Ok(MgmtFrame::ProbeResponse(ProbeResponse {
                bssid: header.addr2,
                destination: header.addr1,
                ssid,
                capabilities,
                channel,
            }))
        }
        MgmtSubtype::Beacon => {
            need(buf, 12)?;
            let _timestamp = buf.get_u64_le();
            let interval_tu = buf.get_u16_le();
            let capabilities = CapabilityInfo::from_word(buf.get_u16_le());
            let elements = InformationElement::parse_all(buf)?;
            let ssid = InformationElement::find_ssid(&elements)
                .cloned()
                .ok_or(CodecError::MissingSsid)?;
            let channel = elements
                .iter()
                .find_map(|e| match e {
                    InformationElement::DsParameter(c) => Some(*c),
                    _ => None,
                })
                .unwrap_or_default();
            Ok(MgmtFrame::Beacon(Beacon {
                bssid: header.addr2,
                ssid,
                capabilities,
                channel,
                interval_tu,
            }))
        }
        MgmtSubtype::Authentication => {
            need(buf, 6)?;
            let algorithm = buf.get_u16_le();
            if algorithm != 0 {
                return Err(CodecError::UnsupportedAuthAlgorithm { algorithm });
            }
            let transaction = buf.get_u16_le();
            let status = StatusCode::from_word(buf.get_u16_le());
            Ok(MgmtFrame::Authentication(Authentication {
                source: header.addr2,
                destination: header.addr1,
                transaction,
                status,
            }))
        }
        MgmtSubtype::AssocRequest => {
            need(buf, 4)?;
            let capabilities = CapabilityInfo::from_word(buf.get_u16_le());
            let _listen = buf.get_u16_le();
            let elements = InformationElement::parse_all(buf)?;
            let ssid = InformationElement::find_ssid(&elements)
                .cloned()
                .ok_or(CodecError::MissingSsid)?;
            Ok(MgmtFrame::AssocRequest(AssocRequest {
                source: header.addr2,
                bssid: header.addr1,
                ssid,
                capabilities,
            }))
        }
        MgmtSubtype::AssocResponse => {
            need(buf, 6)?;
            let _caps = buf.get_u16_le();
            let status = StatusCode::from_word(buf.get_u16_le());
            let association_id = buf.get_u16_le() & 0x3fff;
            Ok(MgmtFrame::AssocResponse(AssocResponse {
                bssid: header.addr2,
                destination: header.addr1,
                status,
                association_id,
            }))
        }
        MgmtSubtype::Deauthentication | MgmtSubtype::Disassoc => {
            need(buf, 2)?;
            let reason = ReasonCode::from_word(buf.get_u16_le());
            Ok(MgmtFrame::Deauthentication(Deauthentication {
                source: header.addr2,
                destination: header.addr1,
                reason,
            }))
        }
    }
}

/// The encoded length of a frame without allocating (used by airtime
/// calculations in [`crate::timing`]).
pub fn encoded_len(frame: &MgmtFrame) -> usize {
    // Run the real encoder against a counting sink: zero allocations, and
    // the length can never drift from what `encode` produces.
    let mut sink = LenSink(0);
    encode_frame(frame, &mut sink);
    sink.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::Channel;
    use proptest::prelude::*;

    fn mac(i: u8) -> MacAddr {
        MacAddr::new([2, 0, 0, 0, 0, i])
    }

    fn sample_frames() -> Vec<MgmtFrame> {
        vec![
            MgmtFrame::ProbeRequest(ProbeRequest::broadcast(mac(1))),
            MgmtFrame::ProbeRequest(ProbeRequest::direct(
                mac(1),
                Ssid::new("7-Eleven Free WiFi").unwrap(),
            )),
            MgmtFrame::ProbeResponse(ProbeResponse::open_lure(
                mac(9),
                mac(1),
                Ssid::new("#HKAirport Free WiFi").unwrap(),
                Channel::new(6).unwrap(),
            )),
            MgmtFrame::Beacon(Beacon::open(
                mac(9),
                Ssid::new("Free Public WiFi").unwrap(),
                Channel::new(11).unwrap(),
            )),
            MgmtFrame::Authentication(Authentication::request(mac(1), mac(9))),
            MgmtFrame::Authentication(Authentication::response(
                mac(9),
                mac(1),
                StatusCode::Success,
            )),
            MgmtFrame::AssocRequest(AssocRequest {
                source: mac(1),
                bssid: mac(9),
                ssid: Ssid::new("CSL").unwrap(),
                capabilities: CapabilityInfo::open_ap(),
            }),
            MgmtFrame::AssocResponse(AssocResponse {
                bssid: mac(9),
                destination: mac(1),
                status: StatusCode::Success,
                association_id: 1,
            }),
            MgmtFrame::Deauthentication(Deauthentication {
                source: mac(9),
                destination: mac(1),
                reason: ReasonCode::PrevAuthExpired,
            }),
        ]
    }

    #[test]
    fn all_frame_kinds_roundtrip() {
        for frame in sample_frames() {
            let bytes = encode(&frame);
            let parsed = parse(&bytes).unwrap_or_else(|e| panic!("{frame}: {e}"));
            assert_eq!(parsed, frame, "roundtrip failed for {frame}");
        }
    }

    #[test]
    fn truncated_header_rejected() {
        let err = parse(&[0u8; 10]).unwrap_err();
        assert!(matches!(err, CodecError::Truncated { .. }));
    }

    #[test]
    fn truncated_body_rejected() {
        let frame = MgmtFrame::Authentication(Authentication::request(mac(1), mac(9)));
        let bytes = encode(&frame);
        let err = parse(&bytes[..bytes.len() - 3]).unwrap_err();
        assert!(matches!(err, CodecError::Truncated { .. }), "{err:?}");
    }

    #[test]
    fn data_frames_rejected() {
        let mut bytes = encode(&MgmtFrame::ProbeRequest(ProbeRequest::broadcast(mac(1))));
        bytes[0] = 0b0000_1000; // type = data
        let err = parse(&bytes).unwrap_err();
        assert!(matches!(err, CodecError::NotManagement { .. }));
    }

    #[test]
    fn probe_response_without_ssid_rejected() {
        // Hand-build a probe response whose body has only fixed fields.
        let mut bytes = Vec::new();
        bytes.put_u16_le(FrameControl::mgmt(MgmtSubtype::ProbeResponse).to_word());
        bytes.put_u16_le(0);
        for m in [mac(1), mac(9), mac(9)] {
            bytes.put_slice(&m.octets());
        }
        bytes.put_u16_le(0);
        bytes.put_u64_le(0);
        bytes.put_u16_le(100);
        bytes.put_u16_le(CapabilityInfo::open_ap().to_word());
        assert_eq!(parse(&bytes).unwrap_err(), CodecError::MissingSsid);
    }

    #[test]
    fn shared_key_auth_rejected() {
        let frame = MgmtFrame::Authentication(Authentication::request(mac(1), mac(9)));
        let mut bytes = encode(&frame);
        bytes[HEADER_LEN] = 1; // shared-key algorithm
        assert_eq!(
            parse(&bytes).unwrap_err(),
            CodecError::UnsupportedAuthAlgorithm { algorithm: 1 }
        );
    }

    #[test]
    fn privacy_bit_survives_roundtrip() {
        let mut resp = ProbeResponse::open_lure(
            mac(9),
            mac(1),
            Ssid::new("Secured").unwrap(),
            Channel::default(),
        );
        resp.capabilities = CapabilityInfo::protected_ap();
        let parsed = parse(&encode(&MgmtFrame::ProbeResponse(resp.clone()))).unwrap();
        match parsed {
            MgmtFrame::ProbeResponse(p) => assert!(p.capabilities.privacy),
            other => panic!("wrong kind {other}"),
        }
    }

    #[test]
    fn encoded_len_matches_encode() {
        for frame in sample_frames() {
            assert_eq!(encoded_len(&frame), encode(&frame).len());
        }
    }

    #[test]
    fn encode_into_reuses_buffer_and_matches_encode() {
        // One buffer across all frame kinds: each encode_into must clear
        // the previous frame and produce exactly what `encode` would.
        let mut buf = Vec::new();
        for frame in sample_frames() {
            encode_into(&frame, &mut buf);
            assert_eq!(buf, encode(&frame), "encode_into mismatch for {frame}");
        }
    }

    #[test]
    fn put_ie_helpers_match_element_encoding() {
        // The direct IE writers must stay byte-identical to the
        // InformationElement encoding they replaced on the hot path.
        let ssid = Ssid::new("CSL").unwrap();
        let ch = Channel::new(6).unwrap();
        let mut direct = Vec::new();
        put_ssid_ie(&mut direct, &ssid);
        put_rates_ie(&mut direct);
        put_ds_ie(&mut direct, ch);
        put_rsn_ie(&mut direct);
        let mut via_elements = Vec::new();
        for e in [
            InformationElement::Ssid(ssid.clone()),
            InformationElement::SupportedRates(DEFAULT_RATES.to_vec()),
            InformationElement::DsParameter(ch),
            InformationElement::Rsn(crate::ie::RsnInfo {
                ccmp: true,
                psk: true,
            }),
        ] {
            e.encode_into(&mut via_elements);
        }
        assert_eq!(direct, via_elements);
    }

    #[test]
    fn parse_garbage_never_panics() {
        // Deterministic pseudo-garbage sweep.
        let mut state = 0x12345u64;
        for len in 0..128usize {
            let bytes: Vec<u8> = (0..len)
                .map(|_| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    (state >> 33) as u8
                })
                .collect();
            let _ = parse(&bytes);
        }
    }

    proptest! {
        #[test]
        fn prop_probe_request_roundtrip(
            octets in proptest::array::uniform6(0u8..),
            ssid in "[ -~]{0,32}",
        ) {
            let frame = MgmtFrame::ProbeRequest(ProbeRequest {
                source: MacAddr::new(octets),
                ssid: Ssid::new(ssid).unwrap(),
            });
            prop_assert_eq!(parse(&encode(&frame)).unwrap(), frame);
        }

        #[test]
        fn prop_parse_arbitrary_bytes_no_panic(
            bytes in proptest::collection::vec(any::<u8>(), 0..200),
        ) {
            let _ = parse(&bytes);
        }

        #[test]
        fn prop_lure_roundtrip(
            ssid in "[ -~]{1,32}",
            ch in 1u8..=14,
        ) {
            let frame = MgmtFrame::ProbeResponse(ProbeResponse::open_lure(
                mac(9),
                mac(1),
                Ssid::new(ssid).unwrap(),
                Channel::new(ch).unwrap(),
            ));
            prop_assert_eq!(parse(&encode(&frame)).unwrap(), frame);
        }
    }
}

//! The four evaluation venues.
//!
//! Each venue is a template: a footprint, the attacker's perch, how people
//! move through (transit vs dwell mix), how fast arrivals come at each hour
//! and in what group sizes. The concrete numbers are calibrated so that the
//! *client volumes* and *residence times* land in the ranges the paper
//! reports (e.g. ~2,500 clients through the passage in the 8–9 am test,
//! 30-minute canteen sittings vs ~45-second passage transits).

use ch_sim::{Position, Rect, SimDuration, SimRng};

use crate::profile::TimeOfDayProfile;

/// Which of the paper's venues to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VenueKind {
    /// §III/§V subway passage: a corridor of fast-moving commuters.
    SubwayPassage,
    /// §III/§V canteen: seated diners, long dwell.
    Canteen,
    /// §V shopping centre: hybrid browse/walk.
    ShoppingCenter,
    /// §V railway station: hybrid wait/transit.
    RailwayStation,
}

impl VenueKind {
    /// All four venues in Fig. 5 order.
    pub const ALL: [VenueKind; 4] = [
        VenueKind::SubwayPassage,
        VenueKind::Canteen,
        VenueKind::ShoppingCenter,
        VenueKind::RailwayStation,
    ];

    /// Human-readable name, as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            VenueKind::SubwayPassage => "subway passage",
            VenueKind::Canteen => "canteen",
            VenueKind::ShoppingCenter => "shopping center",
            VenueKind::RailwayStation => "railway station",
        }
    }

    /// The calibrated template for this venue.
    pub fn template(self) -> VenueTemplate {
        match self {
            VenueKind::SubwayPassage => VenueTemplate {
                kind: self,
                footprint: Rect::from_size(120.0, 10.0),
                attacker: Position::new(60.0, 5.0),
                profile: TimeOfDayProfile::commuter(),
                // ~2550 clients passed in the 8-9am test (Fig. 5a); the
                // commuter peak multiplier is 2.4.
                base_groups_per_hour: 800.0,
                movement: MovementMix {
                    transit_fraction: 1.0,
                    walk_speed_mps: (1.0, 1.7),
                    dwell: (SimDuration::from_secs(0), SimDuration::from_secs(0)),
                },
                group_sizes: GroupSizeDist::new([0.72, 0.20, 0.06, 0.02]),
                rush_group_sizes: GroupSizeDist::new([0.58, 0.28, 0.10, 0.04]),
            },
            VenueKind::Canteen => VenueTemplate {
                kind: self,
                footprint: Rect::from_size(45.0, 30.0),
                attacker: Position::new(22.5, 15.0),
                profile: TimeOfDayProfile::mealtime(),
                base_groups_per_hour: 330.0,
                movement: MovementMix {
                    transit_fraction: 0.05,
                    walk_speed_mps: (0.8, 1.3),
                    dwell: (SimDuration::from_mins(12), SimDuration::from_mins(40)),
                },
                group_sizes: GroupSizeDist::new([0.34, 0.36, 0.19, 0.11]),
                rush_group_sizes: GroupSizeDist::new([0.26, 0.38, 0.22, 0.14]),
            },
            VenueKind::ShoppingCenter => VenueTemplate {
                kind: self,
                footprint: Rect::from_size(80.0, 60.0),
                attacker: Position::new(40.0, 30.0),
                profile: TimeOfDayProfile::retail(),
                base_groups_per_hour: 420.0,
                movement: MovementMix {
                    transit_fraction: 0.55,
                    walk_speed_mps: (0.7, 1.4),
                    dwell: (SimDuration::from_mins(3), SimDuration::from_mins(18)),
                },
                group_sizes: GroupSizeDist::new([0.46, 0.32, 0.14, 0.08]),
                rush_group_sizes: GroupSizeDist::new([0.40, 0.34, 0.16, 0.10]),
            },
            VenueKind::RailwayStation => VenueTemplate {
                kind: self,
                footprint: Rect::from_size(100.0, 50.0),
                attacker: Position::new(50.0, 25.0),
                profile: TimeOfDayProfile::terminus(),
                base_groups_per_hour: 520.0,
                movement: MovementMix {
                    transit_fraction: 0.45,
                    walk_speed_mps: (0.9, 1.6),
                    dwell: (SimDuration::from_mins(4), SimDuration::from_mins(20)),
                },
                group_sizes: GroupSizeDist::new([0.52, 0.28, 0.13, 0.07]),
                rush_group_sizes: GroupSizeDist::new([0.44, 0.32, 0.15, 0.09]),
            },
        }
    }
}

/// How people move through a venue.
#[derive(Debug, Clone, PartialEq)]
pub struct MovementMix {
    /// Fraction of visitors who walk straight through (vs dwell).
    pub transit_fraction: f64,
    /// Walking-speed range in m/s.
    pub walk_speed_mps: (f64, f64),
    /// Dwell-duration range for non-transit visitors.
    pub dwell: (SimDuration, SimDuration),
}

/// Distribution over group sizes 1–4.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupSizeDist {
    probs: [f64; 4],
}

impl GroupSizeDist {
    /// Creates a distribution from probabilities for sizes 1..=4.
    ///
    /// # Panics
    ///
    /// Panics unless the probabilities are non-negative and sum to ~1.
    pub fn new(probs: [f64; 4]) -> Self {
        let sum: f64 = probs.iter().sum();
        assert!(
            probs.iter().all(|p| *p >= 0.0) && (sum - 1.0).abs() < 1e-9,
            "group-size probabilities must sum to 1, got {probs:?}"
        );
        GroupSizeDist { probs }
    }

    /// Draws a group size in 1..=4.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        rng.weighted_index(&self.probs)
            .expect("probabilities sum to 1")
            + 1
    }

    /// Expected group size.
    pub fn mean(&self) -> f64 {
        self.probs
            .iter()
            .enumerate()
            .map(|(i, p)| (i + 1) as f64 * p)
            .sum()
    }

    /// Probability that a group has more than one member.
    pub fn companionship(&self) -> f64 {
        1.0 - self.probs[0]
    }
}

/// A fully instantiated venue description.
#[derive(Debug, Clone, PartialEq)]
pub struct VenueTemplate {
    /// Which venue this is.
    pub kind: VenueKind,
    /// Local footprint in metres.
    pub footprint: Rect,
    /// Attacker position (centre of the venue, per the deployments).
    pub attacker: Position,
    /// Hourly arrival-intensity curve.
    pub profile: TimeOfDayProfile,
    /// Group arrivals per hour at multiplier 1.0.
    pub base_groups_per_hour: f64,
    /// Movement behaviour.
    pub movement: MovementMix,
    /// Group sizes off-peak.
    pub group_sizes: GroupSizeDist,
    /// Group sizes during rush hours (more companions, §V-A).
    pub rush_group_sizes: GroupSizeDist,
}

impl VenueTemplate {
    /// Group arrival rate (groups/hour) at wall-clock `hour`.
    pub fn groups_per_hour(&self, hour: usize) -> f64 {
        self.base_groups_per_hour * self.profile.multiplier(hour)
    }

    /// The group-size distribution in force at `hour`.
    pub fn group_sizes_at(&self, hour: usize) -> &GroupSizeDist {
        if self.profile.is_rush_hour(hour) {
            &self.rush_group_sizes
        } else {
            &self.group_sizes
        }
    }

    /// Entry point for a new group (west end of corridors, a random edge
    /// elsewhere).
    pub fn entry_point(&self, rng: &mut SimRng) -> Position {
        match self.kind {
            VenueKind::SubwayPassage => Position::new(
                self.footprint.min.x,
                rng.range_f64(self.footprint.min.y, self.footprint.max.y),
            ),
            _ => {
                // A random point on the footprint boundary.
                let p = self.footprint.sample(rng);
                if rng.chance(0.5) {
                    Position::new(
                        if rng.chance(0.5) {
                            self.footprint.min.x
                        } else {
                            self.footprint.max.x
                        },
                        p.y,
                    )
                } else {
                    Position::new(
                        p.x,
                        if rng.chance(0.5) {
                            self.footprint.min.y
                        } else {
                            self.footprint.max.y
                        },
                    )
                }
            }
        }
    }

    /// Exit point for a group that entered at `entry`.
    pub fn exit_point(&self, entry: Position, rng: &mut SimRng) -> Position {
        match self.kind {
            VenueKind::SubwayPassage => Position::new(
                self.footprint.max.x,
                rng.range_f64(self.footprint.min.y, self.footprint.max.y),
            ),
            _ => {
                // Leave via a different random boundary point.
                let mut exit = self.entry_point(rng);
                if exit.distance_to(entry) < 1.0 {
                    exit =
                        Position::new(self.footprint.max.x - exit.x + self.footprint.min.x, exit.y);
                }
                exit
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passage_is_pure_transit_canteen_is_not() {
        let passage = VenueKind::SubwayPassage.template();
        let canteen = VenueKind::Canteen.template();
        assert_eq!(passage.movement.transit_fraction, 1.0);
        assert!(canteen.movement.transit_fraction < 0.1);
        assert!(canteen.movement.dwell.1 >= SimDuration::from_mins(30));
    }

    #[test]
    fn hybrid_venues_mix() {
        for kind in [VenueKind::ShoppingCenter, VenueKind::RailwayStation] {
            let t = kind.template();
            assert!(
                (0.2..0.8).contains(&t.movement.transit_fraction),
                "{}: {}",
                kind.name(),
                t.movement.transit_fraction
            );
        }
    }

    #[test]
    fn passage_peak_volume_matches_paper_scale() {
        let t = VenueKind::SubwayPassage.template();
        let peak_groups = t.groups_per_hour(8);
        let mean_size = t.group_sizes_at(8).mean();
        let people = peak_groups * mean_size;
        // Fig. 5(a): 2562 clients in the 8-9am test.
        assert!(
            (2_000.0..3_500.0).contains(&people),
            "peak passage flow {people}"
        );
    }

    #[test]
    fn rush_hours_have_more_companionship() {
        for kind in VenueKind::ALL {
            let t = kind.template();
            assert!(
                t.rush_group_sizes.companionship() > t.group_sizes.companionship(),
                "{}",
                kind.name()
            );
        }
    }

    #[test]
    fn group_size_sampling_in_range() {
        let dist = GroupSizeDist::new([0.25, 0.25, 0.25, 0.25]);
        let mut rng = SimRng::seed_from(5);
        for _ in 0..1_000 {
            let s = dist.sample(&mut rng);
            assert!((1..=4).contains(&s));
        }
        assert!((dist.mean() - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_group_dist_rejected() {
        let _ = GroupSizeDist::new([0.5, 0.5, 0.5, 0.5]);
    }

    #[test]
    fn passage_entries_west_exits_east() {
        let t = VenueKind::SubwayPassage.template();
        let mut rng = SimRng::seed_from(7);
        for _ in 0..50 {
            let entry = t.entry_point(&mut rng);
            assert_eq!(entry.x, t.footprint.min.x);
            let exit = t.exit_point(entry, &mut rng);
            assert_eq!(exit.x, t.footprint.max.x);
        }
    }

    #[test]
    fn entries_on_boundary_for_open_venues() {
        let t = VenueKind::ShoppingCenter.template();
        let mut rng = SimRng::seed_from(8);
        for _ in 0..100 {
            let e = t.entry_point(&mut rng);
            let on_x = e.x == t.footprint.min.x || e.x == t.footprint.max.x;
            let on_y = e.y == t.footprint.min.y || e.y == t.footprint.max.y;
            assert!(on_x || on_y, "{e} not on boundary");
            assert!(t.footprint.contains(e));
        }
    }

    #[test]
    fn attacker_inside_footprint() {
        for kind in VenueKind::ALL {
            let t = kind.template();
            assert!(t.footprint.contains(t.attacker), "{}", kind.name());
        }
    }
}

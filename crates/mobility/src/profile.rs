//! Time-of-day arrival-intensity profiles.
//!
//! Fig. 5's client counts show "salient temporal pattern": two commuter
//! peaks in the subway passage (8–9 am, 6–7 pm), three meal peaks in the
//! canteen, and broader afternoon swells at the shopping centre and railway
//! station. Profiles here are 24 hourly multipliers around a mean of ~1.0;
//! a venue's base arrival rate is scaled by the multiplier of the current
//! hour.

/// A 24-hour arrival-intensity curve.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeOfDayProfile {
    hourly: [f64; 24],
}

impl TimeOfDayProfile {
    /// Builds a profile from 24 non-negative hourly multipliers.
    ///
    /// # Panics
    ///
    /// Panics if any multiplier is negative or non-finite.
    pub fn new(hourly: [f64; 24]) -> Self {
        assert!(
            hourly.iter().all(|m| m.is_finite() && *m >= 0.0),
            "profile multipliers must be finite and non-negative"
        );
        TimeOfDayProfile { hourly }
    }

    /// A flat profile (every hour identical).
    pub fn flat() -> Self {
        TimeOfDayProfile::new([1.0; 24])
    }

    /// Commuter profile: sharp peaks at 8–9 am and 6–7 pm.
    pub fn commuter() -> Self {
        let mut h = [0.25; 24];
        for (hour, v) in [
            (6, 0.8),
            (7, 1.6),
            (8, 2.4),
            (9, 1.3),
            (10, 0.8),
            (11, 0.7),
            (12, 0.9),
            (13, 0.8),
            (14, 0.7),
            (15, 0.7),
            (16, 0.9),
            (17, 1.5),
            (18, 2.2),
            (19, 1.4),
            (20, 0.8),
            (21, 0.5),
        ] {
            h[hour] = v;
        }
        TimeOfDayProfile::new(h)
    }

    /// Canteen profile: breakfast, lunch and dinner peaks.
    pub fn mealtime() -> Self {
        let mut h = [0.1; 24];
        for (hour, v) in [
            (7, 0.8),
            (8, 1.5),
            (9, 0.7),
            (10, 0.4),
            (11, 1.0),
            (12, 2.4),
            (13, 1.9),
            (14, 0.6),
            (15, 0.4),
            (16, 0.4),
            (17, 1.0),
            (18, 2.1),
            (19, 1.5),
            (20, 0.6),
        ] {
            h[hour] = v;
        }
        TimeOfDayProfile::new(h)
    }

    /// Shopping-centre profile: slow morning, strong afternoon/evening.
    pub fn retail() -> Self {
        let mut h = [0.1; 24];
        for (hour, v) in [
            (8, 0.4),
            (9, 0.6),
            (10, 0.9),
            (11, 1.1),
            (12, 1.4),
            (13, 1.4),
            (14, 1.3),
            (15, 1.4),
            (16, 1.5),
            (17, 1.7),
            (18, 1.8),
            (19, 1.6),
            (20, 1.1),
            (21, 0.6),
        ] {
            h[hour] = v;
        }
        TimeOfDayProfile::new(h)
    }

    /// Railway-station profile: commuter peaks plus steady midday travel.
    pub fn terminus() -> Self {
        let mut h = [0.2; 24];
        for (hour, v) in [
            (6, 0.7),
            (7, 1.4),
            (8, 2.0),
            (9, 1.2),
            (10, 1.0),
            (11, 1.0),
            (12, 1.1),
            (13, 1.0),
            (14, 1.0),
            (15, 1.0),
            (16, 1.2),
            (17, 1.7),
            (18, 2.0),
            (19, 1.4),
            (20, 0.9),
            (21, 0.6),
        ] {
            h[hour] = v;
        }
        TimeOfDayProfile::new(h)
    }

    /// The multiplier for a wall-clock hour (0–23; values ≥ 24 wrap).
    pub fn multiplier(&self, hour: usize) -> f64 {
        self.hourly[hour % 24]
    }

    /// The hour (8..20) with the largest multiplier — "the" rush hour of a
    /// daytime deployment.
    pub fn peak_daytime_hour(&self) -> usize {
        (8..20)
            .max_by(|&a, &b| {
                self.hourly[a]
                    .partial_cmp(&self.hourly[b])
                    .expect("multipliers are finite")
            })
            .expect("range non-empty")
    }

    /// `true` if `hour` is within 20 % of the daytime peak — the "rush
    /// hour" predicate used when reporting Fig. 5/6 observations.
    pub fn is_rush_hour(&self, hour: usize) -> bool {
        self.multiplier(hour) >= 0.8 * self.hourly[self.peak_daytime_hour()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commuter_has_two_peaks() {
        let p = TimeOfDayProfile::commuter();
        assert!(p.multiplier(8) > p.multiplier(10));
        assert!(p.multiplier(18) > p.multiplier(15));
        // Morning peak is the daytime max.
        assert_eq!(p.peak_daytime_hour(), 8);
        assert!(p.is_rush_hour(8));
        assert!(p.is_rush_hour(18));
        assert!(!p.is_rush_hour(14));
    }

    #[test]
    fn mealtime_has_three_peaks() {
        let p = TimeOfDayProfile::mealtime();
        for peak in [8, 12, 18] {
            assert!(
                p.multiplier(peak) > p.multiplier(peak + 2),
                "hour {peak} should be a local peak"
            );
        }
    }

    #[test]
    fn retail_ramps_into_evening() {
        let p = TimeOfDayProfile::retail();
        assert!(p.multiplier(18) > p.multiplier(9));
    }

    #[test]
    fn flat_is_flat() {
        let p = TimeOfDayProfile::flat();
        for h in 0..24 {
            assert_eq!(p.multiplier(h), 1.0);
        }
        assert!(p.is_rush_hour(13)); // everything ties at the peak
    }

    #[test]
    fn multiplier_wraps() {
        let p = TimeOfDayProfile::commuter();
        assert_eq!(p.multiplier(26), p.multiplier(2));
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_multiplier_rejected() {
        let mut h = [1.0; 24];
        h[3] = -0.5;
        let _ = TimeOfDayProfile::new(h);
    }
}

//! Per-person trajectories.
//!
//! A [`Visit`] is one person's passage through the venue: an entry time, an
//! exit time, and a [`MotionPath`] that can be sampled at any instant. The
//! scenario runner samples positions at scan times to decide whether a
//! phone is in radio range of the attacker — which is exactly how mobility
//! turns into "how many SSIDs can be tried on this client" (§III-C).

use ch_sim::{Position, SimDuration, SimRng, SimTime};

use crate::arrival::GroupArrival;
use crate::venue::VenueTemplate;

/// How one person moves during their visit.
#[derive(Debug, Clone, PartialEq)]
pub enum MotionPath {
    /// Walks a straight line from `from` to `to` over the whole visit.
    Transit {
        /// Entry position.
        from: Position,
        /// Exit position.
        to: Position,
    },
    /// Walks in, sits at `seat`, walks out; the walking legs take
    /// `walk_leg` each.
    Dwell {
        /// Entry position.
        from: Position,
        /// Seated position.
        seat: Position,
        /// Exit position.
        to: Position,
        /// Duration of each walking leg.
        walk_leg: SimDuration,
    },
}

/// One person's presence in the venue.
#[derive(Debug, Clone, PartialEq)]
pub struct Visit {
    /// The group this person arrived with.
    pub group_id: u32,
    /// When the person enters the venue.
    pub enter_at: SimTime,
    /// When the person leaves.
    pub exit_at: SimTime,
    /// Their trajectory.
    pub path: MotionPath,
}

impl Visit {
    /// The person's position at `t`, or `None` if they are not in the
    /// venue at that instant.
    pub fn position_at(&self, t: SimTime) -> Option<Position> {
        if t < self.enter_at || t > self.exit_at {
            return None;
        }
        let elapsed = t.since(self.enter_at);
        let total = self.exit_at.since(self.enter_at);
        Some(match &self.path {
            MotionPath::Transit { from, to } => {
                let frac = if total.is_zero() {
                    1.0
                } else {
                    elapsed.as_secs_f64() / total.as_secs_f64()
                };
                from.lerp(*to, frac)
            }
            MotionPath::Dwell {
                from,
                seat,
                to,
                walk_leg,
            } => {
                let leg = *walk_leg;
                if elapsed < leg {
                    let frac = elapsed.as_secs_f64() / leg.as_secs_f64().max(1e-9);
                    from.lerp(*seat, frac)
                } else if total.saturating_sub(elapsed) < leg {
                    let out = total - elapsed;
                    let frac = 1.0 - out.as_secs_f64() / leg.as_secs_f64().max(1e-9);
                    seat.lerp(*to, frac)
                } else {
                    *seat
                }
            }
        })
    }

    /// Duration of the visit.
    pub fn duration(&self) -> SimDuration {
        self.exit_at.since(self.enter_at)
    }

    /// `true` while walking-through visits are moving at `t` (dwellers
    /// count as static while seated).
    pub fn is_moving_at(&self, t: SimTime) -> bool {
        match &self.path {
            MotionPath::Transit { .. } => self.position_at(t).is_some(),
            MotionPath::Dwell { walk_leg, .. } => {
                if t < self.enter_at || t > self.exit_at {
                    return false;
                }
                let elapsed = t.since(self.enter_at);
                let total = self.duration();
                elapsed < *walk_leg || total.saturating_sub(elapsed) < *walk_leg
            }
        }
    }
}

trait SaturatingSub {
    fn saturating_sub(self, other: Self) -> Self;
}

impl SaturatingSub for SimDuration {
    fn saturating_sub(self, other: Self) -> Self {
        if other >= self {
            SimDuration::ZERO
        } else {
            self - other
        }
    }
}

/// Expands a [`GroupArrival`] into per-person [`Visit`]s.
///
/// Group members enter within a few seconds of each other, follow similar
/// paths, and (for dwellers) sit together — which is what gives a *fresh*
/// SSID hit its predictive power over companions (§IV-A).
pub fn visits_for_group(
    venue: &VenueTemplate,
    group: &GroupArrival,
    rng: &mut SimRng,
) -> Vec<Visit> {
    let entry = venue.entry_point(rng);
    let exit = venue.exit_point(entry, rng);
    let is_transit = rng.chance(venue.movement.transit_fraction);
    let speed = rng.range_f64(
        venue.movement.walk_speed_mps.0,
        venue.movement.walk_speed_mps.1,
    );
    // The group shares one table; members sit within a metre of it.
    let table = Position::new(
        rng.range_f64(venue.footprint.min.x, venue.footprint.max.x),
        rng.range_f64(venue.footprint.min.y, venue.footprint.max.y),
    );

    let mut visits = Vec::with_capacity(group.size);
    for member in 0..group.size {
        // Companions trail the leader by a couple of seconds and walk at
        // the group's pace.
        let stagger = SimDuration::from_secs_f64(member as f64 * rng.range_f64(0.5, 2.0));
        let enter_at = group.arrive_at + stagger;
        if is_transit {
            let distance = entry.distance_to(exit).max(1.0);
            let travel = SimDuration::from_secs_f64(distance / speed);
            visits.push(Visit {
                group_id: group.group_id,
                enter_at,
                exit_at: enter_at + travel,
                path: MotionPath::Transit {
                    from: entry,
                    to: exit,
                },
            });
        } else {
            let seat = venue.footprint.clamp(Position::new(
                table.x + rng.range_f64(-1.0, 1.0),
                table.y + rng.range_f64(-1.0, 1.0),
            ));
            let (dwell_min, dwell_max) = venue.movement.dwell;
            let dwell = if dwell_max > dwell_min {
                let span = (dwell_max - dwell_min).as_secs_f64();
                dwell_min + SimDuration::from_secs_f64(rng.range_f64(0.0, span))
            } else {
                dwell_min
            };
            let walk_leg = SimDuration::from_secs_f64(entry.distance_to(seat).max(1.0) / speed);
            visits.push(Visit {
                group_id: group.group_id,
                enter_at,
                exit_at: enter_at + walk_leg + dwell + walk_leg,
                path: MotionPath::Dwell {
                    from: entry,
                    seat,
                    to: exit,
                    walk_leg,
                },
            });
        }
    }
    visits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::venue::VenueKind;

    fn group(size: usize) -> GroupArrival {
        GroupArrival {
            group_id: 1,
            arrive_at: SimTime::from_mins(5),
            size,
        }
    }

    #[test]
    fn transit_visit_crosses_the_passage() {
        let venue = VenueKind::SubwayPassage.template();
        let mut rng = SimRng::seed_from(1);
        let visits = visits_for_group(&venue, &group(1), &mut rng);
        assert_eq!(visits.len(), 1);
        let v = &visits[0];
        // 120 m at 1.0–1.7 m/s: between ~70 s and 2 min.
        assert!(
            v.duration() >= SimDuration::from_secs(60),
            "{}",
            v.duration()
        );
        assert!(
            v.duration() <= SimDuration::from_secs(130),
            "{}",
            v.duration()
        );
        let start = v.position_at(v.enter_at).unwrap();
        let end = v.position_at(v.exit_at).unwrap();
        assert_eq!(start.x, venue.footprint.min.x);
        assert_eq!(end.x, venue.footprint.max.x);
        // Midway they are strictly inside.
        let mid = v.position_at(v.enter_at + v.duration() / 2).unwrap();
        assert!(mid.x > start.x && mid.x < end.x);
        assert!(v.is_moving_at(v.enter_at + v.duration() / 2));
    }

    #[test]
    fn dwell_visit_sits_still() {
        let venue = VenueKind::Canteen.template();
        let mut rng = SimRng::seed_from(2);
        let visits = visits_for_group(&venue, &group(1), &mut rng);
        let v = &visits[0];
        assert!(v.duration() >= SimDuration::from_mins(12));
        // Sample mid-visit twice: seated people do not move.
        let t1 = v.enter_at + v.duration() / 3;
        let t2 = v.enter_at + v.duration() / 2;
        let p1 = v.position_at(t1).unwrap();
        let p2 = v.position_at(t2).unwrap();
        assert_eq!(p1, p2, "seated visitor moved");
        assert!(!v.is_moving_at(t1));
        assert!(venue.footprint.contains(p1));
    }

    #[test]
    fn outside_visit_window_position_is_none() {
        let venue = VenueKind::Canteen.template();
        let mut rng = SimRng::seed_from(3);
        let v = &visits_for_group(&venue, &group(1), &mut rng)[0];
        assert_eq!(v.position_at(SimTime::ZERO), None);
        assert_eq!(v.position_at(v.exit_at + SimDuration::from_secs(1)), None);
        assert!(!v.is_moving_at(SimTime::ZERO));
    }

    #[test]
    fn companions_stagger_but_stay_together() {
        let venue = VenueKind::Canteen.template();
        let mut rng = SimRng::seed_from(4);
        let visits = visits_for_group(&venue, &group(3), &mut rng);
        assert_eq!(visits.len(), 3);
        // Entry times increase member by member.
        assert!(visits[0].enter_at <= visits[1].enter_at);
        assert!(visits[1].enter_at <= visits[2].enter_at);
        // If all are dwellers, seats are within a few metres of each other.
        let seats: Vec<Position> = visits
            .iter()
            .filter_map(|v| match &v.path {
                MotionPath::Dwell { seat, .. } => Some(*seat),
                _ => None,
            })
            .collect();
        if seats.len() == 3 {
            assert!(seats[0].distance_to(seats[1]) < 5.0);
            assert!(seats[0].distance_to(seats[2]) < 5.0);
        }
    }

    #[test]
    fn zero_duration_transit_does_not_divide_by_zero() {
        let v = Visit {
            group_id: 0,
            enter_at: SimTime::from_secs(10),
            exit_at: SimTime::from_secs(10),
            path: MotionPath::Transit {
                from: Position::new(0.0, 0.0),
                to: Position::new(5.0, 0.0),
            },
        };
        assert_eq!(
            v.position_at(SimTime::from_secs(10)),
            Some(Position::new(5.0, 0.0))
        );
    }
}

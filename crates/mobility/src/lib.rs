//! # ch-mobility — crowds for urban venues
//!
//! The paper evaluates City-Hunter in four places whose *mobility patterns*
//! differ (§V-A): a subway passage (everyone moving fast), a canteen
//! (mostly seated), and a shopping centre and railway station (hybrid).
//! Venue mobility is the first-order driver of the attack's hit rate,
//! because it determines how many scan rounds — and therefore how many lure
//! SSIDs — the attacker gets per client.
//!
//! This crate generates those crowds:
//!
//! * [`profile::TimeOfDayProfile`] — hourly arrival-intensity curves with
//!   the rush-hour / meal-time peaks visible in Fig. 5;
//! * [`arrival::GroupArrivalProcess`] — a non-homogeneous Poisson process
//!   over *groups* of companions (families, friends — the social structure
//!   behind the freshness buffer's §IV-A rationale);
//! * [`venue::VenueTemplate`] — geometry, attacker position and movement
//!   mix for each of the four venues;
//! * [`path::MotionPath`] / [`path::Visit`] — per-person trajectories with
//!   `position_at(t)` sampling.
//!
//! ```
//! use ch_mobility::{arrival::GroupArrivalProcess, venue::VenueKind};
//! use ch_sim::{SimDuration, SimRng, SimTime};
//!
//! let venue = VenueKind::Canteen.template();
//! let mut rng = SimRng::seed_from(3);
//! let process = GroupArrivalProcess::new(&venue, 12, SimDuration::from_mins(30));
//! let groups = process.generate(&mut rng);
//! assert!(!groups.is_empty());
//! assert!(groups.iter().all(|g| g.arrive_at <= SimTime::from_mins(30)));
//! ```

pub mod arrival;
pub mod path;
pub mod profile;
pub mod venue;

pub use arrival::{GroupArrival, GroupArrivalProcess};
pub use path::{MotionPath, Visit};
pub use profile::TimeOfDayProfile;
pub use venue::{VenueKind, VenueTemplate};

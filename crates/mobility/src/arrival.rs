//! Group arrivals: a non-homogeneous Poisson process over companion groups.

use ch_sim::{SimDuration, SimRng, SimTime};

use crate::venue::VenueTemplate;

/// One arriving group of companions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupArrival {
    /// Group identifier, unique within the run.
    pub group_id: u32,
    /// When the group reaches the venue entry.
    pub arrive_at: SimTime,
    /// Number of companions (1–4).
    pub size: usize,
}

/// Generates the arrival stream for one experiment run.
///
/// The run covers `duration` of wall-clock time starting at `start_hour`
/// (e.g. `8` for the paper's 8 am – 9 am test). Arrivals are drawn per
/// one-minute slice as Poisson counts at the venue's hourly rate, with
/// uniform placement inside the slice — an NHPP discretization that keeps
/// the hourly totals exact in expectation while remaining O(slices).
#[derive(Debug, Clone)]
pub struct GroupArrivalProcess {
    rate_per_min: Vec<f64>,
    sizes_rush: Vec<bool>,
    venue: VenueTemplate,
    duration: SimDuration,
}

impl GroupArrivalProcess {
    /// Prepares the process for `venue`, starting at wall-clock
    /// `start_hour`, covering `duration`.
    pub fn new(venue: &VenueTemplate, start_hour: usize, duration: SimDuration) -> Self {
        let minutes = duration.as_secs().div_ceil(60) as usize;
        let mut rate_per_min = Vec::with_capacity(minutes);
        let mut sizes_rush = Vec::with_capacity(minutes);
        for m in 0..minutes {
            let hour = start_hour + m / 60;
            rate_per_min.push(venue.groups_per_hour(hour) / 60.0);
            sizes_rush.push(venue.profile.is_rush_hour(hour));
        }
        GroupArrivalProcess {
            rate_per_min,
            sizes_rush,
            venue: venue.clone(),
            duration,
        }
    }

    /// Expected number of groups over the run.
    pub fn expected_groups(&self) -> f64 {
        self.rate_per_min.iter().sum()
    }

    /// Draws the full arrival stream, sorted by time.
    pub fn generate(&self, rng: &mut SimRng) -> Vec<GroupArrival> {
        let mut rng = rng.fork("arrivals");
        let mut arrivals = Vec::new();
        let mut group_id = 0u32;
        for (minute, &rate) in self.rate_per_min.iter().enumerate() {
            let count = rng.poisson(rate);
            let slice_start = SimTime::from_mins(minute as u64);
            for _ in 0..count {
                let offset = SimDuration::from_secs_f64(rng.range_f64(0.0, 60.0));
                let arrive_at = slice_start + offset;
                if arrive_at > SimTime::ZERO + self.duration {
                    continue;
                }
                let sizes = if self.sizes_rush[minute] {
                    &self.venue.rush_group_sizes
                } else {
                    &self.venue.group_sizes
                };
                arrivals.push(GroupArrival {
                    group_id,
                    arrive_at,
                    size: sizes.sample(&mut rng),
                });
                group_id += 1;
            }
        }
        arrivals.sort_by_key(|g| g.arrive_at);
        arrivals
    }

    /// Number of one-minute slices the process covers.
    pub fn minutes(&self) -> usize {
        self.rate_per_min.len()
    }

    /// Draws the arrivals of a **single one-minute slice** — the streaming
    /// path for city-scale runs, which mint populations epoch by epoch
    /// instead of materializing a whole day up front.
    ///
    /// Unlike [`generate`](Self::generate) the caller owns the RNG stream
    /// (typically a per-epoch fork, so slice `m` is reproducible without
    /// replaying slices `0..m`) and the group-id counter (so ids stay
    /// unique across slices). Arrivals are appended to `out` sorted within
    /// the slice; a `minute` beyond the covered window appends nothing.
    pub fn generate_minute(
        &self,
        minute: usize,
        next_group_id: &mut u32,
        rng: &mut SimRng,
        out: &mut Vec<GroupArrival>,
    ) {
        let Some(&rate) = self.rate_per_min.get(minute) else {
            return;
        };
        let start = out.len();
        let count = rng.poisson(rate);
        let slice_start = SimTime::from_mins(minute as u64);
        for _ in 0..count {
            let offset = SimDuration::from_secs_f64(rng.range_f64(0.0, 60.0));
            let arrive_at = slice_start + offset;
            if arrive_at > SimTime::ZERO + self.duration {
                continue;
            }
            let sizes = if self.sizes_rush[minute] {
                &self.venue.rush_group_sizes
            } else {
                &self.venue.group_sizes
            };
            out.push(GroupArrival {
                group_id: *next_group_id,
                arrive_at,
                size: sizes.sample(rng),
            });
            *next_group_id += 1;
        }
        out[start..].sort_by_key(|g| g.arrive_at);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::venue::VenueKind;

    #[test]
    fn expected_volume_tracks_profile() {
        let venue = VenueKind::SubwayPassage.template();
        let rush = GroupArrivalProcess::new(&venue, 8, SimDuration::from_hours(1));
        let lull = GroupArrivalProcess::new(&venue, 14, SimDuration::from_hours(1));
        assert!(rush.expected_groups() > 2.0 * lull.expected_groups());
    }

    #[test]
    fn generated_count_close_to_expectation() {
        let venue = VenueKind::Canteen.template();
        let process = GroupArrivalProcess::new(&venue, 12, SimDuration::from_hours(1));
        let mut rng = SimRng::seed_from(11);
        let groups = process.generate(&mut rng);
        let expected = process.expected_groups();
        let got = groups.len() as f64;
        assert!(
            (got - expected).abs() < 4.0 * expected.sqrt(),
            "got {got}, expected {expected}"
        );
    }

    #[test]
    fn arrivals_sorted_and_in_window() {
        let venue = VenueKind::RailwayStation.template();
        let process = GroupArrivalProcess::new(&venue, 9, SimDuration::from_mins(30));
        let mut rng = SimRng::seed_from(13);
        let groups = process.generate(&mut rng);
        let end = SimTime::ZERO + SimDuration::from_mins(30);
        for pair in groups.windows(2) {
            assert!(pair[0].arrive_at <= pair[1].arrive_at);
        }
        assert!(groups.iter().all(|g| g.arrive_at <= end));
        assert!(groups.iter().all(|g| (1..=4).contains(&g.size)));
    }

    #[test]
    fn group_ids_unique() {
        let venue = VenueKind::ShoppingCenter.template();
        let process = GroupArrivalProcess::new(&venue, 16, SimDuration::from_mins(20));
        let mut rng = SimRng::seed_from(17);
        let groups = process.generate(&mut rng);
        let mut ids: Vec<u32> = groups.iter().map(|g| g.group_id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), groups.len());
    }

    #[test]
    fn deterministic_given_seed() {
        let venue = VenueKind::Canteen.template();
        let process = GroupArrivalProcess::new(&venue, 18, SimDuration::from_mins(45));
        let a = process.generate(&mut SimRng::seed_from(23));
        let b = process.generate(&mut SimRng::seed_from(23));
        assert_eq!(a, b);
    }

    #[test]
    fn streamed_minutes_are_deterministic_and_ids_stay_unique() {
        let venue = VenueKind::Canteen.template();
        let process = GroupArrivalProcess::new(&venue, 11, SimDuration::from_mins(45));
        assert_eq!(process.minutes(), 45);
        let root = SimRng::seed_from(31);
        let stream = |root: &SimRng| {
            let mut out = Vec::new();
            let mut next_id = 0u32;
            for m in 0..process.minutes() {
                let mut rng = root.fork(&format!("arrivals/e{m}"));
                process.generate_minute(m, &mut next_id, &mut rng, &mut out);
            }
            (out, next_id)
        };
        let (a, ids_a) = stream(&root);
        let (b, _) = stream(&root);
        assert_eq!(a, b, "per-epoch forks replay bit-identically");
        assert_eq!(ids_a as usize, a.len());
        let mut ids: Vec<u32> = a.iter().map(|g| g.group_id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), a.len(), "ids unique across slices");
        // Each slice's arrivals landed inside its own minute, sorted.
        for g in &a {
            assert!((1..=4).contains(&g.size));
        }
        let expected = process.expected_groups();
        let got = a.len() as f64;
        assert!(
            (got - expected).abs() < 4.0 * expected.sqrt(),
            "got {got}, expected {expected}"
        );
        // A minute outside the window is a no-op.
        let mut out = a.clone();
        let mut next = ids_a;
        let mut rng = root.fork("arrivals/e999");
        process.generate_minute(999, &mut next, &mut rng, &mut out);
        assert_eq!(out.len(), a.len());
        assert_eq!(next, ids_a);
    }

    #[test]
    fn rush_hours_produce_larger_groups() {
        let venue = VenueKind::SubwayPassage.template();
        let mean_size = |hour: usize, seed: u64| {
            let p = GroupArrivalProcess::new(&venue, hour, SimDuration::from_hours(1));
            let groups = p.generate(&mut SimRng::seed_from(seed));
            groups.iter().map(|g| g.size as f64).sum::<f64>() / groups.len() as f64
        };
        // Average over several seeds to stabilize.
        let rush: f64 = (0..5).map(|s| mean_size(8, s)).sum::<f64>() / 5.0;
        let lull: f64 = (0..5).map(|s| mean_size(14, s)).sum::<f64>() / 5.0;
        assert!(rush > lull, "rush {rush} vs lull {lull}");
    }
}

#[cfg(test)]
mod occupancy_tests {
    use super::*;
    use crate::path::visits_for_group;
    use crate::venue::VenueKind;
    use ch_sim::SimTime;

    /// Little's law sanity check: mean venue occupancy ≈ arrival rate ×
    /// mean dwell. Binds the arrival process and the path generator
    /// together — if either drifts, the canteen stops looking like a
    /// canteen.
    #[test]
    fn littles_law_holds_in_the_canteen() {
        let venue = VenueKind::Canteen.template();
        let duration = SimDuration::from_hours(2);
        let process = GroupArrivalProcess::new(&venue, 12, duration);
        let mut rng = SimRng::seed_from(77);
        let groups = process.generate(&mut rng);
        let mut visits = Vec::new();
        let mut rng_paths = SimRng::seed_from(78);
        for g in &groups {
            visits.extend(visits_for_group(&venue, g, &mut rng_paths));
        }
        // People per second entering (λ) and mean dwell (W), measured.
        let people = visits.len() as f64;
        let lambda = people / duration.as_secs_f64();
        let mean_dwell: f64 = visits
            .iter()
            .map(|v| v.duration().as_secs_f64())
            .sum::<f64>()
            / people;
        let expected_occupancy = lambda * mean_dwell;

        // Observed mean occupancy by sampling each minute in the middle
        // hour (avoids the fill/drain transients).
        let mut total = 0usize;
        let mut samples = 0usize;
        let mut t = SimTime::from_mins(30);
        while t <= SimTime::from_mins(90) {
            total += visits.iter().filter(|v| v.position_at(t).is_some()).count();
            samples += 1;
            t += SimDuration::from_mins(1);
        }
        let observed = total as f64 / samples as f64;
        let ratio = observed / expected_occupancy;
        assert!(
            (0.7..1.3).contains(&ratio),
            "Little's law violated: observed {observed:.0}, L=λW {expected_occupancy:.0}"
        );
    }
}

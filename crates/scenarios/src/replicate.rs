//! Multi-seed replication.
//!
//! The paper reports one field run per condition; the simulator can
//! quantify run-to-run variation instead. [`replicate`] executes the same
//! deployment across `n` seeds — in parallel on the `ch-fleet` worker
//! pool ([`scoped_parallel_map`]; the `CH_JOBS` environment variable caps
//! the worker count) — and summarizes `h`, `h_b` and the client volume
//! with mean ± CI via [`ch_sim::Summary`].

use ch_fleet::scoped_parallel_map;
use ch_sim::stats::Summary;
#[cfg(test)]
use ch_sim::SimDuration;

use crate::metrics::SummaryRow;
use crate::runner::{run_experiment, AttackerKind, RunConfig};
use crate::world::CityData;

/// The replicated result of one deployment condition.
#[derive(Debug, Clone)]
pub struct Replication {
    /// Condition label.
    pub label: String,
    /// Per-seed summary rows, in seed order.
    pub rows: Vec<SummaryRow>,
    /// Summary of the overall hit rate `h`.
    pub h: Summary,
    /// Summary of the broadcast hit rate `h_b`.
    pub h_b: Summary,
    /// Summary of the observed-client volume.
    pub clients: Summary,
}

impl Replication {
    /// Renders one paper-style line with confidence intervals.
    pub fn render_line(&self) -> String {
        format!(
            "{:<30} h = {:5.1}% ± {:4.1}%   h_b = {:5.1}% ± {:4.1}%   clients = {:6.0} ± {:4.0}   (n={})",
            self.label,
            100.0 * self.h.mean(),
            100.0 * 1.96 * self.h.std_err(),
            100.0 * self.h_b.mean(),
            100.0 * 1.96 * self.h_b.std_err(),
            self.clients.mean(),
            1.96 * self.clients.std_err(),
            self.rows.len(),
        )
    }
}

/// Runs `base` across `seeds.len()` seeds in parallel and summarizes.
///
/// # Panics
///
/// Panics if `seeds` is empty.
pub fn replicate(
    data: &CityData,
    base: &RunConfig,
    label: impl Into<String>,
    seeds: &[u64],
) -> Replication {
    assert!(!seeds.is_empty(), "replication needs at least one seed");
    let label = label.into();
    let rows: Vec<SummaryRow> = scoped_parallel_map(seeds, |&seed| {
        let config = RunConfig {
            seed,
            ..base.clone()
        };
        run_experiment(data, &config).summary(label.clone())
    });
    let h: Vec<f64> = rows.iter().map(SummaryRow::h).collect();
    let h_b: Vec<f64> = rows.iter().map(SummaryRow::h_b).collect();
    let clients: Vec<f64> = rows.iter().map(|r| r.total_clients as f64).collect();
    Replication {
        label,
        h: summarize(&h),
        h_b: summarize(&h_b),
        clients: summarize(&clients),
        rows,
    }
}

/// [`Summary::of`] under the function-level invariant that the series is
/// non-empty: `replicate` rejects an empty seed list on entry and the
/// parallel map yields exactly one row per seed, so an empty series here
/// means that chain broke — report it as the invariant violation it is
/// rather than a bare unwrap.
fn summarize(values: &[f64]) -> Summary {
    match Summary::of(values) {
        Some(summary) => summary,
        None => ch_sim::invariant::violation(file!(), line!(), "empty replication series"),
    }
}

/// Convenience: seeds `base_seed, base_seed+1, …` for `n` replicas.
pub fn seed_range(base_seed: u64, n: usize) -> Vec<u64> {
    (0..n as u64).map(|i| base_seed + i).collect()
}

/// Replicates every attacker generation under one venue condition — the
/// statistical version of the Tables I/II comparison.
pub fn replicate_attackers(
    data: &CityData,
    venue_config: &RunConfig,
    seeds: &[u64],
) -> Vec<Replication> {
    let contenders: Vec<(&str, AttackerKind)> = vec![
        ("KARMA", AttackerKind::Karma),
        ("MANA", AttackerKind::Mana),
        ("City-Hunter (prelim)", AttackerKind::Prelim),
        (
            "City-Hunter (full)",
            AttackerKind::CityHunter(Default::default()),
        ),
    ];
    contenders
        .into_iter()
        .map(|(label, attacker)| {
            let base = RunConfig {
                attacker,
                ..venue_config.clone()
            };
            replicate(data, &base, label, seeds)
        })
        .collect()
}

/// A ready-made replication study: the canonical canteen and passage
/// conditions at the given replication factor.
pub fn standard_study(data: &CityData, base_seed: u64, replicas: usize) -> Vec<Replication> {
    let seeds = seed_range(base_seed, replicas);
    let mut out = Vec::new();
    for (venue_label, config) in [
        (
            "canteen 12:00",
            RunConfig::canteen_30min(AttackerKind::Karma, 0),
        ),
        (
            "passage 08:00",
            RunConfig::passage_30min(AttackerKind::Karma, 0),
        ),
    ] {
        for mut replication in replicate_attackers(data, &config, &seeds) {
            replication.label = format!("{} @ {}", replication.label, venue_label);
            out.push(replication);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ch_mobility::VenueKind;

    fn data() -> CityData {
        CityData::standard(0x11)
    }

    fn quick_config(attacker: AttackerKind) -> RunConfig {
        RunConfig {
            venue: VenueKind::Canteen,
            start_hour: 12,
            duration: SimDuration::from_mins(6),
            attacker,
            seed: 0,
            lure_budget: None,
            loss: None,
            population: None,
            arrival_multiplier: None,
        }
    }

    #[test]
    fn replication_is_deterministic_and_ordered() {
        let data = data();
        let seeds = seed_range(100, 4);
        let base = quick_config(AttackerKind::Mana);
        let a = replicate(&data, &base, "mana", &seeds);
        let b = replicate(&data, &base, "mana", &seeds);
        assert_eq!(a.rows, b.rows, "parallel map must preserve seed order");
        assert_eq!(a.h.mean(), b.h.mean());
        assert_eq!(a.rows.len(), 4);
    }

    #[test]
    fn summaries_match_rows() {
        let data = data();
        let seeds = seed_range(7, 3);
        let rep = replicate(&data, &quick_config(AttackerKind::Prelim), "p", &seeds);
        let manual_mean = rep.rows.iter().map(SummaryRow::h_b).sum::<f64>() / rep.rows.len() as f64;
        assert!((rep.h_b.mean() - manual_mean).abs() < 1e-12);
        assert!(!rep.render_line().is_empty());
        assert!(rep.clients.mean() > 0.0);
    }

    #[test]
    fn single_seed_runs_sequentially() {
        let data = data();
        let rep = replicate(&data, &quick_config(AttackerKind::Karma), "karma", &[42]);
        assert_eq!(rep.rows.len(), 1);
        assert_eq!(rep.h_b.mean(), 0.0, "KARMA h_b stays zero");
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn empty_seeds_rejected() {
        let data = data();
        let _ = replicate(&data, &quick_config(AttackerKind::Karma), "x", &[]);
    }

    #[test]
    fn seed_range_shape() {
        assert_eq!(seed_range(5, 3), vec![5, 6, 7]);
        assert!(seed_range(0, 0).is_empty());
    }
}

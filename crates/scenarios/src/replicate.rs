//! Multi-seed replication.
//!
//! The paper reports one field run per condition; the simulator can
//! quantify run-to-run variation instead. [`replicate`] executes the same
//! deployment across `n` seeds — in parallel on the `ch-fleet` worker
//! pool ([`scoped_parallel_map`]; the `CH_JOBS` environment variable caps
//! the worker count) — and summarizes `h`, `h_b` and the client volume
//! with mean ± CI via [`ch_sim::Summary`].

use ch_fleet::scoped_parallel_map;
use ch_sim::stats::Summary;
#[cfg(test)]
use ch_sim::SimDuration;

use crate::metrics::SummaryRow;
use crate::runner::{run_experiment, AttackerKind, RunConfig};
use crate::world::CityData;

/// The replicated result of one deployment condition.
#[derive(Debug, Clone)]
pub struct Replication {
    /// Condition label.
    pub label: String,
    /// Per-seed summary rows, in seed order.
    pub rows: Vec<SummaryRow>,
    /// Summary of the overall hit rate `h`.
    pub h: Summary,
    /// Summary of the broadcast hit rate `h_b`.
    pub h_b: Summary,
    /// Summary of the observed-client volume.
    pub clients: Summary,
}

/// Runs `base` across `seeds.len()` seeds in parallel and summarizes.
///
/// # Panics
///
/// Panics if `seeds` is empty.
pub fn replicate(
    data: &CityData,
    base: &RunConfig,
    label: impl Into<String>,
    seeds: &[u64],
) -> Replication {
    assert!(!seeds.is_empty(), "replication needs at least one seed");
    let label = label.into();
    let rows: Vec<SummaryRow> = scoped_parallel_map(seeds, |&seed| {
        let config = RunConfig {
            seed,
            ..base.clone()
        };
        run_experiment(data, &config).summary(label.clone())
    });
    let h: Vec<f64> = rows.iter().map(SummaryRow::h).collect();
    let h_b: Vec<f64> = rows.iter().map(SummaryRow::h_b).collect();
    let clients: Vec<f64> = rows.iter().map(|r| r.total_clients as f64).collect();
    Replication {
        label,
        h: summarize(&h),
        h_b: summarize(&h_b),
        clients: summarize(&clients),
        rows,
    }
}

/// [`Summary::of`] under the function-level invariant that the series is
/// non-empty: `replicate` rejects an empty seed list on entry and the
/// parallel map yields exactly one row per seed, so an empty series here
/// means that chain broke — report it as the invariant violation it is
/// rather than a bare unwrap.
pub(crate) fn summarize(values: &[f64]) -> Summary {
    match Summary::of(values) {
        Some(summary) => summary,
        None => ch_sim::invariant::violation(file!(), line!(), "empty replication series"),
    }
}

/// Convenience: seeds `base_seed, base_seed+1, …` for `n` replicas.
pub fn seed_range(base_seed: u64, n: usize) -> Vec<u64> {
    (0..n as u64).map(|i| base_seed + i).collect()
}

/// The attacker generations a comparison study pits against each other.
fn contenders() -> Vec<(&'static str, AttackerKind)> {
    vec![
        ("KARMA", AttackerKind::Karma),
        ("MANA", AttackerKind::Mana),
        ("City-Hunter (prelim)", AttackerKind::Prelim),
        (
            "City-Hunter (full)",
            AttackerKind::CityHunter(Default::default()),
        ),
    ]
}

/// Replicates every attacker generation under one venue condition — the
/// statistical version of the Tables I/II comparison.
pub fn replicate_attackers(
    data: &CityData,
    venue_config: &RunConfig,
    seeds: &[u64],
) -> Vec<Replication> {
    contenders()
        .into_iter()
        .map(|(label, attacker)| {
            let base = RunConfig {
                attacker,
                ..venue_config.clone()
            };
            replicate(data, &base, label, seeds)
        })
        .collect()
}

/// The standard study's venue conditions (attacker field is a
/// placeholder; every contender overwrites it).
fn study_conditions() -> Vec<(&'static str, RunConfig)> {
    vec![
        (
            "canteen 12:00",
            RunConfig::canteen_30min(AttackerKind::Karma, 0),
        ),
        (
            "passage 08:00",
            RunConfig::passage_30min(AttackerKind::Karma, 0),
        ),
    ]
}

/// The standard study's job list: every venue condition × attacker
/// generation × replica seed, keys like `replication/canteen-1200/mana/s3`.
/// Replica `i` runs on world seed `base_seed + i` — exactly the seeds
/// [`replicate`] uses — so the fleet-backed study summarizes identically.
///
/// # Panics
///
/// Panics if `replicas` is zero.
pub fn standard_study_jobs(base_seed: u64, replicas: usize) -> Vec<crate::fleet::CampaignJob> {
    use crate::fleet::{slug, CampaignJob};

    assert!(replicas > 0, "replication needs at least one seed");
    let seeds = seed_range(base_seed, replicas);
    let mut jobs = Vec::new();
    for (venue_label, config) in study_conditions() {
        for (label, attacker) in contenders() {
            for (i, &seed) in seeds.iter().enumerate() {
                jobs.push(CampaignJob::new(
                    format!(
                        "replication/{}/{}/s{}",
                        slug(venue_label),
                        slug(label),
                        i + 1
                    ),
                    format!("{label} @ {venue_label}"),
                    RunConfig {
                        attacker: attacker.clone(),
                        seed,
                        ..config.clone()
                    },
                ));
            }
        }
    }
    jobs
}

/// [`standard_study`] on the fleet engine: one resumable campaign over
/// every condition × contender × seed.
///
/// # Errors
///
/// Fails if the engine cannot run or any replica's simulation failed.
pub fn standard_study_fleet(
    ctx: &crate::ctx::CampaignCtx,
    base_seed: u64,
    replicas: usize,
    opts: &ch_fleet::FleetOptions,
) -> Result<(Vec<Replication>, ch_fleet::FleetStats), String> {
    let jobs = standard_study_jobs(base_seed, replicas);
    let (records, stats) = crate::fleet::run_jobs(ctx, &jobs, opts)?;
    let replications = jobs
        .chunks(replicas)
        .zip(records.chunks(replicas))
        .map(|(job_chunk, record_chunk)| {
            let rows: Vec<SummaryRow> = record_chunk.iter().map(|r| r.row.clone()).collect();
            let h: Vec<f64> = rows.iter().map(SummaryRow::h).collect();
            let h_b: Vec<f64> = rows.iter().map(SummaryRow::h_b).collect();
            let clients: Vec<f64> = rows.iter().map(|r| r.total_clients as f64).collect();
            Replication {
                label: job_chunk[0].label.clone(),
                h: summarize(&h),
                h_b: summarize(&h_b),
                clients: summarize(&clients),
                rows,
            }
        })
        .collect();
    Ok((replications, stats))
}

/// A ready-made replication study: the canonical canteen and passage
/// conditions at the given replication factor.
pub fn standard_study(data: &CityData, base_seed: u64, replicas: usize) -> Vec<Replication> {
    match standard_study_fleet(
        &crate::ctx::CampaignCtx::build(data),
        base_seed,
        replicas,
        &ch_fleet::FleetOptions::in_memory("replication", 0),
    ) {
        Ok((replications, _)) => replications,
        Err(error) => ch_sim::invariant::violation(file!(), line!(), &error),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ch_mobility::VenueKind;

    fn data() -> CityData {
        CityData::standard(0x11)
    }

    fn quick_config(attacker: AttackerKind) -> RunConfig {
        RunConfig {
            venue: VenueKind::Canteen,
            start_hour: 12,
            duration: SimDuration::from_mins(6),
            attacker,
            seed: 0,
            lure_budget: None,
            loss: None,
            population: None,
            arrival_multiplier: None,
            fault: None,
            detector: None,
        }
    }

    #[test]
    fn replication_is_deterministic_and_ordered() {
        let data = data();
        let seeds = seed_range(100, 4);
        let base = quick_config(AttackerKind::Mana);
        let a = replicate(&data, &base, "mana", &seeds);
        let b = replicate(&data, &base, "mana", &seeds);
        assert_eq!(a.rows, b.rows, "parallel map must preserve seed order");
        assert_eq!(a.h.mean(), b.h.mean());
        assert_eq!(a.rows.len(), 4);
    }

    #[test]
    fn summaries_match_rows() {
        let data = data();
        let seeds = seed_range(7, 3);
        let rep = replicate(&data, &quick_config(AttackerKind::Prelim), "p", &seeds);
        let manual_mean = rep.rows.iter().map(SummaryRow::h_b).sum::<f64>() / rep.rows.len() as f64;
        assert!((rep.h_b.mean() - manual_mean).abs() < 1e-12);
        assert!(!rep.render_line().is_empty());
        assert!(rep.clients.mean() > 0.0);
    }

    #[test]
    fn single_seed_runs_sequentially() {
        let data = data();
        let rep = replicate(&data, &quick_config(AttackerKind::Karma), "karma", &[42]);
        assert_eq!(rep.rows.len(), 1);
        assert_eq!(rep.h_b.mean(), 0.0, "KARMA h_b stays zero");
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn empty_seeds_rejected() {
        let data = data();
        let _ = replicate(&data, &quick_config(AttackerKind::Karma), "x", &[]);
    }

    #[test]
    fn seed_range_shape() {
        assert_eq!(seed_range(5, 3), vec![5, 6, 7]);
        assert!(seed_range(0, 0).is_empty());
    }
}

//! City-scale sharded simulation: a whole synthetic city day as
//! spatially partitioned event queues.
//!
//! The single-venue runner ([`crate::runner`]) materializes one venue's
//! population up front and drains one global [`EventQueue`]. That is the
//! right fidelity instrument for a Fig. 5 bar, but it cannot scale to a
//! *city*: a million devices would be minted before the first event pops,
//! and one queue serializes everything.
//!
//! This module shards the city spatially instead:
//!
//! * a [`CityPlan`] partitions venues into **districts** — each district
//!   is one venue instance with its own attacker deployment, its own
//!   [`EventQueue`], its own agent arena (free-list slots, cleared not
//!   reallocated), and its own seed-derived RNG streams;
//! * districts are grouped into contiguous **shards**; each epoch (one
//!   sim minute) every shard advances independently on `ch-fleet`'s
//!   worker-local-state pool;
//! * clients that leave one district for another travel through a
//!   deterministic **handoff mailbox**: departures append to the source
//!   district's outbox, and outboxes are drained into destination
//!   inboxes *between* epochs, in district-id order.
//!
//! # Determinism argument
//!
//! Results are byte-identical at any shard count and any `--jobs` width
//! (shards = 1 is the legacy single-queue path, just with one arena):
//!
//! * every RNG stream is forked per `(district, purpose, epoch)` from a
//!   seed derived off the campaign seed — no stream is shared between
//!   districts, and no draw depends on event interleaving across
//!   districts;
//! * within an epoch, districts interact **only** through their own
//!   queue; cross-district effects ride the mailbox, which is routed
//!   serially at the epoch boundary in district-id order (shards hold
//!   contiguous id ranges, so walking shards in order *is* walking
//!   districts in order, at every shard count);
//! * a handoff's arrival time is at least one full epoch after its
//!   departure pops (transit travel ≥ 60 s = 1 epoch), so an arrival
//!   never lands behind the destination queue's monotonicity watermark
//!   and is always delivered by a *future* epoch's inbox drain.
//!
//! # Streaming populations
//!
//! Populations are never materialized up front. Each district draws its
//! arrivals **one epoch at a time** via
//! [`GroupArrivalProcess::generate_minute`], minting phones only for the
//! minute being simulated; an agent's arena slot is recycled the moment
//! its last event fires. Peak memory is proportional to *concurrent
//! occupancy*, not to the day's total population — a 1M-device day runs
//! in a few hundred thousand live agents.

use ch_attack::CityHunterConfig;
use ch_attack::{Attacker, AttackerSpec, Lure};
use ch_mobility::arrival::{GroupArrival, GroupArrivalProcess};
use ch_mobility::path::{visits_for_group, MotionPath, Visit};
use ch_mobility::{VenueKind, VenueTemplate};
use ch_phone::popgen::PopulationBuilder;
use ch_phone::scanner::ScanPlan;
use ch_phone::{JoinDecision, Phone};
use ch_sim::{EventQueue, LossModel, Position, SimDuration, SimRng, SimTime};
use ch_wifi::mgmt::{ProbeRequest, ProbeResponse};
use ch_wifi::timing;
use ch_wifi::{Channel, MacAddr};

use std::fmt::Write as _;
use std::sync::{Mutex, PoisonError};

use crate::ctx::CampaignCtx;

/// Fraction of transit visitors who continue to the ring-adjacent
/// district instead of leaving the system when their visit ends.
const HANDOFF_PROB: f64 = 0.35;
/// Inter-district travel time bounds, seconds. The lower bound is one
/// full epoch — the invariant that makes mailbox delivery watermark-safe
/// (see the module docs' determinism argument).
const TRAVEL_SECS: (f64, f64) = (60.0, 300.0);

/// Configuration of one city run.
#[derive(Debug, Clone, PartialEq)]
pub struct CityConfig {
    /// Master seed; every district stream derives from it.
    pub seed: u64,
    /// Number of districts (venue instances), clamped to `1..=256`.
    pub districts: usize,
    /// Wall-clock hour the day starts at.
    pub start_hour: usize,
    /// Run length in epochs (one epoch = one sim minute).
    pub epochs: u64,
    /// Arrival-intensity multiplier over the calibrated venue rates —
    /// the "how big is this city" knob.
    pub arrival_multiplier: f64,
    /// Requested shard count (clamped to the district count; results are
    /// identical at every value).
    pub shards: usize,
    /// Worker threads (`None` = `CH_JOBS` / machine width); never
    /// affects results.
    pub jobs: Option<usize>,
}

impl CityConfig {
    /// CI-sized city: a morning rush slice across 8 districts.
    pub fn quick(seed: u64) -> Self {
        CityConfig {
            seed,
            districts: 8,
            start_hour: 8,
            epochs: 20,
            arrival_multiplier: 1.0,
            shards: 4,
            jobs: None,
        }
    }

    /// The full city day: 48 districts × 12 h, scaled to a ~1M-device
    /// population.
    pub fn full(seed: u64) -> Self {
        CityConfig {
            seed,
            districts: 48,
            start_hour: 8,
            epochs: 720,
            arrival_multiplier: 2.0,
            shards: 16,
            jobs: None,
        }
    }
}

/// One district's static description inside a [`CityPlan`].
#[derive(Debug, Clone)]
pub struct DistrictSpec {
    /// District id (also its index in the plan).
    pub id: u32,
    /// The venue instance this district hosts.
    pub venue: VenueKind,
    /// Stable slug for the attacker deployed here.
    pub attacker_slug: &'static str,
    /// The attacker generation deployed here.
    pub attacker: AttackerSpec,
    /// Ring topology: where this district's transit leavers go next.
    pub next: u32,
}

/// The city layout: districts in id order plus the shard chunking.
#[derive(Debug, Clone)]
pub struct CityPlan {
    /// Districts, in id order.
    pub districts: Vec<DistrictSpec>,
    /// Districts per shard (shards are contiguous id ranges).
    pub per_shard: usize,
}

/// The attacker generation cycle: consecutive blocks of four districts
/// share a generation, so every venue kind meets every attacker as the
/// city grows.
fn attacker_for(block: usize) -> (&'static str, AttackerSpec) {
    match block % 4 {
        0 => (
            "city-hunter",
            AttackerSpec::CityHunter(CityHunterConfig::default()),
        ),
        1 => ("prelim", AttackerSpec::Prelim),
        2 => ("mana", AttackerSpec::Mana),
        _ => ("karma", AttackerSpec::Karma),
    }
}

impl CityPlan {
    /// Lays out the city for `config`: venue kinds cycle per district,
    /// attacker generations cycle per block of four, and transit leavers
    /// follow the ring `d → d+1 (mod n)`.
    pub fn build(config: &CityConfig) -> CityPlan {
        let n = config.districts.clamp(1, 256);
        let shards = config.shards.clamp(1, n);
        let per_shard = n.div_ceil(shards);
        let districts = (0..n)
            .map(|d| {
                let (attacker_slug, attacker) = attacker_for(d / VenueKind::ALL.len());
                DistrictSpec {
                    id: d as u32,
                    venue: VenueKind::ALL[d % VenueKind::ALL.len()],
                    attacker_slug,
                    attacker,
                    next: ((d + 1) % n) as u32,
                }
            })
            .collect();
        CityPlan {
            districts,
            per_shard,
        }
    }

    /// Actual shard count after clamping and chunking.
    pub fn shard_count(&self) -> usize {
        self.districts.len().div_ceil(self.per_shard)
    }
}

/// Per-district counters; all totals in the run artifact derive from
/// these.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DistrictStats {
    /// Devices minted (including dark radios that never schedule).
    pub devices: u64,
    /// Agents that entered the arena (had a scan or a handoff ahead).
    pub agents: u64,
    /// Events dispatched from the district queue.
    pub events: u64,
    /// Scan bursts emitted by in-range probing phones.
    pub scans: u64,
    /// Probe frames that survived the uplink.
    pub probes_heard: u64,
    /// Lures offered to broadcast probes.
    pub offers: u64,
    /// Probe responses that survived airtime + downlink.
    pub lures_delivered: u64,
    /// Successful associations to the rogue AP.
    pub hits: u64,
    /// Scan instants where the phone was out of attacker range.
    pub out_of_range: u64,
    /// Scan instants where the phone had nothing to say (connected or
    /// mid-dwell radio silence).
    pub silent: u64,
    /// Transit leavers handed to the next district.
    pub handoffs_out: u64,
    /// Travellers admitted from the mailbox.
    pub handoffs_in: u64,
}

/// Queue payload: which arena slot fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CityEvent {
    /// One scan instant for the agent in this slot.
    Scan(u32),
    /// The agent leaves the district (and hands off to the next one).
    Depart(u32),
}

/// One live client in a district arena.
struct CityAgent {
    phone: Phone,
    visit: Visit,
    /// Scan events still queued for this slot.
    pending: u32,
    /// When set, the agent departs at `visit.exit_at` and arrives at the
    /// ring-next district at this time.
    handoff: Option<SimTime>,
}

/// A client in flight between districts — the mailbox payload.
#[derive(Debug)]
struct Transit {
    /// Destination district id.
    to: u32,
    /// Arrival time there (≥ one epoch after departure).
    arrive_at: SimTime,
    /// The travelling phone, state intact (PNL, MAC policy, history).
    phone: Phone,
}

/// Worker-local scratch threaded through
/// [`scoped_parallel_map_with_state`](ch_fleet::scoped_parallel_map_with_state):
/// per-scan frame buffers reused across every district a worker touches.
#[derive(Default)]
struct CityScratch {
    probes: Vec<ProbeRequest>,
    lures: Vec<Lure>,
}

/// What one scan instant amounted to.
enum ScanFate {
    /// The agent is no longer physically present.
    Gone,
    /// Out of attacker range (probes spent into the void).
    OutOfRange,
    /// In range but radio-silent (connected, or Wi-Fi idle).
    Silent,
    /// Probed, maybe heard offers, joined nothing.
    NoJoin,
    /// Associated to the rogue AP via the lure at this scratch index.
    Joined { lure: usize, at: SimTime },
}

/// One district: a venue instance with its own queue, arena, attacker
/// and RNG streams.
struct District {
    id: u32,
    next_district: u32,
    venue_kind: VenueKind,
    attacker_slug: &'static str,
    venue: VenueTemplate,
    attacker_pos: Position,
    /// Stable-MAC OUI: distinct per district so client identities never
    /// collide city-wide even though builder ids restart per district.
    oui: [u8; 3],
    root: SimRng,
    /// Medium (loss) stream, re-forked each epoch.
    rng_medium: SimRng,
    process: GroupArrivalProcess,
    builder: PopulationBuilder,
    attacker: Box<dyn Attacker>,
    events: EventQueue<CityEvent>,
    agents: Vec<Option<CityAgent>>,
    free: Vec<u32>,
    inbox: Vec<Transit>,
    outbox: Vec<Transit>,
    arrivals_buf: Vec<GroupArrival>,
    loss: LossModel,
    channel: Channel,
    budget: usize,
    next_group: u32,
    stats: DistrictStats,
}

impl District {
    fn new(
        spec: &DistrictSpec,
        config: &CityConfig,
        ctx: &CampaignCtx,
        duration: SimDuration,
    ) -> District {
        let mut venue = spec.venue.template();
        venue.base_groups_per_hour *= config.arrival_multiplier;
        let plan = ctx.plan(spec.venue);
        let root = SimRng::seed_from(ch_fleet::derive_seed(
            config.seed,
            &format!("city/district/{:03}", spec.id),
        ));
        let rng_medium = root.fork("medium/init");
        District {
            id: spec.id,
            next_district: spec.next,
            venue_kind: spec.venue,
            attacker_slug: spec.attacker_slug,
            attacker_pos: venue.attacker,
            oui: [0xd1, 0x5c, spec.id as u8],
            process: GroupArrivalProcess::new(&venue, config.start_hour, duration),
            builder: ctx.population_builder(plan.population.clone()),
            attacker: spec.attacker.build_from_plan(
                MacAddr::from_index([0x0a, 0xbc, 0xde], spec.id + 1),
                &plan.attack,
            ),
            venue,
            root,
            rng_medium,
            events: EventQueue::new(),
            agents: Vec::new(),
            free: Vec::new(),
            inbox: Vec::new(),
            outbox: Vec::new(),
            arrivals_buf: Vec::new(),
            loss: LossModel::urban_100mw(),
            channel: Channel::default_attack_channel(),
            budget: timing::responses_per_scan(),
            next_group: 0,
            stats: DistrictStats::default(),
        }
    }

    /// A per-(purpose, epoch) stream: reproducible without replaying
    /// earlier epochs, and never shared with another district.
    fn fork_epoch(&self, label: &str, epoch: u64) -> SimRng {
        self.root.fork(&format!("{label}/e{epoch}"))
    }

    fn alloc_slot(&mut self) -> u32 {
        match self.free.pop() {
            Some(idx) => idx,
            None => {
                self.agents.push(None);
                (self.agents.len() - 1) as u32
            }
        }
    }

    /// Installs a visiting phone: schedules its scan instants, decides
    /// whether it continues to the ring-next district, and recycles
    /// nothing if it will never fire an event.
    fn spawn(&mut self, phone: Phone, visit: Visit, rng: &mut SimRng) {
        if !phone.wifi_active {
            // Dark radio: invisible here and in every later district.
            return;
        }
        let handoff =
            if matches!(visit.path, MotionPath::Transit { .. }) && rng.chance(HANDOFF_PROB) {
                let travel = rng.range_f64(TRAVEL_SECS.0, TRAVEL_SECS.1);
                Some(visit.exit_at + SimDuration::from_secs_f64(travel))
            } else {
                None
            };
        let plan = ScanPlan::for_window(&phone.scan, visit.enter_at, visit.exit_at, rng);
        if plan.times().is_empty() && handoff.is_none() {
            return;
        }
        let idx = self.alloc_slot();
        let mut pending = 0u32;
        for &t in plan.times() {
            self.events.push(t, CityEvent::Scan(idx));
            pending += 1;
        }
        if handoff.is_some() {
            // Pushed after the same-time scans, so FIFO tie-breaking
            // dispatches a final scan at `exit_at` before the departure.
            self.events.push(visit.exit_at, CityEvent::Depart(idx));
        }
        self.agents[idx as usize] = Some(CityAgent {
            phone,
            visit,
            pending,
            handoff,
        });
        self.stats.agents += 1;
    }

    /// Admits a traveller from the mailbox: a size-1 "group" arriving at
    /// the handoff time, walking a fresh path through this venue.
    fn admit(&mut self, transit: Transit, rng: &mut SimRng) {
        self.stats.handoffs_in += 1;
        let group = GroupArrival {
            group_id: transit.phone.group_id,
            arrive_at: transit.arrive_at,
            size: 1,
        };
        if let Some(visit) = visits_for_group(&self.venue, &group, rng).pop() {
            self.spawn(transit.phone, visit, rng);
        }
    }

    /// Advances the district through epoch `epoch` (sim minute
    /// `[epoch, epoch+1)`): drain the inbox, mint this minute's
    /// arrivals, then dispatch events up to the epoch boundary.
    fn run_epoch(&mut self, epoch: u64, scratch: &mut CityScratch) {
        self.rng_medium = self.fork_epoch("medium", epoch);

        // 1. Mailbox admissions (delivered at the previous boundary).
        let mut rng_inbox = self.fork_epoch("inbox", epoch);
        let mut inbox = std::mem::take(&mut self.inbox);
        for transit in inbox.drain(..) {
            self.admit(transit, &mut rng_inbox);
        }
        self.inbox = inbox; // keep the allocation

        // 2. This minute's fresh arrivals, streamed — never the whole
        //    day at once.
        let mut rng_arrivals = self.fork_epoch("arrivals", epoch);
        let mut rng_paths = self.fork_epoch("paths", epoch);
        let mut rng_pop = self.fork_epoch("pop", epoch);
        let mut rng_spawn = self.fork_epoch("spawn", epoch);
        let mut next_group = self.next_group;
        let mut arrivals = std::mem::take(&mut self.arrivals_buf);
        arrivals.clear();
        self.process.generate_minute(
            epoch as usize,
            &mut next_group,
            &mut rng_arrivals,
            &mut arrivals,
        );
        self.next_group = next_group;
        for group in &arrivals {
            let visits = visits_for_group(&self.venue, group, &mut rng_paths);
            let phones = self
                .builder
                .phones_for_group(group.group_id, visits.len(), &mut rng_pop);
            for (visit, mut phone) in visits.into_iter().zip(phones) {
                self.stats.devices += 1;
                // Re-key stable identities under the district OUI:
                // builder ids restart per district, and a city must not
                // alias two people into one tracked client.
                phone.mac = MacAddr::from_index(self.oui, phone.id);
                self.spawn(phone, visit, &mut rng_spawn);
            }
        }
        self.arrivals_buf = arrivals;

        // 3. Dispatch to the boundary.
        let end = SimTime::from_mins(epoch + 1);
        while let Some((now, event)) = self.events.pop_until(end) {
            self.stats.events += 1;
            match event {
                CityEvent::Scan(idx) => self.on_scan(now, idx, scratch),
                CityEvent::Depart(idx) => self.on_depart(idx),
            }
        }
    }

    fn on_scan(&mut self, now: SimTime, idx: u32, scratch: &mut CityScratch) {
        let Some(slot) = self.agents.get_mut(idx as usize) else {
            return;
        };
        let Some(agent) = slot.as_mut() else {
            return;
        };
        agent.pending -= 1;
        let fate = dispatch_scan(
            agent,
            self.attacker.as_mut(),
            &mut self.rng_medium,
            &self.loss,
            self.attacker_pos,
            self.channel,
            self.budget,
            now,
            scratch,
            &mut self.stats,
        );
        let mac = agent.phone.mac;
        let done = agent.pending == 0 && agent.handoff.is_none();
        if let ScanFate::Joined { lure, at } = fate {
            self.stats.hits += 1;
            // Off the zero-alloc path on purpose: hit bookkeeping may
            // grow attacker tables.
            self.attacker.on_hit(at, mac, &scratch.lures[lure]);
        }
        if done {
            *slot = None;
            self.free.push(idx);
        }
    }

    fn on_depart(&mut self, idx: u32) {
        let Some(slot) = self.agents.get_mut(idx as usize) else {
            return;
        };
        let Some(agent) = slot.take() else {
            return;
        };
        self.free.push(idx);
        let CityAgent {
            mut phone, handoff, ..
        } = agent;
        if let Some(arrive_at) = handoff {
            // Walking out of range drops any association; the traveller
            // probes afresh in the next district — the cross-district
            // hunting surface this experiment measures.
            phone.handle_deauth();
            self.stats.handoffs_out += 1;
            self.outbox.push(Transit {
                to: self.next_district,
                arrive_at,
                phone,
            });
        }
    }
}

/// One scan instant, allocation-free at steady state: probes up, lures
/// chosen, burst serialized against the listen window, join evaluated.
/// This is the city hot path — the `ch-lint` `[hot-path]` root for the
/// sharded loop.
#[allow(clippy::too_many_arguments)]
fn dispatch_scan(
    agent: &mut CityAgent,
    attacker: &mut dyn Attacker,
    rng_medium: &mut SimRng,
    loss: &LossModel,
    attacker_pos: Position,
    channel: Channel,
    budget: usize,
    now: SimTime,
    scratch: &mut CityScratch,
    stats: &mut DistrictStats,
) -> ScanFate {
    let Some(pos) = agent.visit.position_at(now) else {
        return ScanFate::Gone;
    };
    let distance = pos.distance_to(attacker_pos);
    if distance >= loss.max_range_m() {
        // Still burn the scan (MAC rotation, PNL cursor) so in-range and
        // out-of-range phones stay state-identical to the runner's.
        agent.phone.probes_for_scan_into(&mut scratch.probes);
        stats.out_of_range += 1;
        return ScanFate::OutOfRange;
    }
    if agent.phone.connected_locally && attacker.deauth_enabled() {
        agent.phone.handle_deauth();
    }
    if !agent.phone.is_probing() {
        stats.silent += 1;
        return ScanFate::Silent;
    }
    stats.scans += 1;
    agent.phone.probes_for_scan_into(&mut scratch.probes);
    let client_mac = agent.phone.mac; // post-rotation address
    for p in 0..scratch.probes.len() {
        if !rng_medium.chance(loss.delivery_prob(distance)) {
            continue; // probe lost on the uplink
        }
        stats.probes_heard += 1;
        attacker.respond_to_probe_into(now, &scratch.probes[p], budget, &mut scratch.lures);
        if scratch.lures.is_empty() {
            continue;
        }
        let bssid = attacker.bssid();
        if scratch.probes[p].is_broadcast() {
            stats.offers += scratch.lures.len() as u64;
        }
        // Serialize the burst on the channel: responses past the
        // client's listen window never land (§III-A).
        let deadline = timing::listen_deadline(now);
        let mut elapsed = now;
        for l in 0..scratch.lures.len() {
            elapsed += timing::PROBE_RESPONSE_AIRTIME;
            if elapsed > deadline {
                break;
            }
            if !rng_medium.chance(loss.delivery_prob(distance)) {
                continue; // response lost on the downlink
            }
            stats.lures_delivered += 1;
            let response = ProbeResponse::open_lure(
                bssid,
                client_mac,
                // ch-lint: allow(hot-path-alloc) — Arc refcount bump.
                scratch.lures[l].ssid.clone(),
                channel,
            );
            if agent.phone.evaluate_offer(&response) == JoinDecision::Join {
                agent.phone.connect_to(response.ssid);
                return ScanFate::Joined {
                    lure: l,
                    at: elapsed,
                };
            }
        }
    }
    ScanFate::NoJoin
}

/// A contiguous run of districts advanced by one worker per epoch.
struct CityShard {
    districts: Vec<District>,
}

/// Routes every outbox into its destination inbox, in district-id order
/// — the serial boundary step that makes cross-shard traffic
/// deterministic at any shard count and any worker width. `transfer` is
/// a reused staging buffer.
fn route_handoffs(shards: &mut [Mutex<CityShard>], per_shard: usize, transfer: &mut Vec<Transit>) {
    // Pass 1: collect. Shards hold contiguous id ranges, so shard order
    // then in-shard order *is* global district-id order; within one
    // district the outbox preserves emission (event) order.
    for shard in shards.iter_mut() {
        let shard = shard.get_mut().unwrap_or_else(PoisonError::into_inner);
        for district in shard.districts.iter_mut() {
            transfer.append(&mut district.outbox);
        }
    }
    // Pass 2: deliver in that same global order.
    for transit in transfer.drain(..) {
        let dest = transit.to as usize;
        let shard = shards[dest / per_shard]
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner);
        shard.districts[dest % per_shard].inbox.push(transit);
    }
}

/// One district's contribution to the run artifact.
#[derive(Debug, Clone)]
pub struct DistrictReport {
    /// District id.
    pub id: u32,
    /// Venue kind hosted there.
    pub venue: VenueKind,
    /// Attacker slug deployed there.
    pub attacker: &'static str,
    /// The counters.
    pub stats: DistrictStats,
}

/// The deterministic outcome of a city run. Everything here — including
/// [`render`](CityOutcome::render) — is byte-identical at any shard
/// count and `--jobs` width; wall-clock throughput is measured by the
/// driver *around* this, never inside it.
#[derive(Debug, Clone)]
pub struct CityOutcome {
    /// The seed the city ran under.
    pub seed: u64,
    /// Epochs simulated (sim minutes).
    pub epochs: u64,
    /// Wall-clock start hour.
    pub start_hour: usize,
    /// Arrival multiplier in force.
    pub arrival_multiplier: f64,
    /// Per-district reports, in id order.
    pub reports: Vec<DistrictReport>,
}

impl CityOutcome {
    fn total(&self, f: impl Fn(&DistrictStats) -> u64) -> u64 {
        self.reports.iter().map(|r| f(&r.stats)).sum()
    }

    /// Devices minted across the city.
    pub fn devices(&self) -> u64 {
        self.total(|s| s.devices)
    }

    /// Events dispatched across every district queue.
    pub fn events(&self) -> u64 {
        self.total(|s| s.events)
    }

    /// Rogue-AP associations across the city.
    pub fn hits(&self) -> u64 {
        self.total(|s| s.hits)
    }

    /// `(out, in)` mailbox traffic. `out ≥ in`: travellers still in
    /// flight when the day ends are never admitted.
    pub fn handoffs(&self) -> (u64, u64) {
        (
            self.total(|s| s.handoffs_out),
            self.total(|s| s.handoffs_in),
        )
    }

    /// Simulated seconds covered by the run.
    pub fn sim_secs(&self) -> u64 {
        self.epochs * 60
    }

    /// The shard-invariant text artifact: per-district rows plus city
    /// totals. Deliberately excludes shard count, worker width and any
    /// wall-clock measurement — `cmp` between runs at different widths
    /// is the determinism gate.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# city — sharded synthetic city day");
        let _ = writeln!(
            out,
            "seed {} | districts {} | start {:02}:00 | {} sim-min | arrivals x{:.1}",
            self.seed,
            self.reports.len(),
            self.start_hour,
            self.epochs,
            self.arrival_multiplier,
        );
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "{:<5} {:<9} {:<12} {:>9} {:>10} {:>9} {:>7} {:>7} {:>7}",
            "dist", "venue", "attacker", "devices", "events", "scans", "hits", "out", "in"
        );
        for r in &self.reports {
            let _ = writeln!(
                out,
                "{:<5} {:<9} {:<12} {:>9} {:>10} {:>9} {:>7} {:>7} {:>7}",
                format!("d{:03}", r.id),
                venue_slug(r.venue),
                r.attacker,
                r.stats.devices,
                r.stats.events,
                r.stats.scans,
                r.stats.hits,
                r.stats.handoffs_out,
                r.stats.handoffs_in,
            );
        }
        let (h_out, h_in) = self.handoffs();
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "totals: devices {} | agents {} | events {} | scans {} | probes {} | offers {} | delivered {} | hits {} | out-of-range {} | silent {} | handoffs {}/{} (out/in)",
            self.devices(),
            self.total(|s| s.agents),
            self.events(),
            self.total(|s| s.scans),
            self.total(|s| s.probes_heard),
            self.total(|s| s.offers),
            self.total(|s| s.lures_delivered),
            self.hits(),
            self.total(|s| s.out_of_range),
            self.total(|s| s.silent),
            h_out,
            h_in,
        );
        let _ = writeln!(out, "sim-clock: {} s", self.sim_secs());
        out
    }
}

fn venue_slug(kind: VenueKind) -> &'static str {
    match kind {
        VenueKind::SubwayPassage => "passage",
        VenueKind::Canteen => "canteen",
        VenueKind::ShoppingCenter => "shopping",
        VenueKind::RailwayStation => "railway",
    }
}

/// Runs the whole city: epochs advance in lockstep across shards (each
/// shard on a pool worker with worker-local scratch), with the handoff
/// mailbox routed serially at every epoch boundary.
pub fn run_city(ctx: &CampaignCtx, config: &CityConfig) -> CityOutcome {
    let plan = CityPlan::build(config);
    let duration = SimDuration::from_mins(config.epochs);
    let mut shards: Vec<Mutex<CityShard>> = plan
        .districts
        .chunks(plan.per_shard)
        .map(|specs| {
            Mutex::new(CityShard {
                districts: specs
                    .iter()
                    .map(|spec| District::new(spec, config, ctx, duration))
                    .collect(),
            })
        })
        .collect();
    let threads = ch_fleet::effective_jobs(config.jobs)
        .min(ch_fleet::worker_cap())
        .min(shards.len());
    let mut transfer: Vec<Transit> = Vec::new();
    for epoch in 0..config.epochs {
        ch_fleet::scoped_parallel_map_with_state(
            &shards,
            threads,
            CityScratch::default,
            |shard, scratch| {
                let mut shard = shard.lock().unwrap_or_else(PoisonError::into_inner);
                for district in shard.districts.iter_mut() {
                    district.run_epoch(epoch, scratch);
                }
            },
        );
        route_handoffs(&mut shards, plan.per_shard, &mut transfer);
    }
    let reports = shards
        .into_iter()
        .flat_map(|shard| {
            shard
                .into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .districts
        })
        .map(|d| DistrictReport {
            id: d.id,
            venue: d.venue_kind,
            attacker: d.attacker_slug,
            stats: d.stats,
        })
        .collect();
    CityOutcome {
        seed: config.seed,
        epochs: config.epochs,
        start_hour: config.start_hour,
        arrival_multiplier: config.arrival_multiplier,
        reports,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::CityData;

    fn test_ctx() -> CampaignCtx {
        CampaignCtx::build(&CityData::standard(99))
    }

    #[test]
    fn plan_cycles_venues_and_attackers_on_a_ring() {
        let config = CityConfig {
            districts: 10,
            shards: 3,
            ..CityConfig::quick(7)
        };
        let plan = CityPlan::build(&config);
        assert_eq!(plan.districts.len(), 10);
        assert_eq!(plan.per_shard, 4); // ceil(10/3)
        assert_eq!(plan.shard_count(), 3);
        // Venues cycle with period 4; attackers with period 16.
        assert_eq!(plan.districts[0].venue, VenueKind::SubwayPassage);
        assert_eq!(plan.districts[4].venue, VenueKind::SubwayPassage);
        assert_eq!(plan.districts[1].venue, VenueKind::Canteen);
        assert_eq!(plan.districts[0].attacker_slug, "city-hunter");
        assert_eq!(plan.districts[4].attacker_slug, "prelim");
        assert_eq!(plan.districts[8].attacker_slug, "mana");
        // Ring: the last district wraps to the first.
        assert_eq!(plan.districts[9].next, 0);
        assert_eq!(plan.districts[3].next, 4);
    }

    /// Builds the shard array for `config` without running any epochs.
    fn build_shards(ctx: &CampaignCtx, config: &CityConfig) -> (Vec<Mutex<CityShard>>, usize) {
        let plan = CityPlan::build(config);
        let duration = SimDuration::from_mins(config.epochs);
        let shards = plan
            .districts
            .chunks(plan.per_shard)
            .map(|specs| {
                Mutex::new(CityShard {
                    districts: specs
                        .iter()
                        .map(|spec| District::new(spec, config, ctx, duration))
                        .collect(),
                })
            })
            .collect();
        (shards, plan.per_shard)
    }

    /// The ISSUE's handoff-ordering unit: two clients transiting in the
    /// same epoch, in both directions, delivered in district-id order —
    /// and identically at every shard width.
    #[test]
    fn handoffs_route_in_district_order_at_any_shard_width() {
        let ctx = test_ctx();
        let t = SimTime::from_mins(3);
        // Returns ((expected ids), d0 inbox ids, d1 inbox ids) after
        // routing two clients d0→d1 and two d1→d0 in the same epoch.
        let inbox_ids = |config: &CityConfig| {
            let mut rng = SimRng::seed_from(5);
            let phones = ctx
                .population_builder(ctx.plan(VenueKind::SubwayPassage).population.clone())
                .phones_for_group(0, 4, &mut rng);
            let ids: Vec<u32> = phones.iter().map(|p| p.id).collect();
            let (mut shards, per_shard) = build_shards(&ctx, config);
            let push = |shards: &mut [Mutex<CityShard>], from: usize, to: u32, phone: Phone| {
                let shard = shards[from / per_shard].get_mut().unwrap();
                shard.districts[from % per_shard].outbox.push(Transit {
                    to,
                    arrive_at: t,
                    phone,
                });
            };
            let mut phones = phones.into_iter();
            push(&mut shards, 0, 1, phones.next().unwrap());
            push(&mut shards, 0, 1, phones.next().unwrap());
            push(&mut shards, 1, 0, phones.next().unwrap());
            push(&mut shards, 1, 0, phones.next().unwrap());
            let mut transfer = Vec::new();
            route_handoffs(&mut shards, per_shard, &mut transfer);
            assert!(transfer.is_empty(), "staging buffer drains fully");
            let collect = |shards: &mut [Mutex<CityShard>], id: usize| -> Vec<u32> {
                let shard = shards[id / per_shard].get_mut().unwrap();
                shard.districts[id % per_shard]
                    .inbox
                    .iter()
                    .map(|tr| tr.phone.id)
                    .collect()
            };
            let d0 = collect(&mut shards, 0);
            let d1 = collect(&mut shards, 1);
            (ids, d0, d1)
        };

        let base = CityConfig {
            districts: 4,
            epochs: 6,
            ..CityConfig::quick(11)
        };
        let one = inbox_ids(&CityConfig {
            shards: 1,
            ..base.clone()
        });
        let two = inbox_ids(&CityConfig {
            shards: 2,
            ..base.clone()
        });
        let four = inbox_ids(&CityConfig {
            shards: 4,
            ..base.clone()
        });
        // Emission order preserved per destination, at every width.
        assert_eq!(one.2, one.0[0..2], "d0→d1 order");
        assert_eq!(one.1, one.0[2..4], "d1→d0 order");
        assert_eq!(one, two);
        assert_eq!(one, four);
    }

    #[test]
    fn city_runs_are_shard_and_jobs_invariant() {
        let ctx = test_ctx();
        let base = CityConfig {
            districts: 4,
            epochs: 10,
            jobs: Some(1),
            shards: 1,
            ..CityConfig::quick(42)
        };
        let reference = run_city(&ctx, &base);
        let text = reference.render();
        for (shards, jobs) in [(1, 4), (2, 2), (4, 4)] {
            let other = run_city(
                &ctx,
                &CityConfig {
                    shards,
                    jobs: Some(jobs),
                    ..base.clone()
                },
            );
            assert_eq!(
                other.render(),
                text,
                "shards={shards} jobs={jobs} must be byte-identical"
            );
        }
        // The run actually exercised the mailbox and the attack.
        let (h_out, h_in) = reference.handoffs();
        assert!(h_out > 0, "no handoffs left any district");
        assert!(h_in > 0, "no handoffs were admitted");
        assert!(h_in <= h_out, "admissions cannot exceed departures");
        assert!(reference.devices() > 0);
        assert!(reference.events() > 0);
    }

    #[test]
    fn single_district_ring_hands_off_to_itself() {
        let ctx = test_ctx();
        let outcome = run_city(
            &ctx,
            &CityConfig {
                districts: 1,
                epochs: 10,
                shards: 4, // clamps to 1 — the legacy single-queue path
                ..CityConfig::quick(3)
            },
        );
        assert_eq!(outcome.reports.len(), 1);
        let stats = &outcome.reports[0].stats;
        assert!(stats.handoffs_out >= stats.handoffs_in);
        assert!(stats.handoffs_in > 0, "ring of one feeds itself");
    }
}

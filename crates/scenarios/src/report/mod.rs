//! Text rendering for tables and figure series, in the paper's format.
//!
//! The shared primitives (summary tables, histograms, percentages) live
//! here; the per-artifact `render()` bodies — one per DESIGN §4 table and
//! figure — live in [`artifacts`].

pub mod artifacts;

use std::fmt::Write as _;

use crate::metrics::SummaryRow;

/// Serializes summary rows (plus derived rates) as pretty JSON — the
/// machine-readable twin of [`render_summary_table`].
///
/// Emitted by hand (no serde in the offline build); keys follow the field
/// order of [`SummaryRow`], then the derived `h` / `h_b` rates.
pub fn summary_rows_to_json(rows: &[SummaryRow]) -> String {
    let mut out = String::from("[");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            concat!(
                "\n  {{\n    \"label\": {label},\n    \"total_clients\": {total},\n",
                "    \"direct_clients\": {direct},\n    \"broadcast_clients\": {bcast},\n",
                "    \"direct_connected\": {dconn},\n    \"broadcast_connected\": {bconn},\n",
                "    \"h\": {h},\n    \"h_b\": {hb}\n  }}"
            ),
            label = json_string(&row.label),
            total = row.total_clients,
            direct = row.direct_clients,
            bcast = row.broadcast_clients,
            dconn = row.direct_connected,
            bconn = row.broadcast_connected,
            h = json_f64(row.h()),
            hb = json_f64(row.h_b()),
        );
    }
    out.push_str("\n]");
    out
}

/// JSON string literal with the escapes the JSON grammar requires.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON number rendering: finite floats round-trip via `{:?}`; non-finite
/// values (not representable in JSON) become `null`.
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:?}")
    } else {
        "null".to_owned()
    }
}

/// Formats a rate as a percentage with one decimal, like the paper.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Renders rows in the Table I/II/III layout.
///
/// ```
/// use ch_scenarios::report::render_summary_table;
/// use ch_scenarios::SummaryRow;
///
/// let row = SummaryRow {
///     label: "KARMA".into(),
///     total_clients: 614,
///     direct_clients: 85,
///     broadcast_clients: 529,
///     direct_connected: 24,
///     broadcast_connected: 0,
/// };
/// let table = render_summary_table(&[row]);
/// assert!(table.contains("KARMA"));
/// assert!(table.contains("3.9%"));
/// ```
pub fn render_summary_table(rows: &[SummaryRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "| {:<28} | {:>12} | {:>16} | {:>28} | {:>6} | {:>6} |",
        "Attack", "Total probes", "Direct/Broadcast", "Clients connected", "h", "h_b"
    );
    let _ = writeln!(out, "|{}|", "-".repeat(116));
    for row in rows {
        let _ = writeln!(
            out,
            "| {:<28} | {:>12} | {:>16} | {:>28} | {:>6} | {:>6} |",
            row.label,
            row.total_clients,
            format!("{}/{}", row.direct_clients, row.broadcast_clients),
            format!(
                "{} (direct); {} (broadcast)",
                row.direct_connected, row.broadcast_connected
            ),
            pct(row.h()),
            pct(row.h_b()),
        );
    }
    out
}

/// Renders an `(x, y)` series as aligned columns.
pub fn render_series<X: std::fmt::Display, Y: std::fmt::Display>(
    header: (&str, &str),
    series: &[(X, Y)],
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{:>12}  {:>12}", header.0, header.1);
    for (x, y) in series {
        let _ = writeln!(out, "{x:>12}  {y:>12}");
    }
    out
}

/// Renders a histogram of counts bucketed by 40s (Fig. 2(b)): bucket label,
/// count, share, and a bar.
pub fn render_histogram(values: &[usize], bucket_width: usize) -> String {
    assert!(bucket_width > 0, "bucket width must be positive");
    if values.is_empty() {
        return String::from("(no samples)\n");
    }
    let max = values.iter().copied().max().unwrap_or(0);
    let buckets = max / bucket_width + 1;
    let mut counts = vec![0usize; buckets];
    for &v in values {
        counts[v / bucket_width] += 1;
    }
    let total: usize = values.len();
    let peak = counts.iter().copied().max().unwrap_or(1).max(1);
    let mut out = String::new();
    for (b, &count) in counts.iter().enumerate() {
        let share = count as f64 / total as f64;
        let bar = "#".repeat((count * 40).div_ceil(peak));
        let _ = writeln!(
            out,
            "{:>4}-{:<4} {:>7} {:>7}  {bar}",
            b * bucket_width,
            (b + 1) * bucket_width - 1,
            count,
            pct(share),
        );
    }
    out
}

/// Formats the Fig. 6 stacked-bar annotation "a : b" as a ratio string
/// normalized to `1 : x` (the paper writes e.g. "1:3.5").
pub fn ratio_label(minor: usize, major: usize) -> String {
    if minor == 0 {
        format!("0:{major}")
    } else {
        format!("1:{:.1}", major as f64 / minor as f64)
    }
}

/// Offsets hour-indexed timestamps for rendering (the campaign day starts
/// at 8am).
pub fn hour_label(start: ch_sim::SimTime) -> String {
    format!("{:02}:00", 8 + start.as_secs() / 3600)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> SummaryRow {
        SummaryRow {
            label: "MANA".into(),
            total_clients: 688,
            direct_clients: 103,
            broadcast_clients: 585,
            direct_connected: 27,
            broadcast_connected: 19,
        }
    }

    #[test]
    fn table_matches_paper_numbers() {
        // Table I's MANA row: h = 6.6%, h_b = 3.2% (paper rounds to 3%).
        let table = render_summary_table(&[row()]);
        assert!(table.contains("688"));
        assert!(table.contains("103/585"));
        assert!(table.contains("6.7%") || table.contains("6.6%"));
        assert!(table.contains("27 (direct); 19 (broadcast)"));
    }

    #[test]
    fn json_rows_carry_rates() {
        let json = summary_rows_to_json(&[row()]);
        assert!(json.contains("\"label\": \"MANA\""), "{json}");
        assert!(json.contains("\"total_clients\": 688"), "{json}");
        let h_field = json
            .lines()
            .find_map(|line| line.trim().strip_prefix("\"h\": "))
            .expect("h field present");
        let h: f64 = h_field.trim_end_matches(',').parse().unwrap();
        assert!((h - 46.0 / 688.0).abs() < 1e-12);
    }

    #[test]
    fn json_escapes_label() {
        let mut odd = row();
        odd.label = "quote\" slash\\ tab\t".into();
        let json = summary_rows_to_json(&[odd]);
        assert!(json.contains(r#""quote\" slash\\ tab\t""#), "{json}");
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct(0.159), "15.9%");
        assert_eq!(pct(0.0), "0.0%");
        assert_eq!(pct(1.0), "100.0%");
    }

    #[test]
    fn histogram_shares_sum_to_one() {
        let values = vec![40, 40, 40, 80, 80, 120];
        let h = render_histogram(&values, 40);
        // 3 of 6 in the 40-bucket = 50 %.
        assert!(h.contains("50.0%"), "{h}");
        assert!(h.contains("  40-79"), "{h}");
    }

    #[test]
    fn histogram_empty() {
        assert_eq!(render_histogram(&[], 40), "(no samples)\n");
    }

    #[test]
    fn ratio_labels() {
        assert_eq!(ratio_label(69, 243), "1:3.5");
        assert_eq!(ratio_label(0, 7), "0:7");
        assert_eq!(ratio_label(10, 10), "1:1.0");
    }

    #[test]
    fn series_renders_rows() {
        let s = render_series(("minute", "db"), &[(1, 10), (2, 20)]);
        assert_eq!(s.lines().count(), 3);
        assert!(s.contains("minute"));
    }

    #[test]
    fn hour_label_formats() {
        assert_eq!(hour_label(ch_sim::SimTime::ZERO), "08:00");
        assert_eq!(hour_label(ch_sim::SimTime::from_hours(4)), "12:00");
    }
}

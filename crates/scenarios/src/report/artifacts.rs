//! The per-artifact `render()` bodies: every DESIGN §4 table and figure
//! (plus the beyond-paper studies) renders here and nowhere else, so the
//! paper's exact text format has a single home.
//!
//! Each body is byte-for-byte the text the pre-registry drivers printed;
//! the golden tests in `tests/golden.rs` pin that against the committed
//! `results/*.txt`.

use crate::experiments::{
    AblationOutcome, CampaignOutcome, Fig1Outcome, Fig2Outcome, Fig4Outcome, SweepOutcome,
    Table1Outcome, Table2Outcome, Table3Outcome, Table4Outcome, WarmStartOutcome,
};
use crate::replicate::Replication;
use crate::report::{pct, ratio_label, render_histogram, render_summary_table};

impl Table1Outcome {
    /// Renders the table.
    pub fn render(&self) -> String {
        format!(
            "TABLE I: Comparing the results of KARMA and MANA (canteen, 30 min)\n{}",
            render_summary_table(&[self.karma.clone(), self.mana.clone()])
        )
    }
}

impl Table2Outcome {
    /// Renders the table plus the two §III-C observations.
    pub fn render(&self) -> String {
        format!(
            "TABLE II: MANA vs City-Hunter with the two §III improvements (canteen, 30 min)\n{}\n\
             broadcast hits from WiGLE: {}\n\
             mean SSIDs sent per connected broadcast client: {:.0}\n",
            render_summary_table(&[self.mana.clone(), self.prelim.clone()]),
            pct(self.wigle_share),
            self.mean_offered_connected,
        )
    }
}

impl Table3Outcome {
    /// Renders the table.
    pub fn render(&self) -> String {
        format!(
            "TABLE III: Preliminary City-Hunter in the subway passage (30 min)\n{}",
            render_summary_table(std::slice::from_ref(&self.prelim))
        )
    }
}

impl Table4Outcome {
    /// Renders the two rankings side by side.
    pub fn render(&self) -> String {
        let mut out = String::from("TABLE IV: Top 5 SSIDs selected using different criteria\n");
        out.push_str(&format!(
            "| {:<4} | {:<28} | {:<28} |\n",
            "Rank", "Top 5 by AP count", "Top 5 by heat value"
        ));
        out.push_str(&format!("|{}|\n", "-".repeat(70)));
        for i in 0..5 {
            let left = self
                .by_ap_count
                .get(i)
                .map(|(s, n)| format!("{s} ({n})"))
                .unwrap_or_default();
            let right = self
                .by_heat
                .get(i)
                .map(|(s, h)| format!("{s} ({h:.0})"))
                .unwrap_or_default();
            out.push_str(&format!("| {:<4} | {left:<28} | {right:<28} |\n", i + 1));
        }
        out
    }
}

impl Fig1Outcome {
    /// Renders both panels.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("Fig. 1(a): MANA SSID-database size and broadcast clients connected\n");
        out.push_str(&format!(
            "{:>8} {:>10} {:>12}\n",
            "minute", "db size", "connected"
        ));
        for ((m, db), (_, conn)) in self.db_size.iter().zip(&self.connected) {
            out.push_str(&format!("{m:>8} {db:>10} {conn:>12}\n"));
        }
        out.push_str("\nFig. 1(b): real-time broadcast hit rate h_b^r (2-minute windows)\n");
        out.push_str(&format!(
            "{:>8} {:>8} {:>8} {:>8}\n",
            "window", "hit", "seen", "h_b^r"
        ));
        for (w, hit, seen) in &self.realtime_hb {
            let rate = if *seen == 0 {
                0.0
            } else {
                *hit as f64 / *seen as f64
            };
            out.push_str(&format!("{w:>8} {hit:>8} {seen:>8} {:>8}\n", pct(rate)));
        }
        out
    }
}

impl Fig2Outcome {
    /// Renders both panels.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Fig. 2(a): SSIDs sent to each connected client (canteen) — n={}, mean={:.0}\n",
            self.canteen_offered_connected.len(),
            self.canteen_mean(),
        ));
        out.push_str(&render_histogram(&self.canteen_offered_connected, 40));
        out.push_str(&format!(
            "\nFig. 2(b): SSIDs tested per broadcast client (passage) — n={}\n",
            self.passage_offered_all.len()
        ));
        out.push_str(&render_histogram(&self.passage_offered_all, 40));
        out
    }
}

impl Fig4Outcome {
    /// Renders both panels.
    pub fn render(&self) -> String {
        let mut out = String::from("Fig. 4: photo-density heat map by district\n");
        for (name, panel) in &self.panels {
            out.push_str(&format!("\n--- {name} ---\n{panel}"));
        }
        out
    }
}

impl CampaignOutcome {
    /// Renders the Fig. 5 panels (client stacks + h/h_b per hour).
    pub fn render_fig5(&self) -> String {
        let mut out =
            String::from("Fig. 5: City-Hunter performance per venue and hour (8am-8pm)\n");
        for series in &self.venues {
            out.push_str(&format!(
                "\n--- {} (avg h={}, avg h_b={}) ---\n",
                series.venue.name(),
                pct(series.average_h()),
                pct(series.average_hb()),
            ));
            out.push_str(&format!(
                "{:>5} {:>7} {:>8} {:>8} {:>8} {:>8} {:>7} {:>7}\n",
                "hour", "total", "bc-conn", "bc-not", "dir-conn", "dir-not", "h", "h_b"
            ));
            for h in &series.hours {
                out.push_str(&format!(
                    "{:>5} {:>7} {:>8} {:>8} {:>8} {:>8} {:>7} {:>7}\n",
                    format!("{}:00", h.hour),
                    h.row.total_clients,
                    h.row.broadcast_connected,
                    h.row.broadcast_clients - h.row.broadcast_connected,
                    h.row.direct_connected,
                    h.row.direct_clients - h.row.direct_connected,
                    pct(h.row.h()),
                    pct(h.row.h_b()),
                ));
            }
        }
        out
    }

    /// Renders the Fig. 6 breakdowns (source and buffer stacks + ratios).
    pub fn render_fig6(&self) -> String {
        let mut out = String::from("Fig. 6: breakdown of SSIDs that hit broadcast clients\n");
        for series in &self.venues {
            out.push_str(&format!("\n--- {} ---\n", series.venue.name()));
            out.push_str(&format!(
                "{:>5} {:>7} {:>7} {:>9} | {:>7} {:>7} {:>9}\n",
                "hour", "wigle", "direct", "ratio", "pop", "fresh", "ratio"
            ));
            for h in &series.hours {
                let (wigle, direct, carrier) = h.sources;
                let (pop, fresh) = h.lanes;
                let _ = carrier;
                out.push_str(&format!(
                    "{:>5} {:>7} {:>7} {:>9} | {:>7} {:>7} {:>9}\n",
                    format!("{}:00", h.hour),
                    wigle,
                    direct,
                    ratio_label(direct, wigle),
                    pop,
                    fresh,
                    ratio_label(fresh, pop),
                ));
            }
        }
        out
    }

    /// Exports the campaign as CSV for external plotting: one row per
    /// venue-hour with the Fig. 5 stacks, rates, and the Fig. 6
    /// breakdowns.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "venue,hour,total_clients,broadcast_connected,broadcast_not,\
             direct_connected,direct_not,h,h_b,src_wigle,src_direct,\
             src_carrier,lane_popularity,lane_freshness\n",
        );
        for series in &self.venues {
            for h in &series.hours {
                let (wigle, direct, carrier) = h.sources;
                let (pop, fresh) = h.lanes;
                out.push_str(&format!(
                    "{},{},{},{},{},{},{},{:.4},{:.4},{},{},{},{},{}\n",
                    series.venue.name().replace(' ', "_"),
                    h.hour,
                    h.row.total_clients,
                    h.row.broadcast_connected,
                    h.row.broadcast_clients - h.row.broadcast_connected,
                    h.row.direct_connected,
                    h.row.direct_clients - h.row.direct_connected,
                    h.row.h(),
                    h.row.h_b(),
                    wigle,
                    direct,
                    carrier,
                    pop,
                    fresh,
                ));
            }
        }
        out
    }
}

impl AblationOutcome {
    /// Renders the matrix.
    pub fn render(&self) -> String {
        let mut out = String::from("Ablation: City-Hunter design choices (30-min runs)\n");
        out.push_str(&format!(
            "| {:<26} | {:>14} | {:>14} | {:>14} | {:>14} |\n",
            "variant", "canteen h", "canteen h_b", "passage h", "passage h_b"
        ));
        out.push_str(&format!("|{}|\n", "-".repeat(96)));
        for row in &self.rows {
            out.push_str(&format!(
                "| {:<26} | {:>14} | {:>14} | {:>14} | {:>14} |\n",
                row.label,
                pct(row.canteen.h()),
                pct(row.canteen.h_b()),
                pct(row.passage.h()),
                pct(row.passage.h_b()),
            ));
        }
        out
    }
}

impl SweepOutcome {
    /// Renders the sweep as an aligned table.
    pub fn render(&self) -> String {
        let mut out = format!("Sweep: {}\n", self.label);
        out.push_str(&format!(
            "{:>10} {:>9} {:>9} {:>10}\n",
            "x", "h_b", "±95%", "clients"
        ));
        for p in &self.points {
            out.push_str(&format!(
                "{:>10} {:>9} {:>9} {:>10.0}\n",
                p.x,
                pct(p.h_b.mean()),
                pct(1.96 * p.h_b.std_err()),
                p.clients.mean(),
            ));
        }
        out
    }
}

impl WarmStartOutcome {
    /// Renders the comparison.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Warm-start study: database re-initialized per test (paper, 'cold')\n\
             vs carried across tests ('warm'); canteen, consecutive 30-min slots\n\n",
        );
        out.push_str(&format!(
            "{:>8} {:>10} {:>10} {:>10}\n",
            "slot", "cold h_b", "warm h_b", "warm db"
        ));
        for (label, cold, warm, db) in &self.slots {
            out.push_str(&format!(
                "{label:>8} {:>10} {:>10} {db:>10}\n",
                pct(*cold),
                pct(*warm),
            ));
        }
        out
    }
}

impl Replication {
    /// Renders one paper-style line with confidence intervals.
    pub fn render_line(&self) -> String {
        format!(
            "{:<30} h = {:5.1}% ± {:4.1}%   h_b = {:5.1}% ± {:4.1}%   clients = {:6.0} ± {:4.0}   (n={})",
            self.label,
            100.0 * self.h.mean(),
            100.0 * 1.96 * self.h.std_err(),
            100.0 * self.h_b.mean(),
            100.0 * 1.96 * self.h_b.std_err(),
            self.clients.mean(),
            1.96 * self.clients.std_err(),
            self.rows.len(),
        )
    }
}

//! The experiment registry: one declarative [`ExperimentSpec`] per
//! DESIGN §4 artifact (Tables I–IV, Figures 1–6) and per beyond-paper
//! study, in a fixed canonical order.
//!
//! A spec names the artifact, its fleet campaign, its default manifest /
//! telemetry policy, and how to expand and render it; [`ExperimentSpec::run`]
//! executes any non-external entry against prepared [`ch_fleet::FleetOptions`]
//! and returns the rendered [`Artifact`]. The `ch-bench` `experiment`
//! binary (and every legacy per-artifact shim) dispatches through this
//! table; `reproduce_all` iterates it.
//!
//! Entries whose implementation needs the detector stack (`ch-defense`)
//! are marked [`ExperimentSpec::external`]: they are listed here — the
//! registry stays the single inventory — but executed by the `ch-bench`
//! driver, which has the extra dependency.

use ch_fleet::{FleetOptions, FleetStats};
use ch_sim::SimDuration;

use crate::ctx::CampaignCtx;
use crate::experiments as exp;
use crate::replicate::standard_study_fleet;
use crate::report::summary_rows_to_json;

/// What kind of artifact an experiment renders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputKind {
    /// A paper-style summary table.
    Table,
    /// A figure series / histogram / panel.
    Figure,
    /// A beyond-paper study (ablation, sweeps, replication, …).
    Study,
}

impl OutputKind {
    /// Short label for listings.
    pub fn label(self) -> &'static str {
        match self {
            OutputKind::Table => "table",
            OutputKind::Figure => "figure",
            OutputKind::Study => "study",
        }
    }
}

/// Tunable run parameters, shared by every experiment (each one reads
/// the fields it cares about and ignores the rest).
#[derive(Debug, Clone)]
pub struct RunParams {
    /// Campaign seed (legacy per-artifact world-seed masks apply on top).
    pub seed: u64,
    /// Campaign hours (Fig. 5/6 only; the paper's window is 8..=19).
    pub hours: Vec<usize>,
    /// Per-test minutes (Fig. 5/6 only; the paper's tests are an hour).
    pub minutes: u64,
    /// Replication factor override (replication / sweep studies).
    pub replicas: Option<usize>,
    /// Warm-start slots.
    pub slots: usize,
    /// Machine-readable output (`--json` / `--csv`) where supported.
    pub machine: bool,
    /// Shortened runs (`--quick`) where supported (the fault study).
    pub quick: bool,
}

impl RunParams {
    /// The defaults every legacy binary used.
    pub fn new(seed: u64) -> RunParams {
        RunParams {
            seed,
            hours: (8..20).collect(),
            minutes: 60,
            replicas: None,
            slots: 4,
            machine: false,
            quick: false,
        }
    }
}

/// One rendered artifact: the exact bytes the experiment prints to
/// stdout, plus the fleet stats when the experiment ran fleet jobs.
#[derive(Debug, Clone)]
pub struct Artifact {
    /// Registry id of the experiment that produced this.
    pub id: &'static str,
    /// The artifact text (already newline-terminated; print verbatim).
    pub text: String,
    /// Fleet stats, for experiments that expand to fleet jobs.
    pub stats: Option<FleetStats>,
}

/// One registry entry.
#[derive(Debug, Clone)]
pub struct ExperimentSpec {
    /// Stable id (`table1`, `fig5`, `ablation`, …) — the CLI handle.
    pub id: &'static str,
    /// Section title, as `reproduce_all` prints it (`"Table I"`).
    pub title: &'static str,
    /// Where the artifact lives in the paper (or `"beyond"` for studies).
    pub paper_ref: &'static str,
    /// Artifact kind.
    pub output: OutputKind,
    /// One-line description for `experiment --list`.
    pub summary: &'static str,
    /// Fleet campaign name, `None` for offline data products (no jobs).
    pub campaign: Option<&'static str>,
    /// Default resumable manifest path (committed campaigns only).
    pub default_manifest: Option<&'static str>,
    /// Whether `BENCH_fleet.json` telemetry is on by default.
    pub default_bench: bool,
    /// Default replication factor (0 where not applicable).
    pub default_replicas: usize,
    /// Whether `reproduce_all` includes this entry.
    pub in_reproduce_all: bool,
    /// Id of the entry whose campaign (and manifest) this one shares —
    /// `fig6` is a second view of `fig5`'s jobs.
    pub shares_campaign_with: Option<&'static str>,
    /// Runs in the `ch-bench` driver (needs `ch-defense` or wall-clock
    /// telemetry); `run` errors.
    pub external: bool,
}

/// The canonical registry, in DESIGN §4 order followed by the
/// beyond-paper studies.
pub static REGISTRY: &[ExperimentSpec] = &[
    ExperimentSpec {
        id: "table1",
        title: "Table I",
        paper_ref: "§II",
        output: OutputKind::Table,
        summary: "KARMA vs MANA in the canteen (2 jobs)",
        campaign: Some("table1"),
        default_manifest: None,
        default_bench: false,
        default_replicas: 0,
        in_reproduce_all: true,
        shares_campaign_with: None,
        external: false,
    },
    ExperimentSpec {
        id: "fig1",
        title: "Fig. 1",
        paper_ref: "§II",
        output: OutputKind::Figure,
        summary: "MANA database growth vs real-time hit rate (1 job)",
        campaign: Some("fig1"),
        default_manifest: None,
        default_bench: false,
        default_replicas: 0,
        in_reproduce_all: true,
        shares_campaign_with: None,
        external: false,
    },
    ExperimentSpec {
        id: "table2",
        title: "Table II",
        paper_ref: "§III",
        output: OutputKind::Table,
        summary: "MANA vs preliminary City-Hunter in the canteen (2 jobs)",
        campaign: Some("table2"),
        default_manifest: None,
        default_bench: false,
        default_replicas: 0,
        in_reproduce_all: true,
        shares_campaign_with: None,
        external: false,
    },
    ExperimentSpec {
        id: "table3",
        title: "Table III",
        paper_ref: "§III",
        output: OutputKind::Table,
        summary: "preliminary City-Hunter in the subway passage (1 job)",
        campaign: Some("table3"),
        default_manifest: None,
        default_bench: false,
        default_replicas: 0,
        in_reproduce_all: true,
        shares_campaign_with: None,
        external: false,
    },
    ExperimentSpec {
        id: "fig2",
        title: "Fig. 2",
        paper_ref: "§III",
        output: OutputKind::Figure,
        summary: "per-client SSID-depth distributions (2 jobs)",
        campaign: Some("fig2"),
        default_manifest: None,
        default_bench: false,
        default_replicas: 0,
        in_reproduce_all: true,
        shares_campaign_with: None,
        external: false,
    },
    ExperimentSpec {
        id: "fig3",
        title: "Fig. 3",
        paper_ref: "§IV",
        output: OutputKind::Figure,
        summary: "City-Hunter logic-flow diagram with live parameters (offline)",
        campaign: None,
        default_manifest: None,
        default_bench: false,
        default_replicas: 0,
        in_reproduce_all: false,
        shares_campaign_with: None,
        external: false,
    },
    ExperimentSpec {
        id: "table4",
        title: "Table IV",
        paper_ref: "§IV",
        output: OutputKind::Table,
        summary: "top-5 SSIDs by AP count vs heat value (offline)",
        campaign: None,
        default_manifest: None,
        default_bench: false,
        default_replicas: 0,
        in_reproduce_all: true,
        shares_campaign_with: None,
        external: false,
    },
    ExperimentSpec {
        id: "fig4",
        title: "Fig. 4",
        paper_ref: "§IV",
        output: OutputKind::Figure,
        summary: "photo-density heat map for two districts (offline)",
        campaign: None,
        default_manifest: None,
        default_bench: false,
        default_replicas: 0,
        in_reproduce_all: true,
        shares_campaign_with: None,
        external: false,
    },
    ExperimentSpec {
        id: "fig5",
        title: "Fig. 5",
        paper_ref: "§V",
        output: OutputKind::Figure,
        summary: "4-venue x 12-hour campaign, per-hour stacks (48 jobs)",
        campaign: Some("fig5"),
        default_manifest: Some("results/fleet_fig5.jsonl"),
        default_bench: true,
        default_replicas: 0,
        in_reproduce_all: true,
        shares_campaign_with: None,
        external: false,
    },
    ExperimentSpec {
        id: "fig6",
        title: "Fig. 6",
        paper_ref: "§V",
        output: OutputKind::Figure,
        summary: "hit-SSID breakdowns, same campaign as fig5 (48 jobs)",
        campaign: Some("fig5"),
        default_manifest: Some("results/fleet_fig5.jsonl"),
        default_bench: true,
        default_replicas: 0,
        in_reproduce_all: true,
        shares_campaign_with: Some("fig5"),
        external: false,
    },
    ExperimentSpec {
        id: "ablation",
        title: "Ablation",
        paper_ref: "beyond",
        output: OutputKind::Study,
        summary: "each design choice disabled in isolation (14 jobs)",
        campaign: Some("ablation"),
        default_manifest: Some("results/fleet_ablation.jsonl"),
        default_bench: true,
        default_replicas: 0,
        in_reproduce_all: true,
        shares_campaign_with: None,
        external: false,
    },
    ExperimentSpec {
        id: "warm_start",
        title: "Warm start",
        paper_ref: "beyond",
        output: OutputKind::Study,
        summary: "database carry-over vs per-test re-init (slots jobs + serial chain)",
        campaign: Some("warm-start"),
        default_manifest: Some("results/fleet_warm_start.jsonl"),
        default_bench: true,
        default_replicas: 0,
        in_reproduce_all: false,
        shares_campaign_with: None,
        external: false,
    },
    ExperimentSpec {
        id: "replication",
        title: "Replication",
        paper_ref: "beyond",
        output: OutputKind::Study,
        summary: "Tables I/II comparison with confidence intervals (venues x attackers x seeds)",
        campaign: Some("replication"),
        default_manifest: None,
        default_bench: false,
        default_replicas: 8,
        in_reproduce_all: false,
        shares_campaign_with: None,
        external: false,
    },
    ExperimentSpec {
        id: "sweep",
        title: "Sweeps",
        paper_ref: "beyond",
        output: OutputKind::Study,
        summary: "five sensitivity sweeps with replicated CIs (points x seeds)",
        campaign: Some("sweep"),
        default_manifest: None,
        default_bench: false,
        default_replicas: 5,
        in_reproduce_all: false,
        shares_campaign_with: None,
        external: false,
    },
    ExperimentSpec {
        id: "faults",
        title: "Faults",
        paper_ref: "beyond",
        output: OutputKind::Study,
        summary: "attackers under burst loss, corruption, churn and crashes (15 jobs)",
        campaign: Some("faults"),
        default_manifest: None,
        default_bench: false,
        default_replicas: 0,
        in_reproduce_all: false,
        shares_campaign_with: None,
        external: false,
    },
    ExperimentSpec {
        id: "arms_race",
        title: "Arms race",
        paper_ref: "beyond",
        output: OutputKind::Study,
        summary:
            "attacker evasion vs the ch-detect monitor (attacker x evasion x strictness, 36 jobs)",
        campaign: Some("arms-race"),
        default_manifest: None,
        default_bench: false,
        default_replicas: 0,
        in_reproduce_all: false,
        shares_campaign_with: None,
        external: false,
    },
    ExperimentSpec {
        id: "defense",
        title: "Defense",
        paper_ref: "beyond",
        output: OutputKind::Study,
        summary: "frames-to-detection per attacker generation (4 jobs)",
        campaign: Some("defense"),
        default_manifest: None,
        default_bench: false,
        default_replicas: 0,
        in_reproduce_all: false,
        shares_campaign_with: None,
        external: true,
    },
    ExperimentSpec {
        id: "defense_live",
        title: "Defense (live)",
        paper_ref: "beyond",
        output: OutputKind::Study,
        summary: "detector bank against a live canteen deployment (1 job)",
        campaign: Some("defense-live"),
        default_manifest: None,
        default_bench: false,
        default_replicas: 0,
        in_reproduce_all: false,
        shares_campaign_with: None,
        external: true,
    },
    ExperimentSpec {
        id: "city",
        title: "City",
        paper_ref: "beyond",
        output: OutputKind::Study,
        summary:
            "city-scale sharded day: districts x epochs with handoff mailboxes (--quick for CI)",
        campaign: Some("city"),
        default_manifest: None,
        default_bench: false,
        default_replicas: 0,
        in_reproduce_all: false,
        shares_campaign_with: None,
        external: true,
    },
];

/// Looks an experiment up by id.
pub fn find(id: &str) -> Option<&'static ExperimentSpec> {
    REGISTRY.iter().find(|spec| spec.id == id)
}

impl ExperimentSpec {
    /// Effective replication factor for this run.
    pub fn replicas(&self, params: &RunParams) -> usize {
        params.replicas.unwrap_or(self.default_replicas).max(1)
    }

    /// The manifest fingerprint parts: everything that changes job
    /// identity. A manifest written under different settings is never
    /// wrongly reused.
    pub fn fingerprint_parts(&self, params: &RunParams) -> Vec<String> {
        match self.id {
            "fig5" | "fig6" => {
                let hour_list: Vec<String> = params.hours.iter().map(ToString::to_string).collect();
                vec![
                    format!("seed={}", params.seed),
                    format!("minutes={}", params.minutes),
                    format!("hours={}", hour_list.join(",")),
                ]
            }
            "warm_start" => vec![
                format!("seed={}", params.seed),
                format!("slots={}", params.slots),
            ],
            "replication" | "sweep" => vec![
                format!("seed={}", params.seed),
                format!("replicas={}", self.replicas(params)),
            ],
            "faults" | "arms_race" => vec![
                format!("seed={}", params.seed),
                format!("quick={}", params.quick),
            ],
            "defense" => vec!["rounds=10".to_owned()],
            _ => vec![format!("seed={}", params.seed)],
        }
    }

    /// Runs the experiment and renders its artifact — exactly the bytes
    /// the dedicated binary prints to stdout.
    ///
    /// # Errors
    ///
    /// Fails if any fleet job failed, or for [`external`](Self::external)
    /// entries (the `ch-bench` driver runs those).
    pub fn run(
        &self,
        ctx: &CampaignCtx,
        params: &RunParams,
        opts: &FleetOptions,
    ) -> Result<Artifact, String> {
        let seed = params.seed;
        // A render body printed through the legacy binary's `println!`
        // gains exactly one trailing newline; the multi-section studies
        // assemble their full byte stream themselves.
        fn line(body: String) -> String {
            format!("{body}\n")
        }
        let (text, stats) = match self.id {
            "table1" => {
                let (outcome, stats) = exp::table1_fleet(ctx, seed, opts)?;
                let text = if params.machine {
                    summary_rows_to_json(&[outcome.karma.clone(), outcome.mana.clone()])
                } else {
                    outcome.render()
                };
                (line(text), Some(stats))
            }
            "fig1" => {
                let (outcome, stats) = exp::fig1_fleet(ctx, seed, opts)?;
                (line(outcome.render()), Some(stats))
            }
            "table2" => {
                let (outcome, stats) = exp::table2_fleet(ctx, seed, opts)?;
                let text = if params.machine {
                    summary_rows_to_json(&[outcome.mana.clone(), outcome.prelim.clone()])
                } else {
                    outcome.render()
                };
                (line(text), Some(stats))
            }
            "table3" => {
                let (outcome, stats) = exp::table3_fleet(ctx, seed, opts)?;
                let text = if params.machine {
                    summary_rows_to_json(std::slice::from_ref(&outcome.prelim))
                } else {
                    outcome.render()
                };
                (line(text), Some(stats))
            }
            "fig2" => {
                let (outcome, stats) = exp::fig2_fleet(ctx, seed, opts)?;
                (line(outcome.render()), Some(stats))
            }
            "fig3" => (line(exp::fig3()), None),
            "table4" => (line(exp::table4_with(ctx.data()).render()), None),
            "fig4" => (line(exp::fig4_with(ctx.data()).render()), None),
            "fig5" | "fig6" => {
                let (outcome, stats) = exp::campaign_fleet(
                    ctx,
                    seed,
                    &params.hours,
                    SimDuration::from_mins(params.minutes),
                    opts,
                )?;
                let text = if params.machine {
                    outcome.to_csv()
                } else if self.id == "fig5" {
                    outcome.render_fig5()
                } else {
                    outcome.render_fig6()
                };
                (line(text), Some(stats))
            }
            "ablation" => {
                let (outcome, stats) = exp::ablation_fleet(ctx, seed, opts)?;
                (line(outcome.render()), Some(stats))
            }
            "warm_start" => {
                let (outcome, stats) = exp::warm_start_fleet(ctx, seed, params.slots, opts)?;
                (line(outcome.render()), Some(stats))
            }
            "replication" => {
                let replicas = self.replicas(params);
                let (replications, stats) = standard_study_fleet(ctx, seed, replicas, opts)?;
                let mut text = format!("replication study: {replicas} seeds per condition\n\n");
                for replication in &replications {
                    text.push_str(&replication.render_line());
                    text.push('\n');
                }
                (text, Some(stats))
            }
            "faults" => {
                let (outcome, stats) = exp::faults_fleet(ctx, seed, params.quick, opts)?;
                (line(outcome.render()), Some(stats))
            }
            "arms_race" => {
                let (outcome, stats) = exp::arms_race_fleet(ctx, seed, params.quick, opts)?;
                (line(outcome.render()), Some(stats))
            }
            "sweep" => {
                let replicas = self.replicas(params);
                let (outcomes, stats) = exp::sweep_suite_fleet(ctx, seed, replicas, opts)?;
                let mut text = String::new();
                for outcome in &outcomes {
                    text.push_str(&outcome.render());
                    text.push('\n');
                }
                (text, Some(stats))
            }
            _ => {
                return Err(format!(
                    "experiment `{}` is external (detector stack or wall-clock \
                     telemetry); run it via the ch-bench `experiment` driver",
                    self.id
                ));
            }
        };
        Ok(Artifact {
            id: self.id,
            text,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_design_artifact_is_registered_exactly_once() {
        let expected = [
            "table1", "table2", "table3", "table4", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
        ];
        for id in expected {
            assert_eq!(
                REGISTRY.iter().filter(|s| s.id == id).count(),
                1,
                "artifact `{id}` must appear exactly once"
            );
        }
        // And ids are globally unique.
        let mut ids: Vec<&str> = REGISTRY.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), REGISTRY.len(), "registry ids must be unique");
    }

    #[test]
    fn shared_campaigns_agree_on_manifest_and_fingerprint() {
        for spec in REGISTRY {
            if let Some(other_id) = spec.shares_campaign_with {
                let other = find(other_id).expect("shared campaign target exists");
                assert_eq!(spec.campaign, other.campaign);
                assert_eq!(spec.default_manifest, other.default_manifest);
                let params = RunParams::new(1);
                assert_eq!(
                    spec.fingerprint_parts(&params),
                    other.fingerprint_parts(&params),
                    "shared campaigns must fingerprint identically"
                );
            }
        }
    }

    #[test]
    fn committed_manifest_fingerprints_are_stable() {
        // The fingerprint parts behind the committed results/*.jsonl
        // manifests; changing these silently invalidates the artifacts.
        let params = RunParams::new(1);
        let fig5 = find("fig5").unwrap();
        assert_eq!(
            fig5.fingerprint_parts(&params),
            vec![
                "seed=1".to_owned(),
                "minutes=60".to_owned(),
                "hours=8,9,10,11,12,13,14,15,16,17,18,19".to_owned(),
            ]
        );
        assert_eq!(
            find("ablation").unwrap().fingerprint_parts(&params),
            vec!["seed=1".to_owned()]
        );
        assert_eq!(
            find("warm_start").unwrap().fingerprint_parts(&params),
            vec!["seed=1".to_owned(), "slots=4".to_owned()]
        );
    }

    #[test]
    fn external_entries_refuse_to_run_here() {
        let ctx = CampaignCtx::build(&crate::world::CityData::standard(7));
        let spec = find("defense").unwrap();
        let err = spec
            .run(
                &ctx,
                &RunParams::new(1),
                &FleetOptions::in_memory("defense", 0),
            )
            .unwrap_err();
        assert!(err.contains("ch-bench"), "{err}");
    }

    #[test]
    fn reproduce_all_sections_match_the_legacy_report() {
        let sections: Vec<&str> = REGISTRY
            .iter()
            .filter(|s| s.in_reproduce_all)
            .map(|s| s.title)
            .collect();
        assert_eq!(
            sections,
            vec![
                "Table I",
                "Fig. 1",
                "Table II",
                "Table III",
                "Fig. 2",
                "Table IV",
                "Fig. 4",
                "Fig. 5",
                "Fig. 6",
                "Ablation",
            ]
        );
    }
}

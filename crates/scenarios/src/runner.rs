//! The discrete-event experiment loop.
//!
//! One run = one venue × one hour-block × one attacker, exactly like one
//! bar of Fig. 5. The loop is event-driven over phone scan instants:
//!
//! 1. group arrivals (NHPP) → per-person visits → phones with PNLs;
//! 2. at each scan instant, an in-range probing phone emits its probes;
//!    frames cross the lossy medium in both directions;
//! 3. the attacker picks lures; the probe-response burst is serialized on
//!    the channel, so at most ~40 responses land inside the client's
//!    listen window (§III-A) — enforced by airtime, not by fiat;
//! 4. a client that recognizes an open PNL entry runs the open-system
//!    auth + association handshake *through the byte-level codec*, and
//!    the hit is recorded with full provenance.

use ch_attack::ext::DeauthScheduler;
use ch_attack::{Attacker, Lure};
use ch_mobility::arrival::GroupArrivalProcess;
use ch_mobility::path::{visits_for_group, Visit};
use ch_mobility::{VenueKind, VenueTemplate};
use ch_phone::popgen::PopulationBuilder;
use ch_phone::scanner::ScanPlan;
use ch_phone::{JoinDecision, Phone};
use ch_sim::fault::{FaultAction, FaultPlan, FaultSpec};
use ch_sim::{EventQueue, LossModel, SimDuration, SimRng, SimTime};
use ch_wifi::codec;
use ch_wifi::mgmt::{
    AssocRequest, AssocResponse, Authentication, CapabilityInfo, MgmtFrame, ProbeResponse,
    StatusCode,
};
use ch_wifi::timing;
use ch_wifi::{Channel, MacAddr};

use crate::ctx::CampaignCtx;
use crate::detect::DetectionHarness;
use crate::metrics::ExperimentMetrics;
use crate::world::{CityData, World};

/// Which attacker to deploy: the declarative [`ch_attack::AttackerSpec`].
///
/// Historically this enum lived here; it is now the workspace-wide spec
/// layer in `ch-attack`, shared with the ablation/sweep/replication
/// studies and the `ch-defense` detection evaluation. The `AttackerKind`
/// name stays as an alias so existing call sites keep reading naturally.
pub use ch_attack::AttackerSpec as AttackerKind;

/// Configuration of one experiment run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunConfig {
    /// Venue to deploy in.
    pub venue: VenueKind,
    /// Wall-clock hour the run starts at (8 = the paper's first test).
    pub start_hour: usize,
    /// Run length (the paper uses 30-minute and 1-hour tests).
    pub duration: SimDuration,
    /// Attacker to deploy (database re-initialized per run, as in §V-A).
    pub attacker: AttackerKind,
    /// Master seed for this run.
    pub seed: u64,
    /// How many lures the attacker *sends* per broadcast probe. Defaults
    /// to the §III-A reception budget (40); values above it are sent but
    /// truncated by the client's listen window — the physical cap the
    /// sweep bench demonstrates.
    pub lure_budget: Option<usize>,
    /// Radio loss model override (default: `LossModel::urban_100mw()`).
    pub loss: Option<LossModel>,
    /// Population-parameter override (default: the venue's calibrated
    /// [`crate::world::CityData::population_params_for`] values). Used by
    /// failure-injection studies such as MAC randomization.
    pub population: Option<ch_phone::popgen::PopulationParams>,
    /// Scales the venue's group-arrival rate (default 1.0) — the crowd-
    /// density knob behind the density sweep.
    pub arrival_multiplier: Option<f64>,
    /// Deterministic fault injection (`ch_sim::fault`): bursty channel
    /// loss, frame corruption, client churn, scheduled attacker crashes.
    /// `None` (and `Some(FaultSpec::disabled())`) injects nothing and
    /// leaves every RNG stream and allocation of the run untouched.
    pub fault: Option<FaultSpec>,
    /// Rogue-AP detection (`ch-detect`): a passive monitor tapping the
    /// delivered frame stream, scored against ground truth at the end of
    /// the run. The detector consumes no randomness, so `None` (and
    /// `Some(DetectorSpec::disabled())`) leaves the run draw-for-draw
    /// identical to a detector-free build.
    pub detector: Option<ch_detect::DetectorSpec>,
}

impl RunConfig {
    /// A 30-minute canteen lunch test — the §II/§III setting.
    pub fn canteen_30min(attacker: AttackerKind, seed: u64) -> Self {
        RunConfig {
            venue: VenueKind::Canteen,
            start_hour: 12,
            duration: SimDuration::from_mins(30),
            attacker,
            seed,
            lure_budget: None,
            loss: None,
            population: None,
            arrival_multiplier: None,
            fault: None,
            detector: None,
        }
    }

    /// A 30-minute subway-passage test — the §III-C setting.
    pub fn passage_30min(attacker: AttackerKind, seed: u64) -> Self {
        RunConfig {
            venue: VenueKind::SubwayPassage,
            start_hour: 8,
            duration: SimDuration::from_mins(30),
            attacker,
            seed,
            lure_budget: None,
            loss: None,
            population: None,
            arrival_multiplier: None,
            fault: None,
            detector: None,
        }
    }
}

/// How often the attacker database size is sampled (Fig. 1(a)).
const DB_SAMPLE_STEP: SimDuration = SimDuration::from_secs(60);

struct Agent {
    phone: Phone,
    visit: Visit,
}

/// Reusable per-run arenas: the event queue, agent roster, and the
/// probe-loop lure/frame buffers. A fleet worker builds one scratch when
/// it starts and threads it through every job it executes
/// ([`ch_fleet::run_campaign_scoped`]), so the big per-run allocations
/// happen once per worker instead of once per job.
///
/// The scratch is an allocation cache only: [`run_experiment_ctx`]
/// clears every field before use, so results never depend on which runs
/// previously used it — a reused scratch and a fresh
/// [`RunScratch::default`] produce bit-identical metrics.
#[derive(Default)]
pub struct RunScratch {
    events: EventQueue<usize>,
    agents: Vec<Agent>,
    lures: Vec<Lure>,
    frame_buf: Vec<u8>,
}

impl RunScratch {
    /// A fresh, empty scratch (same as `Default`).
    pub fn new() -> RunScratch {
        RunScratch::default()
    }

    fn reset(&mut self) {
        // `reset`, not `clear`: the sequence counter rewinds too, so a
        // reused queue schedules exactly like a fresh one while keeping
        // its heap allocation.
        self.events.reset();
        self.agents.clear();
        self.lures.clear();
        self.frame_buf.clear();
    }
}

/// Observes every frame that crosses the simulated air — the hook behind
/// pcap capture (`ch_wifi::pcap`). Implementations must be cheap when
/// disabled; the runner skips frame construction entirely for observers
/// that report `enabled() == false`.
pub trait FrameObserver {
    /// `true` if frames should be materialized and delivered.
    fn enabled(&self) -> bool;

    /// Called for each delivered frame, in air order.
    fn observe(&mut self, at: SimTime, frame: &MgmtFrame);
}

/// The no-op observer used by [`run_experiment`].
impl FrameObserver for () {
    fn enabled(&self) -> bool {
        false
    }

    fn observe(&mut self, _at: SimTime, _frame: &MgmtFrame) {}
}

/// A [`FrameObserver`] that streams frames into a pcap capture.
///
/// Timestamps are clamped to be non-decreasing: the runner processes
/// per-client exchanges whole, so frames of two overlapping exchanges can
/// arrive with ~10 ms of mutual skew — a physical sniffer would have
/// captured them in arrival order, which is what the clamp restores.
pub struct PcapObserver<W: std::io::Write> {
    writer: ch_wifi::pcap::PcapWriter<W>,
    last_at: SimTime,
}

impl<W: std::io::Write> PcapObserver<W> {
    /// Starts a capture into `sink`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from writing the pcap header.
    pub fn new(sink: W) -> std::io::Result<Self> {
        Ok(PcapObserver {
            writer: ch_wifi::pcap::PcapWriter::new(sink)?,
            last_at: SimTime::ZERO,
        })
    }

    /// Finishes the capture and returns the sink.
    pub fn into_inner(self) -> W {
        self.writer.into_inner()
    }

    /// Frames captured so far.
    pub fn frames_written(&self) -> u64 {
        self.writer.frames_written()
    }
}

impl<W: std::io::Write> FrameObserver for PcapObserver<W> {
    fn enabled(&self) -> bool {
        true
    }

    fn observe(&mut self, at: SimTime, frame: &MgmtFrame) {
        self.last_at = self.last_at.max(at);
        self.writer
            .write_frame(self.last_at, frame)
            .expect("pcap sink write failed");
    }
}

/// A [`FrameObserver`] that retains delivered frames matching a filter,
/// with their delivery timestamps.
///
/// This is the in-memory sibling of [`PcapObserver`] — same clamp to
/// non-decreasing capture order — and the `ch-serve` sim stream source:
/// the service replays a run's client-side air traffic (probe requests,
/// association requests) as its input stream without a pcap round trip.
pub struct CollectingObserver {
    filter: fn(&MgmtFrame) -> bool,
    frames: Vec<(SimTime, MgmtFrame)>,
    last_at: SimTime,
}

impl CollectingObserver {
    /// Collects only frames for which `filter` returns `true`.
    pub fn new(filter: fn(&MgmtFrame) -> bool) -> Self {
        CollectingObserver {
            filter,
            frames: Vec::new(),
            last_at: SimTime::ZERO,
        }
    }

    /// Collects every delivered frame.
    pub fn all() -> Self {
        CollectingObserver::new(|_| true)
    }

    /// Frames collected so far, in (clamped) air order.
    pub fn frames(&self) -> &[(SimTime, MgmtFrame)] {
        &self.frames
    }

    /// Consumes the observer and returns the collected frames.
    pub fn into_frames(self) -> Vec<(SimTime, MgmtFrame)> {
        self.frames
    }
}

impl FrameObserver for CollectingObserver {
    fn enabled(&self) -> bool {
        true
    }

    fn observe(&mut self, at: SimTime, frame: &MgmtFrame) {
        self.last_at = self.last_at.max(at);
        if (self.filter)(frame) {
            self.frames.push((self.last_at, frame.clone()));
        }
    }
}

/// Runs one experiment and returns its metrics.
pub fn run_experiment(data: &CityData, config: &RunConfig) -> ExperimentMetrics {
    run_experiment_observed(data, config, &mut ())
}

/// [`run_experiment`] against a build-once [`CampaignCtx`], reusing a
/// caller-owned [`RunScratch`] — the campaign path. The attacker deploys
/// from the venue's precomputed plan, the population samples from the
/// shared pool, and the run's arenas come from (and return to) the
/// scratch; all three are wall-clock optimizations only, documented
/// bit-identical to the scan-based [`run_experiment`].
pub fn run_experiment_ctx(
    ctx: &CampaignCtx,
    config: &RunConfig,
    scratch: &mut RunScratch,
) -> ExperimentMetrics {
    let plan = ctx.plan(config.venue);
    let venue = venue_template(config);
    let population = config
        .population
        .clone()
        .unwrap_or_else(|| plan.population.clone());
    let builder = ctx.population_builder(population);
    let detection = config
        .detector
        .as_ref()
        .filter(|spec| !spec.is_disabled())
        .map(|spec| {
            // Plan prefixes equal smaller scans, so handing the shared
            // nearby-open list builds the identical harness to
            // `DetectionHarness::new` at this site.
            DetectionHarness::with_legit_ssids(
                spec.clone(),
                plan.attack
                    .nearby_open
                    .iter()
                    // ch-lint: allow(ssid-clone) — construction-time Arc
                    // refcount bump, off the probe hot path.
                    .map(|(ssid, _)| ssid.clone()),
            )
        });
    let mut attacker = config
        .attacker
        .build_from_plan(AttackerKind::default_bssid(), &plan.attack);
    run_core(
        config,
        venue,
        builder,
        detection,
        attacker.as_mut(),
        &mut (),
        scratch,
    )
}

/// [`run_experiment`] with a [`FrameObserver`] receiving every delivered
/// frame (probe requests, lure responses, join handshakes, deauths).
pub fn run_experiment_observed(
    data: &CityData,
    config: &RunConfig,
    observer: &mut dyn FrameObserver,
) -> ExperimentMetrics {
    let world = assemble_world(data, config);
    let mut attacker = config
        .attacker
        .build_default(&data.wigle, &data.heat, world.site);
    run_with(data, config, world, attacker.as_mut(), observer)
}

/// Runs one experiment against a *caller-owned* attacker, so state (the
/// SSID database, weights, buffer split) carries across runs — the
/// warm-start study. `config.attacker` is ignored.
pub fn run_experiment_with_attacker(
    data: &CityData,
    config: &RunConfig,
    attacker: &mut dyn Attacker,
) -> ExperimentMetrics {
    let world = assemble_world(data, config);
    run_with(data, config, world, attacker, &mut ())
}

/// The venue template with the config's arrival-rate override applied.
fn venue_template(config: &RunConfig) -> VenueTemplate {
    let mut venue = config.venue.template();
    if let Some(multiplier) = config.arrival_multiplier {
        assert!(
            multiplier.is_finite() && multiplier >= 0.0,
            "arrival multiplier must be a non-negative number"
        );
        venue.base_groups_per_hour *= multiplier;
    }
    venue
}

fn assemble_world(data: &CityData, config: &RunConfig) -> World {
    let mut world = World::assemble(data, config.venue);
    if let Some(population) = &config.population {
        world.population = population.clone();
    }
    world.venue = venue_template(config);
    world
}

fn run_with(
    data: &CityData,
    config: &RunConfig,
    world: World,
    attacker: &mut dyn Attacker,
    observer: &mut dyn FrameObserver,
) -> ExperimentMetrics {
    // Taking the world by value lets the population parameters move into
    // the builder instead of being cloned a second time (the first clone
    // is `World::assemble`'s).
    let World {
        venue,
        population,
        site,
    } = world;
    let builder = PopulationBuilder::new(&data.wigle, &data.heat, population);
    let detection = config
        .detector
        .as_ref()
        .filter(|spec| !spec.is_disabled())
        .map(|spec| DetectionHarness::new(spec.clone(), data, site));
    let mut scratch = RunScratch::default();
    run_core(
        config,
        venue,
        builder,
        detection,
        attacker,
        observer,
        &mut scratch,
    )
}

/// The data-free core loop: every expensive input (venue template,
/// population builder, detection harness, attacker) arrives pre-built,
/// and the run's arenas live in the caller's [`RunScratch`]. Both the
/// legacy per-call path and the shared-context campaign path land here,
/// so they cannot diverge.
#[allow(clippy::too_many_lines)]
fn run_core(
    config: &RunConfig,
    venue: VenueTemplate,
    mut builder: PopulationBuilder,
    mut detection: Option<DetectionHarness>,
    attacker: &mut dyn Attacker,
    observer: &mut dyn FrameObserver,
    scratch: &mut RunScratch,
) -> ExperimentMetrics {
    // Clear-before-use discipline: a reused scratch must be
    // indistinguishable from a fresh one.
    scratch.reset();
    let RunScratch {
        events,
        agents,
        lures,
        frame_buf,
    } = scratch;
    let root = SimRng::seed_from(config.seed);
    let mut rng_pop = root.fork("population");
    let mut rng_paths = root.fork("paths");
    let mut rng_scans = root.fork("scans");
    let mut rng_medium = root.fork("medium");

    // Fault injection: the plan owns forked RNG streams of its own, so a
    // run without faults (or with the all-off spec) is draw-for-draw and
    // allocation-for-allocation identical to one built before the fault
    // layer existed.
    let mut fault = config
        .fault
        .as_ref()
        .filter(|spec| !spec.is_disabled())
        .map(|spec| FaultPlan::new(spec.clone(), &root.fork("faults")));
    let mut agents_churned: u64 = 0;

    // --- Crowd and phones -------------------------------------------------
    let process = GroupArrivalProcess::new(&venue, config.start_hour, config.duration);
    let mut rng_arrivals = root.fork("arrival-stream");
    let groups = process.generate(&mut rng_arrivals);

    for group in &groups {
        let visits = visits_for_group(&venue, group, &mut rng_paths);
        let phones = builder.phones_for_group(group.group_id, visits.len(), &mut rng_pop);
        for (mut visit, phone) in visits.into_iter().zip(phones) {
            if let Some(plan) = fault.as_mut() {
                let (enter, exit) = plan.churn_visit(visit.enter_at, visit.exit_at);
                if (enter, exit) != (visit.enter_at, visit.exit_at) {
                    agents_churned += 1;
                    visit.enter_at = enter;
                    visit.exit_at = exit;
                }
            }
            let idx = agents.len();
            let plan =
                ScanPlan::for_window(&phone.scan, visit.enter_at, visit.exit_at, &mut rng_scans);
            for &t in plan.times() {
                events.push(t, idx);
            }
            agents.push(Agent { phone, visit });
        }
    }

    // --- Radio ------------------------------------------------------------
    let loss = config.loss.clone().unwrap_or_else(LossModel::urban_100mw);
    let attacker_pos = venue.attacker;
    let channel = Channel::default_attack_channel();
    let mut deauth = DeauthScheduler::default_30s();

    let mut metrics = ExperimentMetrics::new();
    metrics.stats.agents_churned = agents_churned;
    let end = SimTime::ZERO + config.duration;
    let mut next_sample = SimTime::ZERO;

    // `lures` and `frame_buf` are the hot-loop scratch, reused across
    // every probe of the run (and, via `RunScratch`, across runs): once
    // warm, answering a probe and encoding its frames touches no
    // allocator.
    while let Some((now, idx)) = events.pop_until(end) {
        while next_sample <= now {
            metrics.sample_db(next_sample, attacker.database_len());
            next_sample += DB_SAMPLE_STEP;
        }

        // Scheduled attacker lifecycle faults: checkpoints feed the next
        // warm restart; crashes kill and restart the attacker in place.
        if let Some(plan) = fault.as_mut() {
            while let Some(action) = plan.next_action(now) {
                match action {
                    FaultAction::Checkpoint => attacker.checkpoint(now),
                    FaultAction::Crash(mode) => {
                        attacker.on_crash_restart(now, mode);
                        metrics.stats.attacker_crashes += 1;
                    }
                }
            }
        }

        // Beacon plane: legitimate neighbourhood APs (and a beacon-cloning
        // attacker) beacon into the detector's tap. No-op without a
        // detector — beacons exist only for the monitor's benefit.
        if let Some(det) = detection.as_mut() {
            det.tick(now, attacker);
        }

        let agent = &mut agents[idx];
        let Some(position) = agent.visit.position_at(now) else {
            continue;
        };
        let distance = position.distance_to(attacker_pos);
        if distance >= loss.max_range_m() {
            // Out of radio range: the phone scans, nobody answers. Legacy
            // phones still advance their direct-probe cursor.
            let _ = agent.phone.probes_for_scan();
            continue;
        }

        // §V-B deauthentication of locally-connected clients.
        if agent.phone.connected_locally && attacker.deauth_enabled() {
            // The attacker observed this client's data traffic; spoof its
            // AP. One cooldown-limited frame per victim.
            let fake_ap = MacAddr::from_index([0x00, 0x90, 0x4c], 77);
            if let Some(frame) = deauth.try_deauth(now, agent.phone.mac, fake_ap) {
                // The spoofed frame must itself survive the channel.
                if rng_medium.chance(loss.delivery_prob(distance)) {
                    let deauth_frame = MgmtFrame::Deauthentication(frame);
                    codec::encode_into(&deauth_frame, &mut *frame_buf);
                    let mut eaten_by_burst = false;
                    if let Some(plan) = fault.as_mut() {
                        if plan.channel_drops() {
                            metrics.stats.frames_burst_dropped += 1;
                            eaten_by_burst = true;
                        } else if plan.corrupts() {
                            metrics.stats.frames_corrupted += 1;
                            plan.mutate(frame_buf);
                        }
                    }
                    if !eaten_by_burst {
                        // The victim only honours bytes that decode to
                        // the frame that was sent; a mangled deauth is
                        // counted and ignored, never a panic.
                        match codec::parse(frame_buf) {
                            Ok(parsed) if parsed == deauth_frame => {
                                if observer.enabled() {
                                    observer.observe(now, &deauth_frame);
                                }
                                if let Some(det) = detection.as_mut() {
                                    det.observe(now, &deauth_frame);
                                }
                                agent.phone.handle_deauth();
                                metrics.deauth_frames += 1;
                            }
                            _ => metrics.stats.frames_rejected += 1,
                        }
                    }
                }
            }
            continue; // it will probe at its next scan
        }

        if !agent.phone.is_probing() {
            continue;
        }
        let probes = agent.phone.probes_for_scan();
        let client_mac = agent.phone.mac;

        for probe in probes {
            // Uplink: the probe must reach the attacker.
            if !rng_medium.chance(loss.delivery_prob(distance)) {
                continue;
            }
            if let Some(plan) = fault.as_mut() {
                if plan.channel_drops() {
                    metrics.stats.frames_burst_dropped += 1;
                    continue;
                }
                if plan.corrupts() {
                    // The probe's bytes are mangled in flight. The
                    // attacker decodes what arrived; unless the mutation
                    // hit don't-care bytes, the frame is rejected and
                    // skipped — the attacker never learns this client
                    // probed at all.
                    metrics.stats.frames_corrupted += 1;
                    let frame = MgmtFrame::ProbeRequest(probe.clone());
                    codec::encode_into(&frame, &mut *frame_buf);
                    plan.mutate(frame_buf);
                    match codec::parse(frame_buf) {
                        Ok(parsed) if parsed == frame => {}
                        _ => {
                            metrics.stats.frames_rejected += 1;
                            continue;
                        }
                    }
                }
            }
            metrics.observe_probe(now, client_mac, probe.is_broadcast());
            if observer.enabled() || detection.is_some() {
                let frame = MgmtFrame::ProbeRequest(probe.clone());
                if observer.enabled() {
                    observer.observe(now, &frame);
                }
                if let Some(det) = detection.as_mut() {
                    det.observe(now, &frame);
                }
            }
            let budget = config
                .lure_budget
                .unwrap_or_else(timing::responses_per_scan);
            attacker.respond_to_probe_into(now, &probe, budget, &mut *lures);
            if lures.is_empty() {
                continue;
            }
            // Re-read the transmit BSSID per burst: MAC-rotation evasion
            // moves it mid-run (a plain attacker returns a constant).
            let bssid = attacker.bssid();
            if let Some(det) = detection.as_mut() {
                det.note_rogue(bssid);
            }
            if probe.is_broadcast() {
                metrics.record_offers(client_mac, lures.len());
            }

            // Downlink: serialize the response burst on the channel; only
            // frames inside the listen window can land, each subject to
            // loss.
            let deadline = timing::listen_deadline(now);
            let mut elapsed = now;
            for lure in lures.iter() {
                elapsed += timing::PROBE_RESPONSE_AIRTIME;
                if elapsed > deadline {
                    break; // window closed; rest of the burst is wasted
                }
                if !rng_medium.chance(loss.delivery_prob(distance)) {
                    continue;
                }
                if let Some(plan) = fault.as_mut() {
                    if plan.channel_drops() {
                        metrics.stats.frames_burst_dropped += 1;
                        continue;
                    }
                }
                let response =
                    ProbeResponse::open_lure(bssid, client_mac, lure.ssid.clone(), channel);
                if let Some(plan) = fault.as_mut() {
                    if plan.corrupts() {
                        // The lure arrives mangled; the phone rejects
                        // anything that doesn't decode to the frame the
                        // attacker sent and keeps listening.
                        metrics.stats.frames_corrupted += 1;
                        let frame = MgmtFrame::ProbeResponse(response.clone());
                        codec::encode_into(&frame, &mut *frame_buf);
                        plan.mutate(frame_buf);
                        match codec::parse(frame_buf) {
                            Ok(parsed) if parsed == frame => {}
                            _ => {
                                metrics.stats.frames_rejected += 1;
                                continue;
                            }
                        }
                    }
                }
                if observer.enabled() || detection.is_some() {
                    let frame = MgmtFrame::ProbeResponse(response.clone());
                    if observer.enabled() {
                        observer.observe(elapsed, &frame);
                    }
                    if let Some(det) = detection.as_mut() {
                        det.observe(elapsed, &frame);
                    }
                }
                if agent.phone.evaluate_offer(&response) == JoinDecision::Join {
                    if join_handshake(
                        &mut agent.phone,
                        bssid,
                        &response,
                        elapsed,
                        frame_buf,
                        observer,
                    ) {
                        attacker.on_hit(elapsed, client_mac, lure);
                        metrics.record_hit(elapsed, client_mac, lure);
                    }
                    break;
                }
            }
            if agent.phone.is_connected() {
                break;
            }
        }
    }

    while next_sample <= end {
        metrics.sample_db(next_sample, attacker.database_len());
        next_sample += DB_SAMPLE_STEP;
    }
    if let Some(det) = detection.as_mut() {
        // Catch the beacon plane up to the end of the run, then score the
        // verdict stream against ground truth.
        det.tick(end, attacker);
        metrics.detection = Some(det.report());
    }
    metrics
}

/// Runs the open-system join through the byte-level codec: auth request →
/// auth response → association request → association response. Returns
/// `true` (and connects the phone) on success; any codec failure would
/// surface here exactly as it would against real hardware.
fn join_handshake(
    phone: &mut Phone,
    bssid: MacAddr,
    offer: &ProbeResponse,
    at: SimTime,
    frame_buf: &mut Vec<u8>,
    observer: &mut dyn FrameObserver,
) -> bool {
    let legs = [
        MgmtFrame::Authentication(Authentication::request(phone.mac, bssid)),
        MgmtFrame::Authentication(Authentication::response(
            bssid,
            phone.mac,
            StatusCode::Success,
        )),
        MgmtFrame::AssocRequest(AssocRequest {
            source: phone.mac,
            bssid,
            ssid: offer.ssid.clone(),
            capabilities: CapabilityInfo::open_ap(),
        }),
        MgmtFrame::AssocResponse(AssocResponse {
            bssid,
            destination: phone.mac,
            status: StatusCode::Success,
            association_id: 1,
        }),
    ];
    for frame in &legs {
        codec::encode_into(frame, frame_buf);
        match codec::parse(frame_buf) {
            Ok(parsed) if &parsed == frame => {}
            _ => return false,
        }
        if observer.enabled() {
            observer.observe(at, frame);
        }
    }
    phone.connect_to(offer.ssid.clone());
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::ClientClass;
    use ch_attack::CityHunterConfig;

    fn short_run(attacker: AttackerKind, seed: u64) -> ExperimentMetrics {
        let data = CityData::standard(99);
        let config = RunConfig {
            venue: VenueKind::Canteen,
            start_hour: 12,
            duration: SimDuration::from_mins(10),
            attacker,
            seed,
            lure_budget: None,
            loss: None,
            population: None,
            arrival_multiplier: None,
            fault: None,
            detector: None,
        };
        run_experiment(&data, &config)
    }

    #[test]
    fn karma_never_hits_broadcast_clients() {
        let m = short_run(AttackerKind::Karma, 1);
        let row = m.summary("karma");
        assert!(row.total_clients > 50, "clients {}", row.total_clients);
        assert_eq!(row.broadcast_connected, 0, "KARMA h_b must be 0");
    }

    #[test]
    fn cityhunter_hits_broadcast_clients() {
        let m = short_run(AttackerKind::CityHunter(CityHunterConfig::default()), 2);
        let row = m.summary("ch");
        assert!(row.broadcast_connected > 0, "{row:?}");
        assert!(row.h_b() > 0.02, "h_b {}", row.h_b());
        assert!(row.h() >= row.h_b(), "h >= h_b always (§V-A)");
    }

    #[test]
    fn direct_clients_minority() {
        let m = short_run(AttackerKind::Mana, 3);
        let row = m.summary("mana");
        let direct_share = row.direct_clients as f64 / row.total_clients as f64;
        assert!(
            (0.08..0.25).contains(&direct_share),
            "direct share {direct_share}"
        );
    }

    #[test]
    fn db_series_sampled_and_monotone_for_mana() {
        let m = short_run(AttackerKind::Mana, 4);
        let series = m.db_series();
        assert!(series.len() >= 10);
        for pair in series.windows(2) {
            assert!(pair[0].1 <= pair[1].1, "MANA DB only grows");
            assert!(pair[0].0 < pair[1].0);
        }
        assert!(series.last().unwrap().1 > 0, "some SSIDs harvested");
    }

    #[test]
    fn ctx_path_matches_legacy_path_bit_for_bit() {
        // The tentpole's non-negotiable: deploying from the build-once
        // campaign context (shared plans, shared pool, reused scratch)
        // must be indistinguishable from the legacy scan-per-run path —
        // for every attacker generation, with the detector on, and with
        // the SAME scratch carried across runs so cross-run leakage
        // would surface as a mismatch.
        let data = CityData::standard(99);
        let ctx = CampaignCtx::build(&data);
        let mut scratch = RunScratch::new();
        for (attacker, seed) in [
            (AttackerKind::CityHunter(CityHunterConfig::default()), 21),
            (AttackerKind::Prelim, 22),
            (AttackerKind::Mana, 23),
            (
                AttackerKind::Karma.with_evasion(ch_attack::EvasionSpec::clone_beacons()),
                24,
            ),
        ] {
            let mut config = RunConfig::canteen_30min(attacker, seed);
            config.duration = SimDuration::from_mins(10);
            config.detector = Some(ch_detect::DetectorSpec::standard());
            let legacy = run_experiment(&data, &config);
            let shared = run_experiment_ctx(&ctx, &config, &mut scratch);
            assert_eq!(legacy.summary("x"), shared.summary("x"));
            assert_eq!(legacy.db_series(), shared.db_series());
            assert_eq!(legacy.offered_counts(false), shared.offered_counts(false));
            assert_eq!(legacy.detection, shared.detection);
        }
    }

    #[test]
    fn determinism_same_seed_same_metrics() {
        let a = short_run(AttackerKind::Prelim, 7);
        let b = short_run(AttackerKind::Prelim, 7);
        assert_eq!(a.summary("x"), b.summary("x"));
        assert_eq!(a.offered_counts(false), b.offered_counts(false));
        assert_eq!(a.db_series(), b.db_series());
    }

    #[test]
    fn different_seeds_differ() {
        let a = short_run(AttackerKind::Prelim, 8);
        let b = short_run(AttackerKind::Prelim, 9);
        assert_ne!(a.summary("x"), b.summary("x"));
    }

    #[test]
    fn offered_counts_bounded_by_database() {
        // The §III-A untried invariant: no client is ever offered more
        // SSIDs than the database holds, and single-scan clients get at
        // most one 40-SSID burst.
        let m = short_run(AttackerKind::Prelim, 10);
        let final_db = m.db_series().last().unwrap().1;
        let mut max_offered = 0;
        for (_, rec) in m.clients() {
            if rec.class == ClientClass::Broadcast {
                assert!(
                    rec.offered <= final_db,
                    "offered {} > db {final_db}",
                    rec.offered
                );
                max_offered = max_offered.max(rec.offered);
            }
        }
        assert!(max_offered >= timing::responses_per_scan(), "{max_offered}");
    }

    #[test]
    fn lure_budget_knob_caps_offers() {
        let data = CityData::standard(99);
        let config = RunConfig {
            lure_budget: Some(10),
            ..RunConfig {
                venue: VenueKind::Canteen,
                start_hour: 12,
                duration: SimDuration::from_mins(6),
                attacker: AttackerKind::Prelim,
                seed: 21,
                lure_budget: None,
                loss: None,
                population: None,
                arrival_multiplier: None,
                fault: None,
                detector: None,
            }
        };
        let m = run_experiment(&data, &config);
        // The first burst to any client is at most 10 SSIDs.
        let min_positive = m
            .offered_counts(false)
            .into_iter()
            .filter(|&c| c > 0)
            .min()
            .unwrap_or(0);
        assert!(min_positive <= 10, "{min_positive}");
    }

    #[test]
    fn loss_knob_shrinks_coverage() {
        let data = CityData::standard(99);
        let base = RunConfig {
            venue: VenueKind::SubwayPassage,
            start_hour: 8,
            duration: SimDuration::from_mins(6),
            attacker: AttackerKind::Karma,
            seed: 22,
            lure_budget: None,
            loss: None,
            population: None,
            arrival_multiplier: None,
            fault: None,
            detector: None,
        };
        let short = RunConfig {
            loss: Some(ch_sim::LossModel::new(10.0, 15.0, 0.97)),
            ..base.clone()
        };
        let wide = run_experiment(&data, &base).client_count();
        let narrow = run_experiment(&data, &short).client_count();
        assert!(
            narrow * 2 < wide,
            "15m range ({narrow}) must observe far fewer than 60m ({wide})"
        );
    }

    #[test]
    fn arrival_multiplier_scales_volume() {
        let data = CityData::standard(99);
        let base = RunConfig {
            venue: VenueKind::Canteen,
            start_hour: 12,
            duration: SimDuration::from_mins(10),
            attacker: AttackerKind::Karma,
            seed: 23,
            lure_budget: None,
            loss: None,
            population: None,
            arrival_multiplier: None,
            fault: None,
            detector: None,
        };
        let doubled = RunConfig {
            arrival_multiplier: Some(2.0),
            ..base.clone()
        };
        let n1 = run_experiment(&data, &base).client_count() as f64;
        let n2 = run_experiment(&data, &doubled).client_count() as f64;
        let ratio = n2 / n1;
        assert!((1.6..2.5).contains(&ratio), "ratio {ratio}");
    }

    fn fault_run(fault: Option<FaultSpec>, seed: u64) -> ExperimentMetrics {
        let data = CityData::standard(99);
        let config = RunConfig {
            duration: SimDuration::from_mins(10),
            seed,
            fault,
            ..RunConfig::canteen_30min(AttackerKind::CityHunter(CityHunterConfig::default()), seed)
        };
        run_experiment(&data, &config)
    }

    #[test]
    fn disabled_fault_spec_is_draw_neutral() {
        // `None` and the all-off spec must produce byte-identical runs:
        // the fault layer may not consume a single draw when disabled.
        let clean = fault_run(None, 31);
        let disabled = fault_run(Some(ch_sim::fault::FaultSpec::disabled()), 31);
        assert_eq!(clean.summary("x"), disabled.summary("x"));
        assert_eq!(clean.db_series(), disabled.db_series());
        assert_eq!(clean.offered_counts(false), disabled.offered_counts(false));
        assert_eq!(clean.stats, disabled.stats);
        assert_eq!(clean.stats, crate::metrics::RunnerStats::default());
    }

    #[test]
    fn faulted_runs_are_deterministic() {
        let spec = ch_sim::fault::FaultSpec {
            burst_loss: Some(ch_sim::fault::BurstLossSpec {
                p_enter_bad: 0.05,
                p_exit_bad: 0.2,
                loss_bad: 0.9,
            }),
            corruption: Some(ch_sim::fault::CorruptionSpec { rate: 0.2 }),
            churn: Some(ch_sim::fault::ChurnSpec { rate: 0.3 }),
            crash: Some(ch_sim::fault::CrashSpec {
                times_secs: vec![240],
                recovery: ch_sim::CrashMode::Warm,
                checkpoint_secs: Some(120),
            }),
        };
        let a = fault_run(Some(spec.clone()), 32);
        let b = fault_run(Some(spec), 32);
        assert_eq!(a.summary("x"), b.summary("x"));
        assert_eq!(a.db_series(), b.db_series());
        assert_eq!(a.stats, b.stats);
        assert!(a.stats.attacker_crashes == 1, "{:?}", a.stats);
    }

    #[test]
    fn corruption_counts_skips_and_degrades() {
        let spec = ch_sim::fault::FaultSpec {
            corruption: Some(ch_sim::fault::CorruptionSpec { rate: 1.0 }),
            ..ch_sim::fault::FaultSpec::disabled()
        };
        let clean = fault_run(None, 33);
        let noisy = fault_run(Some(spec), 33);
        assert!(noisy.stats.frames_corrupted > 0);
        assert!(noisy.stats.frames_rejected > 0);
        assert!(noisy.stats.frames_rejected <= noisy.stats.frames_corrupted);
        // Every frame is corrupted; only mutations confined to don't-care
        // bytes survive parse-and-compare, so both sides of the attack
        // degrade — but never panic.
        assert!(
            noisy.client_count() < clean.client_count(),
            "noisy {} vs clean {}",
            noisy.client_count(),
            clean.client_count()
        );
        let (n, c) = (noisy.summary("n"), clean.summary("c"));
        assert!(
            n.direct_connected + n.broadcast_connected < c.direct_connected + c.broadcast_connected,
            "noisy {n:?} vs clean {c:?}"
        );
    }

    #[test]
    fn burst_loss_eats_frames() {
        let spec = ch_sim::fault::FaultSpec {
            burst_loss: Some(ch_sim::fault::BurstLossSpec {
                p_enter_bad: 0.1,
                p_exit_bad: 0.1,
                loss_bad: 1.0,
            }),
            ..ch_sim::fault::FaultSpec::disabled()
        };
        let clean = fault_run(None, 34);
        let bursty = fault_run(Some(spec), 34);
        assert!(bursty.stats.frames_burst_dropped > 0);
        assert!(
            bursty.client_count() < clean.client_count(),
            "bursty {} vs clean {}",
            bursty.client_count(),
            clean.client_count()
        );
    }

    #[test]
    fn churn_truncates_visits() {
        let spec = ch_sim::fault::FaultSpec {
            churn: Some(ch_sim::fault::ChurnSpec { rate: 0.5 }),
            ..ch_sim::fault::FaultSpec::disabled()
        };
        let churned = fault_run(Some(spec), 35);
        assert!(churned.stats.agents_churned > 10, "{:?}", churned.stats);
    }

    #[test]
    fn crash_restarts_are_counted_and_survivable() {
        let spec = ch_sim::fault::FaultSpec {
            crash: Some(ch_sim::fault::CrashSpec {
                times_secs: vec![150, 300, 450],
                recovery: ch_sim::CrashMode::Cold,
                checkpoint_secs: None,
            }),
            ..ch_sim::fault::FaultSpec::disabled()
        };
        let crashed = fault_run(Some(spec), 36);
        assert_eq!(crashed.stats.attacker_crashes, 3);
        assert!(crashed.client_count() > 0);
    }

    fn detect_run(detector: Option<ch_detect::DetectorSpec>, seed: u64) -> ExperimentMetrics {
        let data = CityData::standard(99);
        let config = RunConfig {
            duration: SimDuration::from_mins(10),
            seed,
            detector,
            ..RunConfig::canteen_30min(AttackerKind::CityHunter(CityHunterConfig::default()), seed)
        };
        run_experiment(&data, &config)
    }

    #[test]
    fn disabled_detector_spec_is_draw_neutral() {
        // `None`, the disabled spec, and even an *armed* detector must
        // leave the attack byte-identical: the monitor is a passive tap
        // that consumes no randomness.
        let clean = detect_run(None, 41);
        let disabled = detect_run(Some(ch_detect::DetectorSpec::disabled()), 41);
        let armed = detect_run(Some(ch_detect::DetectorSpec::standard()), 41);
        assert_eq!(clean.summary("x"), disabled.summary("x"));
        assert_eq!(clean.db_series(), disabled.db_series());
        assert_eq!(clean.offered_counts(false), disabled.offered_counts(false));
        assert!(clean.detection.is_none());
        assert!(disabled.detection.is_none());
        assert_eq!(clean.summary("x"), armed.summary("x"));
        assert_eq!(clean.db_series(), armed.db_series());
        assert!(armed.detection.is_some());
    }

    #[test]
    fn detector_catches_the_unevasive_rogue() {
        let m = detect_run(Some(ch_detect::DetectorSpec::standard()), 42);
        let report = m.detection.unwrap();
        assert!(report.frames_observed > 0);
        assert_eq!(report.rogue_macs, 1, "{report:?}");
        assert!(report.legit_aps > 0, "{report:?}");
        assert!(report.detected(), "{report:?}");
        assert_eq!(
            report.flagged_legit, 0,
            "standard strictness must not flag legitimate APs: {report:?}"
        );
        assert!(report.time_to_detect().is_some());
        // Same seed, same verdict stream: the report is deterministic.
        let twin = detect_run(Some(ch_detect::DetectorSpec::standard()), 42);
        assert_eq!(twin.detection.unwrap(), report);
    }

    #[test]
    fn mac_rotation_multiplies_rogue_ground_truth() {
        let data = CityData::standard(99);
        let spec = AttackerKind::CityHunter(CityHunterConfig::default()).with_evasion(
            ch_attack::EvasionSpec::rotate_every(SimDuration::from_mins(2)),
        );
        let config = RunConfig {
            duration: SimDuration::from_mins(10),
            seed: 43,
            detector: Some(ch_detect::DetectorSpec::standard()),
            ..RunConfig::canteen_30min(spec, 43)
        };
        let report = run_experiment(&data, &config).detection.unwrap();
        assert!(report.rogue_macs > 1, "{report:?}");
    }

    #[test]
    fn deauth_extension_reaches_silent_clients() {
        let with = short_run(
            AttackerKind::CityHunter(CityHunterConfig {
                deauth: true,
                ..CityHunterConfig::default()
            }),
            11,
        );
        let without = short_run(AttackerKind::CityHunter(CityHunterConfig::default()), 11);
        assert!(with.deauth_frames > 0);
        assert_eq!(without.deauth_frames, 0);
        assert!(with.client_count() > 0 && without.client_count() > 0);
    }
}

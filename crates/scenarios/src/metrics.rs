//! Experiment metrics — every quantity the paper's tables and figures
//! report.

use ch_sim::DetHashMap;

use ch_attack::{Lure, LureLane, LureSource};
use ch_sim::{SimDuration, SimTime};
use ch_wifi::{MacAddr, Ssid};

/// How the paper classifies a client: by whether it ever disclosed SSIDs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClientClass {
    /// Sent only broadcast probes.
    Broadcast,
    /// Sent at least one direct probe.
    Direct,
}

/// A successful association.
#[derive(Debug, Clone, PartialEq)]
pub struct HitRecord {
    /// When the client associated.
    pub at: SimTime,
    /// The SSID that hit.
    pub ssid: Ssid,
    /// Database provenance of the SSID (Fig. 6 source axis).
    pub source: LureSource,
    /// Selection lane (Fig. 6 buffer axis).
    pub lane: LureLane,
}

/// Per-client record.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientRecord {
    /// Broadcast-only or direct.
    pub class: ClientClass,
    /// First probe received from this client.
    pub first_seen: SimTime,
    /// Distinct SSIDs offered (sent) to this client so far.
    pub offered: usize,
    /// The hit, if the client was lured.
    pub hit: Option<HitRecord>,
}

/// The one-line summary behind Tables I–III.
#[derive(Debug, Clone, PartialEq)]
pub struct SummaryRow {
    /// Attack / scenario label.
    pub label: String,
    /// Clients whose probes were received.
    pub total_clients: usize,
    /// … of which direct-probers.
    pub direct_clients: usize,
    /// … of which broadcast-only.
    pub broadcast_clients: usize,
    /// Direct-probers connected.
    pub direct_connected: usize,
    /// Broadcast-only clients connected.
    pub broadcast_connected: usize,
}

impl SummaryRow {
    /// Overall hit rate `h`.
    pub fn h(&self) -> f64 {
        if self.total_clients == 0 {
            0.0
        } else {
            (self.direct_connected + self.broadcast_connected) as f64 / self.total_clients as f64
        }
    }

    /// Broadcast hit rate `h_b`.
    pub fn h_b(&self) -> f64 {
        if self.broadcast_clients == 0 {
            0.0
        } else {
            self.broadcast_connected as f64 / self.broadcast_clients as f64
        }
    }
}

/// Degradation counters the runner keeps when fault injection is armed
/// (`ch_sim::fault`): every frame the faults ate or mangled, every visit
/// churned, every attacker restart absorbed. All zero on clean runs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunnerStats {
    /// Frames eaten by a Gilbert–Elliott loss burst (either direction).
    pub frames_burst_dropped: u64,
    /// Delivered frames whose bytes were mutated in flight.
    pub frames_corrupted: u64,
    /// Corrupted frames the receiver rejected (decode error or a decode
    /// that no longer matched the sender's frame) and skipped.
    pub frames_rejected: u64,
    /// Visits truncated or delayed by client churn.
    pub agents_churned: u64,
    /// Attacker crash/restart cycles injected.
    pub attacker_crashes: u64,
}

/// All data collected during one run.
#[derive(Debug, Clone, Default)]
pub struct ExperimentMetrics {
    clients: DetHashMap<MacAddr, ClientRecord>,
    /// `(time, database size)` samples.
    db_series: Vec<(SimTime, usize)>,
    /// Deauthentication frames emitted (§V-B accounting).
    pub deauth_frames: u64,
    /// Fault-injection degradation counters (all zero when faults are
    /// disabled).
    pub stats: RunnerStats,
    /// End-of-run rogue-AP detection score (`None` unless the run had a
    /// detector armed via `RunConfig::detector`).
    pub detection: Option<ch_detect::DetectionReport>,
}

impl ExperimentMetrics {
    /// Empty metrics.
    pub fn new() -> Self {
        ExperimentMetrics::default()
    }

    /// Records that a probe from `client` was received.
    pub fn observe_probe(&mut self, now: SimTime, client: MacAddr, broadcast: bool) {
        let rec = self.clients.entry(client).or_insert(ClientRecord {
            class: ClientClass::Broadcast,
            first_seen: now,
            offered: 0,
            hit: None,
        });
        if !broadcast {
            rec.class = ClientClass::Direct;
        }
    }

    /// Records `count` SSIDs offered to `client`.
    pub fn record_offers(&mut self, client: MacAddr, count: usize) {
        if let Some(rec) = self.clients.get_mut(&client) {
            rec.offered += count;
        }
    }

    /// Records a successful association.
    pub fn record_hit(&mut self, now: SimTime, client: MacAddr, lure: &Lure) {
        if let Some(rec) = self.clients.get_mut(&client) {
            if rec.hit.is_none() {
                rec.hit = Some(HitRecord {
                    at: now,
                    ssid: lure.ssid.clone(),
                    source: lure.source,
                    lane: lure.lane,
                });
            }
        }
    }

    /// Samples the attacker database size (Fig. 1(a)).
    pub fn sample_db(&mut self, now: SimTime, size: usize) {
        self.db_series.push((now, size));
    }

    /// All client records.
    pub fn clients(&self) -> impl Iterator<Item = (&MacAddr, &ClientRecord)> {
        self.clients.iter()
    }

    /// Number of clients observed.
    pub fn client_count(&self) -> usize {
        self.clients.len()
    }

    /// The Tables I–III summary.
    pub fn summary(&self, label: impl Into<String>) -> SummaryRow {
        let mut row = SummaryRow {
            label: label.into(),
            total_clients: 0,
            direct_clients: 0,
            broadcast_clients: 0,
            direct_connected: 0,
            broadcast_connected: 0,
        };
        for rec in self.clients.values() {
            row.total_clients += 1;
            match rec.class {
                ClientClass::Direct => {
                    row.direct_clients += 1;
                    if rec.hit.is_some() {
                        row.direct_connected += 1;
                    }
                }
                ClientClass::Broadcast => {
                    row.broadcast_clients += 1;
                    if rec.hit.is_some() {
                        row.broadcast_connected += 1;
                    }
                }
            }
        }
        row
    }

    /// The database-size series, ascending in time.
    pub fn db_series(&self) -> &[(SimTime, usize)] {
        &self.db_series
    }

    /// Cumulative broadcast-client connections sampled per `step`
    /// (Fig. 1(a)'s second curve).
    pub fn cumulative_broadcast_hits(
        &self,
        duration: SimDuration,
        step: SimDuration,
    ) -> Vec<(SimTime, usize)> {
        let mut hit_times: Vec<SimTime> = self
            .clients
            .values()
            .filter(|r| r.class == ClientClass::Broadcast)
            .filter_map(|r| r.hit.as_ref().map(|h| h.at))
            .collect();
        hit_times.sort_unstable();
        let mut out = Vec::new();
        let mut t = SimTime::ZERO + step;
        while t <= SimTime::ZERO + duration {
            let count = hit_times.partition_point(|&h| h <= t);
            out.push((t, count));
            t += step;
        }
        out
    }

    /// Real-time broadcast hit rate per window (Fig. 1(b)): clients are
    /// assigned to the window of their first probe; a client counts as hit
    /// if it was eventually lured.
    pub fn realtime_hb(
        &self,
        duration: SimDuration,
        window: SimDuration,
    ) -> Vec<(u64, usize, usize)> {
        let buckets = duration.as_micros().div_ceil(window.as_micros()) as usize;
        let mut totals = vec![0usize; buckets];
        let mut hits = vec![0usize; buckets];
        for rec in self.clients.values() {
            if rec.class != ClientClass::Broadcast {
                continue;
            }
            let b = (rec.first_seen.bucket(window) as usize).min(buckets.saturating_sub(1));
            totals[b] += 1;
            if rec.hit.is_some() {
                hits[b] += 1;
            }
        }
        (0..buckets)
            .map(|b| (b as u64, hits[b], totals[b]))
            .collect()
    }

    /// SSIDs-offered counts (Fig. 2): per broadcast client, optionally
    /// only the connected ones.
    pub fn offered_counts(&self, connected_only: bool) -> Vec<usize> {
        let mut counts: Vec<usize> = self
            .clients
            .values()
            .filter(|r| r.class == ClientClass::Broadcast)
            .filter(|r| !connected_only || r.hit.is_some())
            .map(|r| r.offered)
            .collect();
        counts.sort_unstable();
        counts
    }

    /// Fig. 6 source breakdown over broadcast hits:
    /// `(from_wigle, from_direct_probes, from_carrier)`.
    pub fn source_breakdown(&self) -> (usize, usize, usize) {
        let mut wigle = 0;
        let mut direct = 0;
        let mut carrier = 0;
        for rec in self.clients.values() {
            if rec.class != ClientClass::Broadcast {
                continue;
            }
            if let Some(hit) = &rec.hit {
                match hit.source {
                    LureSource::Wigle => wigle += 1,
                    LureSource::DirectProbe => direct += 1,
                    LureSource::Carrier => carrier += 1,
                }
            }
        }
        (wigle, direct, carrier)
    }

    /// Fig. 6 buffer breakdown over broadcast hits:
    /// `(popularity_side, freshness_side)` where each side includes its
    /// ghost list, as in the paper's stacked bars.
    pub fn lane_breakdown(&self) -> (usize, usize) {
        let mut popularity = 0;
        let mut freshness = 0;
        for rec in self.clients.values() {
            if rec.class != ClientClass::Broadcast {
                continue;
            }
            if let Some(hit) = &rec.hit {
                match hit.lane {
                    LureLane::Popularity | LureLane::PopularityGhost | LureLane::Database => {
                        popularity += 1
                    }
                    LureLane::Freshness | LureLane::FreshnessGhost => freshness += 1,
                    LureLane::DirectReply => {}
                }
            }
        }
        (popularity, freshness)
    }

    /// Mean SSIDs offered to connected broadcast clients (the "average
    /// 130" of §III-C).
    pub fn mean_offered_to_connected(&self) -> f64 {
        let counts = self.offered_counts(true);
        if counts.is_empty() {
            0.0
        } else {
            counts.iter().sum::<usize>() as f64 / counts.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac(i: u8) -> MacAddr {
        MacAddr::new([2, 0, 0, 0, 0, i])
    }

    fn lure(name: &str, source: LureSource, lane: LureLane) -> Lure {
        Lure::new(Ssid::new(name).unwrap(), source, lane)
    }

    #[test]
    fn classification_direct_wins() {
        let mut m = ExperimentMetrics::new();
        m.observe_probe(SimTime::ZERO, mac(1), true);
        m.observe_probe(SimTime::from_secs(5), mac(1), false);
        m.observe_probe(SimTime::from_secs(9), mac(1), true);
        let row = m.summary("t");
        assert_eq!(row.total_clients, 1);
        assert_eq!(row.direct_clients, 1);
        assert_eq!(row.broadcast_clients, 0);
    }

    #[test]
    fn summary_rates() {
        let mut m = ExperimentMetrics::new();
        for i in 0..10 {
            m.observe_probe(SimTime::ZERO, mac(i), true);
        }
        for i in 10..12 {
            m.observe_probe(SimTime::ZERO, mac(i), false);
        }
        m.record_hit(
            SimTime::from_secs(1),
            mac(0),
            &lure("A", LureSource::Wigle, LureLane::Popularity),
        );
        m.record_hit(
            SimTime::from_secs(2),
            mac(10),
            &lure("B", LureSource::DirectProbe, LureLane::DirectReply),
        );
        let row = m.summary("t");
        assert_eq!(row.broadcast_connected, 1);
        assert_eq!(row.direct_connected, 1);
        assert!((row.h() - 2.0 / 12.0).abs() < 1e-12);
        assert!((row.h_b() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn double_hit_ignored() {
        let mut m = ExperimentMetrics::new();
        m.observe_probe(SimTime::ZERO, mac(1), true);
        let first = lure("A", LureSource::Wigle, LureLane::Popularity);
        m.record_hit(SimTime::from_secs(1), mac(1), &first);
        m.record_hit(
            SimTime::from_secs(2),
            mac(1),
            &lure("B", LureSource::DirectProbe, LureLane::Freshness),
        );
        let rec = m.clients().next().unwrap().1;
        assert_eq!(rec.hit.as_ref().unwrap().ssid.as_str(), "A");
    }

    #[test]
    fn hit_for_unknown_client_is_noop() {
        let mut m = ExperimentMetrics::new();
        m.record_hit(
            SimTime::ZERO,
            mac(1),
            &lure("A", LureSource::Wigle, LureLane::Popularity),
        );
        assert_eq!(m.client_count(), 0);
    }

    #[test]
    fn realtime_hb_buckets_by_first_seen() {
        let mut m = ExperimentMetrics::new();
        // Two clients in window 0, one hit; one client in window 1, hit.
        m.observe_probe(SimTime::from_secs(10), mac(1), true);
        m.observe_probe(SimTime::from_secs(20), mac(2), true);
        m.observe_probe(SimTime::from_mins(3), mac(3), true);
        m.record_hit(
            SimTime::from_mins(5),
            mac(1),
            &lure("A", LureSource::Wigle, LureLane::Popularity),
        );
        m.record_hit(
            SimTime::from_mins(4),
            mac(3),
            &lure("B", LureSource::Wigle, LureLane::Popularity),
        );
        let windows = m.realtime_hb(SimDuration::from_mins(6), SimDuration::from_mins(2));
        assert_eq!(windows.len(), 3);
        assert_eq!(windows[0], (0, 1, 2));
        assert_eq!(windows[1], (1, 1, 1));
        assert_eq!(windows[2], (2, 0, 0));
    }

    #[test]
    fn cumulative_hits_monotone() {
        let mut m = ExperimentMetrics::new();
        for i in 0..5 {
            m.observe_probe(SimTime::from_secs(i), mac(i as u8), true);
            m.record_hit(
                SimTime::from_mins(i * 5 + 1),
                mac(i as u8),
                &lure("A", LureSource::Wigle, LureLane::Popularity),
            );
        }
        let series =
            m.cumulative_broadcast_hits(SimDuration::from_mins(30), SimDuration::from_mins(5));
        assert_eq!(series.len(), 6);
        for pair in series.windows(2) {
            assert!(pair[0].1 <= pair[1].1);
        }
        assert_eq!(series.last().unwrap().1, 5);
    }

    #[test]
    fn breakdowns() {
        let mut m = ExperimentMetrics::new();
        let cases = [
            (1u8, LureSource::Wigle, LureLane::Popularity),
            (2, LureSource::Wigle, LureLane::PopularityGhost),
            (3, LureSource::DirectProbe, LureLane::Freshness),
            (4, LureSource::Wigle, LureLane::FreshnessGhost),
            (5, LureSource::Carrier, LureLane::Popularity),
        ];
        for (i, source, lane) in cases {
            m.observe_probe(SimTime::ZERO, mac(i), true);
            m.record_hit(SimTime::from_secs(1), mac(i), &lure("X", source, lane));
        }
        assert_eq!(m.source_breakdown(), (3, 1, 1));
        assert_eq!(m.lane_breakdown(), (3, 2));
    }

    #[test]
    fn offered_counts_and_mean() {
        let mut m = ExperimentMetrics::new();
        m.observe_probe(SimTime::ZERO, mac(1), true);
        m.observe_probe(SimTime::ZERO, mac(2), true);
        m.record_offers(mac(1), 40);
        m.record_offers(mac(1), 40);
        m.record_offers(mac(2), 40);
        m.record_hit(
            SimTime::from_secs(1),
            mac(1),
            &lure("A", LureSource::Wigle, LureLane::Popularity),
        );
        assert_eq!(m.offered_counts(false), vec![40, 80]);
        assert_eq!(m.offered_counts(true), vec![80]);
        assert_eq!(m.mean_offered_to_connected(), 80.0);
    }

    #[test]
    fn empty_metrics_safe() {
        let m = ExperimentMetrics::new();
        let row = m.summary("empty");
        assert_eq!(row.h(), 0.0);
        assert_eq!(row.h_b(), 0.0);
        assert!(m.offered_counts(false).is_empty());
        assert_eq!(m.mean_offered_to_connected(), 0.0);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    fn mac(i: u8) -> MacAddr {
        MacAddr::new([2, 0, 0, 0, 0, i])
    }

    proptest! {
        /// The summary is always an exact partition of the observed
        /// clients, for any interleaving of observations, offers and hits.
        #[test]
        fn prop_summary_partitions_clients(
            events in proptest::collection::vec(
                (0u8..24, 0u8..3, 0u64..1_800),
                0..300,
            ),
        ) {
            let mut m = ExperimentMetrics::new();
            for (client, kind, at_secs) in events {
                let at = SimTime::from_secs(at_secs);
                match kind {
                    0 => m.observe_probe(at, mac(client), true),
                    1 => m.observe_probe(at, mac(client), false),
                    _ => m.record_hit(
                        at,
                        mac(client),
                        &Lure::new(
                            Ssid::new("X").expect("short"),
                            LureSource::Wigle,
                            LureLane::Popularity,
                        ),
                    ),
                }
            }
            let row = m.summary("prop");
            prop_assert_eq!(
                row.total_clients,
                row.direct_clients + row.broadcast_clients
            );
            prop_assert_eq!(row.total_clients, m.client_count());
            prop_assert!(row.direct_connected <= row.direct_clients);
            prop_assert!(row.broadcast_connected <= row.broadcast_clients);
            prop_assert!(row.h() <= 1.0 && row.h() >= 0.0);
            prop_assert!(row.h_b() <= 1.0 && row.h_b() >= 0.0);
            // Breakdown totals never exceed broadcast connections.
            let (w, d, c) = m.source_breakdown();
            prop_assert_eq!(w + d + c, row.broadcast_connected);
            let (p, f) = m.lane_breakdown();
            prop_assert_eq!(p + f, row.broadcast_connected);
        }

        /// Real-time windows partition the broadcast clients exactly.
        #[test]
        fn prop_realtime_windows_partition(
            firsts in proptest::collection::vec(0u64..1_800, 1..100),
        ) {
            let mut m = ExperimentMetrics::new();
            for (i, &at_secs) in firsts.iter().enumerate() {
                m.observe_probe(
                    SimTime::from_secs(at_secs),
                    MacAddr::from_index([2, 0, 0], i as u32 + 1),
                    true,
                );
            }
            let windows =
                m.realtime_hb(SimDuration::from_mins(30), SimDuration::from_mins(2));
            let seen: usize = windows.iter().map(|(_, _, n)| n).sum();
            prop_assert_eq!(seen, firsts.len());
            prop_assert_eq!(windows.len(), 15);
        }
    }
}

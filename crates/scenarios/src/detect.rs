//! Runner-side glue for the `ch-detect` rogue-AP detector.
//!
//! A [`DetectionHarness`] drops a [`Detector`] into the venue as a passive
//! monitor: it taps the same delivered frames the clients see, surrounds
//! the rogue with a handful of *legitimate* neighbourhood APs (beaconing
//! the open SSIDs WiGLE knows near the deployment site, so signature rules
//! have an honest baseline to discriminate against), and keeps the
//! ground-truth MAC sets the end-of-run [`DetectionReport`] is scored
//! with. Everything here is schedule arithmetic over [`Cadence`]s — the
//! harness consumes no randomness, so a run with the detector enabled is
//! draw-for-draw identical to the same run without it.

use ch_attack::Attacker;
use ch_detect::{DetectionReport, Detector, DetectorSpec};
use ch_geo::GeoPoint;
use ch_sim::{det_hash_set, Cadence, DetHashSet, SimDuration, SimTime};
use ch_wifi::mgmt::{Beacon, MgmtFrame};
use ch_wifi::{Channel, MacAddr, Ssid};

use crate::world::CityData;

/// How many legitimate neighbourhood APs the harness instantiates.
const LEGIT_AP_COUNT: usize = 6;

/// OUI the legitimate harness APs are minted under (a vendor block unused
/// by both the rogue defaults and the rotation pool).
const LEGIT_AP_OUI: [u8; 3] = [0xf0, 0x9f, 0xc2];

/// Sampled beacon cadence of the legitimate APs. Real APs beacon every
/// ~100 TU; the monitor-side view is sampled far sparser to keep the tap
/// cheap, and the detector's interval fingerprint reads the frame's
/// `interval_tu` field rather than inter-arrival times.
const LEGIT_BEACON_PERIOD: SimDuration = SimDuration::from_secs(5);

struct LegitAp {
    bssid: MacAddr,
    ssid: Ssid,
    beacons: Cadence,
}

/// One run's detection stack: the detector, the legitimate-AP beacon
/// sources, and the ground-truth bookkeeping.
pub struct DetectionHarness {
    detector: Detector,
    legit_aps: Vec<LegitAp>,
    rogue: DetHashSet<MacAddr>,
    legit: DetHashSet<MacAddr>,
}

impl DetectionHarness {
    /// Builds the harness for a run deployed at `site`: the legitimate APs
    /// advertise the open SSIDs WiGLE places nearest the site — the same
    /// neighbourhood the attacker's WiGLE seed (and the beacon-cloning
    /// evasion) draws from.
    pub fn new(spec: DetectorSpec, data: &CityData, site: GeoPoint) -> Self {
        Self::with_legit_ssids(spec, data.wigle.nearest_open_ssids(site, LEGIT_AP_COUNT))
    }

    /// [`DetectionHarness::new`] from an already-resolved legitimate-AP
    /// SSID list — the campaign path, where the per-venue WiGLE scan ran
    /// once at context-build time. Only the first [`LEGIT_AP_COUNT`]
    /// entries are used, so handing the (longer) shared nearby-open plan
    /// list builds the identical harness.
    pub fn with_legit_ssids(spec: DetectorSpec, ssids: impl IntoIterator<Item = Ssid>) -> Self {
        let mut legit = det_hash_set();
        let legit_aps: Vec<LegitAp> = ssids
            .into_iter()
            .take(LEGIT_AP_COUNT)
            .enumerate()
            .map(|(i, ssid)| {
                let bssid = MacAddr::from_index(LEGIT_AP_OUI, 9000 + i as u32);
                legit.insert(bssid);
                LegitAp {
                    bssid,
                    ssid,
                    // Staggered starts so the legitimate beacons interleave
                    // instead of arriving as one synchronized block.
                    beacons: Cadence::new(
                        LEGIT_BEACON_PERIOD,
                        SimTime::ZERO + SimDuration::from_millis(700 * i as u64),
                    ),
                }
            })
            .collect();
        DetectionHarness {
            detector: Detector::new(spec),
            legit_aps,
            rogue: det_hash_set(),
            legit,
        }
    }

    /// Feeds one delivered frame to the detector (the runner calls this at
    /// every frame-observer tap site).
    pub fn observe(&mut self, at: SimTime, frame: &MgmtFrame) {
        self.detector.observe(at, frame);
    }

    /// Registers a MAC the rogue actually transmitted under (re-read per
    /// response burst, because MAC-rotation evasion changes it mid-run).
    pub fn note_rogue(&mut self, bssid: MacAddr) {
        self.rogue.insert(bssid);
    }

    /// Advances the beacon plane to `now`: due legitimate-AP beacons are
    /// emitted into the detector, and the attacker is polled for a beacon
    /// of its own (non-`None` only under beacon-cloning evasion).
    pub fn tick(&mut self, now: SimTime, attacker: &mut dyn Attacker) {
        for ap in &mut self.legit_aps {
            while let Some(due) = ap.beacons.pop_due(now) {
                // ch-lint: allow(ssid-clone) — Arc refcount bump on the
                // beacon plane, outside the probe hot path.
                let beacon = Beacon::open(ap.bssid, ap.ssid.clone(), Channel::default());
                self.detector.observe(due, &MgmtFrame::Beacon(beacon));
            }
        }
        if let Some(beacon) = attacker.beacon(now) {
            self.rogue.insert(beacon.bssid);
            self.detector.observe(now, &MgmtFrame::Beacon(beacon));
        }
    }

    /// Read access to the live detector (verdict stream, flag times).
    pub fn detector(&self) -> &Detector {
        &self.detector
    }

    /// Scores the finished run against the ground-truth MAC sets.
    pub fn report(&self) -> DetectionReport {
        DetectionReport::evaluate(&self.detector, &self.rogue, &self.legit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ch_attack::{AttackerSpec, EvasionSpec};

    #[test]
    fn harness_beacons_legit_aps_deterministically() {
        let data = CityData::standard(99);
        let site = data.site_for(ch_mobility::VenueKind::Canteen);
        let mut attacker = AttackerSpec::Karma.build_default(&data.wigle, &data.heat, site);
        let mut harness = DetectionHarness::new(DetectorSpec::standard(), &data, site);
        harness.tick(SimTime::from_secs(30), attacker.as_mut());
        // Six legitimate APs, each caught up to t=30 s.
        assert_eq!(harness.detector().profiled_count(), LEGIT_AP_COUNT);
        let frames = harness.detector().frames_observed();
        assert!(frames >= 6 * 6, "{frames}"); // ≥ six beacons per AP
                                              // KARMA never beacons, so the rogue set stays empty until a
                                              // response burst registers it.
        assert!(harness.report().rogue_macs == 0);
        harness.note_rogue(attacker.bssid());
        assert_eq!(harness.report().rogue_macs, 1);
        assert_eq!(harness.report().legit_aps, LEGIT_AP_COUNT as u64);
        // A second harness over the same inputs sees the identical stream.
        let mut twin = DetectionHarness::new(DetectorSpec::standard(), &data, site);
        twin.tick(SimTime::from_secs(30), attacker.as_mut());
        assert_eq!(twin.detector().frames_observed(), frames);
    }

    #[test]
    fn harness_hears_cloned_beacons_from_evasive_attacker() {
        let data = CityData::standard(99);
        let site = data.site_for(ch_mobility::VenueKind::Canteen);
        let spec = AttackerSpec::Karma.with_evasion(EvasionSpec::clone_beacons());
        let mut attacker = spec.build_default(&data.wigle, &data.heat, site);
        let mut harness = DetectionHarness::new(DetectorSpec::standard(), &data, site);
        harness.tick(SimTime::from_secs(10), attacker.as_mut());
        // The cloning attacker beaconed, so its MAC entered ground truth
        // without any probe-response burst.
        let report = harness.report();
        assert_eq!(report.rogue_macs, 1);
        assert!(harness.detector().profiled_count() > LEGIT_AP_COUNT);
    }
}

//! The build-once campaign context.
//!
//! A campaign is dozens of jobs over the *same* city: same WiGLE
//! snapshot, same heat map, same four venues. Before this module every
//! job re-derived the expensive per-venue artifacts at construction
//! time — the attacker's WiGLE seed scans (`top_by_heat`,
//! `nearest_open_ssids`, `top_by_ap_count`) and the population sampling
//! pool — multiplying identical work by the job count and starving the
//! parallel pool on allocator traffic.
//!
//! [`CampaignCtx::build`] hoists all of it: one [`VenuePlan`] per venue
//! (deployment site, population parameters, precomputed
//! [`AttackSitePlan`] seed lists) plus one shared [`PublicSsidPool`],
//! built once and shared by reference (`Arc`) across every worker.
//! Jobs then deploy attackers via [`ch_attack::AttackerSpec::build_from_plan`]
//! and populations via [`PopulationBuilder::with_shared_pool`] — both
//! documented bit-identical to their scan-based equivalents, so the
//! context changes wall-clock only, never results.

use std::sync::Arc;

use ch_attack::AttackSitePlan;
use ch_mobility::VenueKind;
use ch_phone::popgen::{PopulationBuilder, PopulationParams, PublicSsidPool};

use crate::world::CityData;

/// Everything venue-specific a job needs, precomputed once per campaign.
#[derive(Debug, Clone)]
pub struct VenuePlan {
    /// The venue this plan serves.
    pub venue: VenueKind,
    /// Deployment site in the city frame.
    pub site: ch_geo::GeoPoint,
    /// The venue's calibrated population parameters.
    pub population: PopulationParams,
    /// Precomputed WiGLE seed lists for attackers deployed at
    /// [`site`](Self::site) (and, via prefix, the detector's
    /// legitimate-AP neighbourhood).
    pub attack: AttackSitePlan,
}

/// Immutable, `Arc`-backed shared state for one campaign: the city data,
/// one [`VenuePlan`] per venue, and the shared population sampling pool.
///
/// Build it once per campaign ([`CampaignCtx::build`]) and share it by
/// reference across workers; everything inside is read-only.
#[derive(Debug, Clone)]
pub struct CampaignCtx {
    data: Arc<CityData>,
    /// One plan per venue, in [`VenueKind::ALL`] order.
    plans: Vec<VenuePlan>,
    /// The shared public-SSID sampling pool, built at
    /// [`pool_alpha`](Self::pool_alpha).
    pool: Arc<PublicSsidPool>,
    /// The attractiveness alpha the shared pool was built at.
    pool_alpha: f64,
}

impl CampaignCtx {
    /// Builds the context: runs every per-venue WiGLE scan and the
    /// population-pool construction exactly once.
    pub fn build(data: &CityData) -> CampaignCtx {
        Self::from_arc(Arc::new(data.clone()))
    }

    /// [`CampaignCtx::build`] over an already-shared [`CityData`].
    pub fn from_arc(data: Arc<CityData>) -> CampaignCtx {
        let plans = VenueKind::ALL
            .into_iter()
            .map(|venue| {
                let site = data.site_for(venue);
                VenuePlan {
                    venue,
                    site,
                    population: data.population_params_for(venue),
                    attack: AttackSitePlan::build(&data.wigle, &data.heat, site),
                }
            })
            .collect();
        let pool_alpha = PopulationParams::default().attractiveness_alpha;
        let pool = Arc::new(PublicSsidPool::build(&data.wigle, &data.heat, pool_alpha));
        CampaignCtx {
            data,
            plans,
            pool,
            pool_alpha,
        }
    }

    /// The shared city data.
    pub fn data(&self) -> &CityData {
        &self.data
    }

    /// The precomputed plan for `venue`.
    pub fn plan(&self, venue: VenueKind) -> &VenuePlan {
        self.plans
            .iter()
            .find(|p| p.venue == venue)
            .unwrap_or_else(|| {
                ch_sim::invariant::violation(file!(), line!(), "campaign context missing a venue")
            })
    }

    /// A population builder for `params`: reuses the shared pool when
    /// `params` samples at the pool's alpha (every stock configuration
    /// does), falling back to a fresh build for exotic alpha overrides —
    /// either way the distribution, and therefore every draw, is
    /// identical to `PopulationBuilder::new`.
    pub fn population_builder(&self, params: PopulationParams) -> PopulationBuilder {
        if params.attractiveness_alpha == self.pool_alpha {
            PopulationBuilder::with_shared_pool(Arc::clone(&self.pool), params)
        } else {
            PopulationBuilder::new(&self.data.wigle, &self.data.heat, params)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_covers_every_venue_with_matching_sites() {
        let data = CityData::standard(99);
        let ctx = CampaignCtx::build(&data);
        for venue in VenueKind::ALL {
            let plan = ctx.plan(venue);
            assert_eq!(plan.venue, venue);
            assert_eq!(plan.site, data.site_for(venue));
            assert_eq!(
                plan.population.connected_locally,
                data.population_params_for(venue).connected_locally
            );
            assert!(!plan.attack.by_heat.is_empty());
            assert!(!plan.attack.nearby_open.is_empty());
            assert!(!plan.attack.by_ap_count.is_empty());
        }
    }

    #[test]
    fn shared_pool_matches_a_fresh_build() {
        let data = CityData::standard(99);
        let ctx = CampaignCtx::build(&data);
        let params = data.population_params_for(VenueKind::Canteen);
        let shared = ctx.population_builder(params.clone());
        let fresh = PopulationBuilder::new(&data.wigle, &data.heat, params);
        assert_eq!(shared.pool().len(), fresh.pool().len());
        // An alpha override falls back to a private pool build.
        let exotic = PopulationParams {
            attractiveness_alpha: 0.9,
            ..PopulationParams::default()
        };
        let private = ctx.population_builder(exotic);
        assert!(!std::ptr::eq(
            private.pool(),
            ctx.population_builder(PopulationParams::default()).pool()
        ));
    }
}

//! One driver per table and figure of the paper.
//!
//! Every driver is deterministic in its seed, builds (or receives) the
//! standard city, runs the corresponding deployment(s), and returns a
//! structured outcome with a `render()` that prints the same rows/series
//! the paper reports. The `ch-bench` binaries are thin wrappers over these
//! functions.

use ch_attack::CityHunterConfig;
use ch_fleet::{FleetOptions, FleetStats};
use ch_mobility::VenueKind;
use ch_sim::{SimDuration, SimTime};
use ch_wifi::Ssid;

use crate::fleet::{attacker_seed, job_seed, run_jobs, slug, CampaignJob, JobRecord};
use crate::metrics::SummaryRow;
use crate::report::{pct, ratio_label, render_histogram, render_summary_table};
use crate::runner::{run_experiment, AttackerKind, RunConfig};
use crate::world::CityData;

/// The fixed city seed: all experiments share one synthetic Hong Kong.
pub const CITY_SEED: u64 = 0x0C17_F00D;

/// Builds the shared city (cached by the caller when running several
/// experiments).
pub fn standard_city() -> CityData {
    CityData::standard(CITY_SEED)
}

// ---------------------------------------------------------------------------
// Table I
// ---------------------------------------------------------------------------

/// Outcome of the Table I reproduction.
#[derive(Debug, Clone)]
pub struct Table1Outcome {
    /// KARMA's 30-minute canteen row.
    pub karma: SummaryRow,
    /// MANA's 30-minute canteen row.
    pub mana: SummaryRow,
}

impl Table1Outcome {
    /// Renders the table.
    pub fn render(&self) -> String {
        format!(
            "TABLE I: Comparing the results of KARMA and MANA (canteen, 30 min)\n{}",
            render_summary_table(&[self.karma.clone(), self.mana.clone()])
        )
    }
}

/// Table I: KARMA vs MANA in the canteen over lunch (the paper ran them
/// simultaneously 40 m apart; independent runs model that separation).
pub fn table1_with(data: &CityData, seed: u64) -> Table1Outcome {
    let karma = run_experiment(
        data,
        &RunConfig::canteen_30min(AttackerKind::Karma, seed ^ 0xA1),
    )
    .summary("KARMA");
    let mana = run_experiment(
        data,
        &RunConfig::canteen_30min(AttackerKind::Mana, seed ^ 0xA2),
    )
    .summary("MANA");
    Table1Outcome { karma, mana }
}

/// [`table1_with`] over a freshly built standard city.
pub fn table1(seed: u64) -> Table1Outcome {
    table1_with(&standard_city(), seed)
}

// ---------------------------------------------------------------------------
// Fig. 1
// ---------------------------------------------------------------------------

/// Outcome of the Fig. 1 reproduction (MANA's database-growth pathology).
#[derive(Debug, Clone)]
pub struct Fig1Outcome {
    /// `(minute, database size)` — Fig. 1(a), first curve.
    pub db_size: Vec<(u64, usize)>,
    /// `(minute, cumulative broadcast clients connected)` — Fig. 1(a),
    /// second curve.
    pub connected: Vec<(u64, usize)>,
    /// `(2-minute window, hits, clients)` — Fig. 1(b), real-time h_b^r.
    pub realtime_hb: Vec<(u64, usize, usize)>,
}

impl Fig1Outcome {
    /// Renders both panels.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("Fig. 1(a): MANA SSID-database size and broadcast clients connected\n");
        out.push_str(&format!(
            "{:>8} {:>10} {:>12}\n",
            "minute", "db size", "connected"
        ));
        for ((m, db), (_, conn)) in self.db_size.iter().zip(&self.connected) {
            out.push_str(&format!("{m:>8} {db:>10} {conn:>12}\n"));
        }
        out.push_str("\nFig. 1(b): real-time broadcast hit rate h_b^r (2-minute windows)\n");
        out.push_str(&format!(
            "{:>8} {:>8} {:>8} {:>8}\n",
            "window", "hit", "seen", "h_b^r"
        ));
        for (w, hit, seen) in &self.realtime_hb {
            let rate = if *seen == 0 {
                0.0
            } else {
                *hit as f64 / *seen as f64
            };
            out.push_str(&format!("{w:>8} {hit:>8} {seen:>8} {:>8}\n", pct(rate)));
        }
        out
    }
}

/// Fig. 1: a 30-minute MANA canteen run, sampled per minute / 2-minute
/// windows.
pub fn fig1_with(data: &CityData, seed: u64) -> Fig1Outcome {
    let duration = SimDuration::from_mins(30);
    let metrics = run_experiment(
        data,
        &RunConfig::canteen_30min(AttackerKind::Mana, seed ^ 0xF1),
    );
    let db_size = metrics
        .db_series()
        .iter()
        .map(|(t, s)| (t.as_secs() / 60, *s))
        .collect();
    let connected = metrics
        .cumulative_broadcast_hits(duration, SimDuration::from_mins(1))
        .into_iter()
        .map(|(t, c)| (t.as_secs() / 60, c))
        .collect();
    let realtime_hb = metrics.realtime_hb(duration, SimDuration::from_mins(2));
    Fig1Outcome {
        db_size,
        connected,
        realtime_hb,
    }
}

/// [`fig1_with`] over a freshly built standard city.
pub fn fig1(seed: u64) -> Fig1Outcome {
    fig1_with(&standard_city(), seed)
}

// ---------------------------------------------------------------------------
// Table II / Table III / Fig. 2
// ---------------------------------------------------------------------------

/// Outcome of the Table II reproduction.
#[derive(Debug, Clone)]
pub struct Table2Outcome {
    /// MANA's canteen row (re-run).
    pub mana: SummaryRow,
    /// Preliminary City-Hunter's canteen row.
    pub prelim: SummaryRow,
    /// Share of broadcast hits whose SSID came from WiGLE (§III-C reports
    /// ~74 %).
    pub wigle_share: f64,
    /// Mean SSIDs sent to each connected broadcast client (§III-C: ~130).
    pub mean_offered_connected: f64,
}

impl Table2Outcome {
    /// Renders the table plus the two §III-C observations.
    pub fn render(&self) -> String {
        format!(
            "TABLE II: MANA vs City-Hunter with the two §III improvements (canteen, 30 min)\n{}\n\
             broadcast hits from WiGLE: {}\n\
             mean SSIDs sent per connected broadcast client: {:.0}\n",
            render_summary_table(&[self.mana.clone(), self.prelim.clone()]),
            pct(self.wigle_share),
            self.mean_offered_connected,
        )
    }
}

/// Table II: MANA vs the preliminary City-Hunter in the canteen.
pub fn table2_with(data: &CityData, seed: u64) -> Table2Outcome {
    let mana = run_experiment(
        data,
        &RunConfig::canteen_30min(AttackerKind::Mana, seed ^ 0xB1),
    )
    .summary("MANA");
    let metrics = run_experiment(
        data,
        &RunConfig::canteen_30min(AttackerKind::Prelim, seed ^ 0xB2),
    );
    let prelim = metrics.summary("City-Hunter (prelim)");
    let (wigle, direct, carrier) = metrics.source_breakdown();
    let total_hits = (wigle + direct + carrier).max(1);
    Table2Outcome {
        mana,
        prelim,
        wigle_share: wigle as f64 / total_hits as f64,
        mean_offered_connected: metrics.mean_offered_to_connected(),
    }
}

/// [`table2_with`] over a freshly built standard city.
pub fn table2(seed: u64) -> Table2Outcome {
    table2_with(&standard_city(), seed)
}

/// Outcome of the Table III reproduction.
#[derive(Debug, Clone)]
pub struct Table3Outcome {
    /// Preliminary City-Hunter's subway-passage row.
    pub prelim: SummaryRow,
}

impl Table3Outcome {
    /// Renders the table.
    pub fn render(&self) -> String {
        format!(
            "TABLE III: Preliminary City-Hunter in the subway passage (30 min)\n{}",
            render_summary_table(std::slice::from_ref(&self.prelim))
        )
    }
}

/// Table III: the preliminary City-Hunter deployed in the passage.
pub fn table3_with(data: &CityData, seed: u64) -> Table3Outcome {
    let prelim = run_experiment(
        data,
        &RunConfig::passage_30min(AttackerKind::Prelim, seed ^ 0xC1),
    )
    .summary("Subway Passage");
    Table3Outcome { prelim }
}

/// [`table3_with`] over a freshly built standard city.
pub fn table3(seed: u64) -> Table3Outcome {
    table3_with(&standard_city(), seed)
}

/// Outcome of the Fig. 2 reproduction.
#[derive(Debug, Clone)]
pub struct Fig2Outcome {
    /// Fig. 2(a): SSIDs sent to each *connected* broadcast client in the
    /// canteen (sorted ascending).
    pub canteen_offered_connected: Vec<usize>,
    /// Fig. 2(b): SSIDs sent to *all* broadcast clients in the passage.
    pub passage_offered_all: Vec<usize>,
}

impl Fig2Outcome {
    /// Mean of panel (a), the paper's "average of 130".
    pub fn canteen_mean(&self) -> f64 {
        if self.canteen_offered_connected.is_empty() {
            return 0.0;
        }
        self.canteen_offered_connected.iter().sum::<usize>() as f64
            / self.canteen_offered_connected.len() as f64
    }

    /// Renders both panels.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Fig. 2(a): SSIDs sent to each connected client (canteen) — n={}, mean={:.0}\n",
            self.canteen_offered_connected.len(),
            self.canteen_mean(),
        ));
        out.push_str(&render_histogram(&self.canteen_offered_connected, 40));
        out.push_str(&format!(
            "\nFig. 2(b): SSIDs tested per broadcast client (passage) — n={}\n",
            self.passage_offered_all.len()
        ));
        out.push_str(&render_histogram(&self.passage_offered_all, 40));
        out
    }
}

/// Fig. 2: the per-client SSID-depth distributions behind Tables II/III.
pub fn fig2_with(data: &CityData, seed: u64) -> Fig2Outcome {
    let canteen = run_experiment(
        data,
        &RunConfig::canteen_30min(AttackerKind::Prelim, seed ^ 0xB2),
    );
    let passage = run_experiment(
        data,
        &RunConfig::passage_30min(AttackerKind::Prelim, seed ^ 0xC1),
    );
    Fig2Outcome {
        canteen_offered_connected: canteen.offered_counts(true),
        passage_offered_all: passage
            .offered_counts(false)
            .into_iter()
            .filter(|&c| c > 0)
            .collect(),
    }
}

/// [`fig2_with`] over a freshly built standard city.
pub fn fig2(seed: u64) -> Fig2Outcome {
    fig2_with(&standard_city(), seed)
}

// ---------------------------------------------------------------------------
// Table IV / Fig. 4 (offline data products)
// ---------------------------------------------------------------------------

/// Outcome of the Table IV reproduction.
#[derive(Debug, Clone)]
pub struct Table4Outcome {
    /// Top-5 SSIDs by raw AP count.
    pub by_ap_count: Vec<(Ssid, usize)>,
    /// Top-5 SSIDs by heat value.
    pub by_heat: Vec<(Ssid, f64)>,
}

impl Table4Outcome {
    /// Renders the two rankings side by side.
    pub fn render(&self) -> String {
        let mut out = String::from("TABLE IV: Top 5 SSIDs selected using different criteria\n");
        out.push_str(&format!(
            "| {:<4} | {:<28} | {:<28} |\n",
            "Rank", "Top 5 by AP count", "Top 5 by heat value"
        ));
        out.push_str(&format!("|{}|\n", "-".repeat(70)));
        for i in 0..5 {
            let left = self
                .by_ap_count
                .get(i)
                .map(|(s, n)| format!("{s} ({n})"))
                .unwrap_or_default();
            let right = self
                .by_heat
                .get(i)
                .map(|(s, h)| format!("{s} ({h:.0})"))
                .unwrap_or_default();
            out.push_str(&format!("| {:<4} | {left:<28} | {right:<28} |\n", i + 1));
        }
        out
    }
}

/// Table IV: ranking the city's open SSIDs by AP count vs heat value.
pub fn table4_with(data: &CityData) -> Table4Outcome {
    Table4Outcome {
        by_ap_count: data.wigle.top_by_ap_count(5, true),
        by_heat: data.wigle.top_by_heat(&data.heat, 5),
    }
}

/// [`table4_with`] over a freshly built standard city.
pub fn table4() -> Table4Outcome {
    table4_with(&standard_city())
}

/// Outcome of the Fig. 4 reproduction: ASCII heat-map panels for two
/// districts (Kowloon, Lantao Island).
#[derive(Debug, Clone)]
pub struct Fig4Outcome {
    /// `(district name, rendered panel)`.
    pub panels: Vec<(String, String)>,
}

impl Fig4Outcome {
    /// Renders both panels.
    pub fn render(&self) -> String {
        let mut out = String::from("Fig. 4: photo-density heat map by district\n");
        for (name, panel) in &self.panels {
            out.push_str(&format!("\n--- {name} ---\n{panel}"));
        }
        out
    }
}

/// Fig. 4: the heat map for the two districts the paper shows.
pub fn fig4_with(data: &CityData) -> Fig4Outcome {
    let panels = data
        .city
        .districts()
        .iter()
        .filter(|d| d.name == "Kowloon" || d.name == "Lantao Island")
        .map(|d| (d.name.clone(), data.heat.render_ascii(d.area, 2)))
        .collect();
    Fig4Outcome { panels }
}

/// [`fig4_with`] over a freshly built standard city.
pub fn fig4() -> Fig4Outcome {
    fig4_with(&standard_city())
}

// ---------------------------------------------------------------------------
// Fig. 5 / Fig. 6 (the 4-venue × 12-hour campaign)
// ---------------------------------------------------------------------------

/// One hourly test in one venue.
#[derive(Debug, Clone)]
pub struct HourResult {
    /// Wall-clock start hour (8..=19).
    pub hour: usize,
    /// The Fig. 5 stacked-bar numbers.
    pub row: SummaryRow,
    /// Fig. 6 source breakdown `(wigle, direct, carrier)` of broadcast hits.
    pub sources: (usize, usize, usize),
    /// Fig. 6 buffer breakdown `(popularity side, freshness side)`.
    pub lanes: (usize, usize),
}

/// A venue's 12 hourly tests.
#[derive(Debug, Clone)]
pub struct VenueSeries {
    /// The venue.
    pub venue: VenueKind,
    /// Results for hours 8..=19.
    pub hours: Vec<HourResult>,
}

impl VenueSeries {
    /// Mean broadcast hit rate across the hours (the §V-A per-venue
    /// averages: passage 12 %, canteen 17.9 %, shopping 14 %, railway
    /// 16.6 %).
    pub fn average_hb(&self) -> f64 {
        if self.hours.is_empty() {
            return 0.0;
        }
        self.hours.iter().map(|h| h.row.h_b()).sum::<f64>() / self.hours.len() as f64
    }

    /// Mean overall hit rate across the hours.
    pub fn average_h(&self) -> f64 {
        if self.hours.is_empty() {
            return 0.0;
        }
        self.hours.iter().map(|h| h.row.h()).sum::<f64>() / self.hours.len() as f64
    }
}

/// Outcome of the Fig. 5 + Fig. 6 campaign.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// One series per venue, in Fig. 5 order.
    pub venues: Vec<VenueSeries>,
}

impl CampaignOutcome {
    /// Renders the Fig. 5 panels (client stacks + h/h_b per hour).
    pub fn render_fig5(&self) -> String {
        let mut out =
            String::from("Fig. 5: City-Hunter performance per venue and hour (8am-8pm)\n");
        for series in &self.venues {
            out.push_str(&format!(
                "\n--- {} (avg h={}, avg h_b={}) ---\n",
                series.venue.name(),
                pct(series.average_h()),
                pct(series.average_hb()),
            ));
            out.push_str(&format!(
                "{:>5} {:>7} {:>8} {:>8} {:>8} {:>8} {:>7} {:>7}\n",
                "hour", "total", "bc-conn", "bc-not", "dir-conn", "dir-not", "h", "h_b"
            ));
            for h in &series.hours {
                out.push_str(&format!(
                    "{:>5} {:>7} {:>8} {:>8} {:>8} {:>8} {:>7} {:>7}\n",
                    format!("{}:00", h.hour),
                    h.row.total_clients,
                    h.row.broadcast_connected,
                    h.row.broadcast_clients - h.row.broadcast_connected,
                    h.row.direct_connected,
                    h.row.direct_clients - h.row.direct_connected,
                    pct(h.row.h()),
                    pct(h.row.h_b()),
                ));
            }
        }
        out
    }

    /// Renders the Fig. 6 breakdowns (source and buffer stacks + ratios).
    pub fn render_fig6(&self) -> String {
        let mut out = String::from("Fig. 6: breakdown of SSIDs that hit broadcast clients\n");
        for series in &self.venues {
            out.push_str(&format!("\n--- {} ---\n", series.venue.name()));
            out.push_str(&format!(
                "{:>5} {:>7} {:>7} {:>9} | {:>7} {:>7} {:>9}\n",
                "hour", "wigle", "direct", "ratio", "pop", "fresh", "ratio"
            ));
            for h in &series.hours {
                let (wigle, direct, carrier) = h.sources;
                let (pop, fresh) = h.lanes;
                let _ = carrier;
                out.push_str(&format!(
                    "{:>5} {:>7} {:>7} {:>9} | {:>7} {:>7} {:>9}\n",
                    format!("{}:00", h.hour),
                    wigle,
                    direct,
                    ratio_label(direct, wigle),
                    pop,
                    fresh,
                    ratio_label(fresh, pop),
                ));
            }
        }
        out
    }
}

/// The Fig. 5/6 job list: the full City-Hunter in all four venues, one
/// job per venue-hour (database re-initialized per test as in §V-A).
/// Keys look like `fig5/canteen/h12`; world and attacker seeds are both
/// derived from `(seed, key)`, so the list order carries no entropy.
pub fn campaign_jobs(seed: u64, hours: &[usize], duration: SimDuration) -> Vec<CampaignJob> {
    let mut jobs = Vec::with_capacity(VenueKind::ALL.len() * hours.len());
    for venue in VenueKind::ALL {
        for &hour in hours {
            let key = format!("fig5/{}/h{hour:02}", slug(venue.name()));
            jobs.push(CampaignJob {
                label: format!("{} {hour}:00", venue.name()),
                config: RunConfig {
                    venue,
                    start_hour: hour,
                    duration,
                    attacker: AttackerKind::CityHunter(CityHunterConfig {
                        seed: attacker_seed(seed, &key),
                        ..CityHunterConfig::default()
                    }),
                    seed: job_seed(seed, &key),
                    lure_budget: None,
                    loss: None,
                    population: None,
                    arrival_multiplier: None,
                },
                key,
            });
        }
    }
    jobs
}

/// Reassembles the per-venue series from job records in
/// [`campaign_jobs`]'s venue-major order.
fn campaign_outcome(hours: &[usize], records: &[JobRecord]) -> CampaignOutcome {
    let venues = VenueKind::ALL
        .iter()
        .zip(records.chunks(hours.len().max(1)))
        .map(|(&venue, chunk)| VenueSeries {
            venue,
            hours: hours
                .iter()
                .zip(chunk)
                .map(|(&hour, record)| HourResult {
                    hour,
                    row: record.row.clone(),
                    sources: record.sources,
                    lanes: record.lanes,
                })
                .collect(),
        })
        .collect();
    CampaignOutcome { venues }
}

/// The Fig. 5/6 campaign on the fleet engine: parallel across venue-hours,
/// resumable when `opts` carries a manifest. `duration` is the per-test
/// length (the paper's is one hour; smoke runs shrink it).
///
/// # Errors
///
/// Fails if the engine cannot run (duplicate keys, manifest I/O) or any
/// job failed — a campaign figure with holes in it is not a figure.
pub fn campaign_fleet(
    data: &CityData,
    seed: u64,
    hours: &[usize],
    duration: SimDuration,
    opts: &FleetOptions,
) -> Result<(CampaignOutcome, FleetStats), String> {
    let jobs = campaign_jobs(seed, hours, duration);
    let (records, stats) = run_jobs(data, &jobs, opts)?;
    Ok((campaign_outcome(hours, &records), stats))
}

/// [`campaign_fleet`] with in-memory options and the paper's hour-long
/// tests. Heavy: `4 × hours.len()` hour-long simulations.
pub fn campaign_with(data: &CityData, seed: u64, hours: &[usize]) -> CampaignOutcome {
    match campaign_fleet(
        data,
        seed,
        hours,
        SimDuration::from_hours(1),
        &FleetOptions::in_memory("fig5", 0),
    ) {
        Ok((outcome, _)) => outcome,
        // In-memory options cannot hit manifest I/O, and the job list is
        // duplicate-free by construction: the only way here is a panic
        // inside a simulation, which deserves to propagate as one.
        Err(error) => ch_sim::invariant::violation(file!(), line!(), &error),
    }
}

/// The full 8am–8pm campaign.
pub fn campaign(seed: u64) -> CampaignOutcome {
    let hours: Vec<usize> = (8..20).collect();
    campaign_with(&standard_city(), seed, &hours)
}

// ---------------------------------------------------------------------------
// Ablation (design-choice benches promised in DESIGN.md)
// ---------------------------------------------------------------------------

/// One ablation configuration's results in both reference venues.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Variant label.
    pub label: String,
    /// Canteen summary.
    pub canteen: SummaryRow,
    /// Passage summary.
    pub passage: SummaryRow,
}

/// Outcome of the ablation matrix.
#[derive(Debug, Clone)]
pub struct AblationOutcome {
    /// One row per variant.
    pub rows: Vec<AblationRow>,
}

impl AblationOutcome {
    /// Renders the matrix.
    pub fn render(&self) -> String {
        let mut out = String::from("Ablation: City-Hunter design choices (30-min runs)\n");
        out.push_str(&format!(
            "| {:<26} | {:>14} | {:>14} | {:>14} | {:>14} |\n",
            "variant", "canteen h", "canteen h_b", "passage h", "passage h_b"
        ));
        out.push_str(&format!("|{}|\n", "-".repeat(96)));
        for row in &self.rows {
            out.push_str(&format!(
                "| {:<26} | {:>14} | {:>14} | {:>14} | {:>14} |\n",
                row.label,
                pct(row.canteen.h()),
                pct(row.canteen.h_b()),
                pct(row.passage.h()),
                pct(row.passage.h_b()),
            ));
        }
        out
    }
}

/// The ablation variant list: each §IV/§V design choice disabled in
/// isolation, plus the §V-B extensions enabled.
fn ablation_variants() -> Vec<(&'static str, CityHunterConfig)> {
    vec![
        ("full", CityHunterConfig::default()),
        (
            "fixed split (no adaptation)",
            CityHunterConfig {
                adaptive_sizing: false,
                ..CityHunterConfig::default()
            },
        ),
        (
            "no freshness buffer",
            CityHunterConfig {
                use_freshness: false,
                adaptive_sizing: false,
                ..CityHunterConfig::default()
            },
        ),
        (
            "no WiGLE seed",
            CityHunterConfig {
                use_wigle: false,
                ..CityHunterConfig::default()
            },
        ),
        (
            "no untried tracking",
            CityHunterConfig {
                untried_tracking: false,
                ..CityHunterConfig::default()
            },
        ),
        (
            "+ deauth extension",
            CityHunterConfig {
                deauth: true,
                ..CityHunterConfig::default()
            },
        ),
        (
            "+ carrier preload",
            CityHunterConfig {
                carrier_preload: true,
                ..CityHunterConfig::default()
            },
        ),
    ]
}

/// The ablation job list: every variant × the two reference venues, keys
/// like `ablation/no-wigle-seed/canteen`.
pub fn ablation_jobs(seed: u64) -> Vec<CampaignJob> {
    let mut jobs = Vec::new();
    for (label, config) in ablation_variants() {
        for venue in ["canteen", "passage"] {
            let key = format!("ablation/{}/{venue}", slug(label));
            let attacker = AttackerKind::CityHunter(CityHunterConfig {
                seed: attacker_seed(seed, &key),
                ..config.clone()
            });
            let base = match venue {
                "canteen" => RunConfig::canteen_30min(attacker, job_seed(seed, &key)),
                _ => RunConfig::passage_30min(attacker, job_seed(seed, &key)),
            };
            jobs.push(CampaignJob {
                label: label.to_owned(),
                config: base,
                key,
            });
        }
    }
    jobs
}

/// The ablation matrix on the fleet engine.
///
/// # Errors
///
/// Fails if the engine cannot run or any variant's simulation failed.
pub fn ablation_fleet(
    data: &CityData,
    seed: u64,
    opts: &FleetOptions,
) -> Result<(AblationOutcome, FleetStats), String> {
    let jobs = ablation_jobs(seed);
    let (records, stats) = run_jobs(data, &jobs, opts)?;
    let rows = ablation_variants()
        .iter()
        .zip(records.chunks(2))
        .map(|((label, _), pair)| AblationRow {
            label: (*label).to_owned(),
            canteen: pair[0].row.clone(),
            passage: pair[1].row.clone(),
        })
        .collect();
    Ok((AblationOutcome { rows }, stats))
}

/// [`ablation_fleet`] with in-memory options.
pub fn ablation_with(data: &CityData, seed: u64) -> AblationOutcome {
    match ablation_fleet(data, seed, &FleetOptions::in_memory("ablation", 0)) {
        Ok((outcome, _)) => outcome,
        Err(error) => ch_sim::invariant::violation(file!(), line!(), &error),
    }
}

/// [`ablation_with`] over a freshly built standard city.
pub fn ablation(seed: u64) -> AblationOutcome {
    ablation_with(&standard_city(), seed)
}

// ---------------------------------------------------------------------------

/// Offsets hour-indexed timestamps for rendering.
pub fn hour_label(start: SimTime) -> String {
    format!("{:02}:00", 8 + start.as_secs() / 3600)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_reproduces_heat_vs_count_contrast() {
        let data = standard_city();
        let outcome = table4_with(&data);
        assert_eq!(outcome.by_ap_count.len(), 5);
        assert_eq!(outcome.by_heat.len(), 5);
        // Paper Table IV: the count ranking is led by the big chains…
        assert_eq!(outcome.by_ap_count[0].0.as_str(), "-Free HKBN Wi-Fi-");
        // …and the airport SSID enters the top-5 only under heat ranking.
        let count_names: Vec<&str> = outcome
            .by_ap_count
            .iter()
            .map(|(s, _)| s.as_str())
            .collect();
        let heat_names: Vec<&str> = outcome.by_heat.iter().map(|(s, _)| s.as_str()).collect();
        assert!(!count_names.contains(&"#HKAirport Free WiFi"));
        assert!(
            heat_names.contains(&"#HKAirport Free WiFi"),
            "heat ranking must surface the airport SSID: {heat_names:?}"
        );
        let rendered = outcome.render();
        assert!(rendered.contains("Rank"));
        assert!(rendered.contains("#HKAirport Free WiFi"));
    }

    #[test]
    fn fig4_renders_two_districts() {
        let data = standard_city();
        let outcome = fig4_with(&data);
        assert_eq!(outcome.panels.len(), 2);
        let names: Vec<&str> = outcome.panels.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"Kowloon"));
        assert!(names.contains(&"Lantao Island"));
        for (_, panel) in &outcome.panels {
            assert!(panel.lines().count() > 10, "panel too small");
        }
    }

    #[test]
    fn hour_label_formats() {
        assert_eq!(hour_label(SimTime::ZERO), "08:00");
        assert_eq!(hour_label(SimTime::from_hours(4)), "12:00");
    }
}

// ---------------------------------------------------------------------------
// Sensitivity sweeps (the §III-A cap, made visible)
// ---------------------------------------------------------------------------

/// One sweep point: the independent variable plus replicated outcomes.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Independent-variable label (e.g. `"40"` lures, `"60m"` range).
    pub x: String,
    /// Replicated h_b summary at this point.
    pub h_b: ch_sim::Summary,
    /// Replicated client-volume summary at this point.
    pub clients: ch_sim::Summary,
}

/// A one-dimensional sensitivity sweep.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// What was swept.
    pub label: String,
    /// The points, in sweep order.
    pub points: Vec<SweepPoint>,
}

impl SweepOutcome {
    /// Renders the sweep as an aligned table.
    pub fn render(&self) -> String {
        let mut out = format!("Sweep: {}\n", self.label);
        out.push_str(&format!(
            "{:>10} {:>9} {:>9} {:>10}\n",
            "x", "h_b", "±95%", "clients"
        ));
        for p in &self.points {
            out.push_str(&format!(
                "{:>10} {:>9} {:>9} {:>10.0}\n",
                p.x,
                pct(p.h_b.mean()),
                pct(1.96 * p.h_b.std_err()),
                p.clients.mean(),
            ));
        }
        out
    }
}

fn sweep_point(
    data: &CityData,
    base: &RunConfig,
    x: impl Into<String>,
    seeds: &[u64],
) -> SweepPoint {
    let replication = crate::replicate::replicate(data, base, "sweep", seeds);
    SweepPoint {
        x: x.into(),
        h_b: replication.h_b,
        clients: replication.clients,
    }
}

/// Sweeps the number of lures the attacker *sends* per broadcast probe.
///
/// The §III-A arithmetic says only ~40 probe responses fit the client's
/// listen window; sending more is free for the attacker but physically
/// cannot be received. The curve therefore rises up to 40 and then goes
/// flat — the saturation MANA unknowingly lived beyond.
pub fn sweep_lure_budget(data: &CityData, base_seed: u64, replicas: usize) -> SweepOutcome {
    let seeds = crate::replicate::seed_range(base_seed, replicas);
    // The preliminary attacker honours arbitrary send budgets (the full
    // City-Hunter self-caps at its 40-slot buffer total by design), so it
    // is the one that can demonstrate the over-sending plateau.
    let points = [5usize, 10, 20, 40, 80, 160]
        .iter()
        .map(|&budget| {
            let base = RunConfig {
                lure_budget: Some(budget),
                ..RunConfig::canteen_30min(AttackerKind::Prelim, 0)
            };
            sweep_point(data, &base, budget.to_string(), &seeds)
        })
        .collect();
    SweepOutcome {
        label: "lures sent per broadcast probe (prelim attacker, canteen, \
                30 min) — reception is capped near 40 by the scan window"
            .into(),
        points,
    }
}

/// Sweeps the attacker's radio range (transmit power): h_b and the
/// observed-client volume vs maximum range in the subway passage.
pub fn sweep_radio_range(data: &CityData, base_seed: u64, replicas: usize) -> SweepOutcome {
    let seeds = crate::replicate::seed_range(base_seed, replicas);
    let points = [20.0f64, 40.0, 60.0, 80.0, 100.0]
        .iter()
        .map(|&range| {
            let base = RunConfig {
                loss: Some(ch_sim::LossModel::new(range * 0.6, range, 0.97)),
                ..RunConfig::passage_30min(AttackerKind::CityHunter(CityHunterConfig::default()), 0)
            };
            sweep_point(data, &base, format!("{range:.0}m"), &seeds)
        })
        .collect();
    SweepOutcome {
        label: "attacker radio range (subway passage, 30 min)".into(),
        points,
    }
}

/// Forward-looking study: per-scan MAC randomization (a post-2017 privacy
/// feature) vs City-Hunter. Randomizing phones present a fresh MAC every
/// scan, so the §III-A per-client untried tracking can never accumulate —
/// each scan replays the head of the ranking — and the client counts
/// themselves inflate (every scan looks like a new device).
pub fn sweep_mac_randomization(data: &CityData, base_seed: u64, replicas: usize) -> SweepOutcome {
    let seeds = crate::replicate::seed_range(base_seed, replicas);
    let points = [0.0f64, 0.25, 0.5, 0.75, 1.0]
        .iter()
        .map(|&fraction| {
            let mut population = data.population_params_for(ch_mobility::VenueKind::Canteen);
            population.mac_randomizing = fraction;
            let base = RunConfig {
                population: Some(population),
                ..RunConfig::canteen_30min(AttackerKind::CityHunter(CityHunterConfig::default()), 0)
            };
            sweep_point(data, &base, format!("{:.0}%", fraction * 100.0), &seeds)
        })
        .collect();
    SweepOutcome {
        label: "per-scan MAC randomization share (canteen, 30 min) — \
                note the client counts inflating as identities fragment"
            .into(),
        points,
    }
}

/// The crowd-density sweep the abstract promises ("public places with
/// different crowd density"): the canteen's arrival rate scaled from a
/// near-empty room to a crush, full City-Hunter deployed.
pub fn sweep_crowd_density(data: &CityData, base_seed: u64, replicas: usize) -> SweepOutcome {
    let seeds = crate::replicate::seed_range(base_seed, replicas);
    let points = [0.25f64, 0.5, 1.0, 2.0, 4.0]
        .iter()
        .map(|&multiplier| {
            let base = RunConfig {
                arrival_multiplier: Some(multiplier),
                ..RunConfig::canteen_30min(AttackerKind::CityHunter(CityHunterConfig::default()), 0)
            };
            sweep_point(data, &base, format!("{multiplier}x"), &seeds)
        })
        .collect();
    SweepOutcome {
        label: "crowd density (canteen arrival-rate multiplier, 30 min)".into(),
        points,
    }
}

/// Scan-cadence sweep: how the clients' disconnected-scan interval shapes
/// the passage outcome. Fig. 2(b)'s 40/80 histogram is pure mechanics —
/// transit time divided by scan interval — so halving the interval doubles
/// the two-burst share and lifts h_b.
pub fn sweep_scan_interval(data: &CityData, base_seed: u64, replicas: usize) -> SweepOutcome {
    let seeds = crate::replicate::seed_range(base_seed, replicas);
    let points = [(15.0, 30.0), (30.0, 60.0), (40.0, 90.0), (80.0, 160.0)]
        .iter()
        .map(|&(lo, hi)| {
            let mut population = data.population_params_for(ch_mobility::VenueKind::SubwayPassage);
            population.scan_interval_secs = (lo, hi);
            let base = RunConfig {
                population: Some(population),
                ..RunConfig::passage_30min(AttackerKind::CityHunter(CityHunterConfig::default()), 0)
            };
            sweep_point(data, &base, format!("{lo:.0}-{hi:.0}s"), &seeds)
        })
        .collect();
    SweepOutcome {
        label: "disconnected-scan interval (subway passage, 30 min)".into(),
        points,
    }
}

/// Warm-start study (beyond the paper): §V-A re-initializes the database
/// before every test; what does *not* doing that buy? One attacker
/// instance hunts the canteen for several consecutive half-hours, its
/// database, weights and buffer split carrying over, against a cold-
/// started control each slot.
#[derive(Debug, Clone)]
pub struct WarmStartOutcome {
    /// Per-slot `(label, cold h_b, warm h_b, warm database size)`.
    pub slots: Vec<(String, f64, f64, usize)>,
}

impl WarmStartOutcome {
    /// Renders the comparison.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Warm-start study: database re-initialized per test (paper, 'cold')\n\
             vs carried across tests ('warm'); canteen, consecutive 30-min slots\n\n",
        );
        out.push_str(&format!(
            "{:>8} {:>10} {:>10} {:>10}\n",
            "slot", "cold h_b", "warm h_b", "warm db"
        ));
        for (label, cold, warm, db) in &self.slots {
            out.push_str(&format!(
                "{label:>8} {:>10} {:>10} {db:>10}\n",
                pct(*cold),
                pct(*warm),
            ));
        }
        out
    }
}

/// The warm-start cold-control job list: one independent cold-started
/// canteen run per slot, keys like `warm-start/cold/s1`.
pub fn warm_start_jobs(seed: u64, slots: usize) -> Vec<CampaignJob> {
    (0..slots)
        .map(|slot| {
            let key = format!("warm-start/cold/s{}", slot + 1);
            CampaignJob {
                label: format!("cold #{}", slot + 1),
                config: RunConfig {
                    start_hour: 11 + slot / 2, // consecutive lunchtime half-hours
                    seed: job_seed(seed, &key),
                    ..RunConfig::canteen_30min(
                        AttackerKind::CityHunter(CityHunterConfig {
                            seed: attacker_seed(seed, &key),
                            ..CityHunterConfig::default()
                        }),
                        0,
                    )
                },
                key,
            }
        })
        .collect()
}

/// The warm-start study on the fleet engine: the per-slot cold controls
/// are independent and run as fleet jobs; the warm attacker's chain is
/// inherently sequential (its database carries across slots) and runs
/// serially against the same per-slot configurations.
///
/// # Errors
///
/// Fails if the engine cannot run or any cold control failed.
pub fn warm_start_fleet(
    data: &CityData,
    seed: u64,
    slots: usize,
    opts: &FleetOptions,
) -> Result<(WarmStartOutcome, FleetStats), String> {
    use crate::runner::run_experiment_with_attacker;
    use ch_attack::{Attacker, CityHunter};

    let jobs = warm_start_jobs(seed, slots);
    let (cold, stats) = run_jobs(data, &jobs, opts)?;

    let site = data.site_for(ch_mobility::VenueKind::Canteen);
    let bssid = ch_wifi::MacAddr::from_index([0x0a, 0xbc, 0xde], 1);
    let mut warm = CityHunter::new(
        bssid,
        &data.wigle,
        &data.heat,
        site,
        CityHunterConfig {
            seed: attacker_seed(seed, "warm-start/warm"),
            ..CityHunterConfig::default()
        },
    );
    let results = jobs
        .iter()
        .zip(&cold)
        .enumerate()
        .map(|(slot, (job, cold_record))| {
            let warm_metrics = run_experiment_with_attacker(data, &job.config, &mut warm);
            (
                format!("#{}", slot + 1),
                cold_record.row.h_b(),
                warm_metrics.summary("warm").h_b(),
                warm.database_len(),
            )
        })
        .collect();
    Ok((WarmStartOutcome { slots: results }, stats))
}

/// [`warm_start_fleet`] with in-memory options.
pub fn warm_start_with(data: &CityData, seed: u64, slots: usize) -> WarmStartOutcome {
    match warm_start_fleet(data, seed, slots, &FleetOptions::in_memory("warm-start", 0)) {
        Ok((outcome, _)) => outcome,
        Err(error) => ch_sim::invariant::violation(file!(), line!(), &error),
    }
}

/// [`warm_start_with`] over a freshly built standard city, 4 slots.
pub fn warm_start(seed: u64) -> WarmStartOutcome {
    warm_start_with(&standard_city(), seed, 4)
}

/// Fig. 3 stand-in: the paper's logic-flow diagram, rendered with this
/// implementation's live parameters. (Fig. 3 is an architecture diagram,
/// not a measurement; this keeps "every figure" regenerable.)
pub fn fig3() -> String {
    use ch_attack::buffers::{GHOST_LEN, GHOST_PICKS};
    use ch_attack::prelim::{WIGLE_NEARBY, WIGLE_TOP_BY_HEAT};
    use ch_wifi::timing;

    format!(
        r#"Fig. 3: the logic flow of City-Hunter (live parameters)

 [1. Database initialization]
     WiGLE top-{top} by heat value (rank weights {top}..1)
     + {near} SSIDs nearest the attack site (rank weights {near}..1)
         |
         v
 [2. On-line database updating]   <--- (after every scan exchange)
     direct probe  -> add SSID / bump weight
     broadcast hit -> bump weight, stamp freshness
         |
         v
 [3. SSID selection & buffer-size adjustment]
     Popularity Buffer (p) with a {ghost}-entry ghost list
     Freshness  Buffer (f) with a {ghost}-entry ghost list
     constraint: p + f = {budget}
     {picks} random ghosts per side replace each side's lowest picks
     ghost hit on the PB side -> p+1, f-1; on the FB side -> f+1, p-1
         |
         v
 [4. Send SSIDs to broadcast probes]
     up to {budget} probe responses per scan
     ({window} listen window at {airtime} per response)
     never repeat an SSID to the same client MAC; then back to step 2
"#,
        top = WIGLE_TOP_BY_HEAT,
        near = WIGLE_NEARBY,
        ghost = GHOST_LEN,
        picks = GHOST_PICKS,
        budget = timing::responses_per_scan(),
        window = timing::EXTENDED_WAIT,
        airtime = timing::PROBE_RESPONSE_AIRTIME,
    )
}

#[cfg(test)]
mod fig3_tests {
    #[test]
    fn fig3_reflects_live_constants() {
        let rendered = super::fig3();
        assert!(rendered.contains("top-200"));
        assert!(rendered.contains("p + f = 40"));
        assert!(rendered.contains("10ms"));
        assert!(rendered.contains("250us"));
    }
}

impl CampaignOutcome {
    /// Exports the campaign as CSV for external plotting: one row per
    /// venue-hour with the Fig. 5 stacks, rates, and the Fig. 6
    /// breakdowns.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "venue,hour,total_clients,broadcast_connected,broadcast_not,\
             direct_connected,direct_not,h,h_b,src_wigle,src_direct,\
             src_carrier,lane_popularity,lane_freshness\n",
        );
        for series in &self.venues {
            for h in &series.hours {
                let (wigle, direct, carrier) = h.sources;
                let (pop, fresh) = h.lanes;
                out.push_str(&format!(
                    "{},{},{},{},{},{},{},{:.4},{:.4},{},{},{},{},{}\n",
                    series.venue.name().replace(' ', "_"),
                    h.hour,
                    h.row.total_clients,
                    h.row.broadcast_connected,
                    h.row.broadcast_clients - h.row.broadcast_connected,
                    h.row.direct_connected,
                    h.row.direct_clients - h.row.direct_connected,
                    h.row.h(),
                    h.row.h_b(),
                    wigle,
                    direct,
                    carrier,
                    pop,
                    fresh,
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod campaign_csv_tests {
    use super::*;
    use crate::metrics::SummaryRow;

    #[test]
    fn csv_shape_matches_campaign() {
        let outcome = CampaignOutcome {
            venues: vec![VenueSeries {
                venue: VenueKind::Canteen,
                hours: vec![HourResult {
                    hour: 12,
                    row: SummaryRow {
                        label: "x".into(),
                        total_clients: 100,
                        direct_clients: 10,
                        broadcast_clients: 90,
                        direct_connected: 4,
                        broadcast_connected: 9,
                    },
                    sources: (7, 2, 0),
                    lanes: (8, 1),
                }],
            }],
        };
        let csv = outcome.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].split(',').count(), 14);
        let row: Vec<&str> = lines[1].split(',').collect();
        assert_eq!(row[0], "canteen");
        assert_eq!(row[1], "12");
        assert_eq!(row[3], "9");
        assert_eq!(row[4], "81"); // 90 - 9
        assert_eq!(row[8], "0.1000"); // h_b
        assert_eq!(row[9], "7");
    }
}

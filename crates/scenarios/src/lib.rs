//! # ch-scenarios — the experiment harness
//!
//! Wires every substrate together into the paper's field deployments:
//!
//! * [`world`] — builds the shared city data (WiGLE snapshot, heat map),
//!   places each venue at a matching city POI, and assembles a
//!   [`world::World`] for one deployment;
//! * [`runner`] — the discrete-event loop: group arrivals → per-person
//!   visits and phones → scan events → probe/response exchanges over the
//!   radio medium (with the §III-A 40-response budget enforced by airtime)
//!   → open-system join handshakes through the byte-level codec;
//! * [`metrics`] — everything the paper reports: h, h_b, real-time h_b^r,
//!   per-client SSIDs-offered counts, hit breakdowns by source
//!   (WiGLE vs direct probe) and buffer (PB vs FB), time series;
//! * [`detect`] — runner-side glue for the `ch-detect` rogue-AP monitor:
//!   the frame tap, legitimate-AP beacon sources, and ground-truth
//!   scoring behind the arms-race study;
//! * [`report`] — text tables and series formatted like the paper's;
//! * [`experiments`] — one driver per table and figure (Table I–IV,
//!   Fig. 1–6) plus the beyond-paper studies, split by artifact family;
//! * [`registry`] — the declarative spec layer: every artifact as an
//!   [`registry::ExperimentSpec`] in one canonical table, runnable by id;
//! * [`fleet`] — the campaign-job model bridging the drivers onto the
//!   `ch-fleet` execution engine (parallel, panic-isolated, resumable).
//!
//! ```no_run
//! use ch_fleet::FleetOptions;
//! use ch_scenarios::registry::{self, RunParams};
//! use ch_scenarios::CampaignCtx;
//!
//! let data = ch_scenarios::experiments::standard_city();
//! let ctx = CampaignCtx::build(&data); // per-venue plans + shared pool, built once
//! let spec = registry::find("table1").unwrap();
//! let params = RunParams::new(1);
//! let opts = FleetOptions::in_memory("table1", 0);
//! let artifact = spec.run(&ctx, &params, &opts).unwrap();
//! print!("{}", artifact.text);
//! ```

pub mod city;
pub mod ctx;
pub mod detect;
pub mod experiments;
pub mod fleet;
pub mod metrics;
pub mod registry;
pub mod replicate;
pub mod report;
pub mod runner;
pub mod world;

pub use city::{run_city, CityConfig, CityOutcome, CityPlan, DistrictReport, DistrictStats};
pub use ctx::{CampaignCtx, VenuePlan};
pub use detect::DetectionHarness;
pub use fleet::{CampaignJob, JobRecord, RichRecord};
pub use metrics::{ClientClass, ExperimentMetrics, RunnerStats, SummaryRow};
pub use registry::{Artifact, ExperimentSpec, OutputKind, RunParams, REGISTRY};
pub use replicate::{replicate, Replication};
pub use runner::{
    run_experiment, run_experiment_ctx, run_experiment_observed, AttackerKind, CollectingObserver,
    RunConfig, RunScratch,
};
pub use world::{CityData, World};

//! World assembly: city data + venue placement.

use ch_geo::{CityModel, GeoPoint, HeatMap, PhotoCollection, PoiKind, WigleSnapshot};
use ch_mobility::{VenueKind, VenueTemplate};
use ch_phone::popgen::PopulationParams;
use ch_sim::SimRng;

/// Number of synthetic geotagged photos backing the heat map.
const PHOTO_COUNT: usize = 40_000;

/// Heat-map cell size in metres.
const HEAT_CELL_M: f64 = 100.0;

/// The city-level data shared by every experiment: expensive to build,
/// immutable afterwards.
#[derive(Debug, Clone)]
pub struct CityData {
    /// The synthetic city.
    pub city: CityModel,
    /// The WiGLE-like wardriving snapshot.
    pub wigle: WigleSnapshot,
    /// The photo-derived heat map (§IV-B).
    pub heat: HeatMap,
}

impl CityData {
    /// Builds the standard city from a seed.
    pub fn standard(seed: u64) -> Self {
        let mut rng = SimRng::seed_from(seed);
        let city = CityModel::synthesize(&mut rng);
        let wigle = WigleSnapshot::synthesize(&city, &mut rng);
        let photos = PhotoCollection::synthesize(&city, PHOTO_COUNT, &mut rng);
        let heat = HeatMap::from_photos(&city, &photos, HEAT_CELL_M);
        CityData { city, wigle, heat }
    }

    /// The city-frame location a venue kind is deployed at: a matching POI
    /// (the canteen venue sits at a canteen POI, etc.), chosen as the one
    /// with the highest footfall so the "nearby SSIDs" seed is meaningful.
    pub fn site_for(&self, venue: VenueKind) -> GeoPoint {
        let kind = match venue {
            VenueKind::SubwayPassage => PoiKind::SubwayStation,
            VenueKind::Canteen => PoiKind::Canteen,
            VenueKind::ShoppingCenter => PoiKind::Mall,
            VenueKind::RailwayStation => PoiKind::RailwayStation,
        };
        self.city
            .pois_of_kind(kind)
            .max_by(|a, b| {
                a.footfall.partial_cmp(&b.footfall).unwrap_or_else(|| {
                    ch_sim::invariant::violation(file!(), line!(), "POI footfall is not finite")
                })
            })
            .unwrap_or_else(|| {
                ch_sim::invariant::violation(file!(), line!(), "city is missing a POI kind")
            })
            .location
    }

    /// Population parameters tuned per venue: the share of phones already
    /// associated to legitimate local Wi-Fi differs (campus Wi-Fi blankets
    /// the canteen; a subway passage has almost none).
    pub fn population_params_for(&self, venue: VenueKind) -> PopulationParams {
        PopulationParams {
            connected_locally: match venue {
                VenueKind::Canteen => 0.18,
                VenueKind::SubwayPassage => 0.05,
                VenueKind::ShoppingCenter => 0.12,
                VenueKind::RailwayStation => 0.10,
            },
            ..PopulationParams::default()
        }
    }
}

/// One deployment: the venue template plus the city context it sits in.
#[derive(Debug, Clone)]
pub struct World {
    /// The venue geometry/mobility template.
    pub venue: VenueTemplate,
    /// Where in the city the attacker sits.
    pub site: GeoPoint,
    /// Population behaviour for this venue.
    pub population: PopulationParams,
}

impl World {
    /// Assembles the world for a venue.
    pub fn assemble(data: &CityData, venue: VenueKind) -> Self {
        World {
            venue: venue.template(),
            site: data.site_for(venue),
            population: data.population_params_for(venue),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_city_builds_once() {
        let data = CityData::standard(1);
        assert!(!data.wigle.is_empty());
        assert!(data.heat.total_mass() > 0);
    }

    #[test]
    fn sites_are_distinct_and_in_city() {
        let data = CityData::standard(2);
        let mut sites = Vec::new();
        for venue in VenueKind::ALL {
            let site = data.site_for(venue);
            assert!(data.city.extent().contains(site), "{}", venue.name());
            sites.push(site);
        }
        for i in 0..sites.len() {
            for j in (i + 1)..sites.len() {
                assert!(
                    sites[i].distance_to(sites[j]) > 1.0,
                    "venues {i} and {j} collapsed"
                );
            }
        }
    }

    #[test]
    fn canteen_has_most_local_connectivity() {
        let data = CityData::standard(3);
        let canteen = data.population_params_for(VenueKind::Canteen);
        let passage = data.population_params_for(VenueKind::SubwayPassage);
        assert!(canteen.connected_locally > passage.connected_locally);
    }

    #[test]
    fn world_assembly() {
        let data = CityData::standard(4);
        let world = World::assemble(&data, VenueKind::Canteen);
        assert_eq!(world.venue.kind, VenueKind::Canteen);
        assert!(data.city.extent().contains(world.site));
    }
}

//! Campaign-job plumbing between the experiment drivers and `ch-fleet`.
//!
//! The figure drivers in [`crate::experiments`] describe their work as a
//! flat list of [`CampaignJob`]s — one independent simulation each, with
//! a stable key and a seed derived from `(campaign seed, key)` — and hand
//! it to [`run_jobs`], which executes them on the fleet engine: in
//! parallel, panic-isolated, resumable from a JSONL manifest, and with
//! results returned in input order regardless of completion order.

use ch_fleet::{
    derive_seed, run_campaign, FleetOptions, FleetStats, JobSpec, JobStatus, Json, ManifestCodec,
};

use crate::metrics::{ExperimentMetrics, SummaryRow};
use crate::runner::{run_experiment, RunConfig};
use crate::world::CityData;

/// One simulation in a campaign: a stable, human-readable key plus the
/// full run configuration (whose seeds were derived from the key — see
/// [`job_seed`]).
#[derive(Debug, Clone)]
pub struct CampaignJob {
    /// Manifest key, e.g. `fig5/canteen/h12`.
    pub key: String,
    /// Label stamped on the resulting summary row.
    pub label: String,
    /// The fully resolved run configuration.
    pub config: RunConfig,
}

impl JobSpec for CampaignJob {
    fn key(&self) -> String {
        self.key.clone()
    }
}

/// The per-run seed for the job at `key`: derived from the campaign seed
/// and the key alone, so it depends on neither list position nor
/// execution order.
pub fn job_seed(campaign_seed: u64, key: &str) -> u64 {
    derive_seed(campaign_seed, key)
}

/// The attacker-instance seed for the job at `key` (kept distinct from
/// [`job_seed`] so the attacker's RNG stream never aliases the world's).
pub fn attacker_seed(campaign_seed: u64, key: &str) -> u64 {
    derive_seed(campaign_seed, &format!("{key}#attacker"))
}

/// Lowercases a label into a key segment: spaces become `-`, anything
/// non-alphanumeric is dropped.
pub fn slug(label: &str) -> String {
    let mut out = String::with_capacity(label.len());
    for ch in label.chars() {
        if ch.is_ascii_alphanumeric() {
            out.extend(ch.to_lowercase());
        } else if (ch == ' ' || ch == '-' || ch == '_') && !out.ends_with('-') && !out.is_empty() {
            out.push('-');
        }
    }
    out.trim_end_matches('-').to_string()
}

/// What the manifest records per job: the paper's summary row plus the
/// Fig. 6 breakdowns. Every field is an integer count, so the JSONL
/// round-trip is exact by construction.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// The Fig. 5 stacked-bar numbers.
    pub row: SummaryRow,
    /// Broadcast-hit SSID sources `(wigle, direct, carrier)`.
    pub sources: (usize, usize, usize),
    /// Broadcast-hit buffer lanes `(popularity, freshness)`.
    pub lanes: (usize, usize),
}

impl JobRecord {
    /// Captures the record from one finished run.
    pub fn capture(metrics: &ExperimentMetrics, label: impl Into<String>) -> JobRecord {
        JobRecord {
            row: metrics.summary(label),
            sources: metrics.source_breakdown(),
            lanes: metrics.lane_breakdown(),
        }
    }
}

impl ManifestCodec for JobRecord {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("label".into(), Json::str(self.row.label.clone())),
            ("total".into(), Json::from_usize(self.row.total_clients)),
            ("direct".into(), Json::from_usize(self.row.direct_clients)),
            (
                "broadcast".into(),
                Json::from_usize(self.row.broadcast_clients),
            ),
            (
                "direct_conn".into(),
                Json::from_usize(self.row.direct_connected),
            ),
            (
                "broadcast_conn".into(),
                Json::from_usize(self.row.broadcast_connected),
            ),
            ("src_wigle".into(), Json::from_usize(self.sources.0)),
            ("src_direct".into(), Json::from_usize(self.sources.1)),
            ("src_carrier".into(), Json::from_usize(self.sources.2)),
            ("lane_pop".into(), Json::from_usize(self.lanes.0)),
            ("lane_fresh".into(), Json::from_usize(self.lanes.1)),
        ])
    }

    fn from_json(json: &Json) -> Option<Self> {
        let field = |key: &str| json.get(key).and_then(Json::as_usize);
        Some(JobRecord {
            row: SummaryRow {
                label: json.get("label")?.as_str()?.to_string(),
                total_clients: field("total")?,
                direct_clients: field("direct")?,
                broadcast_clients: field("broadcast")?,
                direct_connected: field("direct_conn")?,
                broadcast_connected: field("broadcast_conn")?,
            },
            sources: (
                field("src_wigle")?,
                field("src_direct")?,
                field("src_carrier")?,
            ),
            lanes: (field("lane_pop")?, field("lane_fresh")?),
        })
    }
}

/// Runs `jobs` on the fleet engine and returns one [`JobRecord`] per job,
/// in input order.
///
/// A job that panics is reported by the engine as a structured failure;
/// this wrapper turns any failure into an `Err` naming every failed key,
/// because a campaign figure with holes in it is not a figure.
pub fn run_jobs(
    data: &CityData,
    jobs: &[CampaignJob],
    opts: &FleetOptions,
) -> Result<(Vec<JobRecord>, FleetStats), String> {
    let report = run_campaign(jobs, opts, |job: &CampaignJob| {
        JobRecord::capture(&run_experiment(data, &job.config), job.label.clone())
    })?;
    let mut records = Vec::with_capacity(report.outcomes.len());
    let mut failures = Vec::new();
    for outcome in &report.outcomes {
        match &outcome.status {
            JobStatus::Done(record) | JobStatus::Cached(record) => records.push(record.clone()),
            JobStatus::Failed(message) => failures.push(format!("{}: {message}", outcome.key)),
        }
    }
    if failures.is_empty() {
        Ok((records, report.stats))
    } else {
        Err(format!(
            "{} campaign job(s) failed:\n  {}",
            failures.len(),
            failures.join("\n  ")
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slug_flattens_labels() {
        assert_eq!(slug("Subway Passage"), "subway-passage");
        assert_eq!(
            slug("fixed split (no adaptation)"),
            "fixed-split-no-adaptation"
        );
        assert_eq!(slug("+ deauth extension"), "deauth-extension");
        assert_eq!(slug("full"), "full");
    }

    #[test]
    fn job_and_attacker_seeds_differ_and_are_stable() {
        let a = job_seed(7, "fig5/canteen/h12");
        assert_eq!(a, job_seed(7, "fig5/canteen/h12"));
        assert_ne!(a, job_seed(8, "fig5/canteen/h12"));
        assert_ne!(a, job_seed(7, "fig5/canteen/h13"));
        assert_ne!(a, attacker_seed(7, "fig5/canteen/h12"));
    }

    #[test]
    fn job_record_round_trips_through_the_manifest_codec() {
        let record = JobRecord {
            row: SummaryRow {
                label: "canteen 12:00".into(),
                total_clients: 321,
                direct_clients: 21,
                broadcast_clients: 300,
                direct_connected: 9,
                broadcast_connected: 55,
            },
            sources: (40, 14, 1),
            lanes: (48, 7),
        };
        let json = record.to_json();
        let reparsed = Json::parse(&json.render()).unwrap();
        assert_eq!(JobRecord::from_json(&reparsed), Some(record));
        assert_eq!(JobRecord::from_json(&Json::Null), None);
    }
}

//! Campaign-job plumbing between the experiment drivers and `ch-fleet`.
//!
//! The figure drivers in [`crate::experiments`] describe their work as a
//! flat list of [`CampaignJob`]s — one independent simulation each, with
//! a stable key and a seed derived from `(campaign seed, key)` — and hand
//! it to [`run_jobs`], which executes them on the fleet engine: in
//! parallel, panic-isolated, resumable from a JSONL manifest, and with
//! results returned in input order regardless of completion order.

use ch_fleet::{
    derive_seed, run_campaign_scoped, FleetOptions, FleetStats, JobSpec, JobStatus, Json,
    ManifestCodec,
};
use ch_sim::SimDuration;

use crate::ctx::CampaignCtx;
use crate::metrics::{ExperimentMetrics, SummaryRow};
use crate::runner::{run_experiment_ctx, RunConfig, RunScratch};

/// One simulation in a campaign: a stable, human-readable key plus the
/// full run configuration (whose seeds were derived from the key — see
/// [`job_seed`]).
#[derive(Debug, Clone)]
pub struct CampaignJob {
    /// Manifest key, e.g. `fig5/canteen/h12`.
    pub key: String,
    /// Label stamped on the resulting summary row.
    pub label: String,
    /// The fully resolved run configuration.
    pub config: RunConfig,
    /// `true` if the job must also capture the [`RichRecord`] series
    /// (database growth, offered-SSID depths) that the figure-class
    /// artifacts render. Summary-only campaigns leave this off and keep
    /// their manifests small.
    pub rich: bool,
}

impl CampaignJob {
    /// A summary-only campaign job (the common case).
    pub fn new(key: impl Into<String>, label: impl Into<String>, config: RunConfig) -> CampaignJob {
        CampaignJob {
            key: key.into(),
            label: label.into(),
            config,
            rich: false,
        }
    }

    /// Turns on [`RichRecord`] capture for this job.
    #[must_use]
    pub fn with_rich(mut self) -> CampaignJob {
        self.rich = true;
        self
    }
}

impl JobSpec for CampaignJob {
    fn key(&self) -> String {
        self.key.clone()
    }
}

/// The per-run seed for the job at `key`: derived from the campaign seed
/// and the key alone, so it depends on neither list position nor
/// execution order.
pub fn job_seed(campaign_seed: u64, key: &str) -> u64 {
    derive_seed(campaign_seed, key)
}

/// The attacker-instance seed for the job at `key` (kept distinct from
/// [`job_seed`] so the attacker's RNG stream never aliases the world's).
pub fn attacker_seed(campaign_seed: u64, key: &str) -> u64 {
    derive_seed(campaign_seed, &format!("{key}#attacker"))
}

/// Lowercases a label into a key segment: spaces become `-`, anything
/// non-alphanumeric is dropped.
pub fn slug(label: &str) -> String {
    let mut out = String::with_capacity(label.len());
    for ch in label.chars() {
        if ch.is_ascii_alphanumeric() {
            out.extend(ch.to_lowercase());
        } else if (ch == ' ' || ch == '-' || ch == '_') && !out.ends_with('-') && !out.is_empty() {
            out.push('-');
        }
    }
    out.trim_end_matches('-').to_string()
}

/// The per-run series behind the figure-class artifacts: everything a
/// renderer needs beyond the summary counts. Captured only for jobs with
/// [`CampaignJob::rich`] set, and stored in the manifest as an optional
/// `rich` object — summary-only manifests (and those written before this
/// field existed) parse unchanged.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RichRecord {
    /// `(minute, attacker database size)` — Fig. 1(a), first curve.
    pub db_series: Vec<(u64, usize)>,
    /// `(minute, cumulative broadcast clients connected)` — Fig. 1(a).
    pub connected: Vec<(u64, usize)>,
    /// `(2-minute window, hits, clients)` — Fig. 1(b), real-time h_b^r.
    pub realtime_hb: Vec<(u64, usize, usize)>,
    /// SSIDs offered to each *connected* broadcast client, ascending.
    pub offered_connected: Vec<usize>,
    /// SSIDs offered to *all* broadcast clients, ascending (zeros kept).
    pub offered_all: Vec<usize>,
}

impl RichRecord {
    /// Captures the series from one finished run of length `duration`.
    pub fn capture(metrics: &ExperimentMetrics, duration: SimDuration) -> RichRecord {
        RichRecord {
            db_series: metrics
                .db_series()
                .iter()
                .map(|(t, s)| (t.as_secs() / 60, *s))
                .collect(),
            connected: metrics
                .cumulative_broadcast_hits(duration, SimDuration::from_mins(1))
                .into_iter()
                .map(|(t, c)| (t.as_secs() / 60, c))
                .collect(),
            realtime_hb: metrics.realtime_hb(duration, SimDuration::from_mins(2)),
            offered_connected: metrics.offered_counts(true),
            offered_all: metrics.offered_counts(false),
        }
    }

    /// Mean of [`offered_connected`](RichRecord::offered_connected) — the
    /// paper's "average of 130 SSIDs per connected client" observation.
    pub fn mean_offered_connected(&self) -> f64 {
        if self.offered_connected.is_empty() {
            return 0.0;
        }
        self.offered_connected.iter().sum::<usize>() as f64 / self.offered_connected.len() as f64
    }

    fn to_json(&self) -> Json {
        let pairs = |series: &[(u64, usize)]| {
            Json::Arr(
                series
                    .iter()
                    .map(|&(a, b)| Json::Arr(vec![Json::from_u64(a), Json::from_usize(b)]))
                    .collect(),
            )
        };
        let counts =
            |series: &[usize]| Json::Arr(series.iter().map(|&c| Json::from_usize(c)).collect());
        Json::Obj(vec![
            ("db".into(), pairs(&self.db_series)),
            ("conn".into(), pairs(&self.connected)),
            (
                "hbr".into(),
                Json::Arr(
                    self.realtime_hb
                        .iter()
                        .map(|&(w, hit, seen)| {
                            Json::Arr(vec![
                                Json::from_u64(w),
                                Json::from_usize(hit),
                                Json::from_usize(seen),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("off_conn".into(), counts(&self.offered_connected)),
            ("off_all".into(), counts(&self.offered_all)),
        ])
    }

    fn from_json(json: &Json) -> Option<RichRecord> {
        let pairs = |key: &str| -> Option<Vec<(u64, usize)>> {
            json.get(key)?
                .as_arr()?
                .iter()
                .map(|item| {
                    let pair = item.as_arr()?;
                    Some((pair.first()?.as_u64()?, pair.get(1)?.as_usize()?))
                })
                .collect()
        };
        let counts = |key: &str| -> Option<Vec<usize>> {
            json.get(key)?
                .as_arr()?
                .iter()
                .map(Json::as_usize)
                .collect()
        };
        let realtime_hb = json
            .get("hbr")?
            .as_arr()?
            .iter()
            .map(|item| {
                let triple = item.as_arr()?;
                Some((
                    triple.first()?.as_u64()?,
                    triple.get(1)?.as_usize()?,
                    triple.get(2)?.as_usize()?,
                ))
            })
            .collect::<Option<Vec<_>>>()?;
        Some(RichRecord {
            db_series: pairs("db")?,
            connected: pairs("conn")?,
            realtime_hb,
            offered_connected: counts("off_conn")?,
            offered_all: counts("off_all")?,
        })
    }
}

/// What the manifest records per job: the paper's summary row plus the
/// Fig. 6 breakdowns. Every field is an integer count, so the JSONL
/// round-trip is exact by construction.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// The Fig. 5 stacked-bar numbers.
    pub row: SummaryRow,
    /// Broadcast-hit SSID sources `(wigle, direct, carrier)`.
    pub sources: (usize, usize, usize),
    /// Broadcast-hit buffer lanes `(popularity, freshness)`.
    pub lanes: (usize, usize),
    /// The figure-class series, present only for rich jobs.
    pub extra: Option<RichRecord>,
}

impl JobRecord {
    /// Captures the record from one finished run.
    pub fn capture(metrics: &ExperimentMetrics, label: impl Into<String>) -> JobRecord {
        JobRecord {
            row: metrics.summary(label),
            sources: metrics.source_breakdown(),
            lanes: metrics.lane_breakdown(),
            extra: None,
        }
    }

    /// [`capture`](JobRecord::capture) plus the [`RichRecord`] series.
    pub fn capture_rich(
        metrics: &ExperimentMetrics,
        label: impl Into<String>,
        duration: SimDuration,
    ) -> JobRecord {
        JobRecord {
            extra: Some(RichRecord::capture(metrics, duration)),
            ..JobRecord::capture(metrics, label)
        }
    }

    /// The rich series, or an error naming the key that lacks them — the
    /// escape hatch for a manifest written by a summary-only run being
    /// resumed by a figure-class artifact.
    pub fn rich(&self, key: &str) -> Result<&RichRecord, String> {
        self.extra.as_ref().ok_or_else(|| {
            format!(
                "manifest record `{key}` has no rich series (written by a \
                 summary-only run?); re-run with --fresh"
            )
        })
    }
}

impl ManifestCodec for JobRecord {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("label".into(), Json::str(self.row.label.clone())),
            ("total".into(), Json::from_usize(self.row.total_clients)),
            ("direct".into(), Json::from_usize(self.row.direct_clients)),
            (
                "broadcast".into(),
                Json::from_usize(self.row.broadcast_clients),
            ),
            (
                "direct_conn".into(),
                Json::from_usize(self.row.direct_connected),
            ),
            (
                "broadcast_conn".into(),
                Json::from_usize(self.row.broadcast_connected),
            ),
            ("src_wigle".into(), Json::from_usize(self.sources.0)),
            ("src_direct".into(), Json::from_usize(self.sources.1)),
            ("src_carrier".into(), Json::from_usize(self.sources.2)),
            ("lane_pop".into(), Json::from_usize(self.lanes.0)),
            ("lane_fresh".into(), Json::from_usize(self.lanes.1)),
        ];
        if let Some(rich) = &self.extra {
            fields.push(("rich".into(), rich.to_json()));
        }
        Json::Obj(fields)
    }

    fn from_json(json: &Json) -> Option<Self> {
        let field = |key: &str| json.get(key).and_then(Json::as_usize);
        // A present-but-malformed `rich` object invalidates the record
        // (the job re-runs); an absent one is a summary-only record.
        let extra = match json.get("rich") {
            Some(rich) => Some(RichRecord::from_json(rich)?),
            None => None,
        };
        Some(JobRecord {
            row: SummaryRow {
                label: json.get("label")?.as_str()?.to_string(),
                total_clients: field("total")?,
                direct_clients: field("direct")?,
                broadcast_clients: field("broadcast")?,
                direct_connected: field("direct_conn")?,
                broadcast_connected: field("broadcast_conn")?,
            },
            sources: (
                field("src_wigle")?,
                field("src_direct")?,
                field("src_carrier")?,
            ),
            lanes: (field("lane_pop")?, field("lane_fresh")?),
            extra,
        })
    }
}

/// Runs `jobs` on the fleet engine and returns one [`JobRecord`] per job,
/// in input order.
///
/// Every job deploys from the build-once [`CampaignCtx`] (shared venue
/// plans, shared population pool) and executes on a worker-local
/// [`RunScratch`], so a campaign's cost is `build once + N × simulate`
/// rather than `N × (derive + allocate + simulate)`.
///
/// A job that panics is reported by the engine as a structured failure;
/// this wrapper turns any failure into an `Err` naming every failed key,
/// because a campaign figure with holes in it is not a figure.
pub fn run_jobs(
    ctx: &CampaignCtx,
    jobs: &[CampaignJob],
    opts: &FleetOptions,
) -> Result<(Vec<JobRecord>, FleetStats), String> {
    let report = run_campaign_scoped(
        jobs,
        opts,
        RunScratch::new,
        |job: &CampaignJob, scratch: &mut RunScratch| {
            let metrics = run_experiment_ctx(ctx, &job.config, scratch);
            if job.rich {
                JobRecord::capture_rich(&metrics, job.label.clone(), job.config.duration)
            } else {
                JobRecord::capture(&metrics, job.label.clone())
            }
        },
    )?;
    let mut records = Vec::with_capacity(report.outcomes.len());
    let mut failures = Vec::new();
    for (job, outcome) in jobs.iter().zip(&report.outcomes) {
        match &outcome.status {
            JobStatus::Done(record) | JobStatus::Cached(record) => {
                if job.rich && record.extra.is_none() {
                    failures.push(format!(
                        "{}: cached record has no rich series; re-run with --fresh",
                        outcome.key
                    ));
                } else {
                    records.push(record.clone());
                }
            }
            JobStatus::Failed(message) => failures.push(format!("{}: {message}", outcome.key)),
        }
    }
    if failures.is_empty() {
        Ok((records, report.stats))
    } else {
        Err(format!(
            "{} campaign job(s) failed:\n  {}",
            failures.len(),
            failures.join("\n  ")
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slug_flattens_labels() {
        assert_eq!(slug("Subway Passage"), "subway-passage");
        assert_eq!(
            slug("fixed split (no adaptation)"),
            "fixed-split-no-adaptation"
        );
        assert_eq!(slug("+ deauth extension"), "deauth-extension");
        assert_eq!(slug("full"), "full");
    }

    #[test]
    fn job_and_attacker_seeds_differ_and_are_stable() {
        let a = job_seed(7, "fig5/canteen/h12");
        assert_eq!(a, job_seed(7, "fig5/canteen/h12"));
        assert_ne!(a, job_seed(8, "fig5/canteen/h12"));
        assert_ne!(a, job_seed(7, "fig5/canteen/h13"));
        assert_ne!(a, attacker_seed(7, "fig5/canteen/h12"));
    }

    #[test]
    fn job_record_round_trips_through_the_manifest_codec() {
        let record = JobRecord {
            row: SummaryRow {
                label: "canteen 12:00".into(),
                total_clients: 321,
                direct_clients: 21,
                broadcast_clients: 300,
                direct_connected: 9,
                broadcast_connected: 55,
            },
            sources: (40, 14, 1),
            lanes: (48, 7),
            extra: None,
        };
        let json = record.to_json();
        assert!(
            !json.render().contains("rich"),
            "summary-only records must keep the pre-rich manifest format"
        );
        let reparsed = Json::parse(&json.render()).unwrap();
        assert_eq!(JobRecord::from_json(&reparsed), Some(record));
        assert_eq!(JobRecord::from_json(&Json::Null), None);
    }

    #[test]
    fn rich_record_round_trips_through_the_manifest_codec() {
        let record = JobRecord {
            row: SummaryRow {
                label: "fig1".into(),
                total_clients: 10,
                direct_clients: 2,
                broadcast_clients: 8,
                direct_connected: 1,
                broadcast_connected: 3,
            },
            sources: (3, 0, 0),
            lanes: (2, 1),
            extra: Some(RichRecord {
                db_series: vec![(0, 5), (1, 9)],
                connected: vec![(0, 0), (1, 2)],
                realtime_hb: vec![(0, 1, 4), (1, 2, 6)],
                offered_connected: vec![40, 80],
                offered_all: vec![0, 40, 40, 80],
            }),
        };
        let reparsed = Json::parse(&record.to_json().render()).unwrap();
        assert_eq!(JobRecord::from_json(&reparsed), Some(record.clone()));

        // A corrupt rich object invalidates the whole record (re-run).
        let tampered = record.to_json().render().replace("\"db\"", "\"xx\"");
        let bad = Json::parse(&tampered).unwrap();
        assert_eq!(JobRecord::from_json(&bad), None);
    }
}

//! The detection arms race — beyond the paper.
//!
//! City-Hunter's whole design optimizes hit rate against *unaware*
//! victims. This study asks the adversarial follow-up: what happens when
//! the venue runs a rogue-AP monitor (`ch-detect`)? The matrix crosses
//! three attacker generations with four evasion postures (none, MAC/OUI
//! rotation, beacon cloning, response throttling) and three detector
//! strictness levels, reporting per cell the attack's yield (h, h_b), the
//! detector's verdicts against ground truth (true/false positives,
//! time-to-detect), and — the headline — what each stealth posture costs
//! in broadcast hit rate.

use ch_attack::{CityHunterConfig, EvasionSpec};
use ch_detect::{DetectionReport, DetectorSpec, Strictness};
use ch_fleet::{
    run_campaign_scoped, FleetOptions, FleetStats, JobSpec, JobStatus, Json, ManifestCodec,
};
use ch_sim::SimDuration;

use crate::ctx::CampaignCtx;
use crate::experiments::standard_city;
use crate::fleet::{attacker_seed, job_seed};
use crate::metrics::SummaryRow;
use crate::runner::{run_experiment_ctx, AttackerKind, RunConfig, RunScratch};
use crate::world::CityData;

/// The attacker generations under test, in render order.
pub const ARMS_ATTACKERS: &[&str] = &["cityhunter", "mana", "karma"];

/// The evasion postures, in render order.
pub const ARMS_EVASIONS: &[&str] = &["none", "rotate", "clone", "throttle"];

/// The detector strictness levels, in render order.
pub const ARMS_STRICTNESS: &[&str] = &["lenient", "standard", "paranoid"];

/// The evasion posture behind one slug, scaled to the run length.
pub fn posture_evasion(evasion: &str, duration: SimDuration) -> EvasionSpec {
    match evasion {
        "none" => EvasionSpec::none(),
        // Five BSSIDs over the run: each rotation wipes the detector's
        // per-MAC evidence accumulators.
        "rotate" => EvasionSpec::rotate_every(SimDuration::from_secs(duration.as_secs() / 5)),
        "clone" => EvasionSpec::clone_beacons(),
        // Six responses per minute: starves the broadcast-bait heuristic,
        // and costs broadcast hits directly.
        "throttle" => EvasionSpec::throttled(6, SimDuration::from_secs(60)),
        other => ch_sim::invariant::violation(file!(), line!(), &format!("evasion `{other}`")),
    }
}

/// One cell of the matrix: an attacker generation under one evasion
/// posture, observed at one detector strictness.
#[derive(Debug, Clone)]
pub struct ArmsRaceJob {
    /// Manifest key, e.g. `arms_race/cityhunter/rotate/paranoid`.
    pub key: String,
    /// Attacker slug (an entry of [`ARMS_ATTACKERS`]).
    pub attacker: &'static str,
    /// Evasion slug (an entry of [`ARMS_EVASIONS`]).
    pub evasion: &'static str,
    /// Strictness slug (an entry of [`ARMS_STRICTNESS`]).
    pub strictness: &'static str,
    /// The fully resolved run configuration, detector spec included.
    pub config: RunConfig,
}

impl JobSpec for ArmsRaceJob {
    fn key(&self) -> String {
        self.key.clone()
    }
}

/// What the manifest records per cell: the attack summary plus the
/// detection score — all integer counts, so the JSONL round-trip is exact
/// by construction.
#[derive(Debug, Clone, PartialEq)]
pub struct ArmsRaceRecord {
    /// The standard attack summary row.
    pub row: SummaryRow,
    /// The detector's score against ground truth.
    pub report: DetectionReport,
}

impl ManifestCodec for ArmsRaceRecord {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("label".into(), Json::str(self.row.label.clone())),
            ("total".into(), Json::from_usize(self.row.total_clients)),
            ("direct".into(), Json::from_usize(self.row.direct_clients)),
            (
                "broadcast".into(),
                Json::from_usize(self.row.broadcast_clients),
            ),
            (
                "direct_conn".into(),
                Json::from_usize(self.row.direct_connected),
            ),
            (
                "broadcast_conn".into(),
                Json::from_usize(self.row.broadcast_connected),
            ),
            ("frames".into(), self.report.frames_observed.to_json()),
            ("rogue_macs".into(), self.report.rogue_macs.to_json()),
            ("legit_aps".into(), self.report.legit_aps.to_json()),
            ("verdicts".into(), self.report.verdicts.to_json()),
            (
                "rogue_verdicts".into(),
                self.report.rogue_verdicts.to_json(),
            ),
            ("flagged".into(), self.report.flagged.to_json()),
            ("flagged_rogue".into(), self.report.flagged_rogue.to_json()),
            ("flagged_legit".into(), self.report.flagged_legit.to_json()),
            (
                "ttd_us".into(),
                match self.report.time_to_detect_us {
                    Some(us) => us.to_json(),
                    None => Json::Null,
                },
            ),
        ])
    }

    fn from_json(json: &Json) -> Option<Self> {
        let count = |key: &str| json.get(key).and_then(Json::as_usize);
        let wide = |key: &str| json.get(key).and_then(u64::from_json);
        let ttd_us = match json.get("ttd_us")? {
            Json::Null => None,
            value => Some(u64::from_json(value)?),
        };
        Some(ArmsRaceRecord {
            row: SummaryRow {
                label: json.get("label")?.as_str()?.to_string(),
                total_clients: count("total")?,
                direct_clients: count("direct")?,
                broadcast_clients: count("broadcast")?,
                direct_connected: count("direct_conn")?,
                broadcast_connected: count("broadcast_conn")?,
            },
            report: DetectionReport {
                frames_observed: wide("frames")?,
                rogue_macs: wide("rogue_macs")?,
                legit_aps: wide("legit_aps")?,
                verdicts: wide("verdicts")?,
                rogue_verdicts: wide("rogue_verdicts")?,
                flagged: wide("flagged")?,
                flagged_rogue: wide("flagged_rogue")?,
                flagged_legit: wide("flagged_legit")?,
                time_to_detect_us: ttd_us,
            },
        })
    }
}

/// The rendered study: one row per matrix cell.
#[derive(Debug, Clone)]
pub struct ArmsRaceOutcome {
    /// Per-run minutes (8 in `--quick` mode, 30 otherwise).
    pub minutes: u64,
    /// `(attacker, evasion, strictness, record)` in matrix order.
    pub rows: Vec<(&'static str, &'static str, &'static str, ArmsRaceRecord)>,
}

impl ArmsRaceOutcome {
    /// The record for one matrix cell.
    pub fn record(
        &self,
        attacker: &str,
        evasion: &str,
        strictness: &str,
    ) -> Option<&ArmsRaceRecord> {
        self.rows
            .iter()
            .find(|(a, e, s, _)| *a == attacker && *e == evasion && *s == strictness)
            .map(|(_, _, _, record)| record)
    }

    /// The study as the `arms_race` binary prints it.
    pub fn render(&self) -> String {
        let mut out = format!(
            "detection arms race: canteen 12:00, {} min per run, \
             ch-detect monitor in-venue\n\
             evasions: rotate = new vendor OUI/MAC 5x per run; clone = \
             beacon as the nearest legitimate open AP;\n\
             throttle = at most 6 probe responses per minute\n\n",
            self.minutes
        );
        out.push_str(&format!(
            "{:<11} {:<9} {:<9} {:>7} {:>6} {:>6} {:>7} {:>5} {:>5} {:>5} {:>7} {:>6}\n",
            "attacker",
            "evasion",
            "strict",
            "clients",
            "h",
            "h_b",
            "frames",
            "macs",
            "TP",
            "FP",
            "ttd_s",
            "prec"
        ));
        for attacker in ARMS_ATTACKERS {
            for evasion in ARMS_EVASIONS {
                for strictness in ARMS_STRICTNESS {
                    let Some(record) = self.record(attacker, evasion, strictness) else {
                        continue;
                    };
                    let (row, report) = (&record.row, &record.report);
                    let ttd = match report.time_to_detect() {
                        Some(at) => format!("{:.0}", at.as_secs_f64()),
                        None => "-".to_string(),
                    };
                    let precision = match report.precision() {
                        Some(p) => format!("{p:.2}"),
                        None => "-".to_string(),
                    };
                    out.push_str(&format!(
                        "{:<11} {:<9} {:<9} {:>7} {:>6.3} {:>6.3} {:>7} {:>5} {:>5} {:>5} {:>7} {:>6}\n",
                        attacker,
                        evasion,
                        strictness,
                        row.total_clients,
                        row.h(),
                        row.h_b(),
                        report.frames_observed,
                        report.rogue_macs,
                        report.flagged_rogue,
                        report.flagged_legit,
                        ttd,
                        precision,
                    ));
                }
            }
            out.push('\n');
        }

        // Per-strictness detection summary across the whole matrix.
        for strictness in ARMS_STRICTNESS {
            let cells: Vec<&ArmsRaceRecord> = self
                .rows
                .iter()
                .filter(|(_, _, s, _)| s == strictness)
                .map(|(_, _, _, record)| record)
                .collect();
            if cells.is_empty() {
                continue;
            }
            let detected = cells.iter().filter(|r| r.report.detected()).count();
            let false_pos: u64 = cells.iter().map(|r| r.report.flagged_legit).sum();
            let mut ttds: Vec<u64> = cells
                .iter()
                .filter_map(|r| r.report.time_to_detect_us)
                .collect();
            ttds.sort_unstable();
            let median = ttds
                .get(ttds.len() / 2)
                .map(|&us| format!("{:.0} s", us as f64 / 1_000_000.0))
                .unwrap_or_else(|| "-".to_string());
            out.push_str(&format!(
                "{:<9} caught {:>2}/{} attacker cells, {} false-positive AP flag(s), median time-to-detect {}\n",
                strictness,
                detected,
                cells.len(),
                false_pos,
                median,
            ));
        }

        // The headline: what stealth costs the strongest attacker.
        if let Some(baseline) = self.record("cityhunter", "none", "standard") {
            let mut costs = Vec::new();
            for evasion in ARMS_EVASIONS.iter().filter(|e| **e != "none") {
                if let Some(record) = self.record("cityhunter", evasion, "standard") {
                    costs.push(format!(
                        "{} h_b {:.3} ({:+.3})",
                        evasion,
                        record.row.h_b(),
                        record.row.h_b() - baseline.row.h_b(),
                    ));
                }
            }
            if !costs.is_empty() {
                out.push_str(&format!(
                    "\nstealth cost (CityHunter, standard detector): baseline h_b {:.3}; {}\n",
                    baseline.row.h_b(),
                    costs.join("; "),
                ));
            }
        }
        // The driver's `line()` adds the final newline.
        while out.ends_with('\n') {
            out.pop();
        }
        out
    }
}

/// The study's job list: [`ARMS_ATTACKERS`] × [`ARMS_EVASIONS`] ×
/// [`ARMS_STRICTNESS`], keys like `arms_race/mana/clone/paranoid`, seeds
/// derived from `(campaign seed, key)`. The attack-side seed depends only
/// on the `(attacker, evasion)` pair — the detector is a passive tap, so
/// all three strictness cells of a pair replay the *same* attack, making
/// the strictness axis a pure detector comparison.
pub fn arms_race_jobs(seed: u64, quick: bool) -> Vec<ArmsRaceJob> {
    let duration = if quick {
        SimDuration::from_mins(8)
    } else {
        SimDuration::from_mins(30)
    };
    let mut jobs =
        Vec::with_capacity(ARMS_ATTACKERS.len() * ARMS_EVASIONS.len() * ARMS_STRICTNESS.len());
    for attacker in ARMS_ATTACKERS {
        for evasion in ARMS_EVASIONS {
            // One attack per (attacker, evasion): strictness only changes
            // the observer.
            let pair_key = format!("arms_race/{attacker}/{evasion}");
            let kind = match *attacker {
                "cityhunter" => AttackerKind::CityHunter(CityHunterConfig {
                    seed: attacker_seed(seed, &pair_key),
                    ..CityHunterConfig::default()
                }),
                "mana" => AttackerKind::Mana,
                "karma" => AttackerKind::Karma,
                other => {
                    ch_sim::invariant::violation(file!(), line!(), &format!("attacker `{other}`"))
                }
            };
            let kind = kind.with_evasion(posture_evasion(evasion, duration));
            for strictness in ARMS_STRICTNESS {
                let key = format!("{pair_key}/{strictness}");
                let level = match Strictness::from_slug(strictness) {
                    Some(level) => level,
                    None => ch_sim::invariant::violation(
                        file!(),
                        line!(),
                        &format!("strictness `{strictness}`"),
                    ),
                };
                let config = RunConfig {
                    duration,
                    seed: job_seed(seed, &pair_key),
                    detector: Some(DetectorSpec::with_strictness(level)),
                    ..RunConfig::canteen_30min(kind.clone(), 0)
                };
                jobs.push(ArmsRaceJob {
                    key,
                    attacker,
                    evasion,
                    strictness,
                    config,
                });
            }
        }
    }
    jobs
}

/// The arms-race study on the fleet engine.
///
/// # Errors
///
/// Fails if the engine cannot run or any job failed.
pub fn arms_race_fleet(
    ctx: &CampaignCtx,
    seed: u64,
    quick: bool,
    opts: &FleetOptions,
) -> Result<(ArmsRaceOutcome, FleetStats), String> {
    let jobs = arms_race_jobs(seed, quick);
    let report = run_campaign_scoped(
        &jobs,
        opts,
        RunScratch::new,
        |job: &ArmsRaceJob, scratch: &mut RunScratch| {
            let metrics = run_experiment_ctx(ctx, &job.config, scratch);
            let detection = match metrics.detection {
                Some(detection) => detection,
                None => ch_sim::invariant::violation(
                    file!(),
                    line!(),
                    &format!("`{}` ran without a detection report", job.key),
                ),
            };
            ArmsRaceRecord {
                row: metrics.summary(format!(
                    "{} {} {}",
                    job.attacker, job.evasion, job.strictness
                )),
                report: detection,
            }
        },
    )?;
    let mut rows = Vec::with_capacity(jobs.len());
    let mut failures = Vec::new();
    for (job, outcome) in jobs.iter().zip(&report.outcomes) {
        match &outcome.status {
            JobStatus::Done(record) | JobStatus::Cached(record) => {
                rows.push((job.attacker, job.evasion, job.strictness, record.clone()));
            }
            JobStatus::Failed(message) => failures.push(format!("{}: {message}", outcome.key)),
        }
    }
    if !failures.is_empty() {
        return Err(format!(
            "{} arms-race job(s) failed:\n  {}",
            failures.len(),
            failures.join("\n  ")
        ));
    }
    Ok((
        ArmsRaceOutcome {
            minutes: if quick { 8 } else { 30 },
            rows,
        },
        report.stats,
    ))
}

/// [`arms_race_fleet`] with in-memory options.
pub fn arms_race_with(data: &CityData, seed: u64, quick: bool) -> ArmsRaceOutcome {
    crate::experiments::expect_fleet(arms_race_fleet(
        &CampaignCtx::build(data),
        seed,
        quick,
        &FleetOptions::in_memory("arms-race", 0),
    ))
}

/// [`arms_race_with`] over a freshly built standard city, full length.
pub fn arms_race(seed: u64) -> ArmsRaceOutcome {
    arms_race_with(&standard_city(), seed, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_list_covers_the_matrix_with_unique_keys() {
        let jobs = arms_race_jobs(1, true);
        assert_eq!(
            jobs.len(),
            ARMS_ATTACKERS.len() * ARMS_EVASIONS.len() * ARMS_STRICTNESS.len()
        );
        let mut keys: Vec<&str> = jobs.iter().map(|j| j.key.as_str()).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), jobs.len(), "keys must be unique");
        for job in &jobs {
            // Every cell runs with an armed detector…
            let spec = job.config.detector.as_ref().unwrap();
            assert!(!spec.is_disabled(), "{}", job.key);
            assert_eq!(spec.strictness.slug(), job.strictness, "{}", job.key);
            // …and the un-evasive cells deploy the plain generation.
            let wrapped = matches!(job.config.attacker, AttackerKind::Evasive { .. });
            assert_eq!(wrapped, job.evasion != "none", "{}", job.key);
        }
        // Strictness never changes the attack side: all three cells of a
        // pair share seed and attacker spec.
        let by_pair = |e: &str, s: &str| {
            jobs.iter()
                .find(|j| j.attacker == "cityhunter" && j.evasion == e && j.strictness == s)
                .map(|j| (j.config.seed, j.config.attacker.clone()))
                .unwrap()
        };
        assert_eq!(by_pair("rotate", "lenient"), by_pair("rotate", "paranoid"));
    }

    #[test]
    fn postures_resolve_and_scale() {
        let quick = posture_evasion("rotate", SimDuration::from_mins(8));
        assert_eq!(
            quick.rotation.as_ref().unwrap().period,
            SimDuration::from_secs(96)
        );
        assert!(posture_evasion("none", SimDuration::from_mins(8)).is_none());
        assert!(posture_evasion("clone", SimDuration::from_mins(8)).beacon_clone);
        let throttle = posture_evasion("throttle", SimDuration::from_mins(8));
        assert_eq!(throttle.throttle.as_ref().unwrap().max_responses, 6);
    }

    #[test]
    fn record_round_trips_through_the_manifest_codec() {
        let record = ArmsRaceRecord {
            row: SummaryRow {
                label: "cityhunter rotate paranoid".into(),
                total_clients: 180,
                direct_clients: 14,
                broadcast_clients: 166,
                direct_connected: 6,
                broadcast_connected: 24,
            },
            report: DetectionReport {
                frames_observed: 5_012,
                rogue_macs: 5,
                legit_aps: 6,
                verdicts: 9,
                rogue_verdicts: 8,
                flagged: 4,
                flagged_rogue: 3,
                flagged_legit: 1,
                time_to_detect_us: Some(93_500_000),
            },
        };
        let reparsed = Json::parse(&record.to_json().render()).unwrap();
        assert_eq!(ArmsRaceRecord::from_json(&reparsed), Some(record.clone()));
        // The undetected case round-trips its null.
        let silent = ArmsRaceRecord {
            report: DetectionReport {
                time_to_detect_us: None,
                ..record.report
            },
            ..record
        };
        let reparsed = Json::parse(&silent.to_json().render()).unwrap();
        assert_eq!(ArmsRaceRecord::from_json(&reparsed), Some(silent));
        assert_eq!(ArmsRaceRecord::from_json(&Json::Null), None);
    }
}

//! Sensitivity sweeps (the §III-A cap, made visible).
//!
//! Each sweep is a one-dimensional grid of conditions, replicated across
//! seeds. The grid flattens to keyed fleet jobs (`sweep/<sweep>/<x>/s<i>`)
//! whose world seeds are the replica seeds themselves — exactly the seeds
//! the pre-fleet replication loop used — so every summary is byte-stable
//! against the old drivers.

use ch_attack::CityHunterConfig;
use ch_fleet::{FleetOptions, FleetStats};

use crate::ctx::CampaignCtx;
use crate::experiments::expect_fleet;
use crate::fleet::{run_jobs, slug, CampaignJob, JobRecord};
use crate::replicate::{seed_range, summarize};
use crate::runner::{AttackerKind, RunConfig};
use crate::world::CityData;

/// One sweep point: the independent variable plus replicated outcomes.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Independent-variable label (e.g. `"40"` lures, `"60m"` range).
    pub x: String,
    /// Replicated h_b summary at this point.
    pub h_b: ch_sim::Summary,
    /// Replicated client-volume summary at this point.
    pub clients: ch_sim::Summary,
}

/// A one-dimensional sensitivity sweep.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// What was swept.
    pub label: String,
    /// The points, in sweep order.
    pub points: Vec<SweepPoint>,
}

/// One sweep's declarative grid: a key segment, the rendered label, and
/// the `(x label, base config)` points in sweep order.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Key segment (`sweep/<slug>/…`).
    pub slug: &'static str,
    /// The rendered "Sweep: …" label.
    pub label: String,
    /// The grid, in sweep order.
    pub points: Vec<(String, RunConfig)>,
}

/// Sweeps the number of lures the attacker *sends* per broadcast probe.
///
/// The §III-A arithmetic says only ~40 probe responses fit the client's
/// listen window; sending more is free for the attacker but physically
/// cannot be received. The curve therefore rises up to 40 and then goes
/// flat — the saturation MANA unknowingly lived beyond.
pub fn lure_budget_spec() -> SweepSpec {
    // The preliminary attacker honours arbitrary send budgets (the full
    // City-Hunter self-caps at its 40-slot buffer total by design), so it
    // is the one that can demonstrate the over-sending plateau.
    let points = [5usize, 10, 20, 40, 80, 160]
        .iter()
        .map(|&budget| {
            (
                budget.to_string(),
                RunConfig {
                    lure_budget: Some(budget),
                    ..RunConfig::canteen_30min(AttackerKind::Prelim, 0)
                },
            )
        })
        .collect();
    SweepSpec {
        slug: "lure-budget",
        label: "lures sent per broadcast probe (prelim attacker, canteen, \
                30 min) — reception is capped near 40 by the scan window"
            .into(),
        points,
    }
}

/// Sweeps the attacker's radio range (transmit power): h_b and the
/// observed-client volume vs maximum range in the subway passage.
pub fn radio_range_spec() -> SweepSpec {
    let points = [20.0f64, 40.0, 60.0, 80.0, 100.0]
        .iter()
        .map(|&range| {
            (
                format!("{range:.0}m"),
                RunConfig {
                    loss: Some(ch_sim::LossModel::new(range * 0.6, range, 0.97)),
                    ..RunConfig::passage_30min(
                        AttackerKind::CityHunter(CityHunterConfig::default()),
                        0,
                    )
                },
            )
        })
        .collect();
    SweepSpec {
        slug: "radio-range",
        label: "attacker radio range (subway passage, 30 min)".into(),
        points,
    }
}

/// Forward-looking study: per-scan MAC randomization (a post-2017 privacy
/// feature) vs City-Hunter. Randomizing phones present a fresh MAC every
/// scan, so the §III-A per-client untried tracking can never accumulate —
/// each scan replays the head of the ranking — and the client counts
/// themselves inflate (every scan looks like a new device).
pub fn mac_randomization_spec(data: &CityData) -> SweepSpec {
    let points = [0.0f64, 0.25, 0.5, 0.75, 1.0]
        .iter()
        .map(|&fraction| {
            let mut population = data.population_params_for(ch_mobility::VenueKind::Canteen);
            population.mac_randomizing = fraction;
            (
                format!("{:.0}%", fraction * 100.0),
                RunConfig {
                    population: Some(population),
                    ..RunConfig::canteen_30min(
                        AttackerKind::CityHunter(CityHunterConfig::default()),
                        0,
                    )
                },
            )
        })
        .collect();
    SweepSpec {
        slug: "mac-randomization",
        label: "per-scan MAC randomization share (canteen, 30 min) — \
                note the client counts inflating as identities fragment"
            .into(),
        points,
    }
}

/// The crowd-density sweep the abstract promises ("public places with
/// different crowd density"): the canteen's arrival rate scaled from a
/// near-empty room to a crush, full City-Hunter deployed.
pub fn crowd_density_spec() -> SweepSpec {
    let points = [0.25f64, 0.5, 1.0, 2.0, 4.0]
        .iter()
        .map(|&multiplier| {
            (
                format!("{multiplier}x"),
                RunConfig {
                    arrival_multiplier: Some(multiplier),
                    ..RunConfig::canteen_30min(
                        AttackerKind::CityHunter(CityHunterConfig::default()),
                        0,
                    )
                },
            )
        })
        .collect();
    SweepSpec {
        slug: "crowd-density",
        label: "crowd density (canteen arrival-rate multiplier, 30 min)".into(),
        points,
    }
}

/// Scan-cadence sweep: how the clients' disconnected-scan interval shapes
/// the passage outcome. Fig. 2(b)'s 40/80 histogram is pure mechanics —
/// transit time divided by scan interval — so halving the interval doubles
/// the two-burst share and lifts h_b.
pub fn scan_interval_spec(data: &CityData) -> SweepSpec {
    let points = [(15.0, 30.0), (30.0, 60.0), (40.0, 90.0), (80.0, 160.0)]
        .iter()
        .map(|&(lo, hi)| {
            let mut population = data.population_params_for(ch_mobility::VenueKind::SubwayPassage);
            population.scan_interval_secs = (lo, hi);
            (
                format!("{lo:.0}-{hi:.0}s"),
                RunConfig {
                    population: Some(population),
                    ..RunConfig::passage_30min(
                        AttackerKind::CityHunter(CityHunterConfig::default()),
                        0,
                    )
                },
            )
        })
        .collect();
    SweepSpec {
        slug: "scan-interval",
        label: "disconnected-scan interval (subway passage, 30 min)".into(),
        points,
    }
}

/// The full sweep suite, in the `sweep` binary's print order.
pub fn sweep_specs(data: &CityData) -> Vec<SweepSpec> {
    vec![
        lure_budget_spec(),
        radio_range_spec(),
        mac_randomization_spec(data),
        crowd_density_spec(),
        scan_interval_spec(data),
    ]
}

/// The job list for one sweep: every point × every replica seed, keys
/// like `sweep/radio-range/60m/s1`. The world seed of replica `i` is
/// `base_seed + i` — the exact seed the replication loop used.
///
/// # Panics
///
/// Panics if `replicas` is zero (a sweep point needs at least one run).
pub fn sweep_jobs_for(spec: &SweepSpec, base_seed: u64, replicas: usize) -> Vec<CampaignJob> {
    assert!(replicas > 0, "a sweep needs at least one replica");
    let seeds = seed_range(base_seed, replicas);
    let mut jobs = Vec::with_capacity(spec.points.len() * replicas);
    for (x, base) in &spec.points {
        for (i, &seed) in seeds.iter().enumerate() {
            jobs.push(CampaignJob::new(
                format!("sweep/{}/{}/s{}", spec.slug, slug(x), i + 1),
                format!("{x} #{}", i + 1),
                RunConfig {
                    seed,
                    ..base.clone()
                },
            ));
        }
    }
    jobs
}

/// The whole suite's job list (all five sweeps in one campaign).
///
/// # Panics
///
/// Panics if `replicas` is zero.
pub fn sweep_jobs(data: &CityData, base_seed: u64, replicas: usize) -> Vec<CampaignJob> {
    sweep_specs(data)
        .iter()
        .flat_map(|spec| sweep_jobs_for(spec, base_seed, replicas))
        .collect()
}

/// Folds one sweep's records (point-major, `replicas` runs per point)
/// back into summarized points.
fn sweep_outcome(spec: &SweepSpec, replicas: usize, records: &[JobRecord]) -> SweepOutcome {
    let points = spec
        .points
        .iter()
        .zip(records.chunks(replicas.max(1)))
        .map(|((x, _), chunk)| {
            let h_b: Vec<f64> = chunk.iter().map(|r| r.row.h_b()).collect();
            let clients: Vec<f64> = chunk.iter().map(|r| r.row.total_clients as f64).collect();
            SweepPoint {
                x: x.clone(),
                h_b: summarize(&h_b),
                clients: summarize(&clients),
            }
        })
        .collect();
    SweepOutcome {
        label: spec.label.clone(),
        points,
    }
}

/// One sweep on the fleet engine.
///
/// # Errors
///
/// Fails if the engine cannot run or any replica's simulation failed.
pub fn sweep_fleet(
    ctx: &CampaignCtx,
    spec: &SweepSpec,
    base_seed: u64,
    replicas: usize,
    opts: &FleetOptions,
) -> Result<(SweepOutcome, FleetStats), String> {
    let jobs = sweep_jobs_for(spec, base_seed, replicas);
    let (records, stats) = run_jobs(ctx, &jobs, opts)?;
    Ok((sweep_outcome(spec, replicas, &records), stats))
}

/// The full suite on the fleet engine as one campaign: all five sweeps'
/// replicas interleave on the worker pool, and one manifest resumes the
/// lot.
///
/// # Errors
///
/// Fails if the engine cannot run or any replica's simulation failed.
pub fn sweep_suite_fleet(
    ctx: &CampaignCtx,
    base_seed: u64,
    replicas: usize,
    opts: &FleetOptions,
) -> Result<(Vec<SweepOutcome>, FleetStats), String> {
    let specs = sweep_specs(ctx.data());
    let jobs = sweep_jobs(ctx.data(), base_seed, replicas);
    let (records, stats) = run_jobs(ctx, &jobs, opts)?;
    let mut outcomes = Vec::with_capacity(specs.len());
    let mut offset = 0;
    for spec in &specs {
        let len = spec.points.len() * replicas;
        outcomes.push(sweep_outcome(
            spec,
            replicas,
            &records[offset..offset + len],
        ));
        offset += len;
    }
    Ok((outcomes, stats))
}

fn sweep_with(data: &CityData, spec: &SweepSpec, base_seed: u64, replicas: usize) -> SweepOutcome {
    expect_fleet(sweep_fleet(
        &CampaignCtx::build(data),
        spec,
        base_seed,
        replicas,
        &FleetOptions::in_memory("sweep", 0),
    ))
}

/// The lure-budget sweep (see [`lure_budget_spec`]).
pub fn sweep_lure_budget(data: &CityData, base_seed: u64, replicas: usize) -> SweepOutcome {
    sweep_with(data, &lure_budget_spec(), base_seed, replicas)
}

/// The radio-range sweep (see [`radio_range_spec`]).
pub fn sweep_radio_range(data: &CityData, base_seed: u64, replicas: usize) -> SweepOutcome {
    sweep_with(data, &radio_range_spec(), base_seed, replicas)
}

/// The MAC-randomization sweep (see [`mac_randomization_spec`]).
pub fn sweep_mac_randomization(data: &CityData, base_seed: u64, replicas: usize) -> SweepOutcome {
    sweep_with(data, &mac_randomization_spec(data), base_seed, replicas)
}

/// The crowd-density sweep (see [`crowd_density_spec`]).
pub fn sweep_crowd_density(data: &CityData, base_seed: u64, replicas: usize) -> SweepOutcome {
    sweep_with(data, &crowd_density_spec(), base_seed, replicas)
}

/// The scan-interval sweep (see [`scan_interval_spec`]).
pub fn sweep_scan_interval(data: &CityData, base_seed: u64, replicas: usize) -> SweepOutcome {
    sweep_with(data, &scan_interval_spec(data), base_seed, replicas)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_jobs_replicate_the_legacy_seed_range() {
        let spec = lure_budget_spec();
        let jobs = sweep_jobs_for(&spec, 100, 3);
        assert_eq!(jobs.len(), 6 * 3);
        assert_eq!(jobs[0].key, "sweep/lure-budget/5/s1");
        assert_eq!(jobs[0].config.seed, 100);
        assert_eq!(jobs[1].config.seed, 101);
        assert_eq!(jobs[2].config.seed, 102);
        assert_eq!(jobs[3].key, "sweep/lure-budget/10/s1");
        // Distinct x labels must stay distinct after slugging.
        let keys: std::collections::BTreeSet<&str> = jobs.iter().map(|j| j.key.as_str()).collect();
        assert_eq!(keys.len(), jobs.len(), "sweep keys must be unique");
    }

    #[test]
    fn suite_keys_are_globally_unique() {
        let data = CityData::standard(0x11);
        let jobs = sweep_jobs(&data, 1, 2);
        let keys: std::collections::BTreeSet<&str> = jobs.iter().map(|j| j.key.as_str()).collect();
        assert_eq!(keys.len(), jobs.len());
    }
}

//! One driver per table and figure of the paper — the execution layer of
//! the experiment stack.
//!
//! Every driver is deterministic in its seed, builds (or receives) the
//! standard city, expands its work into keyed [`crate::fleet::CampaignJob`]s,
//! and runs them on the `ch-fleet` engine — parallel, panic-isolated, and
//! resumable — before reassembling a structured outcome. Rendering lives
//! in [`crate::report`]; the registry that maps artifact ids to these
//! drivers lives in [`crate::registry`]; the `ch-bench` `experiment`
//! binary is a thin dispatcher over both.
//!
//! The family split:
//!
//! * [`tables`] — Table I–IV (summary-row artifacts);
//! * [`figures`] — Fig. 1–4 (series/histogram/static artifacts);
//! * [`campaign`] — the Fig. 5/6 4-venue × 12-hour campaign;
//! * [`ablation`] — the design-choice ablation matrix;
//! * [`sweeps`] — one-dimensional sensitivity sweeps;
//! * [`warm`] — the warm-start (database carry-over) study;
//! * [`faults`] — the fault-injection / graceful-degradation study.
//! * [`arms_race`] — attacker evasion vs the `ch-detect` rogue-AP monitor.

pub mod ablation;
pub mod arms_race;
pub mod campaign;
pub mod faults;
pub mod figures;
pub mod sweeps;
pub mod tables;
pub mod warm;

pub use ablation::{
    ablation, ablation_fleet, ablation_jobs, ablation_with, AblationOutcome, AblationRow,
};
pub use arms_race::{
    arms_race, arms_race_fleet, arms_race_jobs, arms_race_with, posture_evasion, ArmsRaceJob,
    ArmsRaceOutcome, ArmsRaceRecord, ARMS_ATTACKERS, ARMS_EVASIONS, ARMS_STRICTNESS,
};
pub use campaign::{
    campaign, campaign_fleet, campaign_jobs, campaign_with, CampaignOutcome, HourResult,
    VenueSeries,
};
pub use faults::{
    faults, faults_fleet, faults_jobs, faults_with, profile_fault, FaultJob, FaultsOutcome,
    FaultsRecord, FAULT_ATTACKERS, FAULT_PROFILES,
};
pub use figures::{
    fig1, fig1_fleet, fig1_jobs, fig1_with, fig2, fig2_fleet, fig2_jobs, fig2_with, fig3, fig4,
    fig4_with, Fig1Outcome, Fig2Outcome, Fig4Outcome,
};
pub use sweeps::{
    sweep_crowd_density, sweep_fleet, sweep_jobs, sweep_jobs_for, sweep_lure_budget,
    sweep_mac_randomization, sweep_radio_range, sweep_scan_interval, sweep_specs,
    sweep_suite_fleet, SweepOutcome, SweepPoint, SweepSpec,
};
pub use tables::{
    table1, table1_fleet, table1_jobs, table1_with, table2, table2_fleet, table2_jobs, table2_with,
    table3, table3_fleet, table3_jobs, table3_with, table4, table4_with, Table1Outcome,
    Table2Outcome, Table3Outcome, Table4Outcome,
};
pub use warm::{warm_start, warm_start_fleet, warm_start_jobs, warm_start_with, WarmStartOutcome};

pub use crate::report::hour_label;

use crate::world::CityData;

/// The fixed city seed: all experiments share one synthetic Hong Kong.
pub const CITY_SEED: u64 = 0x0C17_F00D;

/// Builds the shared city (cached by the caller when running several
/// experiments).
pub fn standard_city() -> CityData {
    CityData::standard(CITY_SEED)
}

/// Unwraps an in-memory fleet run: in-memory options cannot hit manifest
/// I/O and the job lists are duplicate-free by construction, so the only
/// way to an `Err` is a panic inside a simulation — which deserves to
/// propagate as one.
pub(crate) fn expect_fleet<T>(result: Result<(T, ch_fleet::FleetStats), String>) -> T {
    match result {
        Ok((outcome, _)) => outcome,
        Err(error) => ch_sim::invariant::violation(file!(), line!(), &error),
    }
}

//! The warm-start (database carry-over) study — beyond the paper.

use ch_attack::CityHunterConfig;
use ch_fleet::{FleetOptions, FleetStats};

use crate::ctx::CampaignCtx;
use crate::experiments::{expect_fleet, standard_city};
use crate::fleet::{attacker_seed, job_seed, run_jobs, CampaignJob};
use crate::runner::{AttackerKind, RunConfig};
use crate::world::CityData;

/// Warm-start study (beyond the paper): §V-A re-initializes the database
/// before every test; what does *not* doing that buy? One attacker
/// instance hunts the canteen for several consecutive half-hours, its
/// database, weights and buffer split carrying over, against a cold-
/// started control each slot.
#[derive(Debug, Clone)]
pub struct WarmStartOutcome {
    /// Per-slot `(label, cold h_b, warm h_b, warm database size)`.
    pub slots: Vec<(String, f64, f64, usize)>,
}

/// The warm-start cold-control job list: one independent cold-started
/// canteen run per slot, keys like `warm-start/cold/s1`.
pub fn warm_start_jobs(seed: u64, slots: usize) -> Vec<CampaignJob> {
    (0..slots)
        .map(|slot| {
            let key = format!("warm-start/cold/s{}", slot + 1);
            let config = RunConfig {
                start_hour: 11 + slot / 2, // consecutive lunchtime half-hours
                seed: job_seed(seed, &key),
                ..RunConfig::canteen_30min(
                    AttackerKind::CityHunter(CityHunterConfig {
                        seed: attacker_seed(seed, &key),
                        ..CityHunterConfig::default()
                    }),
                    0,
                )
            };
            CampaignJob::new(key, format!("cold #{}", slot + 1), config)
        })
        .collect()
}

/// The warm-start study on the fleet engine: the per-slot cold controls
/// are independent and run as fleet jobs; the warm attacker's chain is
/// inherently sequential (its database carries across slots) and runs
/// serially against the same per-slot configurations.
///
/// # Errors
///
/// Fails if the engine cannot run or any cold control failed.
pub fn warm_start_fleet(
    ctx: &CampaignCtx,
    seed: u64,
    slots: usize,
    opts: &FleetOptions,
) -> Result<(WarmStartOutcome, FleetStats), String> {
    use crate::runner::run_experiment_with_attacker;
    use ch_attack::{Attacker, CityHunter};

    let jobs = warm_start_jobs(seed, slots);
    let (cold, stats) = run_jobs(ctx, &jobs, opts)?;

    let data = ctx.data();
    let bssid = ch_attack::AttackerSpec::default_bssid();
    let mut warm = CityHunter::from_plan(
        bssid,
        &ctx.plan(ch_mobility::VenueKind::Canteen).attack,
        CityHunterConfig {
            seed: attacker_seed(seed, "warm-start/warm"),
            ..CityHunterConfig::default()
        },
    );
    let results = jobs
        .iter()
        .zip(&cold)
        .enumerate()
        .map(|(slot, (job, cold_record))| {
            let warm_metrics = run_experiment_with_attacker(data, &job.config, &mut warm);
            (
                format!("#{}", slot + 1),
                cold_record.row.h_b(),
                warm_metrics.summary("warm").h_b(),
                warm.database_len(),
            )
        })
        .collect();
    Ok((WarmStartOutcome { slots: results }, stats))
}

/// [`warm_start_fleet`] with in-memory options.
pub fn warm_start_with(data: &CityData, seed: u64, slots: usize) -> WarmStartOutcome {
    expect_fleet(warm_start_fleet(
        &CampaignCtx::build(data),
        seed,
        slots,
        &FleetOptions::in_memory("warm-start", 0),
    ))
}

/// [`warm_start_with`] over a freshly built standard city, 4 slots.
pub fn warm_start(seed: u64) -> WarmStartOutcome {
    warm_start_with(&standard_city(), seed, 4)
}

//! Fig. 1–4: the paper's series, histogram and static artifacts.
//!
//! Fig. 1 and Fig. 2 expand to rich fleet jobs (legacy world-seed masks
//! preserved); Fig. 3 and Fig. 4 are rendered from live constants and
//! offline data products respectively.

use ch_fleet::{FleetOptions, FleetStats};

use crate::ctx::CampaignCtx;
use crate::experiments::{expect_fleet, standard_city};
use crate::fleet::{run_jobs, CampaignJob};
use crate::runner::{AttackerKind, RunConfig};
use crate::world::CityData;

/// Outcome of the Fig. 1 reproduction (MANA's database-growth pathology).
#[derive(Debug, Clone)]
pub struct Fig1Outcome {
    /// `(minute, database size)` — Fig. 1(a), first curve.
    pub db_size: Vec<(u64, usize)>,
    /// `(minute, cumulative broadcast clients connected)` — Fig. 1(a),
    /// second curve.
    pub connected: Vec<(u64, usize)>,
    /// `(2-minute window, hits, clients)` — Fig. 1(b), real-time h_b^r.
    pub realtime_hb: Vec<(u64, usize, usize)>,
}

/// The Fig. 1 job list: a 30-minute MANA canteen run with rich series
/// capture (legacy `^ 0xF1` world-seed mask).
pub fn fig1_jobs(seed: u64) -> Vec<CampaignJob> {
    vec![CampaignJob::new(
        "fig1/mana",
        "MANA",
        RunConfig::canteen_30min(AttackerKind::Mana, seed ^ 0xF1),
    )
    .with_rich()]
}

/// Fig. 1 on the fleet engine: per-minute samples / 2-minute windows.
///
/// # Errors
///
/// Fails if the engine cannot run or the simulation failed.
pub fn fig1_fleet(
    ctx: &CampaignCtx,
    seed: u64,
    opts: &FleetOptions,
) -> Result<(Fig1Outcome, FleetStats), String> {
    let jobs = fig1_jobs(seed);
    let (records, stats) = run_jobs(ctx, &jobs, opts)?;
    let rich = records[0].rich(&jobs[0].key)?;
    Ok((
        Fig1Outcome {
            db_size: rich.db_series.clone(),
            connected: rich.connected.clone(),
            realtime_hb: rich.realtime_hb.clone(),
        },
        stats,
    ))
}

/// [`fig1_fleet`] with in-memory options.
pub fn fig1_with(data: &CityData, seed: u64) -> Fig1Outcome {
    expect_fleet(fig1_fleet(
        &CampaignCtx::build(data),
        seed,
        &FleetOptions::in_memory("fig1", 0),
    ))
}

/// [`fig1_with`] over a freshly built standard city.
pub fn fig1(seed: u64) -> Fig1Outcome {
    fig1_with(&standard_city(), seed)
}

/// Outcome of the Fig. 2 reproduction.
#[derive(Debug, Clone)]
pub struct Fig2Outcome {
    /// Fig. 2(a): SSIDs sent to each *connected* broadcast client in the
    /// canteen (sorted ascending).
    pub canteen_offered_connected: Vec<usize>,
    /// Fig. 2(b): SSIDs sent to *all* broadcast clients in the passage.
    pub passage_offered_all: Vec<usize>,
}

impl Fig2Outcome {
    /// Mean of panel (a), the paper's "average of 130".
    pub fn canteen_mean(&self) -> f64 {
        if self.canteen_offered_connected.is_empty() {
            return 0.0;
        }
        self.canteen_offered_connected.iter().sum::<usize>() as f64
            / self.canteen_offered_connected.len() as f64
    }
}

/// The Fig. 2 job list: the per-client SSID-depth runs behind Tables
/// II/III (same legacy world-seed masks, rich capture).
pub fn fig2_jobs(seed: u64) -> Vec<CampaignJob> {
    vec![
        CampaignJob::new(
            "fig2/canteen",
            "canteen",
            RunConfig::canteen_30min(AttackerKind::Prelim, seed ^ 0xB2),
        )
        .with_rich(),
        CampaignJob::new(
            "fig2/passage",
            "passage",
            RunConfig::passage_30min(AttackerKind::Prelim, seed ^ 0xC1),
        )
        .with_rich(),
    ]
}

/// Fig. 2 on the fleet engine.
///
/// # Errors
///
/// Fails if the engine cannot run or either simulation failed.
pub fn fig2_fleet(
    ctx: &CampaignCtx,
    seed: u64,
    opts: &FleetOptions,
) -> Result<(Fig2Outcome, FleetStats), String> {
    let jobs = fig2_jobs(seed);
    let (records, stats) = run_jobs(ctx, &jobs, opts)?;
    Ok((
        Fig2Outcome {
            canteen_offered_connected: records[0].rich(&jobs[0].key)?.offered_connected.clone(),
            passage_offered_all: records[1]
                .rich(&jobs[1].key)?
                .offered_all
                .iter()
                .copied()
                .filter(|&c| c > 0)
                .collect(),
        },
        stats,
    ))
}

/// [`fig2_fleet`] with in-memory options.
pub fn fig2_with(data: &CityData, seed: u64) -> Fig2Outcome {
    expect_fleet(fig2_fleet(
        &CampaignCtx::build(data),
        seed,
        &FleetOptions::in_memory("fig2", 0),
    ))
}

/// [`fig2_with`] over a freshly built standard city.
pub fn fig2(seed: u64) -> Fig2Outcome {
    fig2_with(&standard_city(), seed)
}

/// Outcome of the Fig. 4 reproduction: ASCII heat-map panels for two
/// districts (Kowloon, Lantao Island).
#[derive(Debug, Clone)]
pub struct Fig4Outcome {
    /// `(district name, rendered panel)`.
    pub panels: Vec<(String, String)>,
}

/// Fig. 4: the heat map for the two districts the paper shows.
pub fn fig4_with(data: &CityData) -> Fig4Outcome {
    let panels = data
        .city
        .districts()
        .iter()
        .filter(|d| d.name == "Kowloon" || d.name == "Lantao Island")
        .map(|d| (d.name.clone(), data.heat.render_ascii(d.area, 2)))
        .collect();
    Fig4Outcome { panels }
}

/// [`fig4_with`] over a freshly built standard city.
pub fn fig4() -> Fig4Outcome {
    fig4_with(&standard_city())
}

/// Fig. 3 stand-in: the paper's logic-flow diagram, rendered with this
/// implementation's live parameters. (Fig. 3 is an architecture diagram,
/// not a measurement; this keeps "every figure" regenerable.)
pub fn fig3() -> String {
    use ch_attack::buffers::{GHOST_LEN, GHOST_PICKS};
    use ch_attack::prelim::{WIGLE_NEARBY, WIGLE_TOP_BY_HEAT};
    use ch_wifi::timing;

    format!(
        r#"Fig. 3: the logic flow of City-Hunter (live parameters)

 [1. Database initialization]
     WiGLE top-{top} by heat value (rank weights {top}..1)
     + {near} SSIDs nearest the attack site (rank weights {near}..1)
         |
         v
 [2. On-line database updating]   <--- (after every scan exchange)
     direct probe  -> add SSID / bump weight
     broadcast hit -> bump weight, stamp freshness
         |
         v
 [3. SSID selection & buffer-size adjustment]
     Popularity Buffer (p) with a {ghost}-entry ghost list
     Freshness  Buffer (f) with a {ghost}-entry ghost list
     constraint: p + f = {budget}
     {picks} random ghosts per side replace each side's lowest picks
     ghost hit on the PB side -> p+1, f-1; on the FB side -> f+1, p-1
         |
         v
 [4. Send SSIDs to broadcast probes]
     up to {budget} probe responses per scan
     ({window} listen window at {airtime} per response)
     never repeat an SSID to the same client MAC; then back to step 2
"#,
        top = WIGLE_TOP_BY_HEAT,
        near = WIGLE_NEARBY,
        ghost = GHOST_LEN,
        picks = GHOST_PICKS,
        budget = timing::responses_per_scan(),
        window = timing::EXTENDED_WAIT,
        airtime = timing::PROBE_RESPONSE_AIRTIME,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_renders_two_districts() {
        let data = standard_city();
        let outcome = fig4_with(&data);
        assert_eq!(outcome.panels.len(), 2);
        let names: Vec<&str> = outcome.panels.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"Kowloon"));
        assert!(names.contains(&"Lantao Island"));
        for (_, panel) in &outcome.panels {
            assert!(panel.lines().count() > 10, "panel too small");
        }
    }

    #[test]
    fn fig3_reflects_live_constants() {
        let rendered = fig3();
        assert!(rendered.contains("top-200"));
        assert!(rendered.contains("p + f = 40"));
        assert!(rendered.contains("10ms"));
        assert!(rendered.contains("250us"));
    }
}

//! Fig. 5 / Fig. 6: the 4-venue × 12-hour campaign.

use ch_attack::CityHunterConfig;
use ch_fleet::{FleetOptions, FleetStats};
use ch_mobility::VenueKind;
use ch_sim::SimDuration;

use crate::ctx::CampaignCtx;
use crate::experiments::{expect_fleet, standard_city};
use crate::fleet::{attacker_seed, job_seed, run_jobs, slug, CampaignJob, JobRecord};
use crate::metrics::SummaryRow;
use crate::runner::{AttackerKind, RunConfig};
use crate::world::CityData;

/// One hourly test in one venue.
#[derive(Debug, Clone)]
pub struct HourResult {
    /// Wall-clock start hour (8..=19).
    pub hour: usize,
    /// The Fig. 5 stacked-bar numbers.
    pub row: SummaryRow,
    /// Fig. 6 source breakdown `(wigle, direct, carrier)` of broadcast hits.
    pub sources: (usize, usize, usize),
    /// Fig. 6 buffer breakdown `(popularity side, freshness side)`.
    pub lanes: (usize, usize),
}

/// A venue's 12 hourly tests.
#[derive(Debug, Clone)]
pub struct VenueSeries {
    /// The venue.
    pub venue: VenueKind,
    /// Results for hours 8..=19.
    pub hours: Vec<HourResult>,
}

impl VenueSeries {
    /// Mean broadcast hit rate across the hours (the §V-A per-venue
    /// averages: passage 12 %, canteen 17.9 %, shopping 14 %, railway
    /// 16.6 %).
    pub fn average_hb(&self) -> f64 {
        if self.hours.is_empty() {
            return 0.0;
        }
        self.hours.iter().map(|h| h.row.h_b()).sum::<f64>() / self.hours.len() as f64
    }

    /// Mean overall hit rate across the hours.
    pub fn average_h(&self) -> f64 {
        if self.hours.is_empty() {
            return 0.0;
        }
        self.hours.iter().map(|h| h.row.h()).sum::<f64>() / self.hours.len() as f64
    }
}

/// Outcome of the Fig. 5 + Fig. 6 campaign.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// One series per venue, in Fig. 5 order.
    pub venues: Vec<VenueSeries>,
}

/// The Fig. 5/6 job list: the full City-Hunter in all four venues, one
/// job per venue-hour (database re-initialized per test as in §V-A).
/// Keys look like `fig5/canteen/h12`; world and attacker seeds are both
/// derived from `(seed, key)`, so the list order carries no entropy.
pub fn campaign_jobs(seed: u64, hours: &[usize], duration: SimDuration) -> Vec<CampaignJob> {
    let mut jobs = Vec::with_capacity(VenueKind::ALL.len() * hours.len());
    for venue in VenueKind::ALL {
        for &hour in hours {
            let key = format!("fig5/{}/h{hour:02}", slug(venue.name()));
            jobs.push(CampaignJob::new(
                key.clone(),
                format!("{} {hour}:00", venue.name()),
                RunConfig {
                    venue,
                    start_hour: hour,
                    duration,
                    attacker: AttackerKind::CityHunter(CityHunterConfig {
                        seed: attacker_seed(seed, &key),
                        ..CityHunterConfig::default()
                    }),
                    seed: job_seed(seed, &key),
                    lure_budget: None,
                    loss: None,
                    population: None,
                    arrival_multiplier: None,
                    fault: None,
                    detector: None,
                },
            ));
        }
    }
    jobs
}

/// Reassembles the per-venue series from job records in
/// [`campaign_jobs`]'s venue-major order.
fn campaign_outcome(hours: &[usize], records: &[JobRecord]) -> CampaignOutcome {
    let venues = VenueKind::ALL
        .iter()
        .zip(records.chunks(hours.len().max(1)))
        .map(|(&venue, chunk)| VenueSeries {
            venue,
            hours: hours
                .iter()
                .zip(chunk)
                .map(|(&hour, record)| HourResult {
                    hour,
                    row: record.row.clone(),
                    sources: record.sources,
                    lanes: record.lanes,
                })
                .collect(),
        })
        .collect();
    CampaignOutcome { venues }
}

/// The Fig. 5/6 campaign on the fleet engine: parallel across venue-hours,
/// resumable when `opts` carries a manifest. `duration` is the per-test
/// length (the paper's is one hour; smoke runs shrink it).
///
/// # Errors
///
/// Fails if the engine cannot run (duplicate keys, manifest I/O) or any
/// job failed — a campaign figure with holes in it is not a figure.
pub fn campaign_fleet(
    ctx: &CampaignCtx,
    seed: u64,
    hours: &[usize],
    duration: SimDuration,
    opts: &FleetOptions,
) -> Result<(CampaignOutcome, FleetStats), String> {
    let jobs = campaign_jobs(seed, hours, duration);
    let (records, stats) = run_jobs(ctx, &jobs, opts)?;
    Ok((campaign_outcome(hours, &records), stats))
}

/// [`campaign_fleet`] with in-memory options and the paper's hour-long
/// tests. Heavy: `4 × hours.len()` hour-long simulations.
pub fn campaign_with(data: &CityData, seed: u64, hours: &[usize]) -> CampaignOutcome {
    expect_fleet(campaign_fleet(
        &CampaignCtx::build(data),
        seed,
        hours,
        SimDuration::from_hours(1),
        &FleetOptions::in_memory("fig5", 0),
    ))
}

/// The full 8am–8pm campaign.
pub fn campaign(seed: u64) -> CampaignOutcome {
    let hours: Vec<usize> = (8..20).collect();
    campaign_with(&standard_city(), seed, &hours)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_shape_matches_campaign() {
        let outcome = CampaignOutcome {
            venues: vec![VenueSeries {
                venue: VenueKind::Canteen,
                hours: vec![HourResult {
                    hour: 12,
                    row: SummaryRow {
                        label: "x".into(),
                        total_clients: 100,
                        direct_clients: 10,
                        broadcast_clients: 90,
                        direct_connected: 4,
                        broadcast_connected: 9,
                    },
                    sources: (7, 2, 0),
                    lanes: (8, 1),
                }],
            }],
        };
        let csv = outcome.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].split(',').count(), 14);
        let row: Vec<&str> = lines[1].split(',').collect();
        assert_eq!(row[0], "canteen");
        assert_eq!(row[1], "12");
        assert_eq!(row[3], "9");
        assert_eq!(row[4], "81"); // 90 - 9
        assert_eq!(row[8], "0.1000"); // h_b
        assert_eq!(row[9], "7");
    }
}

//! The design-choice ablation matrix promised in DESIGN.md.

use ch_attack::CityHunterConfig;
use ch_fleet::{FleetOptions, FleetStats};

use crate::ctx::CampaignCtx;
use crate::experiments::{expect_fleet, standard_city};
use crate::fleet::{attacker_seed, job_seed, run_jobs, slug, CampaignJob};
use crate::metrics::SummaryRow;
use crate::runner::{AttackerKind, RunConfig};
use crate::world::CityData;

/// One ablation configuration's results in both reference venues.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Variant label.
    pub label: String,
    /// Canteen summary.
    pub canteen: SummaryRow,
    /// Passage summary.
    pub passage: SummaryRow,
}

/// Outcome of the ablation matrix.
#[derive(Debug, Clone)]
pub struct AblationOutcome {
    /// One row per variant.
    pub rows: Vec<AblationRow>,
}

/// The ablation variant list: each §IV/§V design choice disabled in
/// isolation, plus the §V-B extensions enabled.
fn ablation_variants() -> Vec<(&'static str, CityHunterConfig)> {
    vec![
        ("full", CityHunterConfig::default()),
        (
            "fixed split (no adaptation)",
            CityHunterConfig {
                adaptive_sizing: false,
                ..CityHunterConfig::default()
            },
        ),
        (
            "no freshness buffer",
            CityHunterConfig {
                use_freshness: false,
                adaptive_sizing: false,
                ..CityHunterConfig::default()
            },
        ),
        (
            "no WiGLE seed",
            CityHunterConfig {
                use_wigle: false,
                ..CityHunterConfig::default()
            },
        ),
        (
            "no untried tracking",
            CityHunterConfig {
                untried_tracking: false,
                ..CityHunterConfig::default()
            },
        ),
        (
            "+ deauth extension",
            CityHunterConfig {
                deauth: true,
                ..CityHunterConfig::default()
            },
        ),
        (
            "+ carrier preload",
            CityHunterConfig {
                carrier_preload: true,
                ..CityHunterConfig::default()
            },
        ),
    ]
}

/// The ablation job list: every variant × the two reference venues, keys
/// like `ablation/no-wigle-seed/canteen`.
pub fn ablation_jobs(seed: u64) -> Vec<CampaignJob> {
    let mut jobs = Vec::new();
    for (label, config) in ablation_variants() {
        for venue in ["canteen", "passage"] {
            let key = format!("ablation/{}/{venue}", slug(label));
            let attacker = AttackerKind::CityHunter(CityHunterConfig {
                seed: attacker_seed(seed, &key),
                ..config.clone()
            });
            let base = match venue {
                "canteen" => RunConfig::canteen_30min(attacker, job_seed(seed, &key)),
                _ => RunConfig::passage_30min(attacker, job_seed(seed, &key)),
            };
            jobs.push(CampaignJob::new(key, label, base));
        }
    }
    jobs
}

/// The ablation matrix on the fleet engine.
///
/// # Errors
///
/// Fails if the engine cannot run or any variant's simulation failed.
pub fn ablation_fleet(
    ctx: &CampaignCtx,
    seed: u64,
    opts: &FleetOptions,
) -> Result<(AblationOutcome, FleetStats), String> {
    let jobs = ablation_jobs(seed);
    let (records, stats) = run_jobs(ctx, &jobs, opts)?;
    let rows = ablation_variants()
        .iter()
        .zip(records.chunks(2))
        .map(|((label, _), pair)| AblationRow {
            label: (*label).to_owned(),
            canteen: pair[0].row.clone(),
            passage: pair[1].row.clone(),
        })
        .collect();
    Ok((AblationOutcome { rows }, stats))
}

/// [`ablation_fleet`] with in-memory options.
pub fn ablation_with(data: &CityData, seed: u64) -> AblationOutcome {
    expect_fleet(ablation_fleet(
        &CampaignCtx::build(data),
        seed,
        &FleetOptions::in_memory("ablation", 0),
    ))
}

/// [`ablation_with`] over a freshly built standard city.
pub fn ablation(seed: u64) -> AblationOutcome {
    ablation_with(&standard_city(), seed)
}

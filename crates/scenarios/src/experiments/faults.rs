//! The fault-injection / graceful-degradation study — beyond the paper.
//!
//! Every published City-Hunter number assumes a clean channel and an
//! attacker that never dies. This study re-runs the canteen deployment
//! for three attacker generations under seed-derived fault profiles —
//! bursty Gilbert–Elliott loss, frame corruption, client churn, and
//! scheduled attacker crashes (cold vs checkpoint-warm restart) — and
//! reports how gracefully each attack degrades. The `burst` profile
//! doubles as the fleet retry exercise: its first attempt dies with an
//! injected `transient:` panic, which the engine's [`RetryPolicy`]
//! absorbs without changing a single result byte.

use ch_attack::CityHunterConfig;
use ch_fleet::{
    run_campaign_scoped_with_retry, FleetOptions, FleetStats, JobSpec, JobStatus, Json,
    ManifestCodec, RetryPolicy, TRANSIENT_PREFIX,
};
use ch_sim::fault::{BurstLossSpec, ChurnSpec, CorruptionSpec, CrashSpec, FaultSpec};
use ch_sim::{CrashMode, SimDuration};

use crate::ctx::CampaignCtx;
use crate::experiments::standard_city;
use crate::fleet::{attacker_seed, job_seed};
use crate::metrics::{RunnerStats, SummaryRow};
use crate::runner::{run_experiment_ctx, AttackerKind, RunConfig, RunScratch};
use crate::world::CityData;

/// The attacker generations under test, in render order.
pub const FAULT_ATTACKERS: &[&str] = &["cityhunter", "mana", "karma"];

/// The fault profiles, in render order.
pub const FAULT_PROFILES: &[&str] = &["clean", "burst", "corrupt", "chaos-cold", "chaos-warm"];

/// The fault profile behind one profile name, scaled to the run length
/// (`None` for the clean control — not even a disabled plan is built, so
/// the control is draw-for-draw the plain experiment).
pub fn profile_fault(profile: &str, duration: SimDuration) -> Option<FaultSpec> {
    let burst = BurstLossSpec {
        p_enter_bad: 0.08,
        p_exit_bad: 0.25,
        loss_bad: 0.85,
    };
    let chaos = |recovery: CrashMode, checkpoint_secs: Option<u64>| {
        let secs = duration.as_secs();
        FaultSpec {
            burst_loss: Some(burst.clone()),
            corruption: Some(CorruptionSpec { rate: 0.15 }),
            churn: Some(ChurnSpec { rate: 0.3 }),
            crash: Some(CrashSpec {
                // Two crashes, deep enough into the run that the attacker
                // has a database worth losing.
                times_secs: vec![secs * 2 / 5, secs * 7 / 10],
                recovery,
                checkpoint_secs,
            }),
        }
    };
    match profile {
        "clean" => None,
        "burst" => Some(FaultSpec {
            burst_loss: Some(burst),
            ..FaultSpec::disabled()
        }),
        "corrupt" => Some(FaultSpec {
            corruption: Some(CorruptionSpec { rate: 0.25 }),
            ..FaultSpec::disabled()
        }),
        "chaos-cold" => Some(chaos(CrashMode::Cold, None)),
        "chaos-warm" => Some(chaos(CrashMode::Warm, Some(90))),
        other => ch_sim::invariant::violation(file!(), line!(), &format!("profile `{other}`")),
    }
}

/// One run of the study: an attacker generation under one fault profile.
#[derive(Debug, Clone)]
pub struct FaultJob {
    /// Manifest key, e.g. `faults/cityhunter/chaos-warm`.
    pub key: String,
    /// Attacker slug (an entry of [`FAULT_ATTACKERS`]).
    pub attacker: &'static str,
    /// Profile name (an entry of [`FAULT_PROFILES`]).
    pub profile: &'static str,
    /// The fully resolved run configuration, fault spec included.
    pub config: RunConfig,
}

impl JobSpec for FaultJob {
    fn key(&self) -> String {
        self.key.clone()
    }
}

/// What the manifest records per faulted run: the summary counts plus
/// the runner's fault counters — all integers, so the JSONL round-trip
/// is exact by construction.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultsRecord {
    /// The standard summary row.
    pub row: SummaryRow,
    /// The runner's fault/degradation counters.
    pub stats: RunnerStats,
}

impl ManifestCodec for FaultsRecord {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("label".into(), Json::str(self.row.label.clone())),
            ("total".into(), Json::from_usize(self.row.total_clients)),
            ("direct".into(), Json::from_usize(self.row.direct_clients)),
            (
                "broadcast".into(),
                Json::from_usize(self.row.broadcast_clients),
            ),
            (
                "direct_conn".into(),
                Json::from_usize(self.row.direct_connected),
            ),
            (
                "broadcast_conn".into(),
                Json::from_usize(self.row.broadcast_connected),
            ),
            (
                "burst_dropped".into(),
                self.stats.frames_burst_dropped.to_json(),
            ),
            ("corrupted".into(), self.stats.frames_corrupted.to_json()),
            ("rejected".into(), self.stats.frames_rejected.to_json()),
            ("churned".into(), self.stats.agents_churned.to_json()),
            ("crashes".into(), self.stats.attacker_crashes.to_json()),
        ])
    }

    fn from_json(json: &Json) -> Option<Self> {
        let count = |key: &str| json.get(key).and_then(Json::as_usize);
        let wide = |key: &str| json.get(key).and_then(u64::from_json);
        Some(FaultsRecord {
            row: SummaryRow {
                label: json.get("label")?.as_str()?.to_string(),
                total_clients: count("total")?,
                direct_clients: count("direct")?,
                broadcast_clients: count("broadcast")?,
                direct_connected: count("direct_conn")?,
                broadcast_connected: count("broadcast_conn")?,
            },
            stats: RunnerStats {
                frames_burst_dropped: wide("burst_dropped")?,
                frames_corrupted: wide("corrupted")?,
                frames_rejected: wide("rejected")?,
                agents_churned: wide("churned")?,
                attacker_crashes: wide("crashes")?,
            },
        })
    }
}

/// The rendered study: one row per `(attacker, profile)` pair.
#[derive(Debug, Clone)]
pub struct FaultsOutcome {
    /// Per-run minutes (8 in `--quick` mode, 30 otherwise).
    pub minutes: u64,
    /// `(attacker, profile, record)` in [`FAULT_ATTACKERS`] ×
    /// [`FAULT_PROFILES`] order.
    pub rows: Vec<(&'static str, &'static str, FaultsRecord)>,
}

impl FaultsOutcome {
    /// The record for one `(attacker, profile)` pair.
    pub fn record(&self, attacker: &str, profile: &str) -> Option<&FaultsRecord> {
        self.rows
            .iter()
            .find(|(a, p, _)| *a == attacker && *p == profile)
            .map(|(_, _, record)| record)
    }

    /// The study as the `faults` binary prints it.
    pub fn render(&self) -> String {
        let mut out = format!(
            "fault-injection study: canteen 12:00, {} min per run\n\
             profiles: burst = Gilbert-Elliott loss (enter 0.08, exit 0.25, \
             85% loss in Bad); corrupt = 25% frame mutation;\n\
             chaos = burst + 15% corruption + 30% churn + 2 attacker crashes \
             (cold restart vs warm restart off 90 s checkpoints)\n\n",
            self.minutes
        );
        out.push_str(&format!(
            "{:<12} {:<11} {:>7} {:>6} {:>6} {:>9} {:>8} {:>8} {:>7} {:>7}\n",
            "attacker",
            "profile",
            "clients",
            "h",
            "h_b",
            "burstdrop",
            "corrupt",
            "reject",
            "churn",
            "crash"
        ));
        for attacker in FAULT_ATTACKERS {
            for profile in FAULT_PROFILES {
                let Some(record) = self.record(attacker, profile) else {
                    continue;
                };
                let (row, stats) = (&record.row, &record.stats);
                out.push_str(&format!(
                    "{:<12} {:<11} {:>7} {:>6.3} {:>6.3} {:>9} {:>8} {:>8} {:>7} {:>7}\n",
                    attacker,
                    profile,
                    row.total_clients,
                    row.h(),
                    row.h_b(),
                    stats.frames_burst_dropped,
                    stats.frames_corrupted,
                    stats.frames_rejected,
                    stats.agents_churned,
                    stats.attacker_crashes,
                ));
            }
            out.push('\n');
        }
        if let (Some(warm), Some(cold)) = (
            self.record("cityhunter", "chaos-warm"),
            self.record("cityhunter", "chaos-cold"),
        ) {
            out.push_str(&format!(
                "graceful degradation (CityHunter under chaos): warm restart \
                 h_b {:.3} vs cold restart h_b {:.3} — checkpointed state \
                 survives the crashes\n",
                warm.row.h_b(),
                cold.row.h_b(),
            ));
        }
        // The driver's `line()` adds the final newline.
        while out.ends_with('\n') {
            out.pop();
        }
        out
    }
}

/// The study's job list: [`FAULT_ATTACKERS`] × [`FAULT_PROFILES`], keys
/// like `faults/mana/burst`, seeds derived from `(campaign seed, key)`.
pub fn faults_jobs(seed: u64, quick: bool) -> Vec<FaultJob> {
    let duration = if quick {
        SimDuration::from_mins(8)
    } else {
        SimDuration::from_mins(30)
    };
    let mut jobs = Vec::with_capacity(FAULT_ATTACKERS.len() * FAULT_PROFILES.len());
    for attacker in FAULT_ATTACKERS {
        for profile in FAULT_PROFILES {
            let key = format!("faults/{attacker}/{profile}");
            let kind = match *attacker {
                "cityhunter" => AttackerKind::CityHunter(CityHunterConfig {
                    seed: attacker_seed(seed, &key),
                    ..CityHunterConfig::default()
                }),
                "mana" => AttackerKind::Mana,
                "karma" => AttackerKind::Karma,
                other => {
                    ch_sim::invariant::violation(file!(), line!(), &format!("attacker `{other}`"))
                }
            };
            let config = RunConfig {
                duration,
                seed: job_seed(seed, &key),
                fault: profile_fault(profile, duration),
                ..RunConfig::canteen_30min(kind, 0)
            };
            jobs.push(FaultJob {
                key,
                attacker,
                profile,
                config,
            });
        }
    }
    jobs
}

/// The fault study on the fleet engine, with the retry policy armed:
/// every `burst` job panics `transient:` on its first attempt and runs
/// clean on the retry, so a healthy run reports zero failures and
/// [`FleetStats::retried`] equal to the burst-job count.
///
/// # Errors
///
/// Fails if the engine cannot run or any job failed past its retries.
pub fn faults_fleet(
    ctx: &CampaignCtx,
    seed: u64,
    quick: bool,
    opts: &FleetOptions,
) -> Result<(FaultsOutcome, FleetStats), String> {
    let jobs = faults_jobs(seed, quick);
    let report = run_campaign_scoped_with_retry(
        &jobs,
        opts,
        RetryPolicy::retries(1),
        RunScratch::new,
        |job: &FaultJob, scratch: &mut RunScratch, attempt| {
            if job.profile == "burst" && attempt == 0 {
                panic!(
                    "{TRANSIENT_PREFIX} injected first-attempt fault in `{}`",
                    job.key
                );
            }
            let metrics = run_experiment_ctx(ctx, &job.config, scratch);
            FaultsRecord {
                row: metrics.summary(format!("{} {}", job.attacker, job.profile)),
                stats: metrics.stats.clone(),
            }
        },
    )?;
    let mut rows = Vec::with_capacity(jobs.len());
    let mut failures = Vec::new();
    for (job, outcome) in jobs.iter().zip(&report.outcomes) {
        match &outcome.status {
            JobStatus::Done(record) | JobStatus::Cached(record) => {
                rows.push((job.attacker, job.profile, record.clone()));
            }
            JobStatus::Failed(message) => failures.push(format!("{}: {message}", outcome.key)),
        }
    }
    if !failures.is_empty() {
        return Err(format!(
            "{} fault job(s) failed:\n  {}",
            failures.len(),
            failures.join("\n  ")
        ));
    }
    Ok((
        FaultsOutcome {
            minutes: if quick { 8 } else { 30 },
            rows,
        },
        report.stats,
    ))
}

/// [`faults_fleet`] with in-memory options.
pub fn faults_with(data: &CityData, seed: u64, quick: bool) -> FaultsOutcome {
    crate::experiments::expect_fleet(faults_fleet(
        &CampaignCtx::build(data),
        seed,
        quick,
        &FleetOptions::in_memory("faults", 0),
    ))
}

/// [`faults_with`] over a freshly built standard city, full length.
pub fn faults(seed: u64) -> FaultsOutcome {
    faults_with(&standard_city(), seed, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_list_covers_the_matrix_with_unique_keys() {
        let jobs = faults_jobs(1, true);
        assert_eq!(jobs.len(), FAULT_ATTACKERS.len() * FAULT_PROFILES.len());
        let mut keys: Vec<&str> = jobs.iter().map(|j| j.key.as_str()).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), jobs.len(), "keys must be unique");
        // The clean control carries no fault spec at all.
        for job in &jobs {
            assert_eq!(
                job.profile == "clean",
                job.config.fault.is_none(),
                "{}",
                job.key
            );
        }
    }

    #[test]
    fn profiles_scale_crash_times_to_the_duration() {
        let quick = profile_fault("chaos-warm", SimDuration::from_mins(8)).unwrap();
        let full = profile_fault("chaos-warm", SimDuration::from_mins(30)).unwrap();
        let times = |spec: &FaultSpec| spec.crash.as_ref().unwrap().times_secs.clone();
        assert_eq!(times(&quick), vec![192, 336]);
        assert_eq!(times(&full), vec![720, 1260]);
        assert!(profile_fault("clean", SimDuration::from_mins(8)).is_none());
    }

    #[test]
    fn record_round_trips_through_the_manifest_codec() {
        let record = FaultsRecord {
            row: SummaryRow {
                label: "cityhunter chaos-warm".into(),
                total_clients: 210,
                direct_clients: 15,
                broadcast_clients: 195,
                direct_connected: 7,
                broadcast_connected: 31,
            },
            stats: RunnerStats {
                frames_burst_dropped: 812,
                frames_corrupted: 340,
                frames_rejected: 287,
                agents_churned: 66,
                attacker_crashes: 2,
            },
        };
        let reparsed = Json::parse(&record.to_json().render()).unwrap();
        assert_eq!(FaultsRecord::from_json(&reparsed), Some(record));
        assert_eq!(FaultsRecord::from_json(&Json::Null), None);
    }
}

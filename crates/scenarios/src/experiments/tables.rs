//! Table I–IV: the paper's summary-row artifacts.
//!
//! Tables I–III each expand to keyed fleet jobs whose world seeds keep
//! the legacy per-table XOR masks (`seed ^ 0xA1` …), so the rendered
//! output is byte-identical to the pre-registry drivers at every seed.
//! Table IV is an offline data product (no simulation jobs).

use ch_fleet::{FleetOptions, FleetStats};
use ch_wifi::Ssid;

use crate::ctx::CampaignCtx;
use crate::experiments::{expect_fleet, standard_city};
use crate::fleet::{run_jobs, CampaignJob};
use crate::metrics::SummaryRow;
use crate::runner::{AttackerKind, RunConfig};
use crate::world::CityData;

/// Outcome of the Table I reproduction.
#[derive(Debug, Clone)]
pub struct Table1Outcome {
    /// KARMA's 30-minute canteen row.
    pub karma: SummaryRow,
    /// MANA's 30-minute canteen row.
    pub mana: SummaryRow,
}

/// The Table I job list: KARMA vs MANA in the canteen over lunch (the
/// paper ran them simultaneously 40 m apart; independent runs model that
/// separation). World seeds keep the legacy `^ 0xA1` / `^ 0xA2` masks.
pub fn table1_jobs(seed: u64) -> Vec<CampaignJob> {
    vec![
        CampaignJob::new(
            "table1/karma",
            "KARMA",
            RunConfig::canteen_30min(AttackerKind::Karma, seed ^ 0xA1),
        ),
        CampaignJob::new(
            "table1/mana",
            "MANA",
            RunConfig::canteen_30min(AttackerKind::Mana, seed ^ 0xA2),
        ),
    ]
}

/// Table I on the fleet engine.
///
/// # Errors
///
/// Fails if the engine cannot run or either simulation failed.
pub fn table1_fleet(
    ctx: &CampaignCtx,
    seed: u64,
    opts: &FleetOptions,
) -> Result<(Table1Outcome, FleetStats), String> {
    let (records, stats) = run_jobs(ctx, &table1_jobs(seed), opts)?;
    Ok((
        Table1Outcome {
            karma: records[0].row.clone(),
            mana: records[1].row.clone(),
        },
        stats,
    ))
}

/// [`table1_fleet`] with in-memory options.
pub fn table1_with(data: &CityData, seed: u64) -> Table1Outcome {
    expect_fleet(table1_fleet(
        &CampaignCtx::build(data),
        seed,
        &FleetOptions::in_memory("table1", 0),
    ))
}

/// [`table1_with`] over a freshly built standard city.
pub fn table1(seed: u64) -> Table1Outcome {
    table1_with(&standard_city(), seed)
}

/// Outcome of the Table II reproduction.
#[derive(Debug, Clone)]
pub struct Table2Outcome {
    /// MANA's canteen row (re-run).
    pub mana: SummaryRow,
    /// Preliminary City-Hunter's canteen row.
    pub prelim: SummaryRow,
    /// Share of broadcast hits whose SSID came from WiGLE (§III-C reports
    /// ~74 %).
    pub wigle_share: f64,
    /// Mean SSIDs sent to each connected broadcast client (§III-C: ~130).
    pub mean_offered_connected: f64,
}

/// The Table II job list: MANA vs the preliminary City-Hunter in the
/// canteen. The prelim job captures the rich series the §III-C
/// observations derive from.
pub fn table2_jobs(seed: u64) -> Vec<CampaignJob> {
    vec![
        CampaignJob::new(
            "table2/mana",
            "MANA",
            RunConfig::canteen_30min(AttackerKind::Mana, seed ^ 0xB1),
        ),
        CampaignJob::new(
            "table2/prelim",
            "City-Hunter (prelim)",
            RunConfig::canteen_30min(AttackerKind::Prelim, seed ^ 0xB2),
        )
        .with_rich(),
    ]
}

/// Table II on the fleet engine.
///
/// # Errors
///
/// Fails if the engine cannot run or either simulation failed.
pub fn table2_fleet(
    ctx: &CampaignCtx,
    seed: u64,
    opts: &FleetOptions,
) -> Result<(Table2Outcome, FleetStats), String> {
    let jobs = table2_jobs(seed);
    let (records, stats) = run_jobs(ctx, &jobs, opts)?;
    let prelim = &records[1];
    let (wigle, direct, carrier) = prelim.sources;
    let total_hits = (wigle + direct + carrier).max(1);
    Ok((
        Table2Outcome {
            mana: records[0].row.clone(),
            prelim: prelim.row.clone(),
            wigle_share: wigle as f64 / total_hits as f64,
            mean_offered_connected: prelim.rich(&jobs[1].key)?.mean_offered_connected(),
        },
        stats,
    ))
}

/// [`table2_fleet`] with in-memory options.
pub fn table2_with(data: &CityData, seed: u64) -> Table2Outcome {
    expect_fleet(table2_fleet(
        &CampaignCtx::build(data),
        seed,
        &FleetOptions::in_memory("table2", 0),
    ))
}

/// [`table2_with`] over a freshly built standard city.
pub fn table2(seed: u64) -> Table2Outcome {
    table2_with(&standard_city(), seed)
}

/// Outcome of the Table III reproduction.
#[derive(Debug, Clone)]
pub struct Table3Outcome {
    /// Preliminary City-Hunter's subway-passage row.
    pub prelim: SummaryRow,
}

/// The Table III job list: the preliminary City-Hunter deployed in the
/// passage (legacy `^ 0xC1` world-seed mask).
pub fn table3_jobs(seed: u64) -> Vec<CampaignJob> {
    vec![CampaignJob::new(
        "table3/prelim",
        "Subway Passage",
        RunConfig::passage_30min(AttackerKind::Prelim, seed ^ 0xC1),
    )]
}

/// Table III on the fleet engine.
///
/// # Errors
///
/// Fails if the engine cannot run or the simulation failed.
pub fn table3_fleet(
    ctx: &CampaignCtx,
    seed: u64,
    opts: &FleetOptions,
) -> Result<(Table3Outcome, FleetStats), String> {
    let (records, stats) = run_jobs(ctx, &table3_jobs(seed), opts)?;
    Ok((
        Table3Outcome {
            prelim: records[0].row.clone(),
        },
        stats,
    ))
}

/// [`table3_fleet`] with in-memory options.
pub fn table3_with(data: &CityData, seed: u64) -> Table3Outcome {
    expect_fleet(table3_fleet(
        &CampaignCtx::build(data),
        seed,
        &FleetOptions::in_memory("table3", 0),
    ))
}

/// [`table3_with`] over a freshly built standard city.
pub fn table3(seed: u64) -> Table3Outcome {
    table3_with(&standard_city(), seed)
}

/// Outcome of the Table IV reproduction.
#[derive(Debug, Clone)]
pub struct Table4Outcome {
    /// Top-5 SSIDs by raw AP count.
    pub by_ap_count: Vec<(Ssid, usize)>,
    /// Top-5 SSIDs by heat value.
    pub by_heat: Vec<(Ssid, f64)>,
}

/// Table IV: ranking the city's open SSIDs by AP count vs heat value —
/// an offline data product, no simulation jobs.
pub fn table4_with(data: &CityData) -> Table4Outcome {
    Table4Outcome {
        by_ap_count: data.wigle.top_by_ap_count(5, true),
        by_heat: data.wigle.top_by_heat(&data.heat, 5),
    }
}

/// [`table4_with`] over a freshly built standard city.
pub fn table4() -> Table4Outcome {
    table4_with(&standard_city())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_reproduces_heat_vs_count_contrast() {
        let data = standard_city();
        let outcome = table4_with(&data);
        assert_eq!(outcome.by_ap_count.len(), 5);
        assert_eq!(outcome.by_heat.len(), 5);
        // Paper Table IV: the count ranking is led by the big chains…
        assert_eq!(outcome.by_ap_count[0].0.as_str(), "-Free HKBN Wi-Fi-");
        // …and the airport SSID enters the top-5 only under heat ranking.
        let count_names: Vec<&str> = outcome
            .by_ap_count
            .iter()
            .map(|(s, _)| s.as_str())
            .collect();
        let heat_names: Vec<&str> = outcome.by_heat.iter().map(|(s, _)| s.as_str()).collect();
        assert!(!count_names.contains(&"#HKAirport Free WiFi"));
        assert!(
            heat_names.contains(&"#HKAirport Free WiFi"),
            "heat ranking must surface the airport SSID: {heat_names:?}"
        );
        let rendered = outcome.render();
        assert!(rendered.contains("Rank"));
        assert!(rendered.contains("#HKAirport Free WiFi"));
    }

    #[test]
    fn table_jobs_keep_the_legacy_seed_masks() {
        let jobs = table1_jobs(1);
        assert_eq!(jobs[0].key, "table1/karma");
        assert_eq!(jobs[0].config.seed, 1 ^ 0xA1);
        assert_eq!(jobs[1].config.seed, 1 ^ 0xA2);
        assert_eq!(table2_jobs(1)[1].config.seed, 1 ^ 0xB2);
        assert!(table2_jobs(1)[1].rich, "prelim job must capture series");
        assert_eq!(table3_jobs(1)[0].config.seed, 1 ^ 0xC1);
    }
}

//! Campaign-level acceptance for the fleet rewiring: the real Fig. 5
//! pipeline must render bit-identically at any worker count, and a
//! truncated manifest must resume to the same figure.

use std::fs;
use std::path::PathBuf;

use ch_fleet::{fingerprint, FleetOptions};
use ch_scenarios::experiments::{campaign_fleet, standard_city};
use ch_scenarios::CampaignCtx;
use ch_sim::SimDuration;

/// A deliberately tiny campaign: 4 venues × 2 hours × 3 simulated
/// minutes each, so the whole test stays fast.
const HOURS: &[usize] = &[12, 18];
const SEED: u64 = 5;

fn duration() -> SimDuration {
    SimDuration::from_mins(3)
}

fn city() -> CampaignCtx {
    CampaignCtx::build(&standard_city())
}

fn temp_manifest(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "ch-scenarios-fleet-{}-{tag}.jsonl",
        std::process::id()
    ))
}

#[test]
fn fig5_renders_bit_identically_at_any_worker_count() {
    let data = city();
    let opts = FleetOptions::in_memory("fig5-test", 0);
    let (serial, serial_stats) = campaign_fleet(
        &data,
        SEED,
        HOURS,
        duration(),
        &opts.clone().with_jobs(Some(1)),
    )
    .unwrap();
    assert_eq!(serial_stats.threads, 1);
    let (parallel, parallel_stats) =
        campaign_fleet(&data, SEED, HOURS, duration(), &opts.with_jobs(Some(4))).unwrap();
    // Spawned width is the request capped at the machine's parallelism.
    assert_eq!(parallel_stats.threads, 4.min(ch_fleet::worker_cap()));
    assert_eq!(parallel.render_fig5(), serial.render_fig5());
    assert_eq!(parallel.render_fig6(), serial.render_fig6());
    assert_eq!(parallel.to_csv(), serial.to_csv());
}

#[test]
fn fig5_resumes_from_a_truncated_manifest_to_the_same_figure() {
    let data = city();
    let path = temp_manifest("resume");
    let _ = fs::remove_file(&path);
    let opts = FleetOptions::in_memory("fig5-test", fingerprint(&["resume-test"]))
        .with_jobs(Some(2))
        .with_manifest(&path);

    let (fresh, fresh_stats) = campaign_fleet(&data, SEED, HOURS, duration(), &opts).unwrap();
    assert_eq!(fresh_stats.executed, 8);
    assert_eq!(fresh_stats.cached, 0);

    // Kill the campaign three records before the finish line.
    let text = fs::read_to_string(&path).unwrap();
    let kept: Vec<&str> = text.lines().collect();
    fs::write(&path, format!("{}\n", kept[..kept.len() - 3].join("\n"))).unwrap();

    let (resumed, resumed_stats) = campaign_fleet(&data, SEED, HOURS, duration(), &opts).unwrap();
    assert_eq!(
        (resumed_stats.executed, resumed_stats.cached),
        (3, 5),
        "only the dropped jobs may re-run"
    );
    assert_eq!(resumed.render_fig5(), fresh.render_fig5());
    assert_eq!(resumed.render_fig6(), fresh.render_fig6());

    let _ = fs::remove_file(&path);
}

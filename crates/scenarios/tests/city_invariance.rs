//! Shard-count and worker-width invariance for the sharded city.
//!
//! The city's determinism contract: the rendered artifact is
//! byte-identical at shard counts {1, 4, 16} and across `--jobs`
//! widths. Shards are an execution arrangement, never a semantic one —
//! exactly like the fleet pool, width must not leak into results.

use ch_scenarios::{run_city, CampaignCtx, CityConfig, CityData};

/// The CI-sized city the smoke leg runs, at a fixed width-independent
/// configuration (8 districts, 12 epochs).
fn base_config() -> CityConfig {
    CityConfig {
        epochs: 12,
        shards: 1,
        jobs: Some(1),
        ..CityConfig::quick(1)
    }
}

#[test]
fn city_quick_is_byte_identical_across_shard_counts_and_jobs() {
    let ctx = CampaignCtx::build(&CityData::standard(99));
    let reference = run_city(&ctx, &base_config());
    let text = reference.render();

    // The reference run is a real city, not a vacuous pass.
    assert!(
        reference.devices() > 500,
        "devices: {}",
        reference.devices()
    );
    assert!(reference.events() > 1000, "events: {}", reference.events());
    let (h_out, h_in) = reference.handoffs();
    assert!(h_out > 0 && h_in > 0, "mailbox never used: {h_out}/{h_in}");

    // Shard counts 1, 4, 16 (16 > districts exercises the clamp) and
    // several worker widths, in combination.
    for shards in [1usize, 4, 16] {
        for jobs in [1usize, 2, 8] {
            let outcome = run_city(
                &ctx,
                &CityConfig {
                    shards,
                    jobs: Some(jobs),
                    ..base_config()
                },
            );
            assert_eq!(
                outcome.render(),
                text,
                "shards={shards} jobs={jobs} diverged from the reference"
            );
        }
    }
}

#[test]
fn city_seed_changes_the_city() {
    let ctx = CampaignCtx::build(&CityData::standard(99));
    let a = run_city(&ctx, &base_config());
    let b = run_city(
        &ctx,
        &CityConfig {
            seed: 2,
            ..base_config()
        },
    );
    assert_ne!(a.render(), b.render(), "seed must matter");
}

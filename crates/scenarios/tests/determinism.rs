//! The determinism regression test behind ch-lint rules R1/R2: one venue
//! run twice with the same seed must produce *identical* metrics, down to
//! per-client records and the rate columns. Before the deterministic-hasher
//! sweep, map iteration order leaked process randomness into lure order and
//! broke this.

use ch_attack::cityhunter::CityHunterConfig;
use ch_scenarios::{run_experiment, AttackerKind, CityData, RunConfig};

fn summary_fingerprint(seed: u64) -> (String, Vec<String>) {
    let data = CityData::standard(seed);
    let config =
        RunConfig::canteen_30min(AttackerKind::CityHunter(CityHunterConfig::default()), seed);
    let metrics = run_experiment(&data, &config);
    let row = metrics.summary("determinism");
    let row_text = format!(
        "{} {} {} {} {} {:.9} {:.9}",
        row.total_clients,
        row.direct_clients,
        row.broadcast_clients,
        row.direct_connected,
        row.broadcast_connected,
        row.h(),
        row.h_b(),
    );
    // Per-client detail, sorted by MAC so the fingerprint is independent of
    // iteration order — the *values* must still match exactly.
    let mut clients: Vec<String> = metrics
        .clients()
        .map(|(mac, rec)| format!("{mac} {rec:?}"))
        .collect();
    clients.sort();
    (row_text, clients)
}

#[test]
fn same_seed_same_metrics() {
    let (row_a, clients_a) = summary_fingerprint(0xC17E);
    let (row_b, clients_b) = summary_fingerprint(0xC17E);
    assert_eq!(row_a, row_b, "summary rows diverged between identical runs");
    assert_eq!(
        clients_a, clients_b,
        "per-client records diverged between identical runs"
    );
    assert!(
        !clients_a.is_empty(),
        "run produced no clients — not exercising anything"
    );
}

#[test]
fn different_seeds_differ() {
    // Guards against the fingerprint being trivially constant.
    let (_, clients_a) = summary_fingerprint(1);
    let (_, clients_b) = summary_fingerprint(2);
    assert_ne!(clients_a, clients_b, "seed does not influence the run");
}

//! Golden acceptance for the registry refactor: the spec-driven driver
//! must reproduce the committed artifacts byte-for-byte at the default
//! seed, and a newly fleet-engined table-class experiment must render
//! bit-identically at any worker count.

use std::fs;
use std::path::PathBuf;
use std::sync::OnceLock;

use ch_fleet::FleetOptions;
use ch_scenarios::experiments::standard_city;
use ch_scenarios::registry::{self, RunParams};
use ch_scenarios::CampaignCtx;

static CITY: OnceLock<CampaignCtx> = OnceLock::new();

fn city() -> &'static CampaignCtx {
    CITY.get_or_init(|| CampaignCtx::build(&standard_city()))
}

fn golden(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../results")
        .join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

#[test]
fn registry_reproduces_the_committed_artifacts_at_the_default_seed() {
    for id in ["table1", "table2", "fig2"] {
        let spec = registry::find(id).expect("registered artifact");
        let params = RunParams::new(1);
        let opts = FleetOptions::in_memory(spec.campaign.unwrap_or(id), 0);
        let artifact = spec.run(city(), &params, &opts).expect("clean run");
        assert_eq!(
            artifact.text,
            golden(&format!("{id}.txt")),
            "registry `{id}` must match the committed results/{id}.txt"
        );
    }
}

#[test]
fn table2_renders_bit_identically_at_any_worker_count() {
    let spec = registry::find("table2").expect("registered artifact");
    let params = RunParams::new(1);
    let serial = spec
        .run(
            city(),
            &params,
            &FleetOptions::in_memory("table2", 0).with_jobs(Some(1)),
        )
        .expect("serial run");
    let wide = spec
        .run(
            city(),
            &params,
            &FleetOptions::in_memory("table2", 0).with_jobs(Some(4)),
        )
        .expect("parallel run");
    assert_eq!(
        serial.text, wide.text,
        "worker count must not leak into the table"
    );
    assert_eq!(serial.stats.expect("fleet stats").threads, 1);
    // Spawned width is the request capped at the machine's parallelism.
    assert_eq!(
        wide.stats.expect("fleet stats").threads,
        4.min(ch_fleet::worker_cap())
    );
}

// Panic-freedom gate (clippy side of ch-lint rule R3); tests are exempt.
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

//! # ch-serve — the crash-safe streaming attacker service
//!
//! Runs any of the four attacker generations (plain or wrapped in an
//! [`ch_attack::EvasiveAttacker`]) as a long-lived service over a
//! versioned NDJSON wire protocol: probe/association events in, lure /
//! beacon / stats events out. The robustness spine, in order of what
//! kills real deployments:
//!
//! * **bounded ingest** ([`service`]) — a fixed-capacity virtual ingest
//!   ring with explicit backpressure: an open-loop burst past capacity is
//!   *shed and counted*, never silently dropped and never a panic;
//! * **deadline watchdog** — every event's queueing + service latency is
//!   checked against a per-event deadline and misses are counted;
//! * **checkpointed recovery** ([`checkpoint`]) — periodic atomic
//!   (tmp + rename) checkpoints of the full attacker + tracker + queue
//!   state through the typed state-export APIs, so a `kill -9` mid-stream
//!   restarts warm, replays from the last acked offset, and produces a
//!   final report (and output stream) byte-identical to an uninterrupted
//!   run. A truncated or corrupted checkpoint falls back to a *counted*
//!   cold start;
//! * **counted-skip decode** ([`protocol`], [`source`]) — malformed wire
//!   lines and mangled pcap records are tallied and skipped, mirroring
//!   `ch_wifi::pcap::read_capture_lenient`;
//! * **classified I/O retry** — service file operations retry under
//!   `ch_fleet::RetryPolicy` with the deterministic exponential backoff
//!   schedule, and exhausted transient failures carry the fleet's
//!   `transient:` prefix so a supervising campaign can re-run them.
//!
//! The service core is wall-clock-free: time is the *stream's* virtual
//! time (event timestamps plus a deterministic per-event service cost),
//! which is what makes every counter — sheds, deadline misses, latency
//! percentiles — reproducible and checkpointable. Wall-clock throughput
//! is measured only by the `serve_bench` harness in `ch-bench`.

pub mod checkpoint;
pub mod protocol;
pub mod service;
pub mod source;

pub use protocol::{InputEvent, OutputEvent, ProtocolError, ServiceStats, PROTOCOL_VERSION};
pub use service::{serve_to_files, ServeConfig, ServeSummary, Service};
pub use source::EventSource;

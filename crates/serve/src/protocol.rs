//! The `ch-serve-v1` NDJSON wire protocol.
//!
//! One JSON object per line, every line versioned with `"v":"ch-serve-v1"`
//! and discriminated by `"ev"`. Client-side air traffic flows *in*
//! ([`InputEvent`]: probe-request scans and association attempts) and the
//! attacker's reactions flow *out* ([`OutputEvent`]: lures, beacons,
//! periodic stats, checkpoint marks).
//!
//! The codec is strict on emit (fixed key order, so two identical runs
//! produce byte-identical streams) and defensive on consume: any line
//! that is not valid JSON, carries the wrong version, or is missing /
//! mistypes a field decodes to a typed [`ProtocolError`] — never a panic
//! — so the service can count-and-skip garbage input.

use std::fmt;

use ch_attack::{LureLane, LureSource};
use ch_fleet::Json;
use ch_wifi::{MacAddr, Ssid};

/// The wire protocol version tag every line carries.
pub const PROTOCOL_VERSION: &str = "ch-serve-v1";

/// One client-side event entering the service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InputEvent {
    /// A probe request at `t_us` microseconds of stream time; `ssid` is
    /// `None` for a broadcast (wildcard) scan and `Some` for a direct
    /// probe.
    Probe {
        /// Stream timestamp, microseconds.
        t_us: u64,
        /// Probing client.
        client: MacAddr,
        /// Requested SSID; `None` = broadcast.
        ssid: Option<Ssid>,
    },
    /// A client associating to one of the attacker's advertised SSIDs.
    Assoc {
        /// Stream timestamp, microseconds.
        t_us: u64,
        /// Associating client.
        client: MacAddr,
        /// The SSID the client joined.
        ssid: Ssid,
    },
}

impl InputEvent {
    /// The event's stream timestamp in microseconds.
    pub fn t_us(&self) -> u64 {
        match self {
            InputEvent::Probe { t_us, .. } | InputEvent::Assoc { t_us, .. } => *t_us,
        }
    }
}

/// One service reaction leaving the service.
#[derive(Debug, Clone, PartialEq)]
pub enum OutputEvent {
    /// A lure (probe response) offered to a client.
    Lure {
        /// Virtual completion time, microseconds.
        t_us: u64,
        /// Target client.
        client: MacAddr,
        /// Advertised SSID.
        ssid: Ssid,
        /// Provenance of the SSID.
        source: LureSource,
        /// Selection lane that picked it.
        lane: LureLane,
    },
    /// A beacon the (evasive) attacker put on the air.
    Beacon {
        /// Virtual emission time, microseconds.
        t_us: u64,
        /// Transmitting BSSID.
        bssid: MacAddr,
        /// Beaconed SSID.
        ssid: Ssid,
    },
    /// A periodic counters snapshot.
    Stats {
        /// Virtual time of the snapshot, microseconds.
        t_us: u64,
        /// The counters.
        stats: ServiceStats,
    },
    /// A checkpoint was committed covering the first `acked` input events.
    Checkpoint {
        /// Virtual time of the checkpoint, microseconds.
        t_us: u64,
        /// Input events covered (processed or counted-shed).
        acked: u64,
    },
}

/// The service's monotone counters. Everything here is derived from the
/// input stream alone (virtual time, no wall clock), so the counters are
/// deterministic, checkpointable, and identical across a kill-and-recover
/// run and an uninterrupted one.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Input events consumed (processed + shed).
    pub events: u64,
    /// Probe events processed.
    pub probes: u64,
    /// Association events processed.
    pub assocs: u64,
    /// Lures emitted.
    pub lures: u64,
    /// Associations matched to an offered lure ([`ch_attack::Attacker::on_hit`] fired).
    pub hits: u64,
    /// Associations with no matching offered lure — counted, not dropped
    /// silently.
    pub unmatched_assocs: u64,
    /// Events shed because the ingest ring was full — explicit
    /// backpressure, never a silent drop.
    pub shed: u64,
    /// Events whose virtual latency blew the per-event deadline.
    pub deadline_misses: u64,
    /// Beacons emitted.
    pub beacons: u64,
    /// Checkpoints committed.
    pub checkpoints: u64,
    /// Malformed source records counted-and-skipped before ingest.
    pub malformed: u64,
}

/// Field order shared by the stats codec and the struct's wire shape.
const STATS_FIELDS: &[&str] = &[
    "events",
    "probes",
    "assocs",
    "lures",
    "hits",
    "unmatched_assocs",
    "shed",
    "deadline_misses",
    "beacons",
    "checkpoints",
    "malformed",
];

impl ServiceStats {
    fn field(&self, name: &str) -> u64 {
        match name {
            "events" => self.events,
            "probes" => self.probes,
            "assocs" => self.assocs,
            "lures" => self.lures,
            "hits" => self.hits,
            "unmatched_assocs" => self.unmatched_assocs,
            "shed" => self.shed,
            "deadline_misses" => self.deadline_misses,
            "beacons" => self.beacons,
            "checkpoints" => self.checkpoints,
            "malformed" => self.malformed,
            _ => 0,
        }
    }

    fn field_mut(&mut self, name: &str) -> Option<&mut u64> {
        Some(match name {
            "events" => &mut self.events,
            "probes" => &mut self.probes,
            "assocs" => &mut self.assocs,
            "lures" => &mut self.lures,
            "hits" => &mut self.hits,
            "unmatched_assocs" => &mut self.unmatched_assocs,
            "shed" => &mut self.shed,
            "deadline_misses" => &mut self.deadline_misses,
            "beacons" => &mut self.beacons,
            "checkpoints" => &mut self.checkpoints,
            "malformed" => &mut self.malformed,
            _ => return None,
        })
    }

    /// The counters as a JSON object (fixed key order).
    pub fn to_json(&self) -> Json {
        Json::Obj(
            STATS_FIELDS
                .iter()
                .map(|&name| (name.to_string(), Json::from_u64(self.field(name))))
                .collect(),
        )
    }

    /// Rebuilds the counters from [`ServiceStats::to_json`] output.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::MissingField`]/[`ProtocolError::BadField`] when a
    /// counter is absent or not a number.
    pub fn from_json(value: &Json) -> Result<ServiceStats, ProtocolError> {
        let mut stats = ServiceStats::default();
        for &name in STATS_FIELDS {
            let field = value
                .get(name)
                .ok_or(ProtocolError::MissingField("stats counter"))?
                .as_u64()
                .ok_or(ProtocolError::BadField("stats counter"))?;
            if let Some(slot) = stats.field_mut(name) {
                *slot = field;
            }
        }
        Ok(stats)
    }

    /// One status line for the service's stderr.
    pub fn render_line(&self) -> String {
        format!(
            "events={} probes={} assocs={} lures={} hits={} unmatched={} shed={} \
             deadline_misses={} beacons={} checkpoints={} malformed={}",
            self.events,
            self.probes,
            self.assocs,
            self.lures,
            self.hits,
            self.unmatched_assocs,
            self.shed,
            self.deadline_misses,
            self.beacons,
            self.checkpoints,
            self.malformed,
        )
    }
}

/// Why a wire line failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The line is not valid JSON at all.
    NotJson(String),
    /// The line's `"v"` tag is absent or not [`PROTOCOL_VERSION`].
    WrongVersion,
    /// The `"ev"` discriminant is absent or unknown.
    UnknownEvent,
    /// A required field is absent.
    MissingField(&'static str),
    /// A field is present but the wrong type or out of range.
    BadField(&'static str),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::NotJson(reason) => write!(f, "not json: {reason}"),
            ProtocolError::WrongVersion => {
                write!(
                    f,
                    "missing or wrong protocol version (want {PROTOCOL_VERSION})"
                )
            }
            ProtocolError::UnknownEvent => write!(f, "missing or unknown `ev` discriminant"),
            ProtocolError::MissingField(name) => write!(f, "missing field `{name}`"),
            ProtocolError::BadField(name) => write!(f, "bad field `{name}`"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Wire name of a [`LureSource`].
pub fn source_name(source: LureSource) -> &'static str {
    match source {
        LureSource::Wigle => "wigle",
        LureSource::DirectProbe => "direct-probe",
        LureSource::Carrier => "carrier",
    }
}

/// Parses a [`LureSource`] wire name.
pub fn parse_source(name: &str) -> Option<LureSource> {
    Some(match name {
        "wigle" => LureSource::Wigle,
        "direct-probe" => LureSource::DirectProbe,
        "carrier" => LureSource::Carrier,
        _ => return None,
    })
}

/// Wire name of a [`LureLane`].
pub fn lane_name(lane: LureLane) -> &'static str {
    match lane {
        LureLane::Popularity => "popularity",
        LureLane::PopularityGhost => "popularity-ghost",
        LureLane::Freshness => "freshness",
        LureLane::FreshnessGhost => "freshness-ghost",
        LureLane::Database => "database",
        LureLane::DirectReply => "direct-reply",
    }
}

/// Parses a [`LureLane`] wire name.
pub fn parse_lane(name: &str) -> Option<LureLane> {
    Some(match name {
        "popularity" => LureLane::Popularity,
        "popularity-ghost" => LureLane::PopularityGhost,
        "freshness" => LureLane::Freshness,
        "freshness-ghost" => LureLane::FreshnessGhost,
        "database" => LureLane::Database,
        "direct-reply" => LureLane::DirectReply,
        _ => return None,
    })
}

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Encodes one input event as a wire line (no trailing newline).
pub fn encode_input(event: &InputEvent) -> String {
    match event {
        InputEvent::Probe { t_us, client, ssid } => {
            let mut fields = vec![
                ("v", Json::str(PROTOCOL_VERSION)),
                ("ev", Json::str("probe")),
                ("t_us", Json::from_u64(*t_us)),
                ("client", Json::str(client.to_string())),
            ];
            if let Some(ssid) = ssid {
                fields.push(("ssid", Json::str(ssid.as_str())));
            }
            obj(fields).render()
        }
        InputEvent::Assoc { t_us, client, ssid } => obj(vec![
            ("v", Json::str(PROTOCOL_VERSION)),
            ("ev", Json::str("assoc")),
            ("t_us", Json::from_u64(*t_us)),
            ("client", Json::str(client.to_string())),
            ("ssid", Json::str(ssid.as_str())),
        ])
        .render(),
    }
}

/// Encodes one output event as a wire line (no trailing newline).
pub fn encode_output(event: &OutputEvent) -> String {
    match event {
        OutputEvent::Lure {
            t_us,
            client,
            ssid,
            source,
            lane,
        } => obj(vec![
            ("v", Json::str(PROTOCOL_VERSION)),
            ("ev", Json::str("lure")),
            ("t_us", Json::from_u64(*t_us)),
            ("client", Json::str(client.to_string())),
            ("ssid", Json::str(ssid.as_str())),
            ("source", Json::str(source_name(*source))),
            ("lane", Json::str(lane_name(*lane))),
        ])
        .render(),
        OutputEvent::Beacon { t_us, bssid, ssid } => obj(vec![
            ("v", Json::str(PROTOCOL_VERSION)),
            ("ev", Json::str("beacon")),
            ("t_us", Json::from_u64(*t_us)),
            ("bssid", Json::str(bssid.to_string())),
            ("ssid", Json::str(ssid.as_str())),
        ])
        .render(),
        OutputEvent::Stats { t_us, stats } => obj(vec![
            ("v", Json::str(PROTOCOL_VERSION)),
            ("ev", Json::str("stats")),
            ("t_us", Json::from_u64(*t_us)),
            ("stats", stats.to_json()),
        ])
        .render(),
        OutputEvent::Checkpoint { t_us, acked } => obj(vec![
            ("v", Json::str(PROTOCOL_VERSION)),
            ("ev", Json::str("checkpoint")),
            ("t_us", Json::from_u64(*t_us)),
            ("acked", Json::from_u64(*acked)),
        ])
        .render(),
    }
}

fn checked_envelope(line: &str) -> Result<(Json, String), ProtocolError> {
    let value = Json::parse(line).map_err(ProtocolError::NotJson)?;
    match value.get("v").and_then(Json::as_str) {
        Some(v) if v == PROTOCOL_VERSION => {}
        _ => return Err(ProtocolError::WrongVersion),
    }
    let ev = value
        .get("ev")
        .and_then(Json::as_str)
        .ok_or(ProtocolError::UnknownEvent)?
        .to_string();
    Ok((value, ev))
}

fn field_t_us(value: &Json) -> Result<u64, ProtocolError> {
    value
        .get("t_us")
        .ok_or(ProtocolError::MissingField("t_us"))?
        .as_u64()
        .ok_or(ProtocolError::BadField("t_us"))
}

fn field_mac(value: &Json, name: &'static str) -> Result<MacAddr, ProtocolError> {
    value
        .get(name)
        .ok_or(ProtocolError::MissingField(name))?
        .as_str()
        .ok_or(ProtocolError::BadField(name))?
        .parse()
        .map_err(|_| ProtocolError::BadField(name))
}

fn field_ssid(value: &Json) -> Result<Ssid, ProtocolError> {
    let text = value
        .get("ssid")
        .ok_or(ProtocolError::MissingField("ssid"))?
        .as_str()
        .ok_or(ProtocolError::BadField("ssid"))?;
    Ssid::new(text).map_err(|_| ProtocolError::BadField("ssid"))
}

/// Decodes one input wire line.
///
/// # Errors
///
/// A typed [`ProtocolError`] on any malformed line; never panics.
pub fn decode_input(line: &str) -> Result<InputEvent, ProtocolError> {
    let (value, ev) = checked_envelope(line)?;
    let t_us = field_t_us(&value)?;
    let client = field_mac(&value, "client")?;
    match ev.as_str() {
        "probe" => {
            let ssid = match value.get("ssid") {
                None => None,
                Some(_) => Some(field_ssid(&value)?),
            };
            Ok(InputEvent::Probe { t_us, client, ssid })
        }
        "assoc" => Ok(InputEvent::Assoc {
            t_us,
            client,
            ssid: field_ssid(&value)?,
        }),
        _ => Err(ProtocolError::UnknownEvent),
    }
}

/// Decodes one output wire line (round-trip tests, downstream consumers).
///
/// # Errors
///
/// A typed [`ProtocolError`] on any malformed line; never panics.
pub fn decode_output(line: &str) -> Result<OutputEvent, ProtocolError> {
    let (value, ev) = checked_envelope(line)?;
    let t_us = field_t_us(&value)?;
    match ev.as_str() {
        "lure" => Ok(OutputEvent::Lure {
            t_us,
            client: field_mac(&value, "client")?,
            ssid: field_ssid(&value)?,
            source: value
                .get("source")
                .and_then(Json::as_str)
                .and_then(parse_source)
                .ok_or(ProtocolError::BadField("source"))?,
            lane: value
                .get("lane")
                .and_then(Json::as_str)
                .and_then(parse_lane)
                .ok_or(ProtocolError::BadField("lane"))?,
        }),
        "beacon" => Ok(OutputEvent::Beacon {
            t_us,
            bssid: field_mac(&value, "bssid")?,
            ssid: field_ssid(&value)?,
        }),
        "stats" => Ok(OutputEvent::Stats {
            t_us,
            stats: ServiceStats::from_json(
                value
                    .get("stats")
                    .ok_or(ProtocolError::MissingField("stats"))?,
            )?,
        }),
        "checkpoint" => Ok(OutputEvent::Checkpoint {
            t_us,
            acked: value
                .get("acked")
                .ok_or(ProtocolError::MissingField("acked"))?
                .as_u64()
                .ok_or(ProtocolError::BadField("acked"))?,
        }),
        _ => Err(ProtocolError::UnknownEvent),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac(i: u8) -> MacAddr {
        MacAddr::new([2, 0, 0, 0, 0, i])
    }

    #[test]
    fn broadcast_probe_omits_ssid() {
        let ev = InputEvent::Probe {
            t_us: 42,
            client: mac(1),
            ssid: None,
        };
        let line = encode_input(&ev);
        assert!(!line.contains("ssid"));
        assert_eq!(decode_input(&line).unwrap(), ev);
    }

    #[test]
    fn stats_round_trip() {
        let stats = ServiceStats {
            events: 10,
            probes: 7,
            assocs: 3,
            lures: 280,
            hits: 2,
            unmatched_assocs: 1,
            shed: 4,
            deadline_misses: 5,
            beacons: 6,
            checkpoints: 1,
            malformed: 9,
        };
        assert_eq!(ServiceStats::from_json(&stats.to_json()).unwrap(), stats);
    }

    #[test]
    fn wrong_version_rejected() {
        let line = r#"{"v":"ch-serve-v0","ev":"probe","t_us":1,"client":"02:00:00:00:00:01"}"#;
        assert_eq!(decode_input(line), Err(ProtocolError::WrongVersion));
    }
}

//! `ch-serve` — run an attacker as a crash-safe streaming service.
//!
//! ```text
//! ch-serve --attacker cityhunter --source sim --seed 7 \
//!          --out lures.ndjson --report report.json \
//!          --checkpoint serve.ckpt --checkpoint-every 64
//! ```
//!
//! Kill it (`kill -9`) at any instant and rerun the identical command:
//! the service restarts warm from the last committed checkpoint, replays
//! the remainder of the stream, and the final report and output stream
//! are byte-identical to an uninterrupted run's. Status and recovery
//! notes go to stderr; wire output and the report go to the configured
//! files.

use std::path::PathBuf;
use std::process::ExitCode;

use ch_attack::{AttackerSpec, CityHunterConfig, EvasionSpec};
use ch_mobility::VenueKind;
use ch_scenarios::{CityData, RunConfig};
use ch_serve::{serve_to_files, EventSource, ServeConfig};
use ch_sim::SimDuration;

const USAGE: &str = "\
ch-serve: crash-safe streaming attacker service (ch-serve-v1)

USAGE: ch-serve [FLAGS]

  --attacker KIND      karma | mana | prelim | cityhunter  [cityhunter]
  --evasive            wrap the attacker with rotation + beacon cloning
  --source SRC         sim | pcap:PATH | ndjson:PATH       [sim]
  --seed N             master seed (city + attacker + sim)  [7]
  --venue V            canteen | passage | mall | railway   [canteen]
  --duration-mins N    sim-source stream length             [30]
  --compress N         divide stream timestamps by N (overload) [1]
  --out PATH           wire output stream (NDJSON)
  --report PATH        final report (JSON)
  --checkpoint PATH    checkpoint file (enables recovery)
  --checkpoint-every N checkpoint every N acked events      [256]
  --stats-every N      emit a stats wire event every N      [0 = off]
  --ring N             ingest ring capacity                 [64]
  --deadline-us N      per-event latency deadline           [100000]
  --throttle-ms N      wall-clock sleep per event (chaos)   [0]
  --help               this text
";

struct Options {
    attacker: String,
    evasive: bool,
    source: String,
    seed: u64,
    venue: String,
    duration_mins: u64,
    compress: u64,
    out: Option<PathBuf>,
    report: Option<PathBuf>,
    checkpoint: Option<PathBuf>,
    checkpoint_every: u64,
    stats_every: u64,
    ring: usize,
    deadline_us: u64,
    throttle_ms: u64,
}

impl Options {
    fn defaults() -> Options {
        Options {
            attacker: "cityhunter".to_string(),
            evasive: false,
            source: "sim".to_string(),
            seed: 7,
            venue: "canteen".to_string(),
            duration_mins: 30,
            compress: 1,
            out: None,
            report: None,
            checkpoint: None,
            checkpoint_every: 256,
            stats_every: 0,
            ring: 64,
            deadline_us: 100_000,
            throttle_ms: 0,
        }
    }
}

fn parse_args(args: &[String]) -> Result<Option<Options>, String> {
    let mut opts = Options::defaults();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            iter.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--help" | "-h" => return Ok(None),
            "--evasive" => opts.evasive = true,
            "--attacker" => opts.attacker = value("--attacker")?.clone(),
            "--source" => opts.source = value("--source")?.clone(),
            "--venue" => opts.venue = value("--venue")?.clone(),
            "--out" => opts.out = Some(PathBuf::from(value("--out")?)),
            "--report" => opts.report = Some(PathBuf::from(value("--report")?)),
            "--checkpoint" => opts.checkpoint = Some(PathBuf::from(value("--checkpoint")?)),
            "--seed" => opts.seed = parse_num(value("--seed")?, "--seed")?,
            "--duration-mins" => {
                opts.duration_mins = parse_num(value("--duration-mins")?, "--duration-mins")?;
            }
            "--compress" => opts.compress = parse_num(value("--compress")?, "--compress")?,
            "--checkpoint-every" => {
                opts.checkpoint_every =
                    parse_num(value("--checkpoint-every")?, "--checkpoint-every")?;
            }
            "--stats-every" => {
                opts.stats_every = parse_num(value("--stats-every")?, "--stats-every")?;
            }
            "--ring" => {
                opts.ring = usize::try_from(parse_num(value("--ring")?, "--ring")?)
                    .map_err(|_| "--ring out of range".to_string())?;
            }
            "--deadline-us" => {
                opts.deadline_us = parse_num(value("--deadline-us")?, "--deadline-us")?;
            }
            "--throttle-ms" => {
                opts.throttle_ms = parse_num(value("--throttle-ms")?, "--throttle-ms")?;
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    Ok(Some(opts))
}

fn parse_num(text: &str, flag: &str) -> Result<u64, String> {
    text.parse()
        .map_err(|_| format!("{flag}: `{text}` is not a number"))
}

fn parse_attacker(name: &str, evasive: bool) -> Result<AttackerSpec, String> {
    let base = match name {
        "karma" => AttackerSpec::Karma,
        "mana" => AttackerSpec::Mana,
        "prelim" => AttackerSpec::Prelim,
        "cityhunter" => AttackerSpec::CityHunter(CityHunterConfig::default()),
        other => return Err(format!("unknown attacker `{other}` (try --help)")),
    };
    if evasive {
        Ok(AttackerSpec::Evasive {
            base: Box::new(base),
            evasion: EvasionSpec {
                rotation: Some(ch_attack::RotationSpec {
                    period: SimDuration::from_mins(5),
                }),
                beacon_clone: true,
                throttle: None,
            },
        })
    } else {
        Ok(base)
    }
}

fn parse_venue(name: &str) -> Result<VenueKind, String> {
    Ok(match name {
        "canteen" => VenueKind::Canteen,
        "passage" => VenueKind::SubwayPassage,
        "mall" => VenueKind::ShoppingCenter,
        "railway" => VenueKind::RailwayStation,
        other => return Err(format!("unknown venue `{other}` (try --help)")),
    })
}

fn build_source(
    opts: &Options,
    data: &CityData,
    spec: &AttackerSpec,
    venue: VenueKind,
) -> Result<EventSource, String> {
    let source = match opts.source.as_str() {
        "sim" => {
            let mut run = RunConfig::canteen_30min(spec.clone(), opts.seed);
            run.venue = venue;
            run.duration = SimDuration::from_mins(opts.duration_mins);
            EventSource::from_sim(data, &run)
        }
        other => match other.split_once(':') {
            Some(("pcap", path)) => EventSource::from_pcap(std::path::Path::new(path))?,
            Some(("ndjson", path)) => EventSource::from_ndjson(std::path::Path::new(path))?,
            _ => return Err(format!("unknown source `{other}` (try --help)")),
        },
    };
    Ok(source.with_time_compressed(opts.compress))
}

fn run(args: &[String]) -> Result<bool, String> {
    let Some(opts) = parse_args(args)? else {
        println!("{USAGE}");
        return Ok(false);
    };
    let spec = parse_attacker(&opts.attacker, opts.evasive)?;
    let venue = parse_venue(&opts.venue)?;
    let data = CityData::standard(opts.seed);
    let source = build_source(&opts, &data, &spec, venue)?;
    eprintln!(
        "ch-serve: {} events from source `{}` ({} malformed skipped{})",
        source.len(),
        opts.source,
        source.malformed,
        if source.truncated { ", torn tail" } else { "" },
    );

    let mut config = ServeConfig::new(spec, opts.seed);
    config.venue = venue;
    config.ring_capacity = opts.ring;
    config.deadline_us = opts.deadline_us;
    config.checkpoint_every = opts.checkpoint_every;
    config.checkpoint_path = opts.checkpoint.clone();
    config.stats_every = opts.stats_every;
    config.throttle_ms = opts.throttle_ms;

    let summary = serve_to_files(
        &data,
        &config,
        &source,
        opts.out.as_deref(),
        opts.report.as_deref(),
    )?;
    if summary.cold_fallback {
        eprintln!("ch-serve: cold start (checkpoint was unusable)");
    }
    eprintln!("ch-serve: done: {}", summary.stats.render_line());
    if let Some(report) = &opts.report {
        eprintln!("ch-serve: report at {}", report.display());
    }
    Ok(true)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(_) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("ch-serve: error: {message}");
            ExitCode::FAILURE
        }
    }
}

//! Checkpoint codec: full service state to/from one JSON object.
//!
//! A checkpoint captures everything [`crate::Service`] needs to resume a
//! stream mid-flight and replay the remainder **byte-identically**: the
//! acked input offset, the output stream's committed byte length, the
//! virtual clock and ingest ring, the offered-lure map, the counters and
//! latency histogram, and the complete attacker state reached through the
//! typed export APIs (`ch-attack` databases, trackers, buffers, RNG
//! words, evasion state — recursively for [`EvasiveAttacker`] wrappers).
//!
//! Values that can exceed 2⁵³ (RNG words, fingerprints, rotation slots)
//! are carried as decimal strings because the fleet's `Json` numbers ride
//! on `f64`. `SsidId`s are interner indices with no public constructor,
//! so the codec serializes the database in dense interner-id order and,
//! on restore, replays [`SsidDatabase::restore_entry`] in that order —
//! collecting the freshly assigned ids so every stored index list can be
//! remapped through them (a fresh interner fed the same names in the same
//! order assigns the same dense ids).
//!
//! Saves are atomic (stage to `.tmp`, rename); loads distinguish
//! "no checkpoint" from "unusable checkpoint" so the caller can count a
//! cold-start fallback instead of silently losing state.

use std::path::Path;

use ch_attack::{
    buffers::AdaptiveBuffers, Attacker, AttackerSpec, CityHunter, ClientTracker, DbEntry,
    EvasiveAttacker, KarmaAttacker, Lure, ManaAttacker, PrelimCityHunter, SsidDatabase,
};
use ch_fleet::Json;
use ch_sim::SimTime;
use ch_wifi::{MacAddr, Ssid, SsidId};

use crate::protocol::{lane_name, parse_lane, parse_source, source_name, PROTOCOL_VERSION};
use crate::service::Service;

/// Where a restored run resumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestorePoint {
    /// Input events already consumed (replay starts at this index).
    pub acked: u64,
    /// Committed output bytes — the recovery path truncates the output
    /// stream back to this length before appending.
    pub out_bytes: u64,
}

/// A `u64` as JSON that survives the `f64`-backed number type: plain
/// number when exact, decimal string otherwise.
fn u64_json(n: u64) -> Json {
    const EXACT: u64 = 1 << 53;
    if n <= EXACT {
        Json::from_u64(n)
    } else {
        Json::str(n.to_string())
    }
}

/// Reads a [`u64_json`] value back (number or decimal string).
fn json_u64(value: &Json) -> Option<u64> {
    match value {
        Json::Str(s) => s.parse().ok(),
        _ => value.as_u64(),
    }
}

fn field<'a>(value: &'a Json, name: &'static str) -> Result<&'a Json, String> {
    value
        .get(name)
        .ok_or_else(|| format!("checkpoint missing field `{name}`"))
}

fn field_u64(value: &Json, name: &'static str) -> Result<u64, String> {
    json_u64(field(value, name)?).ok_or_else(|| format!("checkpoint bad field `{name}`"))
}

fn parse_mac(value: &Json, what: &str) -> Result<MacAddr, String> {
    value
        .as_str()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("checkpoint bad {what}"))
}

fn parse_ssid(value: &Json, what: &str) -> Result<Ssid, String> {
    value
        .as_str()
        .and_then(|s| Ssid::new(s).ok())
        .ok_or_else(|| format!("checkpoint bad {what}"))
}

// --- database codec -------------------------------------------------------

/// The database as rows in dense interner-id order:
/// `[ssid, weight, source, hits, last_hit_us|null, added_at_us]`.
fn db_to_json(db: &SsidDatabase) -> Result<Json, String> {
    let mut rows = Vec::with_capacity(db.interner().len());
    for ssid in db.interner().names() {
        let id = db
            .id_of(ssid)
            .ok_or_else(|| format!("interned ssid `{}` has no db entry", ssid.as_str()))?;
        let entry = db
            .entry_by_id(id)
            .ok_or_else(|| format!("db id for `{}` has no entry", ssid.as_str()))?;
        rows.push(Json::Arr(vec![
            Json::str(ssid.as_str()),
            Json::Num(entry.weight),
            Json::str(source_name(entry.source)),
            Json::from_u64(u64::from(entry.hits)),
            match entry.last_hit {
                Some(at) => u64_json(at.as_micros()),
                None => Json::Null,
            },
            u64_json(entry.added_at.as_micros()),
        ]));
    }
    Ok(Json::Arr(rows))
}

/// Rebuilds a database from [`db_to_json`] rows. Returns the database
/// plus the id assigned to each row, in row order — `ids[i]` is the new
/// [`SsidId`] for what was interner index `i` at export time.
fn db_from_json(value: &Json) -> Result<(SsidDatabase, Vec<SsidId>), String> {
    let rows = value.as_arr().ok_or("checkpoint db is not an array")?;
    let mut db = SsidDatabase::default();
    let mut ids = Vec::with_capacity(rows.len());
    for row in rows {
        let row = row.as_arr().ok_or("checkpoint db row is not an array")?;
        let [ssid, weight, source, hits, last_hit, added_at] = row else {
            return Err("checkpoint db row has wrong arity".to_string());
        };
        let ssid = parse_ssid(ssid, "db ssid")?;
        let entry = DbEntry {
            weight: weight.as_f64().ok_or("checkpoint bad db weight")?,
            source: source
                .as_str()
                .and_then(parse_source)
                .ok_or("checkpoint bad db source")?,
            hits: u32::try_from(json_u64(hits).ok_or("checkpoint bad db hits")?)
                .map_err(|_| "checkpoint db hits out of range")?,
            last_hit: match last_hit {
                Json::Null => None,
                other => Some(SimTime::from_micros(
                    json_u64(other).ok_or("checkpoint bad db last_hit")?,
                )),
            },
            added_at: SimTime::from_micros(json_u64(added_at).ok_or("checkpoint bad db added_at")?),
        };
        ids.push(db.restore_entry(&ssid, entry));
    }
    Ok((db, ids))
}

fn id_list_to_json(ids: &[SsidId]) -> Json {
    Json::Arr(ids.iter().map(|id| Json::from_usize(id.index())).collect())
}

/// Remaps a stored index list through the freshly assigned ids.
fn id_list_from_json(value: &Json, ids: &[SsidId], what: &str) -> Result<Vec<SsidId>, String> {
    let items = value
        .as_arr()
        .ok_or_else(|| format!("checkpoint {what} is not an array"))?;
    items
        .iter()
        .map(|item| {
            item.as_usize()
                .and_then(|index| ids.get(index).copied())
                .ok_or_else(|| format!("checkpoint {what} index out of range"))
        })
        .collect()
}

fn mac_id_pairs_to_json(pairs: &[(MacAddr, Vec<SsidId>)]) -> Json {
    Json::Arr(
        pairs
            .iter()
            .map(|(mac, ids)| Json::Arr(vec![Json::str(mac.to_string()), id_list_to_json(ids)]))
            .collect(),
    )
}

fn mac_id_pairs_from_json(
    value: &Json,
    ids: &[SsidId],
    what: &str,
) -> Result<Vec<(MacAddr, Vec<SsidId>)>, String> {
    let items = value
        .as_arr()
        .ok_or_else(|| format!("checkpoint {what} is not an array"))?;
    items
        .iter()
        .map(|item| {
            let pair = item
                .as_arr()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| format!("checkpoint {what} pair malformed"))?;
            Ok((
                parse_mac(&pair[0], what)?,
                id_list_from_json(&pair[1], ids, what)?,
            ))
        })
        .collect()
}

fn tracker_from_json(value: &Json, ids: &[SsidId]) -> Result<ClientTracker, String> {
    let mut tracker = ClientTracker::new();
    tracker.restore(mac_id_pairs_from_json(value, ids, "tracker")?);
    Ok(tracker)
}

// --- attacker codec -------------------------------------------------------

fn downcast_err(kind: &str) -> String {
    format!("checkpoint spec says `{kind}` but the live attacker is a different type")
}

/// The attacker's full state, shaped by (and recursive over) its spec.
fn attacker_to_json(attacker: &dyn Attacker, spec: &AttackerSpec) -> Result<Json, String> {
    match spec {
        AttackerSpec::Karma => {
            let karma = attacker
                .as_any()
                .downcast_ref::<KarmaAttacker>()
                .ok_or_else(|| downcast_err("karma"))?;
            Ok(Json::Obj(vec![
                ("kind".to_string(), Json::str("karma")),
                (
                    "mimicked".to_string(),
                    Json::Arr(
                        karma
                            .mimicked()
                            .iter()
                            .map(|ssid| Json::str(ssid.as_str()))
                            .collect(),
                    ),
                ),
            ]))
        }
        AttackerSpec::Mana => {
            let mana = attacker
                .as_any()
                .downcast_ref::<ManaAttacker>()
                .ok_or_else(|| downcast_err("mana"))?;
            Ok(Json::Obj(vec![
                ("kind".to_string(), Json::str("mana")),
                ("db".to_string(), db_to_json(mana.database())?),
                (
                    "harvest_order".to_string(),
                    id_list_to_json(mana.harvest_order()),
                ),
                (
                    "per_device".to_string(),
                    mac_id_pairs_to_json(&mana.per_device_sorted()),
                ),
            ]))
        }
        AttackerSpec::Prelim => {
            let prelim = attacker
                .as_any()
                .downcast_ref::<PrelimCityHunter>()
                .ok_or_else(|| downcast_err("prelim"))?;
            Ok(Json::Obj(vec![
                ("kind".to_string(), Json::str("prelim")),
                ("db".to_string(), db_to_json(prelim.database())?),
                (
                    "reply_order".to_string(),
                    id_list_to_json(prelim.reply_order()),
                ),
                (
                    "tracker".to_string(),
                    mac_id_pairs_to_json(&prelim.tracker().export_sorted()),
                ),
            ]))
        }
        AttackerSpec::CityHunter(_) => {
            let ch = attacker
                .as_any()
                .downcast_ref::<CityHunter>()
                .ok_or_else(|| downcast_err("cityhunter"))?;
            let (p, f) = ch.buffers().sizes();
            Ok(Json::Obj(vec![
                ("kind".to_string(), Json::str("cityhunter")),
                ("db".to_string(), db_to_json(ch.database())?),
                (
                    "buffers".to_string(),
                    Json::Arr(vec![
                        Json::from_usize(p),
                        Json::from_usize(f),
                        Json::from_usize(ch.buffers().total()),
                        Json::Bool(ch.buffers().is_adaptive()),
                    ]),
                ),
                (
                    "tracker".to_string(),
                    mac_id_pairs_to_json(&ch.tracker().export_sorted()),
                ),
                (
                    "rng".to_string(),
                    Json::Arr(ch.rng_state().iter().map(|&w| u64_json(w)).collect()),
                ),
                (
                    "restarts".to_string(),
                    Json::from_u64(u64::from(ch.restarts())),
                ),
            ]))
        }
        AttackerSpec::Evasive { base, .. } => {
            let evasive = attacker
                .as_any()
                .downcast_ref::<EvasiveAttacker>()
                .ok_or_else(|| downcast_err("evasive"))?;
            let (slot, bssid, window, sent, next_us, period_us) = evasive.export_state();
            Ok(Json::Obj(vec![
                ("kind".to_string(), Json::str("evasive")),
                (
                    "state".to_string(),
                    Json::Arr(vec![
                        u64_json(slot),
                        Json::str(bssid.to_string()),
                        u64_json(window),
                        Json::from_u64(u64::from(sent)),
                        u64_json(next_us),
                        u64_json(period_us),
                    ]),
                ),
                (
                    "inner".to_string(),
                    attacker_to_json(evasive.inner(), base)?,
                ),
            ]))
        }
    }
}

fn expect_kind(value: &Json, want: &str) -> Result<(), String> {
    match field(value, "kind")?.as_str() {
        Some(kind) if kind == want => Ok(()),
        Some(kind) => Err(format!(
            "checkpoint attacker kind `{kind}` does not match configured `{want}`"
        )),
        None => Err("checkpoint attacker kind missing".to_string()),
    }
}

/// Restores attacker state in place, recursively, shape-checked against
/// the configured spec at every level.
fn attacker_from_json(
    attacker: &mut dyn Attacker,
    spec: &AttackerSpec,
    value: &Json,
) -> Result<(), String> {
    match spec {
        AttackerSpec::Karma => {
            expect_kind(value, "karma")?;
            let karma = attacker
                .as_any_mut()
                .downcast_mut::<KarmaAttacker>()
                .ok_or_else(|| downcast_err("karma"))?;
            let mimicked = field(value, "mimicked")?
                .as_arr()
                .ok_or("checkpoint mimicked is not an array")?
                .iter()
                .map(|item| parse_ssid(item, "mimicked ssid"))
                .collect::<Result<Vec<Ssid>, String>>()?;
            karma.restore_mimicked(mimicked);
            Ok(())
        }
        AttackerSpec::Mana => {
            expect_kind(value, "mana")?;
            let mana = attacker
                .as_any_mut()
                .downcast_mut::<ManaAttacker>()
                .ok_or_else(|| downcast_err("mana"))?;
            let (db, ids) = db_from_json(field(value, "db")?)?;
            let harvest = id_list_from_json(field(value, "harvest_order")?, &ids, "harvest_order")?;
            let per_device =
                mac_id_pairs_from_json(field(value, "per_device")?, &ids, "per_device")?;
            mana.restore_state(db, harvest, per_device);
            Ok(())
        }
        AttackerSpec::Prelim => {
            expect_kind(value, "prelim")?;
            let prelim = attacker
                .as_any_mut()
                .downcast_mut::<PrelimCityHunter>()
                .ok_or_else(|| downcast_err("prelim"))?;
            let (db, ids) = db_from_json(field(value, "db")?)?;
            let reply = id_list_from_json(field(value, "reply_order")?, &ids, "reply_order")?;
            let tracker = tracker_from_json(field(value, "tracker")?, &ids)?;
            prelim.restore_state(db, reply, tracker);
            Ok(())
        }
        AttackerSpec::CityHunter(_) => {
            expect_kind(value, "cityhunter")?;
            let ch = attacker
                .as_any_mut()
                .downcast_mut::<CityHunter>()
                .ok_or_else(|| downcast_err("cityhunter"))?;
            let (db, ids) = db_from_json(field(value, "db")?)?;
            let tracker = tracker_from_json(field(value, "tracker")?, &ids)?;
            let raw = field(value, "buffers")?
                .as_arr()
                .filter(|b| b.len() == 4)
                .ok_or("checkpoint buffers malformed")?;
            let buffers = AdaptiveBuffers::from_parts(
                raw[0].as_usize().ok_or("checkpoint bad buffer p")?,
                raw[1].as_usize().ok_or("checkpoint bad buffer f")?,
                raw[2].as_usize().ok_or("checkpoint bad buffer total")?,
                raw[3].as_bool().ok_or("checkpoint bad buffer mode")?,
            )
            .ok_or("checkpoint buffer sizes inconsistent")?;
            let rng_words = field(value, "rng")?
                .as_arr()
                .filter(|w| w.len() == 5)
                .ok_or("checkpoint rng malformed")?;
            let mut rng = [0u64; 5];
            for (slot, word) in rng.iter_mut().zip(rng_words) {
                *slot = json_u64(word).ok_or("checkpoint bad rng word")?;
            }
            let restarts = u32::try_from(field_u64(value, "restarts")?)
                .map_err(|_| "checkpoint restarts out of range")?;
            ch.restore_state(db, buffers, tracker, rng, restarts);
            Ok(())
        }
        AttackerSpec::Evasive { base, .. } => {
            expect_kind(value, "evasive")?;
            let inner_json = field(value, "inner")?.clone();
            let state = field(value, "state")?
                .as_arr()
                .filter(|s| s.len() == 6)
                .ok_or("checkpoint evasion state malformed")?
                .to_vec();
            let evasive = attacker
                .as_any_mut()
                .downcast_mut::<EvasiveAttacker>()
                .ok_or_else(|| downcast_err("evasive"))?;
            evasive.import_state((
                json_u64(&state[0]).ok_or("checkpoint bad rotation slot")?,
                parse_mac(&state[1], "evasion bssid")?,
                json_u64(&state[2]).ok_or("checkpoint bad throttle window")?,
                u32::try_from(json_u64(&state[3]).ok_or("checkpoint bad throttle count")?)
                    .map_err(|_| "checkpoint throttle count out of range")?,
                json_u64(&state[4]).ok_or("checkpoint bad beacon next")?,
                json_u64(&state[5]).ok_or("checkpoint bad beacon period")?,
            ));
            attacker_from_json(evasive.inner_mut(), base, &inner_json)
        }
    }
}

// --- service codec --------------------------------------------------------

fn offered_to_json(service: &Service) -> Json {
    let mut pairs: Vec<(&MacAddr, &Vec<Lure>)> = service.offered.iter().collect();
    pairs.sort_unstable_by_key(|(mac, _)| mac.octets());
    Json::Arr(
        pairs
            .into_iter()
            .map(|(mac, burst)| {
                Json::Arr(vec![
                    Json::str(mac.to_string()),
                    Json::Arr(
                        burst
                            .iter()
                            .map(|lure| {
                                Json::Arr(vec![
                                    Json::str(lure.ssid.as_str()),
                                    Json::str(source_name(lure.source)),
                                    Json::str(lane_name(lure.lane)),
                                ])
                            })
                            .collect(),
                    ),
                ])
            })
            .collect(),
    )
}

fn offered_from_json(service: &mut Service, value: &Json) -> Result<(), String> {
    let pairs = value.as_arr().ok_or("checkpoint offered is not an array")?;
    service.offered.clear();
    for pair in pairs {
        let pair = pair
            .as_arr()
            .filter(|p| p.len() == 2)
            .ok_or("checkpoint offered pair malformed")?;
        let mac = parse_mac(&pair[0], "offered client")?;
        let burst = pair[1]
            .as_arr()
            .ok_or("checkpoint offered burst is not an array")?
            .iter()
            .map(|lure| {
                let lure = lure
                    .as_arr()
                    .filter(|l| l.len() == 3)
                    .ok_or("checkpoint offered lure malformed")?;
                Ok(Lure {
                    ssid: parse_ssid(&lure[0], "offered ssid")?,
                    source: lure[1]
                        .as_str()
                        .and_then(parse_source)
                        .ok_or("checkpoint bad offered source")?,
                    lane: lure[2]
                        .as_str()
                        .and_then(parse_lane)
                        .ok_or("checkpoint bad offered lane")?,
                })
            })
            .collect::<Result<Vec<Lure>, String>>()?;
        service.offered.insert(mac, burst);
    }
    Ok(())
}

/// Renders the full checkpoint for `service` with `out_bytes` output
/// bytes committed so far.
pub fn to_json(service: &Service, out_bytes: u64) -> Json {
    let spec = service.config.spec.clone();
    let attacker = attacker_to_json(service.attacker.as_ref(), &spec)
        .unwrap_or_else(|reason| Json::Obj(vec![("error".to_string(), Json::str(reason))]));
    Json::Obj(vec![
        ("v".to_string(), Json::str(PROTOCOL_VERSION)),
        ("kind".to_string(), Json::str("checkpoint")),
        (
            "fingerprint".to_string(),
            Json::str(service.fingerprint.to_string()),
        ),
        ("acked".to_string(), Json::from_u64(service.acked())),
        ("out_bytes".to_string(), u64_json(out_bytes)),
        ("clock_us".to_string(), u64_json(service.clock_us)),
        ("stats".to_string(), service.stats.to_json()),
        (
            "hist".to_string(),
            Json::Arr(service.hist.iter().map(|&n| u64_json(n)).collect()),
        ),
        (
            "inflight".to_string(),
            Json::Arr(service.inflight.iter().map(|&t| u64_json(t)).collect()),
        ),
        ("offered".to_string(), offered_to_json(service)),
        ("attacker".to_string(), attacker),
    ])
}

/// Loads a checkpoint file.
///
/// # Errors
///
/// `Ok(None)` when no checkpoint exists; `Err` when one exists but is
/// unreadable or not JSON (the caller counts a cold start).
pub fn load(path: &Path) -> Result<Option<Json>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(format!("read checkpoint `{}`: {e}", path.display())),
    };
    Json::parse(text.trim())
        .map(Some)
        .map_err(|e| format!("parse checkpoint `{}`: {e}", path.display()))
}

/// Applies a loaded checkpoint to a freshly built service.
///
/// # Errors
///
/// A rendered reason when the checkpoint is malformed, truncated, or was
/// written by a different configuration (fingerprint mismatch). The
/// service may be left half-restored on error — the caller must rebuild
/// it cold.
pub fn restore(service: &mut Service, checkpoint: &Json) -> Result<RestorePoint, String> {
    match field(checkpoint, "v")?.as_str() {
        Some(v) if v == PROTOCOL_VERSION => {}
        _ => return Err("checkpoint protocol version mismatch".to_string()),
    }
    let fingerprint = field(checkpoint, "fingerprint")?
        .as_str()
        .and_then(|s| s.parse::<u64>().ok())
        .ok_or("checkpoint fingerprint malformed")?;
    if fingerprint != service.fingerprint {
        return Err(format!(
            "checkpoint fingerprint {fingerprint} does not match configuration {}",
            service.fingerprint
        ));
    }
    let acked = field_u64(checkpoint, "acked")?;
    let out_bytes = field_u64(checkpoint, "out_bytes")?;
    service.clock_us = field_u64(checkpoint, "clock_us")?;
    service.stats = crate::protocol::ServiceStats::from_json(field(checkpoint, "stats")?)
        .map_err(|e| format!("checkpoint stats: {e}"))?;
    if service.stats.events != acked {
        return Err("checkpoint acked/stats disagreement".to_string());
    }
    let hist = field(checkpoint, "hist")?
        .as_arr()
        .filter(|h| h.len() == service.hist.len())
        .ok_or("checkpoint hist malformed")?;
    for (slot, bucket) in service.hist.iter_mut().zip(hist) {
        *slot = json_u64(bucket).ok_or("checkpoint bad hist bucket")?;
    }
    let inflight = field(checkpoint, "inflight")?
        .as_arr()
        .ok_or("checkpoint inflight is not an array")?;
    service.inflight.clear();
    for t in inflight {
        service
            .inflight
            .push_back(json_u64(t).ok_or("checkpoint bad inflight time")?);
    }
    offered_from_json(service, field(checkpoint, "offered")?)?;
    let spec = service.config.spec.clone();
    attacker_from_json(
        service.attacker.as_mut(),
        &spec,
        field(checkpoint, "attacker")?,
    )?;
    Ok(RestorePoint { acked, out_bytes })
}

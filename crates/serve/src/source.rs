//! Pluggable, replayable input sources for the service.
//!
//! Every source materializes to an indexed event list, because recovery
//! needs **replay by offset**: a checkpoint records how many input events
//! were acked, and a restarted service must re-consume the identical
//! stream from exactly that index. Three sources exist:
//!
//! * **sim** — re-runs a deterministic `ch-scenarios` experiment with a
//!   [`ch_scenarios::CollectingObserver`] and keeps the client-side air
//!   traffic (probe requests, association requests). Same seed, same
//!   stream, every time — the chaos smoke's source.
//! * **pcap** — replays a capture through
//!   [`ch_wifi::pcap::read_capture_lenient`], the count-and-skip decode
//!   path shared with the `capture_pcap` example.
//! * **ndjson** — reads `ch-serve-v1` wire lines from a file; malformed
//!   lines are counted and skipped, never fatal.

use std::path::Path;

use ch_scenarios::{run_experiment_observed, CityData, CollectingObserver, RunConfig};
use ch_wifi::mgmt::MgmtFrame;
use ch_wifi::pcap::read_capture_lenient;

use crate::protocol::{decode_input, InputEvent};

/// A fully materialized, index-replayable input stream.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EventSource {
    events: Vec<InputEvent>,
    /// Records/lines that failed to decode — counted and skipped.
    pub malformed: u64,
    /// `true` if the underlying file ended mid-record (torn tail).
    pub truncated: bool,
}

impl EventSource {
    /// A source over the given events (tests, synthetic overload).
    pub fn from_events(events: Vec<InputEvent>) -> EventSource {
        EventSource {
            events,
            malformed: 0,
            truncated: false,
        }
    }

    /// Generates the stream by running one deterministic experiment and
    /// collecting the client-side air traffic: every delivered probe
    /// request and association request, with delivery timestamps.
    pub fn from_sim(data: &CityData, config: &RunConfig) -> EventSource {
        let mut observer = CollectingObserver::new(|frame| {
            matches!(
                frame,
                MgmtFrame::ProbeRequest(_) | MgmtFrame::AssocRequest(_)
            )
        });
        run_experiment_observed(data, config, &mut observer);
        let events = observer
            .into_frames()
            .into_iter()
            .filter_map(|(at, frame)| convert_frame(at.as_micros(), &frame))
            .collect();
        EventSource::from_events(events)
    }

    /// Replays a pcap capture through the lenient (count-and-skip) reader.
    ///
    /// # Errors
    ///
    /// A rendered [`ch_wifi::pcap::PcapReadError`] when the file cannot be
    /// opened or is not an 802.11 capture at all; per-record corruption is
    /// counted in [`EventSource::malformed`] instead.
    pub fn from_pcap(path: &Path) -> Result<EventSource, String> {
        let file = std::fs::File::open(path)
            .map_err(|e| format!("open pcap `{}`: {e}", path.display()))?;
        let capture = read_capture_lenient(std::io::BufReader::new(file))
            .map_err(|e| format!("read pcap `{}`: {e}", path.display()))?;
        let events = capture
            .frames
            .iter()
            .filter_map(|cf| convert_frame(cf.at.as_micros(), &cf.frame))
            .collect();
        Ok(EventSource {
            events,
            malformed: capture.skipped,
            truncated: capture.truncated,
        })
    }

    /// Reads `ch-serve-v1` wire lines from a file; blank lines are
    /// ignored and malformed lines are counted and skipped.
    ///
    /// # Errors
    ///
    /// Only on file-level I/O failure.
    pub fn from_ndjson(path: &Path) -> Result<EventSource, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("read ndjson `{}`: {e}", path.display()))?;
        let mut source = EventSource::default();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            match decode_input(line) {
                Ok(event) => source.events.push(event),
                Err(_) => source.malformed += 1,
            }
        }
        Ok(source)
    }

    /// The events, in stream order.
    pub fn events(&self) -> &[InputEvent] {
        &self.events
    }

    /// Number of events in the stream.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when the stream carries no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The same stream with every timestamp divided by `factor` — the
    /// open-loop overload knob: arrivals compress, offered load
    /// multiplies, and the service's bounded ring starts shedding. A
    /// factor of 0 is treated as 1.
    #[must_use]
    pub fn with_time_compressed(mut self, factor: u64) -> EventSource {
        let factor = factor.max(1);
        for event in &mut self.events {
            match event {
                InputEvent::Probe { t_us, .. } | InputEvent::Assoc { t_us, .. } => {
                    *t_us /= factor;
                }
            }
        }
        self
    }
}

/// Maps an observed air frame to a wire event; frames that are not
/// client-side traffic map to `None`.
fn convert_frame(t_us: u64, frame: &MgmtFrame) -> Option<InputEvent> {
    match frame {
        MgmtFrame::ProbeRequest(probe) => Some(InputEvent::Probe {
            t_us,
            client: probe.source,
            ssid: if probe.is_broadcast() {
                None
            } else {
                // ch-lint: allow(ssid-clone) — stream materialization is an
                // Arc refcount bump per frame, off the probe hot path.
                Some(probe.ssid.clone())
            },
        }),
        MgmtFrame::AssocRequest(assoc) => Some(InputEvent::Assoc {
            t_us,
            client: assoc.source,
            // ch-lint: allow(ssid-clone) — stream materialization, as above.
            ssid: assoc.ssid.clone(),
        }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ch_wifi::MacAddr;

    fn mac(i: u8) -> MacAddr {
        MacAddr::new([2, 0, 0, 0, 0, i])
    }

    #[test]
    fn ndjson_counts_and_skips_garbage() {
        let dir = std::env::temp_dir().join("ch-serve-src-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("in.ndjson");
        let good = crate::protocol::encode_input(&InputEvent::Probe {
            t_us: 5,
            client: mac(1),
            ssid: None,
        });
        std::fs::write(&path, format!("{good}\nnot json at all\n\n{good}\n")).unwrap();
        let source = EventSource::from_ndjson(&path).unwrap();
        assert_eq!(source.len(), 2);
        assert_eq!(source.malformed, 1);
    }

    #[test]
    fn time_compression_divides_timestamps() {
        let source = EventSource::from_events(vec![InputEvent::Probe {
            t_us: 1000,
            client: mac(1),
            ssid: None,
        }])
        .with_time_compressed(10);
        assert_eq!(source.events()[0].t_us(), 100);
    }
}

//! The service core and the file-backed serve loop.
//!
//! The core ([`Service`]) is **wall-clock-free**: time is the stream's
//! virtual time. Every input event carries an arrival timestamp; the
//! service charges a deterministic per-event cost
//! ([`BASE_PROBE_COST_US`] + [`PER_LURE_COST_US`] per lure for probes,
//! [`ASSOC_COST_US`] for associations) and tracks a virtual completion
//! clock. Queueing is modelled explicitly: an event whose arrival finds
//! [`ServeConfig::ring_capacity`] earlier events still in virtual service
//! is **shed and counted** — open-loop overload produces backpressure
//! numbers, not silent drops and not panics. Latency (completion −
//! arrival) feeds a log₂ histogram (p50/p99 for the bench and report) and
//! a per-event deadline watchdog.
//!
//! Everything the core computes is a pure function of the input stream,
//! which is what makes the state checkpointable ([`crate::checkpoint`])
//! and a kill-and-recover run byte-identical to an uninterrupted one.
//! Wall-clock concerns (file I/O with retry, throttling for the chaos
//! gate) live only in [`serve_to_files`].

use std::collections::VecDeque;
use std::io::{Seek, Write};
use std::path::{Path, PathBuf};

use ch_attack::{Attacker, AttackerSpec, Lure};
use ch_fleet::{fingerprint, Json, RetryPolicy, TRANSIENT_PREFIX};
use ch_mobility::VenueKind;
use ch_sim::{DetHashMap, SimTime};
use ch_wifi::mgmt::ProbeRequest;
use ch_wifi::MacAddr;

use ch_scenarios::CityData;

use crate::protocol::{encode_output, InputEvent, OutputEvent, ServiceStats, PROTOCOL_VERSION};
use crate::source::EventSource;

/// Virtual cost charged per probe event before lures, microseconds.
pub const BASE_PROBE_COST_US: u64 = 60;
/// Virtual cost charged per emitted lure (≈ one probe-response airtime).
pub const PER_LURE_COST_US: u64 = 25;
/// Virtual cost charged per association event, microseconds.
pub const ASSOC_COST_US: u64 = 80;

/// Latency histogram buckets (log₂ of microseconds).
const HIST_BUCKETS: usize = 64;

/// How the service runs: attacker, stream semantics, robustness knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Attacker to deploy (any generation, plain or evasive).
    pub spec: AttackerSpec,
    /// Master seed: builds the city the attacker's WiGLE seed comes from.
    pub seed: u64,
    /// Deployment venue (fixes the attack site within the city).
    pub venue: VenueKind,
    /// Lures per broadcast probe (the §III-A reception budget).
    pub lure_budget: usize,
    /// Ingest ring capacity: events concurrently in virtual service
    /// before arrivals are shed.
    pub ring_capacity: usize,
    /// Per-event latency deadline (queueing + service), microseconds.
    pub deadline_us: u64,
    /// Commit a checkpoint every N acked events (0 disables).
    pub checkpoint_every: u64,
    /// Where checkpoints live; `None` disables checkpointing entirely.
    pub checkpoint_path: Option<PathBuf>,
    /// Emit a `stats` wire event every N acked events (0 disables).
    pub stats_every: u64,
    /// Wall-clock sleep per event, milliseconds — slows the loop so the
    /// chaos gate can `kill -9` it mid-stream. Never affects results.
    pub throttle_ms: u64,
    /// Retry policy for service file operations (checkpoint/output/report
    /// writes); transient failures back off on the deterministic
    /// [`RetryPolicy::backoff_ms`] schedule.
    pub io_retry: RetryPolicy,
}

impl ServeConfig {
    /// Service defaults for an attacker + seed: canteen venue, 40-lure
    /// budget, 64-deep ring, 100 ms deadline, checkpoint every 256
    /// events (once a path is set), 3 I/O retries with 10 ms → 1 s
    /// backoff.
    pub fn new(spec: AttackerSpec, seed: u64) -> ServeConfig {
        ServeConfig {
            spec,
            seed,
            venue: VenueKind::Canteen,
            lure_budget: 40,
            ring_capacity: 64,
            deadline_us: 100_000,
            checkpoint_every: 256,
            checkpoint_path: None,
            stats_every: 0,
            throttle_ms: 0,
            io_retry: RetryPolicy::retries(3).with_backoff(10, 1_000),
        }
    }

    /// The configuration fingerprint a checkpoint must match to be
    /// restored: protocol version plus every axis that changes the
    /// deterministic outcome.
    pub fn fingerprint(&self) -> u64 {
        fingerprint(&[
            PROTOCOL_VERSION,
            &format!("{:?}", self.spec),
            &self.seed.to_string(),
            &format!("{:?}", self.venue),
            &self.lure_budget.to_string(),
            &self.ring_capacity.to_string(),
            &self.deadline_us.to_string(),
        ])
    }
}

/// The streaming service: one attacker plus the virtual ingest state.
pub struct Service {
    pub(crate) config: ServeConfig,
    pub(crate) fingerprint: u64,
    pub(crate) attacker: Box<dyn Attacker>,
    /// Virtual completion time of the last processed event.
    pub(crate) clock_us: u64,
    /// Completion times of events still in virtual service (the ring).
    pub(crate) inflight: VecDeque<u64>,
    /// Last lure burst offered per client — matches associations back to
    /// lures for [`Attacker::on_hit`].
    pub(crate) offered: DetHashMap<MacAddr, Vec<Lure>>,
    pub(crate) stats: ServiceStats,
    /// log₂(latency µs) histogram.
    pub(crate) hist: Vec<u64>,
    lure_scratch: Vec<Lure>,
}

impl Service {
    /// Builds the service: instantiates the attacker at the configured
    /// venue's attack site within the seed-derived city.
    pub fn new(data: &CityData, config: ServeConfig) -> Service {
        let site = data.site_for(config.venue);
        let attacker = config.spec.build_default(&data.wigle, &data.heat, site);
        let fingerprint = config.fingerprint();
        Service {
            config,
            fingerprint,
            attacker,
            clock_us: 0,
            inflight: VecDeque::new(),
            offered: DetHashMap::default(),
            stats: ServiceStats::default(),
            hist: vec![0; HIST_BUCKETS],
            lure_scratch: Vec::new(),
        }
    }

    /// The configuration fingerprint (checkpoint validity check).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The active configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The monotone counters.
    pub fn stats(&self) -> &ServiceStats {
        &self.stats
    }

    /// Virtual completion time of the last processed event, microseconds.
    pub fn clock_us(&self) -> u64 {
        self.clock_us
    }

    /// Input events consumed so far (processed + shed) — the replay
    /// offset a checkpoint records.
    pub fn acked(&self) -> u64 {
        self.stats.events
    }

    /// Consumes one input event. Reactions (lures, beacons) are appended
    /// to `emit`, which is cleared first. Never panics: overload sheds
    /// with a counted stat, unknown associations count as unmatched.
    pub fn process(&mut self, event: &InputEvent, emit: &mut Vec<OutputEvent>) {
        emit.clear();
        self.stats.events += 1;
        let arrival = event.t_us();

        // Drain virtual completions up to this arrival.
        while self.inflight.front().is_some_and(|&done| done <= arrival) {
            self.inflight.pop_front();
        }
        // Bounded ingest: a full ring sheds the arrival, explicitly.
        if self.inflight.len() >= self.config.ring_capacity.max(1) {
            self.stats.shed += 1;
            return;
        }

        let start = arrival.max(self.clock_us);
        let cost = match event {
            InputEvent::Probe { client, ssid, .. } => {
                self.stats.probes += 1;
                let probe = match ssid {
                    Some(ssid) => ProbeRequest::direct(*client, ssid.clone()),
                    None => ProbeRequest::broadcast(*client),
                };
                self.attacker.respond_to_probe_into(
                    SimTime::from_micros(start),
                    &probe,
                    self.config.lure_budget,
                    &mut self.lure_scratch,
                );
                let cost = BASE_PROBE_COST_US.saturating_add(
                    PER_LURE_COST_US.saturating_mul(self.lure_scratch.len() as u64),
                );
                let completion = start.saturating_add(cost);
                self.stats.lures += self.lure_scratch.len() as u64;
                for lure in &self.lure_scratch {
                    emit.push(OutputEvent::Lure {
                        t_us: completion,
                        client: *client,
                        ssid: lure.ssid.clone(),
                        source: lure.source,
                        lane: lure.lane,
                    });
                }
                // Remember the burst so a later association can be
                // matched back to the exact lure that caused it.
                let entry = self.offered.entry(*client).or_default();
                entry.clear();
                entry.extend(self.lure_scratch.iter().cloned());
                cost
            }
            InputEvent::Assoc { client, ssid, .. } => {
                self.stats.assocs += 1;
                let completion = start.saturating_add(ASSOC_COST_US);
                let hit = self
                    .offered
                    .get(client)
                    .and_then(|burst| burst.iter().find(|lure| &lure.ssid == ssid))
                    .cloned();
                match hit {
                    Some(lure) => {
                        self.stats.hits += 1;
                        self.attacker
                            .on_hit(SimTime::from_micros(completion), *client, &lure);
                    }
                    // An association we never lured (foreign traffic, a
                    // replayed capture of someone else's AP): counted,
                    // not dropped silently, never fatal.
                    None => self.stats.unmatched_assocs += 1,
                }
                ASSOC_COST_US
            }
        };

        let completion = start.saturating_add(cost);
        self.clock_us = completion;
        self.inflight.push_back(completion);

        // Watchdog: queueing + service latency against the deadline.
        let latency = completion.saturating_sub(arrival);
        if latency > self.config.deadline_us {
            self.stats.deadline_misses += 1;
        }
        let bucket = (u64::BITS - latency.leading_zeros()) as usize;
        if let Some(slot) = self.hist.get_mut(bucket.min(HIST_BUCKETS - 1)) {
            *slot += 1;
        }

        // Beacon poll, once per processed event (the runner's idiom).
        if let Some(beacon) = self.attacker.beacon(SimTime::from_micros(completion)) {
            self.stats.beacons += 1;
            emit.push(OutputEvent::Beacon {
                t_us: completion,
                bssid: beacon.bssid,
                ssid: beacon.ssid,
            });
        }
    }

    /// Latency percentile (upper bound of the log₂ bucket the
    /// percentile falls in), microseconds. `pct` in `[0, 100]`.
    pub fn latency_percentile_us(&self, pct: f64) -> u64 {
        let total: u64 = self.hist.iter().sum();
        if total == 0 {
            return 0;
        }
        let pct = pct.clamp(0.0, 100.0);
        // Smallest rank whose cumulative share reaches pct.
        let target = ((total as f64) * pct / 100.0).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (bucket, &count) in self.hist.iter().enumerate() {
            cumulative += count;
            if cumulative >= target {
                return if bucket == 0 {
                    0
                } else {
                    (1u64 << bucket.min(63)) - 1
                };
            }
        }
        u64::MAX
    }

    /// Consumes every event of `source` from index `start`, discarding
    /// wire output (bench and in-memory test harnesses).
    pub fn consume_all(&mut self, source: &EventSource, start: usize) {
        let mut emit = Vec::new();
        for event in source.events().iter().skip(start) {
            self.process(event, &mut emit);
        }
    }

    /// The final report as a JSON object (fixed key order). Every field
    /// is derived from the input stream alone, so an interrupted-and-
    /// recovered run renders a byte-identical report.
    pub fn report(&self) -> Json {
        let fields = vec![
            ("v".to_string(), Json::str(PROTOCOL_VERSION)),
            ("kind".to_string(), Json::str("report")),
            ("attacker".to_string(), Json::str(self.attacker.name())),
            ("seed".to_string(), Json::from_u64(self.config.seed)),
            (
                "venue".to_string(),
                Json::str(format!("{:?}", self.config.venue)),
            ),
            (
                "fingerprint".to_string(),
                Json::str(self.fingerprint.to_string()),
            ),
            ("clock_us".to_string(), Json::from_u64(self.clock_us)),
            (
                "p50_us".to_string(),
                Json::from_u64(self.latency_percentile_us(50.0)),
            ),
            (
                "p99_us".to_string(),
                Json::from_u64(self.latency_percentile_us(99.0)),
            ),
            (
                "db_len".to_string(),
                Json::from_usize(self.attacker.database_len()),
            ),
            ("stats".to_string(), self.stats.to_json()),
        ];
        Json::Obj(fields)
    }
}

/// What [`serve_to_files`] did, beyond the counters.
#[derive(Debug, Clone)]
pub struct ServeSummary {
    /// Final counters.
    pub stats: ServiceStats,
    /// The rendered final report.
    pub report: Json,
    /// `true` if the run resumed warm from a checkpoint.
    pub recovered: bool,
    /// `true` if a checkpoint existed but was unusable (corrupt,
    /// truncated, or from a different configuration) and the service
    /// fell back to a cold start — counted, never silent.
    pub cold_fallback: bool,
    /// Input index the run resumed from (0 for cold starts).
    pub resumed_at: u64,
}

/// Runs a service file op under the retry policy. Transient error kinds
/// (interrupted, would-block, timed-out) are retried with the
/// deterministic backoff schedule; an exhausted transient carries
/// [`TRANSIENT_PREFIX`] so a supervising fleet campaign can classify it.
pub(crate) fn retry_io<T>(
    policy: &RetryPolicy,
    seed: u64,
    key: &str,
    mut op: impl FnMut() -> std::io::Result<T>,
) -> Result<T, String> {
    let mut attempt = 0usize;
    loop {
        match op() {
            Ok(value) => return Ok(value),
            Err(e) => {
                let transient = matches!(
                    e.kind(),
                    std::io::ErrorKind::Interrupted
                        | std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                );
                if transient && attempt + 1 < policy.max_attempts() {
                    attempt += 1;
                    let wait = policy.backoff_ms(seed, key, attempt);
                    if wait > 0 {
                        std::thread::sleep(std::time::Duration::from_millis(wait));
                    }
                    continue;
                }
                return Err(if transient {
                    format!(
                        "{TRANSIENT_PREFIX} service op `{key}` failed after {} attempt(s): {e}",
                        attempt + 1
                    )
                } else {
                    format!("service op `{key}` failed: {e}")
                });
            }
        }
    }
}

/// Atomically writes `content` at `path` (stage to `{path}.tmp`, then
/// rename), under the retry policy.
pub(crate) fn atomic_write(
    policy: &RetryPolicy,
    seed: u64,
    key: &str,
    path: &Path,
    content: &str,
) -> Result<(), String> {
    let tmp = path.with_extension("tmp");
    retry_io(policy, seed, key, || {
        std::fs::write(&tmp, content)?;
        std::fs::rename(&tmp, path)
    })
}

/// Runs the full file-backed serve loop: recover-or-cold-start, process
/// the stream, write wire output, checkpoint periodically, and commit the
/// final report atomically.
///
/// Recovery contract: with a checkpoint path configured, a process killed
/// at any instant restarts warm from the last committed checkpoint, the
/// output stream is truncated back to that checkpoint's acked byte
/// offset, and the remainder of the run replays — the final report *and*
/// the output stream are byte-identical to an uninterrupted run's. An
/// unusable checkpoint (torn, corrupt, foreign fingerprint) triggers a
/// **counted** cold start instead.
///
/// # Errors
///
/// A rendered message on unrecoverable I/O failure; transient-classified
/// failures that exhausted their retries carry the fleet's `transient:`
/// prefix.
pub fn serve_to_files(
    data: &CityData,
    config: &ServeConfig,
    source: &EventSource,
    out_path: Option<&Path>,
    report_path: Option<&Path>,
) -> Result<ServeSummary, String> {
    let mut service = Service::new(data, config.clone());
    let mut recovered = false;
    let mut cold_fallback = false;
    let mut out_bytes = 0u64;

    if let Some(cp_path) = &config.checkpoint_path {
        match crate::checkpoint::load(cp_path) {
            Ok(Some(cp)) => match crate::checkpoint::restore(&mut service, &cp) {
                Ok(point) => {
                    recovered = true;
                    out_bytes = point.out_bytes;
                }
                Err(reason) => {
                    // Half-applied restores must not leak: rebuild cold.
                    service = Service::new(data, config.clone());
                    cold_fallback = true;
                    eprintln!("ch-serve: checkpoint unusable ({reason}); cold start");
                }
            },
            Ok(None) => {}
            Err(reason) => {
                cold_fallback = true;
                eprintln!("ch-serve: checkpoint unreadable ({reason}); cold start");
            }
        }
    }
    let resumed_at = service.acked();
    if recovered {
        eprintln!(
            "ch-serve: recovered warm from checkpoint at event {resumed_at} \
             (clock {} us); replaying remainder",
            service.clock_us()
        );
    }

    let seed = config.seed;
    let policy = config.io_retry;
    let mut out = match out_path {
        Some(path) => {
            let mut file = if recovered {
                // Truncate back to the acked prefix, then append: bytes
                // written after the last checkpoint are replayed below.
                let file = retry_io(&policy, seed, "out-reopen", || {
                    std::fs::OpenOptions::new()
                        .read(true)
                        .write(true)
                        .open(path)
                })?;
                retry_io(&policy, seed, "out-truncate", || file.set_len(out_bytes))?;
                file
            } else {
                out_bytes = 0;
                retry_io(&policy, seed, "out-create", || std::fs::File::create(path))?
            };
            retry_io(&policy, seed, "out-seek", || {
                file.seek(std::io::SeekFrom::End(0))
            })?;
            Some(file)
        }
        None => None,
    };

    let mut emit: Vec<OutputEvent> = Vec::new();
    let mut line_buf = String::new();
    let total = source.len() as u64;
    // Malformed source records are part of the stream identity; set, not
    // added, so recovery does not double-count.
    service.stats.malformed = source.malformed;

    let write_line =
        |out: &mut Option<std::fs::File>, out_bytes: &mut u64, line: &str| -> Result<(), String> {
            if let Some(file) = out {
                retry_io(&policy, seed, "out-write", || {
                    file.write_all(line.as_bytes())?;
                    file.write_all(b"\n")
                })?;
                *out_bytes += line.len() as u64 + 1;
            }
            Ok(())
        };

    for index in resumed_at..total {
        let Some(event) = source.events().get(index as usize) else {
            break;
        };
        if config.throttle_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(config.throttle_ms));
        }
        service.process(event, &mut emit);
        for output in &emit {
            line_buf.clear();
            line_buf.push_str(&encode_output(output));
            write_line(&mut out, &mut out_bytes, &line_buf)?;
        }
        let acked = service.acked();
        if config.stats_every > 0 && acked.is_multiple_of(config.stats_every) {
            let line = encode_output(&OutputEvent::Stats {
                t_us: service.clock_us(),
                stats: *service.stats(),
            });
            write_line(&mut out, &mut out_bytes, &line)?;
        }
        if config.checkpoint_every > 0 && acked.is_multiple_of(config.checkpoint_every) {
            if let Some(cp_path) = &config.checkpoint_path {
                // Counter and wire mark go in *before* the save so the
                // checkpointed state already contains them — the
                // recovered continuation then matches the uninterrupted
                // run line for line.
                service.stats.checkpoints += 1;
                let line = encode_output(&OutputEvent::Checkpoint {
                    t_us: service.clock_us(),
                    acked,
                });
                write_line(&mut out, &mut out_bytes, &line)?;
                if let Some(file) = &mut out {
                    retry_io(&policy, seed, "out-flush", || file.sync_data())?;
                }
                let rendered = crate::checkpoint::to_json(&service, out_bytes).render();
                atomic_write(&policy, seed, "checkpoint-write", cp_path, &rendered)?;
            }
        }
    }

    if let Some(file) = &mut out {
        retry_io(&policy, seed, "out-final-flush", || file.sync_data())?;
    }
    let report = service.report();
    if let Some(path) = report_path {
        let mut rendered = report.render();
        rendered.push('\n');
        atomic_write(&policy, seed, "report-write", path, &rendered)?;
    }

    Ok(ServeSummary {
        stats: *service.stats(),
        report,
        recovered,
        cold_fallback,
        resumed_at,
    })
}

//! Backpressure, watchdog, and degenerate-input behavior of the service
//! core under synthetic open-loop load. No file I/O — these drive
//! `Service::process` directly.

use std::sync::OnceLock;

use ch_attack::{AttackerSpec, CityHunterConfig};
use ch_scenarios::CityData;
use ch_serve::{InputEvent, OutputEvent, ServeConfig, Service};
use ch_wifi::{MacAddr, Ssid};

const SEED: u64 = 0x10AD;

fn city() -> &'static CityData {
    static CITY: OnceLock<CityData> = OnceLock::new();
    CITY.get_or_init(|| CityData::standard(SEED))
}

fn service(ring: usize) -> Service {
    let mut config = ServeConfig::new(AttackerSpec::CityHunter(CityHunterConfig::default()), SEED);
    config.ring_capacity = ring;
    Service::new(city(), config)
}

fn mac(i: u32) -> MacAddr {
    let b = i.to_be_bytes();
    MacAddr::new([2, 0, b[1], b[2], b[3], 0])
}

/// An open-loop burst: `n` broadcast probes all arriving in the same
/// microsecond — far past any ring's capacity.
fn burst(n: u32) -> Vec<InputEvent> {
    (0..n)
        .map(|i| InputEvent::Probe {
            t_us: 1,
            client: mac(i),
            ssid: None,
        })
        .collect()
}

#[test]
fn burst_past_capacity_sheds_counted_and_never_panics() {
    let mut service = service(8);
    let mut emit = Vec::new();
    let events = burst(400);
    for event in &events {
        service.process(&event.clone(), &mut emit);
    }
    let stats = *service.stats();
    assert_eq!(stats.events, 400, "every arrival must be consumed");
    assert_eq!(stats.shed, 400 - 8, "overflow must shed, exactly counted");
    assert_eq!(stats.probes, 8, "only ring-capacity events are served");
    assert!(stats.lures > 0, "served events still produce lures");
}

#[test]
fn shedding_is_work_conserving_once_the_ring_drains() {
    let mut service = service(4);
    let mut emit = Vec::new();
    for event in burst(40) {
        service.process(&event, &mut emit);
    }
    assert_eq!(service.stats().shed, 36);
    // A later arrival, after the virtual ring has drained, is served.
    service.process(
        &InputEvent::Probe {
            t_us: service.clock_us() + 1,
            client: mac(999),
            ssid: None,
        },
        &mut emit,
    );
    assert_eq!(service.stats().shed, 36, "post-drain arrival must not shed");
    assert_eq!(service.stats().probes, 5);
    assert!(!emit.is_empty(), "post-drain arrival is served normally");
}

#[test]
fn queueing_latency_trips_the_deadline_watchdog() {
    let mut config = ServeConfig::new(AttackerSpec::CityHunter(CityHunterConfig::default()), SEED);
    config.ring_capacity = 64;
    config.deadline_us = 500; // tight: one lure burst costs ~1000 us
    let mut service = Service::new(city(), config);
    let mut emit = Vec::new();
    for event in burst(32) {
        service.process(&event, &mut emit);
    }
    let stats = *service.stats();
    assert!(
        stats.deadline_misses > 0,
        "queued bursts must blow a 500us deadline"
    );
    assert!(stats.deadline_misses <= stats.events);
    assert!(service.latency_percentile_us(99.0) >= service.latency_percentile_us(50.0));
}

#[test]
fn unmatched_associations_are_counted_not_fatal() {
    let mut service = service(64);
    let mut emit = Vec::new();
    // An association for an SSID never offered to this client.
    service.process(
        &InputEvent::Assoc {
            t_us: 10,
            client: mac(7),
            ssid: Ssid::new("never-offered").unwrap(),
        },
        &mut emit,
    );
    assert_eq!(service.stats().unmatched_assocs, 1);
    assert_eq!(service.stats().hits, 0);
    assert!(emit.is_empty());
}

#[test]
fn association_to_an_offered_lure_scores_a_hit() {
    let mut service = service(64);
    let mut emit = Vec::new();
    service.process(
        &InputEvent::Probe {
            t_us: 1,
            client: mac(1),
            ssid: None,
        },
        &mut emit,
    );
    let offered = emit
        .iter()
        .find_map(|e| match e {
            OutputEvent::Lure { ssid, .. } => Some(ssid.clone()),
            _ => None,
        })
        .expect("broadcast probe must draw lures");
    service.process(
        &InputEvent::Assoc {
            t_us: service.clock_us() + 1,
            client: mac(1),
            ssid: offered,
        },
        &mut emit,
    );
    assert_eq!(service.stats().hits, 1);
    assert_eq!(service.stats().unmatched_assocs, 0);
}

#[test]
fn identical_streams_produce_identical_counters_and_reports() {
    let events = burst(100);
    let run = || {
        let mut service = service(16);
        let mut emit = Vec::new();
        let mut lines = Vec::new();
        for event in &events {
            service.process(event, &mut emit);
            for out in &emit {
                lines.push(ch_serve::protocol::encode_output(out));
            }
        }
        (*service.stats(), service.report().render(), lines)
    };
    let (stats_a, report_a, lines_a) = run();
    let (stats_b, report_b, lines_b) = run();
    assert_eq!(stats_a, stats_b);
    assert_eq!(report_a, report_b);
    assert_eq!(lines_a, lines_b);
}

//! Encode/decode parity and seeded mutation fuzzing of the `ch-serve-v1`
//! wire codec (the `ch-wifi` codec_mutation pattern, applied to NDJSON).
//!
//! Properties pinned:
//!
//! * every event shape round-trips exactly through its codec;
//! * thousands of seeded mutations of valid wire lines (byte flips,
//!   truncations) decode to a typed `ProtocolError` or a value that
//!   itself round-trips — never a panic;
//! * pure garbage (random bytes, random JSON-ish text) never panics and
//!   never decodes.

use ch_attack::{LureLane, LureSource};
use ch_serve::protocol::{
    decode_input, decode_output, encode_input, encode_output, ProtocolError, ServiceStats,
};
use ch_serve::{InputEvent, OutputEvent};
use ch_sim::SimRng;
use ch_wifi::{MacAddr, Ssid};

fn mac(i: u8) -> MacAddr {
    MacAddr::new([2, 0, 0, 0, 0, i])
}

fn ssid(name: &str) -> Ssid {
    Ssid::new(name).unwrap()
}

/// One instance of every input-event shape.
fn sample_inputs() -> Vec<InputEvent> {
    vec![
        InputEvent::Probe {
            t_us: 0,
            client: mac(1),
            ssid: None,
        },
        InputEvent::Probe {
            t_us: 123_456_789,
            client: mac(2),
            ssid: Some(ssid("7-Eleven Free WiFi")),
        },
        InputEvent::Assoc {
            t_us: u64::from(u32::MAX),
            client: mac(3),
            ssid: ssid("#HKAirport Free WiFi"),
        },
    ]
}

/// One instance of every output-event shape, covering every source/lane.
fn sample_outputs() -> Vec<OutputEvent> {
    let mut events = vec![
        OutputEvent::Beacon {
            t_us: 77,
            bssid: mac(9),
            ssid: ssid("CSL"),
        },
        OutputEvent::Stats {
            t_us: 1_000_000,
            stats: ServiceStats {
                events: 11,
                probes: 7,
                assocs: 4,
                lures: 280,
                hits: 3,
                unmatched_assocs: 1,
                shed: 2,
                deadline_misses: 5,
                beacons: 6,
                checkpoints: 1,
                malformed: 9,
            },
        },
        OutputEvent::Checkpoint {
            t_us: 2_000_000,
            acked: 512,
        },
    ];
    for (source, lane) in [
        (LureSource::Wigle, LureLane::Popularity),
        (LureSource::Wigle, LureLane::PopularityGhost),
        (LureSource::DirectProbe, LureLane::Freshness),
        (LureSource::DirectProbe, LureLane::FreshnessGhost),
        (LureSource::Carrier, LureLane::Database),
        (LureSource::DirectProbe, LureLane::DirectReply),
    ] {
        events.push(OutputEvent::Lure {
            t_us: 42,
            client: mac(1),
            ssid: ssid("Free Public WiFi"),
            source,
            lane,
        });
    }
    events
}

/// The codec_mutation mutation kinds, on UTF-8-unsafe byte buffers:
/// ~30% truncations, otherwise 1–4 byte-level bit flips.
fn mutate(bytes: &mut Vec<u8>, rng: &mut SimRng) {
    if bytes.is_empty() {
        return;
    }
    if rng.chance(0.3) {
        let keep = rng.range_usize(0, bytes.len());
        bytes.truncate(keep);
    } else {
        let flips = rng.range_usize(1, 5);
        for _ in 0..flips {
            let idx = rng.range_usize(0, bytes.len());
            let bit = rng.range_usize(0, 8);
            bytes[idx] ^= 1 << bit;
        }
    }
}

#[test]
fn every_input_shape_round_trips() {
    for event in sample_inputs() {
        let line = encode_input(&event);
        assert_eq!(
            decode_input(&line),
            Ok(event.clone()),
            "input round trip failed for {line}"
        );
        // Emit-side determinism: re-encoding is byte-identical.
        assert_eq!(encode_input(&event), line);
    }
}

#[test]
fn every_output_shape_round_trips() {
    for event in sample_outputs() {
        let line = encode_output(&event);
        assert_eq!(
            decode_output(&line),
            Ok(event.clone()),
            "output round trip failed for {line}"
        );
        assert_eq!(encode_output(&event), line);
    }
}

#[test]
fn mutated_input_lines_never_panic() {
    let mut rng = SimRng::seed_from(0x5E2F_E201);
    for event in sample_inputs() {
        let original = encode_input(&event).into_bytes();
        for _ in 0..2_000 {
            let mut bytes = original.clone();
            mutate(&mut bytes, &mut rng);
            let Ok(text) = String::from_utf8(bytes) else {
                continue; // a decoder consumes &str; invalid UTF-8 never reaches it
            };
            if let Ok(decoded) = decode_input(&text) {
                // Whatever still decodes must round-trip canonically.
                let reencoded = encode_input(&decoded);
                assert_eq!(decode_input(&reencoded), Ok(decoded));
            }
        }
    }
}

#[test]
fn mutated_output_lines_never_panic() {
    let mut rng = SimRng::seed_from(0x5E2F_E202);
    for event in sample_outputs() {
        let original = encode_output(&event).into_bytes();
        for _ in 0..2_000 {
            let mut bytes = original.clone();
            mutate(&mut bytes, &mut rng);
            let Ok(text) = String::from_utf8(bytes) else {
                continue;
            };
            if let Ok(decoded) = decode_output(&text) {
                let reencoded = encode_output(&decoded);
                assert_eq!(decode_output(&reencoded), Ok(decoded));
            }
        }
    }
}

#[test]
fn random_garbage_never_decodes_and_never_panics() {
    let mut rng = SimRng::seed_from(0xBAD_5E2F);
    for _ in 0..5_000 {
        let len = rng.range_usize(0, 160);
        let text: String = (0..len)
            .map(|_| char::from(rng.range_u64(0x20, 0x7F) as u8))
            .collect();
        assert!(decode_input(&text).is_err(), "garbage decoded: {text}");
        assert!(decode_output(&text).is_err(), "garbage decoded: {text}");
    }
    // JSON-shaped garbage exercises the envelope and field paths.
    for line in [
        "{}",
        "null",
        "[]",
        "42",
        r#"{"v":"ch-serve-v1"}"#,
        r#"{"v":"ch-serve-v1","ev":"probe"}"#,
        r#"{"v":"ch-serve-v1","ev":"nope","t_us":1}"#,
        r#"{"v":"ch-serve-v1","ev":"probe","t_us":-5,"client":"02:00:00:00:00:01"}"#,
        r#"{"v":"ch-serve-v1","ev":"probe","t_us":1,"client":"not-a-mac"}"#,
        r#"{"v":"ch-serve-v1","ev":"assoc","t_us":1,"client":"02:00:00:00:00:01"}"#,
        r#"{"v":"ch-serve-v1","ev":"lure","t_us":1,"client":"02:00:00:00:00:01","ssid":"x","source":"mars","lane":"popularity"}"#,
        r#"{"v":"ch-serve-v1","ev":"stats","t_us":1,"stats":{"events":"many"}}"#,
        r#"{"v":"ch-serve-v1","ev":"checkpoint","t_us":1}"#,
    ] {
        assert!(decode_input(line).is_err(), "accepted: {line}");
        assert!(decode_output(line).is_err(), "accepted: {line}");
    }
}

#[test]
fn version_gate_is_airtight() {
    // Every valid shape, re-tagged with a foreign version, is rejected
    // with WrongVersion specifically (not a field error downstream).
    for event in sample_inputs() {
        let line = encode_input(&event).replace("ch-serve-v1", "ch-serve-v2");
        assert_eq!(decode_input(&line), Err(ProtocolError::WrongVersion));
    }
    for event in sample_outputs() {
        let line = encode_output(&event).replace("ch-serve-v1", "ch-serve-v9");
        assert_eq!(decode_output(&line), Err(ProtocolError::WrongVersion));
    }
}

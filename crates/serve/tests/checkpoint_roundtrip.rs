//! Kill-and-recover round trips for every attacker generation.
//!
//! The contract under test: interrupt a checkpointed serve run at an
//! arbitrary mid-campaign point, restart it against the full stream, and
//! the recovered run's output stream *and* final report are byte-
//! identical to an uninterrupted run's. The interruption is simulated by
//! serving a prefix of the stream (which leaves the last committed
//! checkpoint plus an output tail past it — exactly what `kill -9`
//! leaves behind); the real-process version of the same scenario is the
//! `ci.sh` chaos smoke.
//!
//! Also pinned: a corrupted / truncated / foreign-configuration
//! checkpoint triggers a **counted** cold start that still converges to
//! the uninterrupted result.

use std::path::PathBuf;
use std::sync::OnceLock;

use ch_attack::{AttackerSpec, CityHunterConfig, EvasionSpec, RotationSpec, ThrottleSpec};
use ch_scenarios::{CityData, RunConfig};
use ch_serve::{serve_to_files, EventSource, ServeConfig};
use ch_sim::SimDuration;

const SEED: u64 = 0x5EED;

fn city() -> &'static CityData {
    static CITY: OnceLock<CityData> = OnceLock::new();
    CITY.get_or_init(|| CityData::standard(SEED))
}

/// One shared stream for every attacker under test: the service contract
/// does not require the stream's sim attacker to match the served one.
fn stream() -> &'static EventSource {
    static STREAM: OnceLock<EventSource> = OnceLock::new();
    STREAM.get_or_init(|| {
        let spec = AttackerSpec::CityHunter(CityHunterConfig::default());
        let mut run = RunConfig::canteen_30min(spec, SEED);
        run.duration = SimDuration::from_mins(8);
        EventSource::from_sim(city(), &run)
    })
}

fn work_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ch-serve-ckpt-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn evasive(base: AttackerSpec) -> AttackerSpec {
    AttackerSpec::Evasive {
        base: Box::new(base),
        evasion: EvasionSpec {
            rotation: Some(RotationSpec {
                period: SimDuration::from_mins(2),
            }),
            beacon_clone: true,
            throttle: Some(ThrottleSpec {
                max_responses: 30,
                window: SimDuration::from_secs(10),
            }),
        },
    }
}

fn config(spec: AttackerSpec, checkpoint: Option<PathBuf>) -> ServeConfig {
    let mut config = ServeConfig::new(spec, SEED);
    config.checkpoint_every = 16;
    config.checkpoint_path = checkpoint;
    config.stats_every = 64;
    config
}

/// Serves the full stream uninterrupted, then replays the same stream
/// with a simulated mid-campaign kill at `cut` events, and asserts both
/// the output stream and the report come back byte-identical.
fn assert_kill_recover_exact(name: &str, spec: AttackerSpec) {
    let dir = work_dir(name);
    let source = stream();
    let cut = source.len() / 2;
    assert!(cut > 32, "stream too short to interrupt mid-campaign");

    // Ground truth: one uninterrupted checkpointed run.
    let base_out = dir.join("base.ndjson");
    let base_report = dir.join("base.json");
    let base = serve_to_files(
        city(),
        &config(spec.clone(), Some(dir.join("base.ckpt"))),
        source,
        Some(&base_out),
        Some(&base_report),
    )
    .unwrap();
    assert!(!base.recovered && !base.cold_fallback);
    assert!(
        base.stats.checkpoints > 0,
        "{name}: no checkpoints committed"
    );

    // Interrupted run: serve only a prefix (leaves a checkpoint plus an
    // output tail beyond it), then restart against the full stream.
    let out = dir.join("chaos.ndjson");
    let ckpt = dir.join("chaos.ckpt");
    let prefix = EventSource::from_events(source.events()[..cut].to_vec());
    let cfg = config(spec, Some(ckpt));
    let first = serve_to_files(city(), &cfg, &prefix, Some(&out), None).unwrap();
    assert!(!first.recovered, "{name}: prefix run must start cold");

    let second = serve_to_files(
        city(),
        &cfg,
        source,
        Some(&out),
        Some(&dir.join("chaos.json")),
    )
    .unwrap();
    assert!(second.recovered, "{name}: restart must recover warm");
    assert!(!second.cold_fallback);
    assert!(
        second.resumed_at > 0 && second.resumed_at <= cut as u64,
        "{name}: resumed at {} outside the interrupted prefix",
        second.resumed_at
    );

    let base_bytes = std::fs::read(&base_out).unwrap();
    let chaos_bytes = std::fs::read(&out).unwrap();
    assert_eq!(
        base_bytes, chaos_bytes,
        "{name}: recovered output stream differs from uninterrupted run"
    );
    assert_eq!(
        std::fs::read(&base_report).unwrap(),
        std::fs::read(dir.join("chaos.json")).unwrap(),
        "{name}: recovered report differs from uninterrupted run"
    );
    assert_eq!(base.stats, second.stats, "{name}: counters diverged");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn karma_kill_recover_exact() {
    assert_kill_recover_exact("karma", AttackerSpec::Karma);
}

#[test]
fn mana_kill_recover_exact() {
    assert_kill_recover_exact("mana", AttackerSpec::Mana);
}

#[test]
fn prelim_kill_recover_exact() {
    assert_kill_recover_exact("prelim", AttackerSpec::Prelim);
}

#[test]
fn cityhunter_kill_recover_exact() {
    assert_kill_recover_exact(
        "cityhunter",
        AttackerSpec::CityHunter(CityHunterConfig::default()),
    );
}

#[test]
fn evasive_karma_kill_recover_exact() {
    assert_kill_recover_exact("evasive-karma", evasive(AttackerSpec::Karma));
}

#[test]
fn evasive_mana_kill_recover_exact() {
    assert_kill_recover_exact("evasive-mana", evasive(AttackerSpec::Mana));
}

#[test]
fn evasive_prelim_kill_recover_exact() {
    assert_kill_recover_exact("evasive-prelim", evasive(AttackerSpec::Prelim));
}

#[test]
fn evasive_cityhunter_kill_recover_exact() {
    assert_kill_recover_exact(
        "evasive-cityhunter",
        evasive(AttackerSpec::CityHunter(CityHunterConfig::default())),
    );
}

#[test]
fn corrupted_checkpoint_falls_back_to_counted_cold_start() {
    let dir = work_dir("corrupt");
    let source = stream();
    let spec = AttackerSpec::CityHunter(CityHunterConfig::default());

    // Baseline also checkpoints, so the `checkpoints` counter (which is
    // part of the report) matches the fallback runs.
    let base_report = dir.join("base.json");
    serve_to_files(
        city(),
        &config(spec.clone(), Some(dir.join("base.ckpt"))),
        source,
        None,
        Some(&base_report),
    )
    .unwrap();

    for (case, garbage) in [
        ("not-json", "{{{ this is not a checkpoint"),
        ("truncated", "{\"v\":\"ch-serve-v1\",\"kind\":\"checkpo"),
        (
            "wrong-shape",
            "{\"v\":\"ch-serve-v1\",\"kind\":\"checkpoint\"}",
        ),
    ] {
        let ckpt = dir.join(format!("{case}.ckpt"));
        std::fs::write(&ckpt, garbage).unwrap();
        let report = dir.join(format!("{case}.json"));
        let summary = serve_to_files(
            city(),
            &config(spec.clone(), Some(ckpt)),
            source,
            None,
            Some(&report),
        )
        .unwrap();
        assert!(summary.cold_fallback, "{case}: fallback must be counted");
        assert!(!summary.recovered, "{case}: must not claim recovery");
        assert_eq!(summary.resumed_at, 0, "{case}: cold start replays from 0");
        assert_eq!(
            std::fs::read(&base_report).unwrap(),
            std::fs::read(&report).unwrap(),
            "{case}: cold start must still converge to the uninterrupted report"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn foreign_configuration_checkpoint_is_rejected() {
    let dir = work_dir("foreign");
    let source = stream();
    let ckpt = dir.join("serve.ckpt");

    // Checkpoint written by a mana service...
    serve_to_files(
        city(),
        &config(AttackerSpec::Mana, Some(ckpt.clone())),
        source,
        None,
        None,
    )
    .unwrap();
    assert!(ckpt.exists());

    // ...must not restore into a cityhunter service: fingerprint gate.
    let spec = AttackerSpec::CityHunter(CityHunterConfig::default());
    let summary = serve_to_files(
        city(),
        &config(spec.clone(), Some(ckpt)),
        source,
        None,
        Some(&dir.join("report.json")),
    )
    .unwrap();
    assert!(summary.cold_fallback);
    assert!(!summary.recovered);

    let base_report = dir.join("base.json");
    serve_to_files(
        city(),
        &config(spec, Some(dir.join("base.ckpt"))),
        source,
        None,
        Some(&base_report),
    )
    .unwrap();
    assert_eq!(
        std::fs::read(&base_report).unwrap(),
        std::fs::read(dir.join("report.json")).unwrap(),
    );
    let _ = std::fs::remove_dir_all(&dir);
}

//! Layer 1 — the declarative signature database.
//!
//! Real rogue-AP monitors ship a list of *static* tells: vendor OUIs used
//! by attack tooling, bait SSID wording, beacon intervals no stock firmware
//! uses, and the minimal information-element set karma-style responders
//! emit. Each [`SignatureRule`] scores one such tell against the running
//! [`ApProfile`](crate::detector::ApProfile) an observer accumulates per
//! BSSID; the detector sums rule scores into the signature half of an AP's
//! suspicion score.

use ch_wifi::mac::MacAddr;
use ch_wifi::ssid::Ssid;

use crate::detector::ApProfile;
use crate::verdict::{Reason, ReasonSet};

/// IE fingerprint (see [`ch_wifi::ie::fingerprint`]) of the classic
/// karma-style minimal probe response: SSID + rates + DS parameter, open
/// (no RSN), no vendor elements.
pub const ROGUE_MINIMAL_IE: u8 = ch_wifi::ie::FP_SSID | ch_wifi::ie::FP_RATES | ch_wifi::ie::FP_DS;

/// A case-insensitive SSID text matcher.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SsidPattern {
    /// SSID contains the needle anywhere (ASCII case-insensitive).
    Contains(&'static str),
    /// SSID starts with the needle (ASCII case-insensitive).
    Prefix(&'static str),
}

impl SsidPattern {
    /// `true` if `ssid` matches this pattern.
    pub fn matches(&self, ssid: &Ssid) -> bool {
        let hay = ssid.as_bytes();
        match self {
            SsidPattern::Contains(needle) => contains_ignore_case(hay, needle.as_bytes()),
            SsidPattern::Prefix(needle) => starts_ignore_case(hay, needle.as_bytes()),
        }
    }
}

fn starts_ignore_case(hay: &[u8], needle: &[u8]) -> bool {
    hay.len() >= needle.len() && hay[..needle.len()].eq_ignore_ascii_case(needle)
}

fn contains_ignore_case(hay: &[u8], needle: &[u8]) -> bool {
    if needle.is_empty() {
        return true;
    }
    if hay.len() < needle.len() {
        return false;
    }
    hay.windows(needle.len())
        .any(|w| w.eq_ignore_ascii_case(needle))
}

/// One declarative detection signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SignatureRule {
    /// The BSSID's OUI appears on a known-rogue-tooling denylist.
    OuiDenylist {
        /// Weight added to the suspicion score when the rule fires.
        weight: u32,
    },
    /// The BSSID has the locally-administered bit set — no vendor assigned
    /// it, which no infrastructure AP does.
    LocallyAdministeredBssid {
        /// Weight added when the rule fires.
        weight: u32,
    },
    /// The AP advertised an SSID matching known bait wording.
    BaitSsid {
        /// Weight added when the rule fires.
        weight: u32,
    },
    /// A beacon interval outside the `[min_tu, max_tu]` range stock
    /// firmware uses (standard is 100 TU).
    BeaconIntervalOutside {
        /// Lowest plausible interval, in time units.
        min_tu: u16,
        /// Highest plausible interval, in time units.
        max_tu: u16,
        /// Weight added when the rule fires.
        weight: u32,
    },
    /// The AP has answered at least `min_responses` probes without ever
    /// beaconing — a responder hiding from passive scans.
    SilentResponder {
        /// Responses required before the rule fires.
        min_responses: u64,
        /// Weight added when the rule fires.
        weight: u32,
    },
    /// A probe response carried exactly the karma-style minimal IE set
    /// ([`ROGUE_MINIMAL_IE`]).
    RogueIeFingerprint {
        /// Weight added when the rule fires.
        weight: u32,
    },
}

impl SignatureRule {
    /// The verdict reason this rule contributes when it fires.
    pub fn reason(&self) -> Reason {
        match self {
            SignatureRule::OuiDenylist { .. } => Reason::DenylistedOui,
            SignatureRule::LocallyAdministeredBssid { .. } => Reason::LocallyAdministeredBssid,
            SignatureRule::BaitSsid { .. } => Reason::BaitSsid,
            SignatureRule::BeaconIntervalOutside { .. } => Reason::OddBeaconInterval,
            SignatureRule::SilentResponder { .. } => Reason::SilentResponder,
            SignatureRule::RogueIeFingerprint { .. } => Reason::RogueIeFingerprint,
        }
    }

    /// The score this rule contributes for `profile` (0 when it does not
    /// fire).
    pub fn score(&self, profile: &ApProfile) -> u32 {
        match *self {
            SignatureRule::OuiDenylist { weight } => {
                if profile.denylisted_oui {
                    weight
                } else {
                    0
                }
            }
            SignatureRule::LocallyAdministeredBssid { weight } => {
                if profile.locally_administered {
                    weight
                } else {
                    0
                }
            }
            SignatureRule::BaitSsid { weight } => {
                if profile.bait_ssid {
                    weight
                } else {
                    0
                }
            }
            SignatureRule::BeaconIntervalOutside {
                min_tu,
                max_tu,
                weight,
            } => match profile.beacon_interval_range {
                Some((lo, hi)) if lo < min_tu || hi > max_tu => weight,
                _ => 0,
            },
            SignatureRule::SilentResponder {
                min_responses,
                weight,
            } => {
                if profile.beacons == 0 && profile.responses >= min_responses {
                    weight
                } else {
                    0
                }
            }
            SignatureRule::RogueIeFingerprint { weight } => {
                if profile.rogue_ie {
                    weight
                } else {
                    0
                }
            }
        }
    }
}

/// The declarative signature database the detector evaluates per AP.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignatureDb {
    /// OUIs attributed to rogue tooling (after the vendor-bit masking
    /// [`MacAddr::from_index`] applies).
    pub oui_denylist: Vec<[u8; 3]>,
    /// Bait SSID wording.
    pub bait_patterns: Vec<SsidPattern>,
    /// Active rules.
    pub rules: Vec<SignatureRule>,
}

impl SignatureDb {
    /// The stock database: the denylisted attack-tool OUI this workspace's
    /// attackers mint their BSSIDs from, common free-WiFi bait wording, and
    /// one rule per signature class.
    pub fn standard() -> Self {
        SignatureDb {
            // 0x0a is masked to 0x08 on the wire by `MacAddr::from_index`.
            oui_denylist: vec![[0x08, 0xbc, 0xde], [0x02, 0x1a, 0x11]],
            bait_patterns: vec![
                SsidPattern::Contains("free wifi"),
                SsidPattern::Contains("free public"),
                SsidPattern::Contains("open wifi"),
                SsidPattern::Prefix("freewifi"),
            ],
            rules: vec![
                SignatureRule::OuiDenylist { weight: 4 },
                SignatureRule::LocallyAdministeredBssid { weight: 3 },
                SignatureRule::BaitSsid { weight: 2 },
                SignatureRule::BeaconIntervalOutside {
                    min_tu: 90,
                    max_tu: 110,
                    weight: 2,
                },
                SignatureRule::SilentResponder {
                    min_responses: 20,
                    weight: 3,
                },
                SignatureRule::RogueIeFingerprint { weight: 1 },
            ],
        }
    }

    /// `true` if `oui` is denylisted.
    pub fn oui_denylisted(&self, oui: [u8; 3]) -> bool {
        self.oui_denylist.contains(&oui)
    }

    /// `true` if `ssid` matches any bait pattern.
    pub fn matches_bait(&self, ssid: &Ssid) -> bool {
        self.bait_patterns.iter().any(|p| p.matches(ssid))
    }

    /// `true` if `bssid` trips either MAC-level signature.
    pub fn suspicious_bssid(&self, bssid: MacAddr) -> bool {
        bssid.is_locally_administered() || self.oui_denylisted(bssid.oui())
    }

    /// Total signature score and contributing reasons for `profile`.
    pub fn score(&self, profile: &ApProfile) -> (u32, ReasonSet) {
        let mut score = 0;
        let mut reasons = ReasonSet::empty();
        for rule in &self.rules {
            let s = rule.score(profile);
            if s > 0 {
                score += s;
                reasons.insert(rule.reason());
            }
        }
        (score, reasons)
    }
}

impl Default for SignatureDb {
    fn default() -> Self {
        SignatureDb::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ssid(s: &str) -> Ssid {
        Ssid::new(s).unwrap()
    }

    #[test]
    fn patterns_match_case_insensitively() {
        assert!(SsidPattern::Contains("free wifi").matches(&ssid("#HKAirport Free WiFi")));
        assert!(SsidPattern::Contains("free wifi").matches(&ssid("FREE WIFI")));
        assert!(!SsidPattern::Contains("free wifi").matches(&ssid("CSL")));
        assert!(SsidPattern::Prefix("freewifi").matches(&ssid("FreeWifi-HK")));
        assert!(!SsidPattern::Prefix("freewifi").matches(&ssid("HK FreeWifi")));
        assert!(SsidPattern::Contains("").matches(&ssid("anything")));
        assert!(!SsidPattern::Contains("longer than hay").matches(&ssid("hay")));
    }

    #[test]
    fn standard_db_denylists_the_attack_oui() {
        let db = SignatureDb::standard();
        // The canonical attacker BSSID as minted by the workspace.
        let rogue = MacAddr::from_index([0x0a, 0xbc, 0xde], 1);
        assert!(db.oui_denylisted(rogue.oui()));
        assert!(db.suspicious_bssid(rogue));
        let legit = MacAddr::from_index([0x00, 0x90, 0x4c], 77);
        assert!(!db.suspicious_bssid(legit));
    }

    #[test]
    fn bait_wording_matches() {
        let db = SignatureDb::standard();
        assert!(db.matches_bait(&ssid("Free Public WiFi")));
        assert!(db.matches_bait(&ssid("#HKAirport Free WiFi")));
        assert!(!db.matches_bait(&ssid("CSL")));
    }
}

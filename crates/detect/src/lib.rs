// Panic-freedom gate (clippy side of ch-lint rule R3): library code must
// surface malformed input as Result, not crash mid-campaign. Tests are
// exempt; a justified escape hatch is a scoped #[allow] plus a
// `// ch-lint: allow(panic-path)` comment.
#![cfg_attr(
    not(test),
    deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

//! # ch-detect — rogue-AP detection inside the sim
//!
//! City-Hunter's attackers have so far been unopposed: the sim measures
//! how many phones the rogue AP lures (h_b) but nothing models a
//! *defender watching the air*. This crate is that defender — a
//! signature- and behavior-based rogue-AP detector that observes the same
//! management-frame stream the clients hear and emits scored
//! [`DetectionVerdict`]s.
//!
//! Two layers:
//!
//! 1. **Signatures** ([`signature`]) — a declarative [`SignatureDb`] of
//!    static tells: OUI denylists, locally-administered BSSIDs, bait SSID
//!    wording, beacon-interval outliers, silent responders, and the
//!    karma-style minimal IE fingerprint.
//! 2. **Behavior** ([`detector`]) — windowed evidence accumulation keyed
//!    on the City-Hunter tell (one AP answering broadcast probes with many
//!    distinct directed SSIDs), MANA-style PNL replay, and implausible
//!    SSID co-location, with a [`Strictness`] knob setting the flagging
//!    threshold.
//!
//! The detector draws no randomness: its verdict stream is a pure function
//! of the observed frame sequence, so detection composes with the
//! workspace's determinism gates (serial vs `--jobs N` byte-identical).
//! [`report::DetectionReport`] scores a run against ground truth for the
//! `arms_race` experiment's precision / recall / time-to-detect table.
//!
//! ```
//! use ch_detect::{Detector, DetectorSpec};
//! use ch_sim::SimTime;
//! use ch_wifi::mgmt::{MgmtFrame, ProbeRequest};
//! use ch_wifi::MacAddr;
//!
//! let mut detector = Detector::new(DetectorSpec::standard());
//! let client = MacAddr::new([0x02, 0, 0, 0, 0, 1]);
//! detector.observe(
//!     SimTime::from_secs(1),
//!     &MgmtFrame::ProbeRequest(ProbeRequest::broadcast(client)),
//! );
//! assert_eq!(detector.verdicts().len(), 0);
//! ```

pub mod detector;
pub mod report;
pub mod signature;
pub mod verdict;

pub use detector::{ApProfile, BehaviorParams, Detector, DetectorSpec, Strictness};
pub use report::DetectionReport;
pub use signature::{SignatureDb, SignatureRule, SsidPattern, ROGUE_MINIMAL_IE};
pub use verdict::{DetectionVerdict, Reason, ReasonSet};

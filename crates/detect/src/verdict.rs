//! Scored detection verdicts and their reason codes.

use std::fmt;

use ch_sim::SimTime;
use ch_wifi::mac::MacAddr;

/// Why an AP was flagged. Each variant is one bit of a [`ReasonSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum Reason {
    /// BSSID OUI on the rogue-tooling denylist.
    DenylistedOui = 1 << 0,
    /// BSSID carries the locally-administered bit.
    LocallyAdministeredBssid = 1 << 1,
    /// Advertised an SSID matching bait wording.
    BaitSsid = 1 << 2,
    /// Beaconed at an interval stock firmware does not use.
    OddBeaconInterval = 1 << 3,
    /// Answers probes but never beacons.
    SilentResponder = 1 << 4,
    /// Probe responses carry the karma-style minimal IE set.
    RogueIeFingerprint = 1 << 5,
    /// Answered broadcast probes with many distinct directed SSIDs — the
    /// City-Hunter tell.
    BroadcastBait = 1 << 6,
    /// Advertised an SSID another client had just probed for — replaying a
    /// harvested PNL.
    PnlReplay = 1 << 7,
    /// One BSSID advertising implausibly many distinct SSIDs.
    ImplausibleCoLocation = 1 << 8,
}

/// All reasons, in bit order (stable for rendering).
pub const ALL_REASONS: [Reason; 9] = [
    Reason::DenylistedOui,
    Reason::LocallyAdministeredBssid,
    Reason::BaitSsid,
    Reason::OddBeaconInterval,
    Reason::SilentResponder,
    Reason::RogueIeFingerprint,
    Reason::BroadcastBait,
    Reason::PnlReplay,
    Reason::ImplausibleCoLocation,
];

impl Reason {
    /// Short stable slug used in rendered verdicts.
    pub fn slug(self) -> &'static str {
        match self {
            Reason::DenylistedOui => "denylisted-oui",
            Reason::LocallyAdministeredBssid => "local-admin-bssid",
            Reason::BaitSsid => "bait-ssid",
            Reason::OddBeaconInterval => "odd-beacon-interval",
            Reason::SilentResponder => "silent-responder",
            Reason::RogueIeFingerprint => "rogue-ie-fingerprint",
            Reason::BroadcastBait => "broadcast-bait",
            Reason::PnlReplay => "pnl-replay",
            Reason::ImplausibleCoLocation => "implausible-co-location",
        }
    }
}

/// A set of [`Reason`]s, packed into one word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ReasonSet(u16);

impl ReasonSet {
    /// The empty set.
    pub fn empty() -> Self {
        ReasonSet(0)
    }

    /// Adds a reason.
    pub fn insert(&mut self, reason: Reason) {
        self.0 |= reason as u16;
    }

    /// `true` if `reason` is in the set.
    pub fn contains(self, reason: Reason) -> bool {
        self.0 & reason as u16 != 0
    }

    /// `true` if no reason is set.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of reasons set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Reasons in stable bit order.
    pub fn iter(self) -> impl Iterator<Item = Reason> {
        ALL_REASONS.into_iter().filter(move |r| self.contains(*r))
    }

    /// The raw bits (for compact serialization).
    pub fn bits(self) -> u16 {
        self.0
    }

    /// Reconstructs a set from raw bits (unknown bits are dropped).
    pub fn from_bits(bits: u16) -> Self {
        let mut set = ReasonSet::empty();
        for r in ALL_REASONS {
            if bits & r as u16 != 0 {
                set.insert(r);
            }
        }
        set
    }
}

impl fmt::Display for ReasonSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "-");
        }
        let mut first = true;
        for reason in self.iter() {
            if !first {
                write!(f, "+")?;
            }
            write!(f, "{}", reason.slug())?;
            first = false;
        }
        Ok(())
    }
}

/// One scored detection event: at `at`, the AP `bssid` crossed the active
/// strictness threshold with `score` suspicion points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DetectionVerdict {
    /// When the threshold was crossed.
    pub at: SimTime,
    /// The flagged AP.
    pub bssid: MacAddr,
    /// Total suspicion score at the crossing.
    pub score: u32,
    /// Contributing signals.
    pub reasons: ReasonSet,
}

impl fmt::Display for DetectionVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "t={}s rogue-ap {} score {} [{}]",
            self.at.as_secs(),
            self.bssid,
            self.score,
            self.reasons
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reason_set_roundtrips_bits() {
        let mut set = ReasonSet::empty();
        set.insert(Reason::DenylistedOui);
        set.insert(Reason::BroadcastBait);
        assert_eq!(ReasonSet::from_bits(set.bits()), set);
        assert_eq!(set.len(), 2);
        assert!(set.contains(Reason::BroadcastBait));
        assert!(!set.contains(Reason::PnlReplay));
        assert_eq!(set.to_string(), "denylisted-oui+broadcast-bait");
        assert_eq!(ReasonSet::empty().to_string(), "-");
        // Unknown bits are dropped.
        assert!(ReasonSet::from_bits(0b1111_1110_0000_0000).is_empty());
    }

    #[test]
    fn verdict_renders_compactly() {
        let v = DetectionVerdict {
            at: SimTime::from_secs(90),
            bssid: MacAddr::new([8, 0xbc, 0xde, 0, 0, 1]),
            score: 14,
            reasons: ReasonSet::from_bits(Reason::BroadcastBait as u16),
        };
        let text = v.to_string();
        assert!(text.contains("t=90s"));
        assert!(text.contains("score 14"));
        assert!(text.contains("broadcast-bait"));
    }
}

//! Layer 2 — the windowed behavioral detector.
//!
//! A [`Detector`] watches the same management-frame stream the clients in
//! the sim hear. Per observed AP it accumulates an [`ApProfile`] of cheap
//! observables, evaluates the declarative [`SignatureDb`] over that profile
//! (layer 1), and layers windowed behavioral evidence on top:
//!
//! * **broadcast bait** — an AP answering *broadcast* probes with many
//!   distinct directed SSIDs the prober never asked for, the City-Hunter
//!   tell (§III of the paper);
//! * **PNL replay** — an AP advertising an SSID some *other* client just
//!   probed for, the MANA harvest-and-replay tell;
//! * **implausible co-location** — one BSSID claiming to be dozens of
//!   distinct networks.
//!
//! When an AP's combined score crosses the active [`Strictness`] threshold
//! the detector emits a scored [`DetectionVerdict`] (at most one per AP per
//! evidence window, so the verdict stream stays compact). The detector
//! consumes no randomness: the verdict stream is a pure function of the
//! observed frame sequence, which is what makes the `arms_race` experiment
//! byte-identical across `--jobs` widths.

use ch_sim::{det_hash_map, DetHashMap, SimDuration, SimTime};
use ch_wifi::mac::MacAddr;
use ch_wifi::mgmt::{Beacon, MgmtFrame, ProbeRequest, ProbeResponse};
use ch_wifi::ssid::Ssid;

use crate::signature::{SignatureDb, ROGUE_MINIMAL_IE};
use crate::verdict::{DetectionVerdict, Reason};

/// How aggressively the detector flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Strictness {
    /// Detection disabled; the detector observes nothing.
    Off,
    /// High threshold: only overwhelming evidence flags.
    Lenient,
    /// The default operating point.
    #[default]
    Standard,
    /// Low threshold: flags early, at the cost of false positives.
    Paranoid,
}

impl Strictness {
    /// Score an AP must reach to be flagged; `None` when detection is off.
    pub fn threshold(self) -> Option<u32> {
        match self {
            Strictness::Off => None,
            Strictness::Lenient => Some(10),
            Strictness::Standard => Some(7),
            Strictness::Paranoid => Some(4),
        }
    }

    /// Stable slug (experiment keys, rendered tables).
    pub fn slug(self) -> &'static str {
        match self {
            Strictness::Off => "off",
            Strictness::Lenient => "lenient",
            Strictness::Standard => "standard",
            Strictness::Paranoid => "paranoid",
        }
    }

    /// Parses a slug produced by [`Strictness::slug`].
    pub fn from_slug(slug: &str) -> Option<Strictness> {
        match slug {
            "off" => Some(Strictness::Off),
            "lenient" => Some(Strictness::Lenient),
            "standard" => Some(Strictness::Standard),
            "paranoid" => Some(Strictness::Paranoid),
            _ => None,
        }
    }
}

/// Tuning knobs for the behavioral layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BehaviorParams {
    /// A directed response this soon after a client's *broadcast* probe is
    /// treated as an answer to it.
    pub broadcast_reply_window: SimDuration,
    /// How long a directed probe keeps an SSID "recently probed" for the
    /// PNL-replay correlation.
    pub correlation_window: SimDuration,
    /// Distinct bait SSIDs in one window before the broadcast-bait signal
    /// fires.
    pub bait_min: usize,
    /// Cap on broadcast-bait points per window.
    pub bait_points_cap: u32,
    /// Cap on PNL-replay points per window.
    pub replay_points_cap: u32,
    /// Distinct advertised SSIDs before co-location fires.
    pub colocation_min: usize,
    /// Points co-location contributes.
    pub colocation_points: u32,
}

impl Default for BehaviorParams {
    fn default() -> Self {
        BehaviorParams {
            broadcast_reply_window: SimDuration::from_secs(2),
            correlation_window: SimDuration::from_secs(60),
            bait_min: 2,
            bait_points_cap: 10,
            replay_points_cap: 4,
            colocation_min: 10,
            colocation_points: 4,
        }
    }
}

/// Configuration for a [`Detector`]; threaded through
/// `ch_scenarios::RunConfig` so detection runs concurrently with an attack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetectorSpec {
    /// Flagging threshold regime.
    pub strictness: Strictness,
    /// Behavioral evidence window; windowed evidence resets at each
    /// boundary.
    pub window: SimDuration,
}

impl DetectorSpec {
    /// The default operating point (standard strictness, 60 s windows).
    pub fn standard() -> Self {
        DetectorSpec::default()
    }

    /// A spec at the given strictness with the default window.
    pub fn with_strictness(strictness: Strictness) -> Self {
        DetectorSpec {
            strictness,
            ..DetectorSpec::default()
        }
    }

    /// A present-but-disabled spec; behaves exactly like `None`.
    pub fn disabled() -> Self {
        DetectorSpec::with_strictness(Strictness::Off)
    }

    /// `true` if this spec disables detection entirely.
    pub fn is_disabled(&self) -> bool {
        self.strictness == Strictness::Off
    }
}

impl Default for DetectorSpec {
    fn default() -> Self {
        DetectorSpec {
            strictness: Strictness::Standard,
            window: SimDuration::from_secs(60),
        }
    }
}

/// Per-BSSID observables the signature rules and behavioral heuristics
/// read. Fields are public for [`SignatureRule`](crate::SignatureRule)
/// evaluation.
#[derive(Debug, Clone)]
pub struct ApProfile {
    /// First time this BSSID transmitted.
    pub first_seen: SimTime,
    /// OUI is on the signature denylist (computed once at creation).
    pub denylisted_oui: bool,
    /// BSSID carries the locally-administered bit.
    pub locally_administered: bool,
    /// Some advertised SSID matched bait wording.
    pub bait_ssid: bool,
    /// A frame carried the karma-style minimal IE set.
    pub rogue_ie: bool,
    /// Probe responses transmitted.
    pub responses: u64,
    /// Beacons transmitted.
    pub beacons: u64,
    /// Lowest and highest beacon interval observed, in TU.
    pub beacon_interval_range: Option<(u16, u16)>,
    /// Every distinct SSID this BSSID has advertised.
    advertised: ch_sim::DetHashSet<Ssid>,
    /// Current evidence window index.
    window: u64,
    /// Distinct unsolicited SSIDs answered to broadcast probes this window.
    window_bait: ch_sim::DetHashSet<Ssid>,
    /// PNL-replay observations this window.
    window_replays: u32,
    /// A verdict was already emitted this window.
    window_flagged: bool,
}

impl ApProfile {
    fn new(at: SimTime, denylisted_oui: bool, locally_administered: bool) -> Self {
        ApProfile {
            first_seen: at,
            denylisted_oui,
            locally_administered,
            bait_ssid: false,
            rogue_ie: false,
            responses: 0,
            beacons: 0,
            beacon_interval_range: None,
            advertised: ch_sim::det_hash_set(),
            window: 0,
            window_bait: ch_sim::det_hash_set(),
            window_replays: 0,
            window_flagged: false,
        }
    }

    /// Distinct SSIDs this BSSID has ever advertised.
    pub fn advertised_ssids(&self) -> usize {
        self.advertised.len()
    }

    fn roll_window(&mut self, window: u64) {
        if self.window != window {
            self.window = window;
            self.window_bait.clear();
            self.window_replays = 0;
            self.window_flagged = false;
        }
    }

    fn note_advertised(&mut self, ssid: &Ssid, bait: bool) {
        if !self.advertised.contains(ssid) {
            // Arc refcount bump into the detector's bookkeeping set; not
            // on the probe hot path.
            // ch-lint: allow(ssid-clone)
            self.advertised.insert(ssid.clone());
            if bait {
                self.bait_ssid = true;
            }
        }
    }

    fn note_interval(&mut self, interval_tu: u16) {
        self.beacon_interval_range = Some(match self.beacon_interval_range {
            Some((lo, hi)) => (lo.min(interval_tu), hi.max(interval_tu)),
            None => (interval_tu, interval_tu),
        });
    }
}

struct DirectProbe {
    client: MacAddr,
    at: SimTime,
}

/// The rogue-AP detector: signature DB + behavioral heuristics over an
/// observed frame stream.
pub struct Detector {
    spec: DetectorSpec,
    db: SignatureDb,
    params: BehaviorParams,
    profiles: DetHashMap<MacAddr, ApProfile>,
    broadcasters: DetHashMap<MacAddr, SimTime>,
    direct_probes: DetHashMap<Ssid, DirectProbe>,
    first_flags: DetHashMap<MacAddr, SimTime>,
    verdicts: Vec<DetectionVerdict>,
    frames: u64,
}

impl Detector {
    /// A detector with the stock signature database and behavior tuning.
    pub fn new(spec: DetectorSpec) -> Self {
        Detector::with_db(spec, SignatureDb::standard(), BehaviorParams::default())
    }

    /// A detector with a custom signature database and behavior tuning.
    pub fn with_db(spec: DetectorSpec, db: SignatureDb, params: BehaviorParams) -> Self {
        Detector {
            spec,
            db,
            params,
            profiles: det_hash_map(),
            broadcasters: det_hash_map(),
            direct_probes: det_hash_map(),
            first_flags: det_hash_map(),
            verdicts: Vec::new(),
            frames: 0,
        }
    }

    /// The active spec.
    pub fn spec(&self) -> &DetectorSpec {
        &self.spec
    }

    /// Feeds one observed frame.
    pub fn observe(&mut self, at: SimTime, frame: &MgmtFrame) {
        if self.spec.is_disabled() {
            return;
        }
        self.frames += 1;
        match frame {
            MgmtFrame::ProbeRequest(probe) => self.observe_probe(at, probe),
            MgmtFrame::ProbeResponse(response) => self.observe_response(at, response),
            MgmtFrame::Beacon(beacon) => self.observe_beacon(at, beacon),
            // The auth/assoc/deauth legs carry no AP-fingerprinting signal
            // this detector models; they still count as observed traffic.
            _ => {}
        }
    }

    fn observe_probe(&mut self, at: SimTime, probe: &ProbeRequest) {
        if probe.is_broadcast() {
            self.broadcasters.insert(probe.source, at);
        } else {
            match self.direct_probes.get_mut(&probe.ssid) {
                Some(entry) => {
                    entry.client = probe.source;
                    entry.at = at;
                }
                None => {
                    self.direct_probes.insert(
                        // Arc refcount bump keying the recently-probed pool.
                        // ch-lint: allow(ssid-clone)
                        probe.ssid.clone(),
                        DirectProbe {
                            client: probe.source,
                            at,
                        },
                    );
                }
            }
        }
    }

    /// `true` if `ssid` was directly probed within the correlation window
    /// by a client other than `client`.
    fn is_replay(&self, at: SimTime, ssid: &Ssid, client: MacAddr) -> bool {
        matches!(
            self.direct_probes.get(ssid),
            Some(dp) if dp.client != client
                && at.saturating_since(dp.at) <= self.params.correlation_window
        )
    }

    /// `true` if `ssid` was directly probed by this very client recently —
    /// in which case a directed answer is what a legitimate AP would send.
    fn is_own_request(&self, at: SimTime, ssid: &Ssid, client: MacAddr) -> bool {
        matches!(
            self.direct_probes.get(ssid),
            Some(dp) if dp.client == client
                && at.saturating_since(dp.at) <= self.params.correlation_window
        )
    }

    fn observe_response(&mut self, at: SimTime, response: &ProbeResponse) {
        let replay = self.is_replay(at, &response.ssid, response.destination);
        let bait = matches!(
            self.broadcasters.get(&response.destination),
            Some(&t) if at.saturating_since(t) <= self.params.broadcast_reply_window
        ) && !self.is_own_request(at, &response.ssid, response.destination);
        let bait_wording = self.db.matches_bait(&response.ssid);
        let denylisted = self.db.oui_denylisted(response.bssid.oui());
        let window = at.bucket(self.spec.window);

        let profile = self.profiles.entry(response.bssid).or_insert_with(|| {
            ApProfile::new(at, denylisted, response.bssid.is_locally_administered())
        });
        profile.roll_window(window);
        profile.responses += 1;
        profile.note_advertised(&response.ssid, bait_wording);
        if response.ie_fingerprint() == ROGUE_MINIMAL_IE {
            profile.rogue_ie = true;
        }
        if bait && !profile.window_bait.contains(&response.ssid) {
            // Arc refcount bump into the per-window bait evidence set.
            // ch-lint: allow(ssid-clone)
            profile.window_bait.insert(response.ssid.clone());
        }
        if replay {
            profile.window_replays = profile.window_replays.saturating_add(1);
        }
        self.evaluate(at, response.bssid);
    }

    fn observe_beacon(&mut self, at: SimTime, beacon: &Beacon) {
        let replay = self.is_replay(at, &beacon.ssid, beacon.bssid);
        let bait_wording = self.db.matches_bait(&beacon.ssid);
        let denylisted = self.db.oui_denylisted(beacon.bssid.oui());
        let window = at.bucket(self.spec.window);

        let profile = self.profiles.entry(beacon.bssid).or_insert_with(|| {
            ApProfile::new(at, denylisted, beacon.bssid.is_locally_administered())
        });
        profile.roll_window(window);
        profile.beacons += 1;
        profile.note_interval(beacon.interval_tu);
        profile.note_advertised(&beacon.ssid, bait_wording);
        if replay {
            profile.window_replays = profile.window_replays.saturating_add(1);
        }
        self.evaluate(at, beacon.bssid);
    }

    fn evaluate(&mut self, at: SimTime, bssid: MacAddr) {
        let Some(threshold) = self.spec.strictness.threshold() else {
            return;
        };
        let Some(profile) = self.profiles.get_mut(&bssid) else {
            return;
        };
        if profile.window_flagged {
            return;
        }
        let (mut score, mut reasons) = self.db.score(profile);
        let bait = profile.window_bait.len();
        if bait >= self.params.bait_min {
            score += (bait as u32).min(self.params.bait_points_cap);
            reasons.insert(Reason::BroadcastBait);
        }
        if profile.window_replays > 0 {
            score += profile.window_replays.min(self.params.replay_points_cap);
            reasons.insert(Reason::PnlReplay);
        }
        if profile.advertised.len() >= self.params.colocation_min {
            score += self.params.colocation_points;
            reasons.insert(Reason::ImplausibleCoLocation);
        }
        if score >= threshold {
            profile.window_flagged = true;
            self.first_flags.entry(bssid).or_insert(at);
            self.verdicts.push(DetectionVerdict {
                at,
                bssid,
                score,
                reasons,
            });
        }
    }

    /// Every verdict emitted so far, in observation order.
    pub fn verdicts(&self) -> &[DetectionVerdict] {
        &self.verdicts
    }

    /// When `bssid` was first flagged, if ever.
    pub fn first_flag(&self, bssid: MacAddr) -> Option<SimTime> {
        self.first_flags.get(&bssid).copied()
    }

    /// `true` if `bssid` has ever been flagged.
    pub fn is_flagged(&self, bssid: MacAddr) -> bool {
        self.first_flags.contains_key(&bssid)
    }

    /// Distinct flagged APs.
    pub fn flagged_count(&self) -> usize {
        self.first_flags.len()
    }

    /// Iterates over flagged APs and their first-flag times
    /// (deterministic-hasher map order — stable for identical streams).
    pub fn flagged(&self) -> impl Iterator<Item = (MacAddr, SimTime)> + '_ {
        self.first_flags.iter().map(|(b, t)| (*b, *t))
    }

    /// Frames observed so far.
    pub fn frames_observed(&self) -> u64 {
        self.frames
    }

    /// Distinct APs profiled so far.
    pub fn profiled_count(&self) -> usize {
        self.profiles.len()
    }

    /// The profile accumulated for `bssid`, if it ever transmitted.
    pub fn profile(&self, bssid: MacAddr) -> Option<&ApProfile> {
        self.profiles.get(&bssid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ch_wifi::channel::Channel;

    fn ssid(s: &str) -> Ssid {
        Ssid::new(s).unwrap()
    }

    fn client(i: u8) -> MacAddr {
        MacAddr::from_index([0xac, 0x37, 0x43], u32::from(i))
    }

    fn rogue() -> MacAddr {
        MacAddr::from_index([0x0a, 0xbc, 0xde], 1)
    }

    fn legit() -> MacAddr {
        MacAddr::from_index([0x00, 0x90, 0x4c], 9)
    }

    fn response(bssid: MacAddr, dest: MacAddr, name: &str) -> MgmtFrame {
        MgmtFrame::ProbeResponse(ProbeResponse::open_lure(
            bssid,
            dest,
            ssid(name),
            Channel::default(),
        ))
    }

    fn beacon(bssid: MacAddr, name: &str) -> MgmtFrame {
        MgmtFrame::Beacon(Beacon::open(bssid, ssid(name), Channel::default()))
    }

    fn broadcast(source: MacAddr) -> MgmtFrame {
        MgmtFrame::ProbeRequest(ProbeRequest::broadcast(source))
    }

    fn direct(source: MacAddr, name: &str) -> MgmtFrame {
        MgmtFrame::ProbeRequest(ProbeRequest::direct(source, ssid(name)))
    }

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    /// The City-Hunter shape: broadcast probe answered with a burst of
    /// distinct unsolicited SSIDs.
    fn drive_cityhunter_burst(detector: &mut Detector, at: SimTime, n: usize) {
        detector.observe(at, &broadcast(client(1)));
        for i in 0..n {
            detector.observe(at, &response(rogue(), client(1), &format!("net-{i}")));
        }
    }

    #[test]
    fn broadcast_bait_heuristic_fires() {
        let mut detector = Detector::new(DetectorSpec::standard());
        drive_cityhunter_burst(&mut detector, t(10), 12);
        assert!(detector.is_flagged(rogue()));
        let v = detector.verdicts()[0];
        assert!(v.reasons.contains(Reason::BroadcastBait));
        assert!(v.reasons.contains(Reason::DenylistedOui));
        assert_eq!(detector.first_flag(rogue()), Some(t(10)));
    }

    #[test]
    fn pnl_replay_heuristic_fires() {
        let mut detector = Detector::new(DetectorSpec::with_strictness(Strictness::Paranoid));
        // Client 1 probes for its PNL entry; the rogue replays it to
        // client 2 (MANA aggregation).
        detector.observe(t(5), &direct(client(1), "HomeNet"));
        for i in 0..4 {
            detector.observe(t(6 + i), &response(rogue(), client(2), "HomeNet"));
        }
        assert!(detector.is_flagged(rogue()));
        assert!(detector.verdicts()[0].reasons.contains(Reason::PnlReplay));
    }

    #[test]
    fn answering_the_probing_client_is_not_bait_or_replay() {
        let mut detector = Detector::new(DetectorSpec::with_strictness(Strictness::Paranoid));
        // A legit AP answering a client's own directed probe.
        detector.observe(t(5), &direct(client(1), "CSL"));
        detector.observe(t(5), &response(legit(), client(1), "CSL"));
        assert!(!detector.is_flagged(legit()));
        let profile = detector.profile(legit()).unwrap();
        assert_eq!(profile.window_bait.len(), 0);
        assert_eq!(profile.window_replays, 0);
    }

    #[test]
    fn silent_responder_signature_fires() {
        let mut detector = Detector::new(DetectorSpec::standard());
        // A *clean-looking* BSSID (vendor OUI, plain SSIDs) that answers
        // directed probes forever without ever beaconing.
        for i in 0..25u64 {
            detector.observe(t(i), &direct(client(1), "Corp"));
            detector.observe(t(i), &response(legit(), client(1), "Corp"));
        }
        let profile = detector.profile(legit()).unwrap();
        assert_eq!(profile.beacons, 0);
        assert!(profile.responses >= 20);
        // Silent responder (3) + rogue IE (1) alone stay under the standard
        // threshold; a paranoid detector flags it.
        assert!(!detector.is_flagged(legit()));
        let mut paranoid = Detector::new(DetectorSpec::with_strictness(Strictness::Paranoid));
        for i in 0..25u64 {
            paranoid.observe(t(i), &direct(client(1), "Corp"));
            paranoid.observe(t(i), &response(legit(), client(1), "Corp"));
        }
        assert!(paranoid.is_flagged(legit()));
        assert!(paranoid.verdicts()[0]
            .reasons
            .contains(Reason::SilentResponder));
    }

    #[test]
    fn odd_beacon_interval_signature_fires() {
        let mut detector = Detector::new(DetectorSpec::with_strictness(Strictness::Paranoid));
        let mut b = Beacon::open(legit(), ssid("Weird"), Channel::default());
        b.interval_tu = 400;
        // Odd interval (2) alone is under even the paranoid threshold;
        // pair it with bait wording (2) to cross it.
        let mut bait = Beacon::open(legit(), ssid("Free WiFi by Weird"), Channel::default());
        bait.interval_tu = 400;
        detector.observe(t(1), &MgmtFrame::Beacon(b));
        assert!(!detector.is_flagged(legit()));
        detector.observe(t(2), &MgmtFrame::Beacon(bait));
        assert!(detector.is_flagged(legit()));
        let reasons = detector.verdicts()[0].reasons;
        assert!(reasons.contains(Reason::OddBeaconInterval));
        assert!(reasons.contains(Reason::BaitSsid));
    }

    #[test]
    fn colocation_heuristic_fires_via_beacons() {
        let mut detector = Detector::new(DetectorSpec::with_strictness(Strictness::Paranoid));
        for i in 0..10 {
            detector.observe(t(i), &beacon(legit(), &format!("venue-net-{i}")));
        }
        assert!(detector.is_flagged(legit()));
        assert!(detector.verdicts()[0]
            .reasons
            .contains(Reason::ImplausibleCoLocation));
    }

    #[test]
    fn legit_ap_baseline_never_flagged_at_standard() {
        // False-positive pin: a vendor-OUI AP beaconing one SSID at 100 TU
        // and answering only its own directed probes stays clean at
        // standard strictness, even with heavy client probing around it.
        let mut detector = Detector::new(DetectorSpec::standard());
        for i in 0..600u64 {
            detector.observe(t(i), &beacon(legit(), "CSL"));
            detector.observe(t(i), &broadcast(client((i % 7) as u8)));
            detector.observe(t(i), &direct(client((i % 7) as u8), "CSL"));
            detector.observe(t(i), &response(legit(), client((i % 7) as u8), "CSL"));
        }
        assert!(!detector.is_flagged(legit()));
        assert!(detector.verdicts().is_empty());
    }

    #[test]
    fn lenient_flags_less_than_paranoid() {
        let mut counts = Vec::new();
        for strictness in [
            Strictness::Lenient,
            Strictness::Standard,
            Strictness::Paranoid,
        ] {
            let mut detector = Detector::new(DetectorSpec::with_strictness(strictness));
            detector.observe(t(5), &direct(client(1), "HomeNet"));
            for i in 0..3 {
                detector.observe(t(6 + i), &response(legit(), client(2), "HomeNet"));
            }
            drive_cityhunter_burst(&mut detector, t(20), 12);
            counts.push(detector.flagged_count());
        }
        assert!(counts[0] <= counts[1] && counts[1] <= counts[2]);
        // The rogue burst is caught everywhere; the replaying legit AP only
        // at paranoid.
        assert_eq!(counts[0], 1);
        assert_eq!(counts[2], 2);
    }

    #[test]
    fn at_most_one_verdict_per_window() {
        let mut detector = Detector::new(DetectorSpec::standard());
        drive_cityhunter_burst(&mut detector, t(10), 12);
        drive_cityhunter_burst(&mut detector, t(20), 12);
        assert_eq!(detector.verdicts().len(), 1);
        // A new window re-arms the verdict.
        drive_cityhunter_burst(&mut detector, t(70), 12);
        assert_eq!(detector.verdicts().len(), 2);
    }

    #[test]
    fn windowed_evidence_resets() {
        let mut detector = Detector::new(DetectorSpec::standard());
        drive_cityhunter_burst(&mut detector, t(10), 12);
        let before = detector.profile(rogue()).unwrap().window_bait.len();
        assert!(before > 0);
        // One lone response in a later window: bait evidence starts over.
        detector.observe(t(130), &broadcast(client(1)));
        detector.observe(t(130), &response(rogue(), client(1), "net-0"));
        assert_eq!(detector.profile(rogue()).unwrap().window_bait.len(), 1);
    }

    #[test]
    fn disabled_detector_observes_nothing() {
        let mut detector = Detector::new(DetectorSpec::disabled());
        drive_cityhunter_burst(&mut detector, t(10), 12);
        assert_eq!(detector.frames_observed(), 0);
        assert_eq!(detector.flagged_count(), 0);
        assert!(DetectorSpec::disabled().is_disabled());
        assert!(!DetectorSpec::standard().is_disabled());
    }

    #[test]
    fn verdict_stream_is_deterministic() {
        let run = || {
            let mut detector = Detector::new(DetectorSpec::with_strictness(Strictness::Paranoid));
            detector.observe(t(5), &direct(client(1), "HomeNet"));
            for i in 0..4 {
                detector.observe(t(6 + i), &response(rogue(), client(2), "HomeNet"));
            }
            drive_cityhunter_burst(&mut detector, t(30), 15);
            for i in 0..5 {
                detector.observe(t(40 + i), &beacon(legit(), "CSL"));
            }
            detector.verdicts().to_vec()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn strictness_slugs_roundtrip() {
        for s in [
            Strictness::Off,
            Strictness::Lenient,
            Strictness::Standard,
            Strictness::Paranoid,
        ] {
            assert_eq!(Strictness::from_slug(s.slug()), Some(s));
        }
        assert_eq!(Strictness::from_slug("bogus"), None);
        assert!(Strictness::Off.threshold().is_none());
        assert!(Strictness::Paranoid.threshold() < Strictness::Lenient.threshold());
    }
}

//! Ground-truth evaluation of a detector run.
//!
//! The sim knows which MACs the rogue actually transmitted from (evasion
//! may rotate through several) and which APs were legitimate; scoring a
//! [`Detector`](crate::Detector) against that ground truth yields the
//! precision / recall / time-to-detect numbers the `arms_race` experiment
//! tabulates.

use ch_sim::{DetHashSet, SimTime};
use ch_wifi::mac::MacAddr;

use crate::detector::Detector;

/// Integer-only summary of a detector run against known ground truth.
/// All fields are exact counts so fleet manifests round-trip the record
/// byte-identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DetectionReport {
    /// Frames the detector observed.
    pub frames_observed: u64,
    /// Distinct MACs the rogue transmitted from.
    pub rogue_macs: u64,
    /// Legitimate APs present.
    pub legit_aps: u64,
    /// Verdicts emitted in total.
    pub verdicts: u64,
    /// Verdicts naming a rogue MAC.
    pub rogue_verdicts: u64,
    /// Distinct flagged APs in total.
    pub flagged: u64,
    /// Distinct rogue MACs flagged (true positives).
    pub flagged_rogue: u64,
    /// Distinct legitimate APs flagged (false positives).
    pub flagged_legit: u64,
    /// First time any rogue MAC was flagged, in microseconds.
    pub time_to_detect_us: Option<u64>,
}

impl DetectionReport {
    /// Scores `detector` against the known rogue and legitimate MAC sets.
    pub fn evaluate(
        detector: &Detector,
        rogue: &DetHashSet<MacAddr>,
        legit: &DetHashSet<MacAddr>,
    ) -> Self {
        let mut report = DetectionReport {
            frames_observed: detector.frames_observed(),
            rogue_macs: rogue.len() as u64,
            legit_aps: legit.len() as u64,
            verdicts: detector.verdicts().len() as u64,
            ..DetectionReport::default()
        };
        for verdict in detector.verdicts() {
            if rogue.contains(&verdict.bssid) {
                report.rogue_verdicts += 1;
            }
        }
        let mut first: Option<SimTime> = None;
        for (bssid, at) in detector.flagged() {
            report.flagged += 1;
            if rogue.contains(&bssid) {
                report.flagged_rogue += 1;
                first = Some(match first {
                    Some(t) => t.min(at),
                    None => at,
                });
            } else if legit.contains(&bssid) {
                report.flagged_legit += 1;
            }
        }
        report.time_to_detect_us = first.map(SimTime::as_micros);
        report
    }

    /// `true` if the rogue was caught at least once.
    pub fn detected(&self) -> bool {
        self.flagged_rogue > 0
    }

    /// Flagged-AP precision: rogue MACs flagged over all APs flagged.
    /// `None` when nothing was flagged.
    pub fn precision(&self) -> Option<f64> {
        if self.flagged == 0 {
            None
        } else {
            Some(self.flagged_rogue as f64 / self.flagged as f64)
        }
    }

    /// Time to first detection, if the rogue was caught.
    pub fn time_to_detect(&self) -> Option<SimTime> {
        self.time_to_detect_us.map(SimTime::from_micros)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::{DetectorSpec, Strictness};
    use ch_sim::det_hash_set;
    use ch_wifi::channel::Channel;
    use ch_wifi::mgmt::{MgmtFrame, ProbeRequest, ProbeResponse};
    use ch_wifi::ssid::Ssid;

    #[test]
    fn report_scores_ground_truth() {
        let rogue_mac = MacAddr::from_index([0x0a, 0xbc, 0xde], 1);
        let legit_mac = MacAddr::from_index([0x00, 0x90, 0x4c], 9);
        let client = MacAddr::from_index([0xac, 0x37, 0x43], 7);
        let other = MacAddr::from_index([0xac, 0x37, 0x43], 8);

        let mut detector = Detector::new(DetectorSpec::with_strictness(Strictness::Paranoid));
        // Rogue: broadcast bait burst.
        detector.observe(
            SimTime::from_secs(1),
            &MgmtFrame::ProbeRequest(ProbeRequest::broadcast(client)),
        );
        for i in 0..6 {
            detector.observe(
                SimTime::from_secs(1),
                &MgmtFrame::ProbeResponse(ProbeResponse::open_lure(
                    rogue_mac,
                    client,
                    Ssid::new(format!("bait-{i}")).unwrap(),
                    Channel::default(),
                )),
            );
        }
        // Legit AP tripped by PNL correlation at paranoid strictness.
        detector.observe(
            SimTime::from_secs(2),
            &MgmtFrame::ProbeRequest(ProbeRequest::direct(other, Ssid::new("CSL").unwrap())),
        );
        for _ in 0..4 {
            detector.observe(
                SimTime::from_secs(3),
                &MgmtFrame::ProbeResponse(ProbeResponse::open_lure(
                    legit_mac,
                    client,
                    Ssid::new("CSL").unwrap(),
                    Channel::default(),
                )),
            );
        }

        let mut rogue = det_hash_set();
        rogue.insert(rogue_mac);
        let mut legit = det_hash_set();
        legit.insert(legit_mac);
        let report = DetectionReport::evaluate(&detector, &rogue, &legit);

        assert!(report.detected());
        assert_eq!(report.rogue_macs, 1);
        assert_eq!(report.legit_aps, 1);
        assert_eq!(report.flagged, 2);
        assert_eq!(report.flagged_rogue, 1);
        assert_eq!(report.flagged_legit, 1);
        assert_eq!(report.precision(), Some(0.5));
        assert_eq!(report.time_to_detect(), Some(SimTime::from_secs(1)));
        assert!(report.rogue_verdicts >= 1);
    }

    #[test]
    fn empty_run_has_no_precision() {
        let detector = Detector::new(DetectorSpec::standard());
        let report = DetectionReport::evaluate(&detector, &det_hash_set(), &det_hash_set());
        assert!(!report.detected());
        assert_eq!(report.precision(), None);
        assert_eq!(report.time_to_detect(), None);
    }
}

//! Seeded randomness and the distributions the workload generators need.
//!
//! All stochastic behaviour in the City-Hunter simulation flows through
//! [`SimRng`]. A `SimRng` is created from an explicit `u64` seed and can be
//! [`fork`](SimRng::fork)ed into independent child streams keyed by a label,
//! so that adding randomness to one subsystem never perturbs another — the
//! property that keeps regenerated tables and figures stable.

/// The core generator: xoshiro256** (Blackman & Vigna), seeded through
/// SplitMix64 as its authors recommend. Implemented inline so the
/// simulation kernel has zero external dependencies and the stream is
/// pinned by this repo, not by a crate version bump.
#[derive(Debug, Clone)]
struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        let s = std::array::from_fn(|_| {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            splitmix64(state)
        });
        Xoshiro256StarStar { s }
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)`: top 53 bits scaled down.
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value in `[0, span)` without modulo bias (Lemire's method
    /// with a rejection fix-up).
    fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        let mut x = self.next_u64();
        let mut m = (u128::from(x)) * (u128::from(span));
        let mut low = m as u64;
        if low < span {
            let threshold = span.wrapping_neg() % span;
            while low < threshold {
                x = self.next_u64();
                m = (u128::from(x)) * (u128::from(span));
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }
}

/// Deterministic random-number generator for the simulation.
///
/// ```
/// use ch_sim::SimRng;
///
/// let mut a = SimRng::seed_from(7);
/// let mut b = SimRng::seed_from(7);
/// assert_eq!(a.next_u64(), b.next_u64());
///
/// // Forked streams are independent of the parent's subsequent draws.
/// let mut child = a.fork("arrivals");
/// let _ = child.range_f64(0.0, 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: Xoshiro256StarStar,
    seed: u64,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            inner: Xoshiro256StarStar::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this generator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child generator from this generator's seed and
    /// a label. Forking does not consume any randomness from `self`, and the
    /// child depends only on `(seed, label)` — not on how much of the parent
    /// stream has been used.
    pub fn fork(&self, label: &str) -> SimRng {
        SimRng::seed_from(splitmix64(self.seed ^ fnv1a(label.as_bytes())))
    }

    /// The full generator state — origin seed plus the four xoshiro words —
    /// for checkpointing a mid-stream generator. Restoring via
    /// [`SimRng::from_state`] continues the draw sequence exactly where
    /// this generator left off.
    pub fn save_state(&self) -> [u64; 5] {
        let [a, b, c, d] = self.inner.s;
        [self.seed, a, b, c, d]
    }

    /// Rebuilds a generator from [`SimRng::save_state`] output. This is a
    /// restore path, not a seeding path: the words are used verbatim.
    pub fn from_state(state: [u64; 5]) -> SimRng {
        let [seed, a, b, c, d] = state;
        SimRng {
            inner: Xoshiro256StarStar { s: [a, b, c, d] },
            seed,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.unit_f64()
    }

    /// Uniform float in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "range_f64: empty range {lo}..{hi}");
        let sample = lo + self.inner.unit_f64() * (hi - lo);
        // Floating-point rounding can land exactly on `hi`; stay half-open.
        if sample < hi {
            sample
        } else {
            lo
        }
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "range_usize: empty range {lo}..{hi}");
        lo + self.inner.below((hi - lo) as u64) as usize
    }

    /// Uniform `u64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "range_u64: empty range {lo}..{hi}");
        lo + self.inner.below(hi - lo)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit_f64() < p
        }
    }

    /// Exponential variate with the given rate (events per unit);
    /// mean `1 / rate`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential: rate must be > 0, got {rate}");
        // Inverse CDF; guard the log argument away from 0.
        let u = 1.0 - self.unit_f64();
        -u.ln() / rate
    }

    /// Normal variate via Box–Muller.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1 = (1.0 - self.unit_f64()).max(f64::MIN_POSITIVE);
        let u2 = self.unit_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }

    /// Log-normal variate with the given *underlying* normal parameters.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Poisson variate with mean `lambda`.
    ///
    /// Uses Knuth's product method for small means and a clamped normal
    /// approximation above 30 (plenty for our arrival counts).
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is negative or non-finite.
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        assert!(
            lambda >= 0.0 && lambda.is_finite(),
            "poisson: bad lambda {lambda}"
        );
        if lambda == 0.0 {
            return 0;
        }
        if lambda < 30.0 {
            let limit = (-lambda).exp();
            let mut product = self.unit_f64();
            let mut count = 0u64;
            while product > limit {
                product *= self.unit_f64();
                count += 1;
            }
            count
        } else {
            let x = self.normal(lambda, lambda.sqrt());
            x.round().max(0.0) as u64
        }
    }

    /// Picks an index in `0..weights.len()` with probability proportional to
    /// `weights[i]`. Non-finite or negative weights count as zero.
    ///
    /// Returns `None` if the slice is empty or all weights are zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights
            .iter()
            .map(|w| if w.is_finite() && *w > 0.0 { *w } else { 0.0 })
            .sum();
        if total <= 0.0 {
            return None;
        }
        let mut target = self.unit_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            let w = if w.is_finite() && w > 0.0 { w } else { 0.0 };
            if target < w {
                return Some(i);
            }
            target -= w;
        }
        // Floating-point slack: fall back to the last positive weight.
        weights.iter().rposition(|w| w.is_finite() && *w > 0.0)
    }

    /// Picks a uniformly random element of `items`, or `None` if empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.range_usize(0, items.len())])
        }
    }

    /// Fisher–Yates shuffles `items` in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.range_usize(0, i + 1);
            items.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `0..n` (reservoir-free partial
    /// Fisher–Yates). Returns all of `0..n` shuffled if `k >= n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let mut idx = Vec::new();
        self.sample_indices_into(n, k, &mut idx);
        idx
    }

    /// [`sample_indices`](SimRng::sample_indices) into a caller-owned
    /// scratch vector: identical draw sequence (the stream depends only on
    /// `(n, k)`), but allocation-free once the scratch has grown to `n`.
    /// The hot-path buffers reuse one scratch across every ghost pick.
    pub fn sample_indices_into(&mut self, n: usize, k: usize, out: &mut Vec<usize>) {
        out.clear();
        out.extend(0..n);
        let k = k.min(n);
        for i in 0..k {
            let j = self.range_usize(i, n);
            out.swap(i, j);
        }
        out.truncate(k);
    }
}

/// Pre-tabulated Zipf sampler over ranks `1..=n`.
///
/// `P(rank = r) ∝ r^(-s)`. The popularity of public SSIDs across phone PNLs
/// is modelled as Zipf-distributed, which is what makes a small,
/// well-chosen WiGLE seed cover a meaningful share of the population — the
/// effect City-Hunter exploits (§III-B).
///
/// ```
/// use ch_sim::{rng::Zipf, SimRng};
///
/// let zipf = Zipf::new(100, 1.0).unwrap();
/// let mut rng = SimRng::seed_from(1);
/// let rank = zipf.sample(&mut rng);
/// assert!((1..=100).contains(&rank));
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

/// Error constructing a [`Zipf`] distribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZipfError {
    n: usize,
}

impl std::fmt::Display for ZipfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "zipf distribution needs at least one rank, got {}",
            self.n
        )
    }
}

impl std::error::Error for ZipfError {}

impl Zipf {
    /// Builds the sampler for `n` ranks with exponent `s` (clamped to ≥ 0).
    ///
    /// # Errors
    ///
    /// Returns [`ZipfError`] if `n == 0`.
    pub fn new(n: usize, s: f64) -> Result<Self, ZipfError> {
        if n == 0 {
            return Err(ZipfError { n });
        }
        let s = s.max(0.0);
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 1..=n {
            acc += (r as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Ok(Zipf { cdf })
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// `true` if the distribution has exactly one rank (never empty).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draws a 1-based rank.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.unit_f64();
        match self
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => i + 2.min(self.cdf.len()),
            Err(i) => i + 1,
        }
        .min(self.cdf.len())
    }

    /// Probability mass of rank `r` (1-based); zero if out of range.
    pub fn pmf(&self, r: usize) -> f64 {
        if r == 0 || r > self.cdf.len() {
            return 0.0;
        }
        if r == 1 {
            self.cdf[0]
        } else {
            self.cdf[r - 1] - self.cdf[r - 2]
        }
    }

    /// Cumulative mass of the top `k` ranks.
    pub fn head_mass(&self, k: usize) -> f64 {
        if k == 0 {
            0.0
        } else {
            self.cdf[k.min(self.cdf.len()) - 1]
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(99);
        let mut b = SimRng::seed_from(99);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn fork_is_label_dependent_and_parent_stateless() {
        let parent = SimRng::seed_from(5);
        let mut c1 = parent.fork("arrivals");
        let mut c2 = parent.fork("pnl");
        assert_ne!(c1.next_u64(), c2.next_u64());

        // Consuming the parent does not change what a fork produces.
        let mut parent2 = SimRng::seed_from(5);
        let _ = parent2.next_u64();
        let mut c1_again = parent2.fork("arrivals");
        let mut c1_ref = SimRng::seed_from(5).fork("arrivals");
        assert_eq!(c1_again.next_u64(), c1_ref.next_u64());
    }

    #[test]
    fn state_roundtrip_resumes_mid_stream() {
        let mut rng = SimRng::seed_from(41);
        for _ in 0..17 {
            let _ = rng.next_u64();
        }
        let saved = rng.save_state();
        let tail: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        let mut resumed = SimRng::from_state(saved);
        assert_eq!(resumed.seed(), 41);
        let resumed_tail: Vec<u64> = (0..8).map(|_| resumed.next_u64()).collect();
        assert_eq!(tail, resumed_tail);
        // Forks key off the origin seed, so a restored generator forks
        // identically to the original.
        assert_eq!(
            SimRng::from_state(saved).fork("x").next_u64(),
            SimRng::seed_from(41).fork("x").next_u64()
        );
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from(1);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-1.0));
        assert!(rng.chance(2.0));
    }

    #[test]
    fn exponential_mean_close() {
        let mut rng = SimRng::seed_from(2);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(0.5)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean={mean}");
    }

    #[test]
    fn normal_moments_close() {
        let mut rng = SimRng::seed_from(3);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 3.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.15, "mean={mean}");
        assert!((var - 9.0).abs() < 0.6, "var={var}");
    }

    #[test]
    fn poisson_small_and_large_means() {
        let mut rng = SimRng::seed_from(4);
        let n = 10_000;
        for lambda in [0.5, 3.0, 80.0] {
            let mean: f64 = (0..n).map(|_| rng.poisson(lambda) as f64).sum::<f64>() / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.max(1.0) * 0.08,
                "lambda={lambda} mean={mean}"
            );
        }
        assert_eq!(rng.poisson(0.0), 0);
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = SimRng::seed_from(5);
        let weights = [0.0, 9.0, 1.0];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[rng.weighted_index(&weights).unwrap()] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[1] as f64 / counts[2] as f64;
        assert!((7.0..12.0).contains(&ratio), "ratio={ratio}");
        assert_eq!(rng.weighted_index(&[]), None);
        assert_eq!(rng.weighted_index(&[0.0, 0.0]), None);
        assert_eq!(rng.weighted_index(&[f64::NAN, 1.0]), Some(1));
    }

    #[test]
    fn sample_indices_distinct_and_bounded() {
        let mut rng = SimRng::seed_from(6);
        let picks = rng.sample_indices(50, 10);
        assert_eq!(picks.len(), 10);
        let mut sorted = picks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
        assert!(picks.iter().all(|&i| i < 50));
        assert_eq!(rng.sample_indices(3, 10).len(), 3);
        assert!(rng.sample_indices(0, 5).is_empty());
    }

    #[test]
    fn sample_indices_into_matches_allocating_path() {
        let mut a = SimRng::seed_from(6);
        let mut b = SimRng::seed_from(6);
        let mut scratch = Vec::new();
        for (n, k) in [(50, 10), (3, 10), (0, 5), (20, 2), (1, 1)] {
            b.sample_indices_into(n, k, &mut scratch);
            assert_eq!(a.sample_indices(n, k), scratch);
        }
        // Same downstream stream: the scratch path consumed identical draws.
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::seed_from(7);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn zipf_head_mass_and_skew() {
        let zipf = Zipf::new(2_000, 1.0).unwrap();
        // With s=1 over 2000 ranks, the top 40 ranks carry roughly half the
        // mass — the quantitative hook behind the WiGLE top-list (§III-B).
        let head = zipf.head_mass(40);
        assert!((0.4..0.6).contains(&head), "head={head}");
        assert!(zipf.pmf(1) > zipf.pmf(2));
        assert_eq!(zipf.pmf(0), 0.0);
        assert_eq!(zipf.pmf(9_999), 0.0);
        let total: f64 = (1..=2_000).map(|r| zipf.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_sampling_matches_pmf() {
        let zipf = Zipf::new(50, 1.2).unwrap();
        let mut rng = SimRng::seed_from(8);
        let n = 50_000;
        let mut counts = vec![0usize; 51];
        for _ in 0..n {
            let r = zipf.sample(&mut rng);
            assert!((1..=50).contains(&r));
            counts[r] += 1;
        }
        let observed_top = counts[1] as f64 / n as f64;
        assert!(
            (observed_top - zipf.pmf(1)).abs() < 0.02,
            "observed={observed_top} expect={}",
            zipf.pmf(1)
        );
    }

    #[test]
    fn zipf_zero_ranks_rejected() {
        let err = Zipf::new(0, 1.0).unwrap_err();
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn zipf_uniform_when_s_zero() {
        let zipf = Zipf::new(4, 0.0).unwrap();
        for r in 1..=4 {
            assert!((zipf.pmf(r) - 0.25).abs() < 1e-12);
        }
    }
}

/// Walker's alias method: O(1) sampling from a fixed weighted
/// distribution, built in O(n).
///
/// [`SimRng::weighted_index`] is O(n) per draw, which is fine for one-off
/// choices but not for the population generator, which samples a public
/// SSID per PNL entry across tens of thousands of phones per campaign.
///
/// ```
/// use ch_sim::{rng::WeightedAlias, SimRng};
///
/// let alias = WeightedAlias::new(&[1.0, 0.0, 3.0]).unwrap();
/// let mut rng = SimRng::seed_from(5);
/// let i = alias.sample(&mut rng);
/// assert!(i == 0 || i == 2, "zero-weight index never drawn");
/// ```
#[derive(Debug, Clone)]
pub struct WeightedAlias {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

/// Error constructing a [`WeightedAlias`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WeightedAliasError {
    /// The weight slice was empty.
    Empty,
    /// No weight was strictly positive (or weights were non-finite).
    NoMass,
}

impl std::fmt::Display for WeightedAliasError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WeightedAliasError::Empty => write!(f, "alias table needs weights"),
            WeightedAliasError::NoMass => {
                write!(f, "alias table needs positive finite mass")
            }
        }
    }
}

impl std::error::Error for WeightedAliasError {}

impl WeightedAlias {
    /// Builds the table. Non-finite or negative weights count as zero.
    ///
    /// # Errors
    ///
    /// [`WeightedAliasError`] if `weights` is empty or carries no mass.
    pub fn new(weights: &[f64]) -> Result<Self, WeightedAliasError> {
        if weights.is_empty() {
            return Err(WeightedAliasError::Empty);
        }
        let clean: Vec<f64> = weights
            .iter()
            .map(|w| if w.is_finite() && *w > 0.0 { *w } else { 0.0 })
            .collect();
        let total: f64 = clean.iter().sum();
        if total <= 0.0 {
            return Err(WeightedAliasError::NoMass);
        }
        let n = clean.len();
        let mut prob: Vec<f64> = clean.iter().map(|w| w * n as f64 / total).collect();
        let mut alias = vec![0usize; n];
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s] = l;
            prob[l] = (prob[l] + prob[s]) - 1.0;
            if prob[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Numerical slack: whatever remains gets probability 1.
        for i in small.into_iter().chain(large) {
            prob[i] = 1.0;
        }
        Ok(WeightedAlias { prob, alias })
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// `true` is impossible — construction rejects empty tables — but the
    /// method exists for API completeness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draws an index in O(1).
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let i = rng.range_usize(0, self.prob.len());
        if rng.unit_f64() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

#[cfg(test)]
mod alias_tests {
    use super::*;

    #[test]
    fn construction_errors() {
        assert_eq!(
            WeightedAlias::new(&[]).unwrap_err(),
            WeightedAliasError::Empty
        );
        assert!(!WeightedAliasError::Empty.to_string().is_empty());
    }

    #[test]
    fn empirical_distribution_matches_weights() {
        let weights = [1.0, 2.0, 0.0, 5.0];
        let alias = WeightedAlias::new(&weights).unwrap();
        assert_eq!(alias.len(), 4);
        let mut rng = SimRng::seed_from(17);
        let n = 80_000;
        let mut counts = [0usize; 4];
        for _ in 0..n {
            counts[alias.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[2], 0, "zero weight never drawn");
        let total: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            let observed = counts[i] as f64 / n as f64;
            let expected = w / total;
            assert!(
                (observed - expected).abs() < 0.01,
                "index {i}: observed {observed}, expected {expected}"
            );
        }
    }

    #[test]
    fn agrees_with_weighted_index() {
        let weights: Vec<f64> = (0..100).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let alias = WeightedAlias::new(&weights).unwrap();
        let mut rng_a = SimRng::seed_from(23);
        let mut rng_b = SimRng::seed_from(24);
        let n = 50_000;
        let mut head_alias = 0usize;
        let mut head_linear = 0usize;
        for _ in 0..n {
            if alias.sample(&mut rng_a) < 10 {
                head_alias += 1;
            }
            if rng_b.weighted_index(&weights).unwrap() < 10 {
                head_linear += 1;
            }
        }
        let diff = (head_alias as f64 - head_linear as f64).abs() / n as f64;
        assert!(diff < 0.01, "alias {head_alias} vs linear {head_linear}");
    }

    #[test]
    fn single_category() {
        let alias = WeightedAlias::new(&[42.0]).unwrap();
        let mut rng = SimRng::seed_from(3);
        for _ in 0..10 {
            assert_eq!(alias.sample(&mut rng), 0);
        }
        assert!(!alias.is_empty());
    }

    #[test]
    fn rejects_nan_only_mass() {
        assert_eq!(
            WeightedAlias::new(&[f64::NAN, -1.0, 0.0]).unwrap_err(),
            WeightedAliasError::NoMass
        );
    }
}

//! Simulation time.
//!
//! [`SimTime`] is an absolute instant, [`SimDuration`] a span, both stored as
//! integer microseconds. Microsecond resolution is chosen because the 802.11
//! scan arithmetic the paper relies on (10 ms probe-response windows,
//! ~0.25 ms per probe response, §III-A) lives in that regime, while a `u64`
//! still comfortably covers the multi-hour field deployments of §V.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// An absolute instant in simulation time, in microseconds since the start
/// of the simulation.
///
/// ```
/// use ch_sim::{SimDuration, SimTime};
/// let t = SimTime::from_secs(2) + SimDuration::from_millis(500);
/// assert_eq!(t.as_micros(), 2_500_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulation time, in microseconds.
///
/// ```
/// use ch_sim::SimDuration;
/// assert_eq!(SimDuration::from_millis(10) / SimDuration::from_micros(250), 40);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulation time.
    pub const ZERO: SimTime = SimTime(0);
    /// The latest representable instant; useful as an "never" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `micros` microseconds after the origin.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates an instant `millis` milliseconds after the origin.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Creates an instant `secs` seconds after the origin.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// Creates an instant `mins` minutes after the origin.
    pub const fn from_mins(mins: u64) -> Self {
        SimTime(mins * 60_000_000)
    }

    /// Creates an instant `hours` hours after the origin.
    pub const fn from_hours(hours: u64) -> Self {
        SimTime(hours * 3_600_000_000)
    }

    /// Microseconds since the origin.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds since the origin (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since the origin as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Whole seconds since the origin (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000
    }

    /// The span from `earlier` to `self`, saturating at zero if `earlier`
    /// is in fact later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier > self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(earlier <= self, "since() with a later instant");
        SimDuration(self.0 - earlier.0)
    }

    /// Adds a duration, saturating at [`SimTime::MAX`].
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// Checked addition; `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }

    /// Rounds down to a multiple of `window` (e.g. bucketing hits into the
    /// 2-minute windows of Fig. 1(b)).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn floor_to(self, window: SimDuration) -> SimTime {
        assert!(window.0 > 0, "floor_to with zero window");
        SimTime(self.0 - self.0 % window.0)
    }

    /// Index of the `window`-sized bucket this instant falls into.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn bucket(self, window: SimDuration) -> u64 {
        assert!(window.0 > 0, "bucket with zero window");
        self.0 / window.0
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a span of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a span of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a span of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// Creates a span of `mins` minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60_000_000)
    }

    /// Creates a span of `hours` hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * 3_600_000_000)
    }

    /// Creates a span from fractional seconds, rounding to the nearest
    /// microsecond and clamping negatives to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs <= 0.0 || !secs.is_finite() {
            return SimDuration::ZERO;
        }
        SimDuration((secs * 1e6).round() as u64)
    }

    /// The span in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The span in whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// The span in whole seconds (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000
    }

    /// The span in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// `true` if the span is empty.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies by an integer factor, saturating on overflow.
    pub fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }

    /// Scales by a float factor (clamped to ≥ 0), rounding to the nearest
    /// microsecond.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = u64;
    /// How many whole `rhs` spans fit in `self` — e.g. how many 0.25 ms
    /// probe responses fit in a 10 ms window.
    fn div(self, rhs: SimDuration) -> u64 {
        self.0 / rhs.0
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Rem<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn rem(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 % rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total_secs = self.as_secs();
        let h = total_secs / 3600;
        let m = (total_secs % 3600) / 60;
        let s = total_secs % 60;
        let sub_ms = (self.0 % 1_000_000) / 1_000;
        write!(f, "{h:02}:{m:02}:{s:02}.{sub_ms:03}")
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{}ms", self.as_millis())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

/// A fixed-period tick schedule over simulation time.
///
/// Event-driven consumers (the detection tap's legitimate-AP beacons, the
/// beacon-clone evasion) only get control when the event loop pops
/// something, so periodic work is modeled as *catch-up*: each time the
/// loop advances, drain every tick whose scheduled instant has passed.
/// The schedule is pure arithmetic — no randomness — so it composes with
/// the determinism gates.
///
/// ```
/// use ch_sim::{Cadence, SimDuration, SimTime};
/// let mut beacons = Cadence::new(SimDuration::from_secs(5), SimTime::ZERO);
/// let mut fired = Vec::new();
/// while let Some(at) = beacons.pop_due(SimTime::from_secs(12)) {
///     fired.push(at.as_secs());
/// }
/// assert_eq!(fired, vec![0, 5, 10]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cadence {
    period: SimDuration,
    next: SimTime,
}

impl Cadence {
    /// A schedule ticking every `period`, first at `start`. A zero period
    /// is clamped to one microsecond so the schedule always advances.
    pub fn new(period: SimDuration, start: SimTime) -> Self {
        let period = if period.is_zero() {
            SimDuration::from_micros(1)
        } else {
            period
        };
        Cadence {
            period,
            next: start,
        }
    }

    /// The next scheduled tick.
    pub fn next_at(&self) -> SimTime {
        self.next
    }

    /// The tick period.
    pub fn period(&self) -> SimDuration {
        self.period
    }

    /// Pops the next tick at or before `now`, advancing the schedule;
    /// `None` once the schedule is ahead of `now`. Call in a loop to
    /// catch up after a jump.
    pub fn pop_due(&mut self, now: SimTime) -> Option<SimTime> {
        if self.next <= now {
            let due = self.next;
            self.next = self.next.saturating_add(self.period);
            Some(due)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
        assert_eq!(SimTime::from_mins(2), SimTime::from_secs(120));
        assert_eq!(SimTime::from_hours(1), SimTime::from_mins(60));
        assert_eq!(SimDuration::from_hours(12).as_secs(), 43_200);
    }

    #[test]
    fn arithmetic_roundtrip() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_millis(1_500);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn scan_budget_arithmetic_matches_paper() {
        // §III-A: a 10 ms response window at ~0.25 ms per probe response
        // gives a ~40-response budget per scan.
        let window = SimDuration::from_millis(10);
        let per_response = SimDuration::from_micros(250);
        assert_eq!(window / per_response, 40);
    }

    #[test]
    fn bucketing() {
        let w = SimDuration::from_mins(2);
        assert_eq!(SimTime::from_secs(119).bucket(w), 0);
        assert_eq!(SimTime::from_secs(120).bucket(w), 1);
        assert_eq!(SimTime::from_secs(359).floor_to(w), SimTime::from_mins(4));
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
        assert_eq!(
            SimTime::from_secs(1).saturating_since(SimTime::from_secs(5)),
            SimDuration::ZERO
        );
        assert_eq!(
            SimTime::from_secs(1).checked_add(SimDuration::from_secs(1)),
            Some(SimTime::from_secs(2))
        );
        assert_eq!(SimTime::MAX.checked_add(SimDuration::from_micros(1)), None);
    }

    #[test]
    fn from_secs_f64_edge_cases() {
        assert_eq!(SimDuration::from_secs_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(0.0005),
            SimDuration::from_micros(500)
        );
        assert_eq!(
            SimDuration::from_secs_f64(1.5),
            SimDuration::from_millis(1_500)
        );
    }

    #[test]
    fn mul_div() {
        let d = SimDuration::from_millis(250);
        assert_eq!(d * 4, SimDuration::from_secs(1));
        assert_eq!(d / 2, SimDuration::from_micros(125_000));
        assert_eq!(d.mul_f64(0.5), SimDuration::from_micros(125_000));
        assert_eq!(d.saturating_mul(u64::MAX).as_micros(), u64::MAX);
        assert_eq!(
            SimDuration::from_millis(7) % SimDuration::from_millis(2),
            SimDuration::from_millis(1)
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_secs(3661).to_string(), "01:01:01.000");
        assert_eq!(SimDuration::from_micros(400).to_string(), "400us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    #[should_panic(expected = "floor_to with zero window")]
    fn floor_to_zero_window_panics() {
        let _ = SimTime::from_secs(1).floor_to(SimDuration::ZERO);
    }

    #[test]
    fn cadence_catches_up_deterministically() {
        let mut c = Cadence::new(SimDuration::from_secs(5), SimTime::from_secs(3));
        assert_eq!(c.period(), SimDuration::from_secs(5));
        // Nothing due before the first tick.
        assert_eq!(c.pop_due(SimTime::from_secs(2)), None);
        // A jump drains every elapsed tick, oldest first.
        let mut fired = Vec::new();
        while let Some(at) = c.pop_due(SimTime::from_secs(14)) {
            fired.push(at.as_secs());
        }
        assert_eq!(fired, vec![3, 8, 13]);
        assert_eq!(c.next_at(), SimTime::from_secs(18));
        // A zero period is clamped, not an infinite loop.
        let mut z = Cadence::new(SimDuration::ZERO, SimTime::ZERO);
        assert!(z.pop_due(SimTime::ZERO).is_some());
        assert!(z.next_at() > SimTime::ZERO);
    }
}

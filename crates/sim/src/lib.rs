//! # ch-sim — deterministic discrete-event simulation kernel
//!
//! This crate is the substrate every other City-Hunter crate builds on. It
//! provides:
//!
//! * [`SimTime`] / [`SimDuration`] — microsecond-resolution simulation time,
//!   the unit in which 802.11 scan timing (10 ms dwell windows, 0.25 ms probe
//!   responses) is expressed.
//! * [`EventQueue`] — a time-ordered queue with deterministic FIFO
//!   tie-breaking, so that two events scheduled for the same instant always
//!   fire in the order they were scheduled.
//! * [`SimRng`] — a seeded random-number generator with the distribution
//!   helpers the workload generators need (Zipf, Poisson, exponential,
//!   normal), plus deterministic *forking* so each subsystem gets an
//!   independent but reproducible stream.
//! * [`space`] — 2-D positions in metres and simple geometry.
//! * [`medium`] — a shared-channel airtime model with a distance-based
//!   delivery gate, the abstraction standing in for the real radio.
//! * [`fault`] — deterministic, seed-derived fault injection (bursty
//!   Gilbert–Elliott loss, frame corruption, client churn, scheduled
//!   attacker crashes) for the robustness studies.
//!
//! Everything is deterministic: the same seed produces bit-identical
//! simulations, which is what lets the benchmark harness regenerate every
//! table and figure of the paper reproducibly.
//!
//! ```
//! use ch_sim::{EventQueue, SimDuration, SimRng, SimTime};
//!
//! let mut queue = EventQueue::new();
//! queue.push(SimTime::ZERO + SimDuration::from_millis(10), "scan");
//! queue.push(SimTime::ZERO + SimDuration::from_millis(5), "arrive");
//! let (t, what) = queue.pop().unwrap();
//! assert_eq!(what, "arrive");
//! assert_eq!(t, SimTime::from_millis(5));
//!
//! let mut rng = SimRng::seed_from(42);
//! let dwell = rng.range_f64(0.5, 2.0);
//! assert!((0.5..2.0).contains(&dwell));
//! ```

pub mod alloc;
pub mod collections;
pub mod fault;
pub mod invariant;
pub mod medium;
pub mod queue;
pub mod rng;
pub mod space;
pub mod stats;
pub mod time;
pub mod trace;

pub use collections::{det_hash_map, det_hash_set, DetHashMap, DetHashSet, FxHasher};
pub use fault::{CrashMode, FaultPlan, FaultSpec};
pub use medium::{DeliveryOutcome, LossModel, RadioMedium};
pub use queue::EventQueue;
pub use rng::SimRng;
pub use space::{Position, Rect};
pub use stats::Summary;
pub use time::{Cadence, SimDuration, SimTime};
pub use trace::{NullTrace, TraceEvent, TraceSink, VecTrace};

//! Lightweight simulation tracing.
//!
//! Experiments normally run with [`NullTrace`] (zero cost); tests and
//! debugging sessions swap in a [`VecTrace`] to capture a timeline of what
//! the simulation did without changing any behaviour.

use crate::time::SimTime;

/// One recorded simulation event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// When the event happened.
    pub at: SimTime,
    /// Subsystem that emitted it (e.g. `"attacker"`, `"phone"`).
    pub source: &'static str,
    /// Human-readable description.
    pub message: String,
}

/// Sink for simulation trace events.
///
/// Implementations must be cheap when tracing is disabled; callers are
/// encouraged to build messages lazily:
///
/// ```
/// use ch_sim::{NullTrace, SimTime, TraceSink};
///
/// let mut sink = NullTrace;
/// if sink.enabled() {
///     sink.record(SimTime::ZERO, "demo", format!("expensive {}", 42));
/// }
/// ```
pub trait TraceSink {
    /// `true` if events will actually be kept; lets callers skip building
    /// messages.
    fn enabled(&self) -> bool;

    /// Records one event.
    fn record(&mut self, at: SimTime, source: &'static str, message: String);
}

/// Discards everything.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullTrace;

impl TraceSink for NullTrace {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _at: SimTime, _source: &'static str, _message: String) {}
}

/// Keeps events in memory, optionally capped.
#[derive(Debug, Clone, Default)]
pub struct VecTrace {
    events: Vec<TraceEvent>,
    cap: Option<usize>,
    dropped: u64,
}

impl VecTrace {
    /// An unbounded in-memory trace.
    pub fn new() -> Self {
        VecTrace::default()
    }

    /// A trace that keeps at most `cap` events and counts the overflow.
    pub fn with_cap(cap: usize) -> Self {
        VecTrace {
            events: Vec::new(),
            cap: Some(cap),
            dropped: 0,
        }
    }

    /// The recorded events, in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// How many events were discarded due to the cap.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events from the given source only.
    pub fn from_source<'a>(&'a self, source: &'a str) -> impl Iterator<Item = &'a TraceEvent> + 'a {
        self.events.iter().filter(move |e| e.source == source)
    }
}

impl TraceSink for VecTrace {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, at: SimTime, source: &'static str, message: String) {
        if let Some(cap) = self.cap {
            if self.events.len() >= cap {
                self.dropped += 1;
                return;
            }
        }
        self.events.push(TraceEvent {
            at,
            source,
            message,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_trace_is_disabled() {
        let mut t = NullTrace;
        assert!(!t.enabled());
        t.record(SimTime::ZERO, "x", "ignored".into());
    }

    #[test]
    fn vec_trace_records_in_order() {
        let mut t = VecTrace::new();
        assert!(t.enabled());
        t.record(SimTime::from_secs(1), "a", "first".into());
        t.record(SimTime::from_secs(2), "b", "second".into());
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.events()[0].message, "first");
        assert_eq!(t.from_source("b").count(), 1);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn cap_drops_overflow() {
        let mut t = VecTrace::with_cap(2);
        for i in 0..5 {
            t.record(SimTime::from_secs(i), "s", format!("e{i}"));
        }
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 3);
        assert_eq!(t.events()[1].message, "e1");
    }
}

//! Deterministic fault injection.
//!
//! The paper's attacker runs unattended for 12 h in hostile RF: bursty
//! channel loss, malformed frames in the air, clients wandering in and
//! out of range, and the rig itself occasionally dying. This module
//! models all four as a *seed-derived plan* — a [`FaultSpec`] describes
//! which faults are armed and a [`FaultPlan`] turns it into a stream of
//! deterministic injection decisions, keyed off the campaign seed the
//! same way `ch_fleet::derive_seed` keys job seeds. Two runs with the
//! same seed and spec inject byte-identical faults, so faulted
//! experiments stay bit-reproducible, resumable and parallelizable.
//!
//! The four fault classes:
//!
//! 1. **Bursty channel loss** — a two-state [`GilbertElliott`] chain
//!    layered on top of the distance-based [`crate::LossModel`]: the
//!    channel flips between a Good state (no extra loss) and a Bad
//!    state that eats most frames, with geometrically distributed
//!    dwell times. Classic burst-loss modelling, nothing exotic.
//! 2. **Frame corruption** — encoded management frames are bit-flipped
//!    or truncated *on the wire*, before decode. The receiver must
//!    reject them via `CodecError`, never panic.
//! 3. **Client churn** — a fraction of visits are truncated (the phone
//!    leaves early) or delayed (it arrives late), so population
//!    composition shifts mid-run.
//! 4. **Attacker crash/restart** — at scheduled sim times the attacker
//!    process "dies" and restarts either cold (state rebuilt from its
//!    offline seed) or warm (restored from its last checkpoint
//!    snapshot).
//!
//! Every decision draws from the plan's own forked RNG streams, so a
//! run with `FaultSpec::disabled()` (or no plan at all) consumes
//! exactly the same randomness as a run built before this module
//! existed — fault hooks are zero-cost and draw-neutral when off.

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// The two states of a Gilbert–Elliott burst-loss channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelState {
    /// Low-loss steady state.
    Good,
    /// High-loss burst state.
    Bad,
}

/// A two-state Markov (Gilbert–Elliott) burst-loss channel.
///
/// Each [`step`](GilbertElliott::step) first applies the state
/// transition (enter/exit the burst with the configured probabilities),
/// then draws frame loss at the current state's loss rate. Expected
/// burst length is `1 / p_exit_bad` steps.
#[derive(Debug, Clone, PartialEq)]
pub struct GilbertElliott {
    p_enter_bad: f64,
    p_exit_bad: f64,
    loss_good: f64,
    loss_bad: f64,
    state: ChannelState,
}

impl GilbertElliott {
    /// Creates a channel starting in the Good state.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]`.
    pub fn new(p_enter_bad: f64, p_exit_bad: f64, loss_good: f64, loss_bad: f64) -> Self {
        for (name, p) in [
            ("p_enter_bad", p_enter_bad),
            ("p_exit_bad", p_exit_bad),
            ("loss_good", loss_good),
            ("loss_bad", loss_bad),
        ] {
            assert!((0.0..=1.0).contains(&p), "{name} {p} outside [0,1]");
        }
        GilbertElliott {
            p_enter_bad,
            p_exit_bad,
            loss_good,
            loss_bad,
            state: ChannelState::Good,
        }
    }

    /// The current channel state.
    pub fn state(&self) -> ChannelState {
        self.state
    }

    /// Advances the chain by one frame and returns `true` if that frame
    /// is lost to the burst process.
    pub fn step(&mut self, rng: &mut SimRng) -> bool {
        let flip = match self.state {
            ChannelState::Good => self.p_enter_bad,
            ChannelState::Bad => self.p_exit_bad,
        };
        if rng.chance(flip) {
            self.state = match self.state {
                ChannelState::Good => ChannelState::Bad,
                ChannelState::Bad => ChannelState::Good,
            };
        }
        let loss = match self.state {
            ChannelState::Good => self.loss_good,
            ChannelState::Bad => self.loss_bad,
        };
        rng.chance(loss)
    }

    /// Returns the channel to the Good state (fresh-run reuse).
    pub fn reset(&mut self) {
        self.state = ChannelState::Good;
    }
}

/// Burst-loss parameters; the Good state adds no loss on top of the
/// distance model, the Bad state eats `loss_bad` of frames.
#[derive(Debug, Clone, PartialEq)]
pub struct BurstLossSpec {
    /// Per-frame probability of entering a burst.
    pub p_enter_bad: f64,
    /// Per-frame probability of a burst ending (expected burst length
    /// is its reciprocal).
    pub p_exit_bad: f64,
    /// Loss rate while inside a burst.
    pub loss_bad: f64,
}

impl BurstLossSpec {
    /// Builds the Gilbert–Elliott chain this spec describes.
    pub fn chain(&self) -> GilbertElliott {
        GilbertElliott::new(self.p_enter_bad, self.p_exit_bad, 0.0, self.loss_bad)
    }
}

/// Frame-corruption parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct CorruptionSpec {
    /// Fraction of delivered frames whose bytes are mutated in flight.
    pub rate: f64,
}

/// Client-churn parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnSpec {
    /// Fraction of visits that are churned (truncated or delayed).
    pub rate: f64,
}

/// How a crashed attacker comes back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashMode {
    /// Restart from the offline seed state (everything learned in-run
    /// is lost).
    Cold,
    /// Restore the last checkpoint snapshot (learned state survives up
    /// to the checkpoint).
    Warm,
}

/// Attacker crash schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct CrashSpec {
    /// Crash instants, in seconds of sim time from run start.
    pub times_secs: Vec<u64>,
    /// Recovery mode applied at every crash in the schedule.
    pub recovery: CrashMode,
    /// Checkpoint cadence in seconds (warm recovery restores the last
    /// one taken); `None` means no checkpoints are ever taken.
    pub checkpoint_secs: Option<u64>,
}

/// Which faults are armed for a run. `None` in every slot (the
/// [`FaultSpec::disabled`] value) injects nothing and draws nothing.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSpec {
    /// Bursty channel loss on top of the distance model.
    pub burst_loss: Option<BurstLossSpec>,
    /// In-flight frame corruption.
    pub corruption: Option<CorruptionSpec>,
    /// Mid-run client arrivals/departures.
    pub churn: Option<ChurnSpec>,
    /// Scheduled attacker crashes.
    pub crash: Option<CrashSpec>,
}

impl FaultSpec {
    /// The all-off spec.
    pub fn disabled() -> Self {
        FaultSpec::default()
    }

    /// `true` when no fault class is armed.
    pub fn is_disabled(&self) -> bool {
        self.burst_loss.is_none()
            && self.corruption.is_none()
            && self.churn.is_none()
            && self.crash.is_none()
    }
}

/// A scheduled attacker-lifecycle action, popped from
/// [`FaultPlan::next_action`] in time order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Take a snapshot the next warm restart can restore.
    Checkpoint,
    /// Kill and restart the attacker in the given mode.
    Crash(CrashMode),
}

/// A [`FaultSpec`] compiled against a seed: the deterministic stream of
/// injection decisions for one run.
///
/// Each fault class draws from its own forked RNG stream, so arming one
/// class never perturbs another's decisions, and nothing here ever
/// touches the run's simulation RNGs.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    spec: FaultSpec,
    channel: Option<GilbertElliott>,
    rng_channel: SimRng,
    rng_corrupt: SimRng,
    rng_churn: SimRng,
    crash_times: Vec<SimTime>,
    crash_idx: usize,
    next_checkpoint: Option<SimTime>,
    checkpoint_every: Option<SimDuration>,
}

impl FaultPlan {
    /// Compiles `spec` against `rng` (fork the run's root with a
    /// dedicated label; forking does not consume parent randomness).
    pub fn new(spec: FaultSpec, rng: &SimRng) -> Self {
        let channel = spec.burst_loss.as_ref().map(BurstLossSpec::chain);
        let mut crash_times: Vec<SimTime> = spec
            .crash
            .iter()
            .flat_map(|c| c.times_secs.iter().map(|&s| SimTime::from_secs(s)))
            .collect();
        crash_times.sort_unstable();
        crash_times.dedup();
        let checkpoint_every = spec
            .crash
            .as_ref()
            .and_then(|c| c.checkpoint_secs)
            .map(SimDuration::from_secs);
        FaultPlan {
            spec,
            channel,
            rng_channel: rng.fork("fault-channel"),
            rng_corrupt: rng.fork("fault-corrupt"),
            rng_churn: rng.fork("fault-churn"),
            crash_times,
            crash_idx: 0,
            next_checkpoint: checkpoint_every.map(|e| SimTime::ZERO.saturating_add(e)),
            checkpoint_every,
        }
    }

    /// The spec this plan was compiled from.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Steps the burst channel for one frame; `true` means the frame is
    /// eaten by a loss burst. A plan without burst loss always returns
    /// `false` without drawing.
    pub fn channel_drops(&mut self) -> bool {
        match &mut self.channel {
            Some(chain) => chain.step(&mut self.rng_channel),
            None => false,
        }
    }

    /// `true` if this delivered frame should be corrupted in flight. A
    /// plan without corruption always returns `false` without drawing.
    pub fn corrupts(&mut self) -> bool {
        match &self.spec.corruption {
            Some(c) => {
                let rate = c.rate;
                self.rng_corrupt.chance(rate)
            }
            None => false,
        }
    }

    /// Mutates encoded frame bytes in place: roughly 30% truncations,
    /// otherwise 1–4 bit flips. Mutating an empty buffer is a no-op.
    pub fn mutate(&mut self, bytes: &mut Vec<u8>) {
        if bytes.is_empty() {
            return;
        }
        if self.rng_corrupt.chance(0.3) {
            let keep = self.rng_corrupt.range_usize(0, bytes.len());
            bytes.truncate(keep);
        } else {
            let flips = self.rng_corrupt.range_usize(1, 5);
            for _ in 0..flips {
                let idx = self.rng_corrupt.range_usize(0, bytes.len());
                let bit = self.rng_corrupt.range_usize(0, 8);
                bytes[idx] ^= 1 << bit;
            }
        }
    }

    /// Applies churn to a visit window. Returns the (possibly shrunk)
    /// `(enter, exit)` pair; a churned visit either ends early (the
    /// phone departs mid-run) or starts late (it arrives mid-run),
    /// keeping 25–75% of its original dwell. A plan without churn
    /// returns the window unchanged without drawing.
    pub fn churn_visit(&mut self, enter: SimTime, exit: SimTime) -> (SimTime, SimTime) {
        let Some(churn) = &self.spec.churn else {
            return (enter, exit);
        };
        let rate = churn.rate;
        if !self.rng_churn.chance(rate) {
            return (enter, exit);
        }
        let dwell = exit.saturating_since(enter);
        if dwell.is_zero() {
            return (enter, exit);
        }
        let keep = dwell.mul_f64(self.rng_churn.range_f64(0.25, 0.75));
        if self.rng_churn.chance(0.5) {
            // Depart early: same arrival, truncated stay.
            (enter, enter.saturating_add(keep))
        } else {
            // Arrive late: same departure, delayed arrival.
            let start = SimTime::from_micros(exit.as_micros().saturating_sub(keep.as_micros()));
            (start.max(enter), exit)
        }
    }

    /// Pops the next scheduled lifecycle action due at or before `now`,
    /// earliest first (checkpoints win ties so a warm restart at the
    /// same instant restores fresh state). Call in a loop until `None`.
    pub fn next_action(&mut self, now: SimTime) -> Option<FaultAction> {
        let checkpoint_due = self.next_checkpoint.filter(|&t| t <= now);
        let crash_due = self
            .crash_times
            .get(self.crash_idx)
            .copied()
            .filter(|&t| t <= now);
        match (checkpoint_due, crash_due) {
            (Some(cp), Some(cr)) if cp <= cr => self.pop_checkpoint(cp),
            (Some(cp), None) => self.pop_checkpoint(cp),
            (_, Some(_)) => {
                self.crash_idx += 1;
                let mode = self
                    .spec
                    .crash
                    .as_ref()
                    .map_or(CrashMode::Cold, |c| c.recovery);
                Some(FaultAction::Crash(mode))
            }
            (None, None) => None,
        }
    }

    fn pop_checkpoint(&mut self, at: SimTime) -> Option<FaultAction> {
        self.next_checkpoint = self
            .checkpoint_every
            .and_then(|every| at.checked_add(every));
        Some(FaultAction::Checkpoint)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from(0xFA_017)
    }

    fn bursty() -> FaultSpec {
        FaultSpec {
            burst_loss: Some(BurstLossSpec {
                p_enter_bad: 0.05,
                p_exit_bad: 0.2,
                loss_bad: 0.9,
            }),
            ..FaultSpec::disabled()
        }
    }

    #[test]
    fn disabled_spec_is_disabled() {
        assert!(FaultSpec::disabled().is_disabled());
        assert!(!bursty().is_disabled());
    }

    #[test]
    fn gilbert_elliott_bursts_and_recovers() {
        let mut chain = GilbertElliott::new(0.1, 0.3, 0.0, 1.0);
        let mut r = rng();
        let mut saw_bad = false;
        let mut saw_good_after_bad = false;
        let mut lost = 0usize;
        for _ in 0..10_000 {
            if chain.step(&mut r) {
                lost += 1;
            }
            match chain.state() {
                ChannelState::Bad => saw_bad = true,
                ChannelState::Good if saw_bad => saw_good_after_bad = true,
                ChannelState::Good => {}
            }
        }
        assert!(saw_bad && saw_good_after_bad, "chain never cycled");
        // Stationary bad fraction is p_enter/(p_enter+p_exit) = 0.25;
        // with loss_bad = 1.0, loss rate tracks it.
        assert!((1_500..3_500).contains(&lost), "lost={lost}");
        chain.reset();
        assert_eq!(chain.state(), ChannelState::Good);
    }

    #[test]
    fn plan_is_deterministic_per_seed() {
        let spec = FaultSpec {
            corruption: Some(CorruptionSpec { rate: 0.5 }),
            ..bursty()
        };
        let mut a = FaultPlan::new(spec.clone(), &rng());
        let mut b = FaultPlan::new(spec, &rng());
        for _ in 0..1_000 {
            assert_eq!(a.channel_drops(), b.channel_drops());
            assert_eq!(a.corrupts(), b.corrupts());
        }
        let mut frame_a = vec![0xAAu8; 64];
        let mut frame_b = frame_a.clone();
        a.mutate(&mut frame_a);
        b.mutate(&mut frame_b);
        assert_eq!(frame_a, frame_b);
    }

    #[test]
    fn unarmed_classes_draw_nothing() {
        // A burst-only plan must answer corruption/churn queries without
        // consuming randomness: interleaving them cannot change the
        // channel stream.
        let mut pure = FaultPlan::new(bursty(), &rng());
        let mut mixed = FaultPlan::new(bursty(), &rng());
        for i in 0..500 {
            assert!(!mixed.corrupts());
            let (e, x) = mixed.churn_visit(SimTime::ZERO, SimTime::from_secs(60));
            assert_eq!((e, x), (SimTime::ZERO, SimTime::from_secs(60)));
            assert_eq!(pure.channel_drops(), mixed.channel_drops(), "frame {i}");
        }
    }

    #[test]
    fn mutate_changes_bytes_or_length() {
        let mut plan = FaultPlan::new(
            FaultSpec {
                corruption: Some(CorruptionSpec { rate: 1.0 }),
                ..FaultSpec::disabled()
            },
            &rng(),
        );
        let original = vec![0x5Au8; 40];
        let mut saw_truncation = false;
        let mut saw_flip = false;
        for _ in 0..200 {
            let mut frame = original.clone();
            plan.mutate(&mut frame);
            if frame.len() < original.len() {
                saw_truncation = true;
            } else if frame != original {
                saw_flip = true;
            }
            assert!(
                frame.len() < original.len() || frame != original,
                "mutation left the frame intact"
            );
        }
        assert!(saw_truncation && saw_flip);
        let mut empty = Vec::new();
        plan.mutate(&mut empty); // must not panic
        assert!(empty.is_empty());
    }

    #[test]
    fn churn_shrinks_but_never_extends_visits() {
        let mut plan = FaultPlan::new(
            FaultSpec {
                churn: Some(ChurnSpec { rate: 1.0 }),
                ..FaultSpec::disabled()
            },
            &rng(),
        );
        let enter = SimTime::from_secs(100);
        let exit = SimTime::from_secs(700);
        let dwell = exit.since(enter);
        for _ in 0..300 {
            let (e, x) = plan.churn_visit(enter, exit);
            assert!(e >= enter && x <= exit && e <= x, "window {e:?}..{x:?}");
            let kept = x.since(e);
            assert!(kept < dwell, "churned visit was not shortened");
            let frac = kept.as_secs_f64() / dwell.as_secs_f64();
            assert!((0.2..0.8).contains(&frac), "kept fraction {frac}");
        }
        // Zero-length visits pass through untouched.
        assert_eq!(plan.churn_visit(enter, enter), (enter, enter));
    }

    #[test]
    fn crash_schedule_pops_in_order_with_checkpoints() {
        let mut plan = FaultPlan::new(
            FaultSpec {
                crash: Some(CrashSpec {
                    times_secs: vec![300, 150, 300], // unsorted + duplicate
                    recovery: CrashMode::Warm,
                    checkpoint_secs: Some(100),
                }),
                ..FaultSpec::disabled()
            },
            &rng(),
        );
        let mut actions = Vec::new();
        let mut now = SimTime::ZERO;
        while now <= SimTime::from_secs(360) {
            while let Some(action) = plan.next_action(now) {
                actions.push((now.as_secs(), action));
            }
            now = now.saturating_add(SimDuration::from_secs(30));
        }
        use FaultAction::{Checkpoint, Crash};
        assert_eq!(
            actions,
            vec![
                (120, Checkpoint),
                (150, Crash(CrashMode::Warm)),
                (210, Checkpoint),
                (300, Checkpoint), // tie: checkpoint lands before the crash
                (300, Crash(CrashMode::Warm)),
            ]
        );
        assert_eq!(plan.next_action(SimTime::from_secs(360)), None);
    }

    #[test]
    fn crash_without_checkpoints_only_crashes() {
        let mut plan = FaultPlan::new(
            FaultSpec {
                crash: Some(CrashSpec {
                    times_secs: vec![60],
                    recovery: CrashMode::Cold,
                    checkpoint_secs: None,
                }),
                ..FaultSpec::disabled()
            },
            &rng(),
        );
        assert_eq!(plan.next_action(SimTime::from_secs(59)), None);
        assert_eq!(
            plan.next_action(SimTime::from_secs(61)),
            Some(FaultAction::Crash(CrashMode::Cold))
        );
        assert_eq!(plan.next_action(SimTime::from_secs(10_000)), None);
    }
}
